//! Dissemination-graph transport — a reproduction of *Timely, Reliable,
//! and Cost-Effective Internet Transport Service Using Dissemination
//! Graphs* (Babay, Wagner, Dinitz, Amir — ICDCS 2017).
//!
//! This facade re-exports the workspace's crates under one roof:
//!
//! - [`topology`] — the overlay graph model and routing algorithms,
//! - [`trace`] — recorded/synthetic per-link network conditions,
//! - [`core`] — dissemination graphs and the six routing schemes,
//! - [`sim`] — the playback network simulator and its metrics,
//! - [`overlay`] — the deployable UDP overlay node and localhost
//!   clusters.
//!
//! # Quickstart
//!
//! ```
//! use dissemination_graphs::prelude::*;
//!
//! let graph = topology::presets::north_america_12();
//! let flow = Flow::new(
//!     graph.node_by_name("NYC").unwrap(),
//!     graph.node_by_name("SJC").unwrap(),
//! );
//! let scheme = build_scheme(
//!     SchemeKind::TargetedRedundancy,
//!     &graph,
//!     flow,
//!     ServiceRequirement::default(),
//!     &SchemeParams::default(),
//! )?;
//! println!("graph cost: {}", scheme.current().cost(&graph));
//! # Ok::<(), dissemination_graphs::core::CoreError>(())
//! ```
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! DESIGN.md / EXPERIMENTS.md for the reproduction methodology.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dg_core as core;
pub use dg_overlay as overlay;
pub use dg_sim as sim;
pub use dg_topology as topology;
pub use dg_trace as trace;

// The workhorse types, liftable without spelling out the sub-crate.
pub use dg_core::scheme::SchemeKind;
pub use dg_core::SlaClass;
pub use dg_overlay::chaos::ChaosSchedule;
pub use dg_overlay::cluster::Cluster;
pub use dg_overlay::metrics::MetricsSnapshot;
pub use dg_overlay::{
    NodeConfig, NodeConfigBuilder, OverlayHandle, Runtime, RuntimeConfig, SpawnMode,
};

/// The types most programs need, importable in one line.
pub mod prelude {
    pub use dg_core::scheme::{build_scheme, RoutingScheme, SchemeKind, SchemeParams};
    pub use dg_core::{DisseminationGraph, Flow, ServiceRequirement, SlaClass};
    pub use dg_overlay::chaos::ChaosSchedule;
    pub use dg_overlay::cluster::{Cluster, ClusterConfig};
    pub use dg_overlay::metrics::MetricsSnapshot;
    pub use dg_overlay::{
        NodeConfig, NodeConfigBuilder, OverlayHandle, Runtime, RuntimeConfig, SpawnMode,
    };
    pub use dg_sim::{run_flow, run_flows, FlowJob, PlaybackConfig};
    pub use dg_topology::{self as topology, Graph, Micros, NodeId};
    pub use dg_trace::gen::SyntheticWanConfig;
    pub use dg_trace::{NetworkState, TraceSet};
}
