//! The paper's motivating workload: a remote-surgery control stream
//! that must arrive within 65 ms, replayed through the playback
//! simulator while a problem develops around the destination.
//!
//! Prints a per-second timeline showing which schemes keep the surgeon
//! connected through the problem.
//!
//! Run with: `cargo run --release --example remote_surgery`

use dissemination_graphs::prelude::*;
use dissemination_graphs::sim::run_flow_detailed;
use dissemination_graphs::trace::LinkCondition;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(
        graph.node_by_name("JHU").expect("the hospital end"),
        graph.node_by_name("SEA").expect("the patient end"),
    );

    // 60 seconds of trace; a problem around SEA (the patient's city)
    // degrades every one of its incoming links to 35% loss during
    // 20s..40s — no clean link to re-route onto, so only schemes that
    // spread each packet across *all* the links can mask it.
    let mut traces = TraceSet::clean(graph.edge_count(), 6, Micros::from_secs(10))?;
    for &e in graph.in_edges(flow.destination) {
        for interval in 2..4 {
            traces.set_condition(e, interval, LinkCondition::new(0.35, Micros::ZERO));
        }
    }

    let config = PlaybackConfig { packets_per_second: 100, ..PlaybackConfig::default() };
    println!("remote surgery {}: 100 control packets/s, 65 ms deadline", flow.label(&graph));
    println!("destination-area problem from t=20s to t=40s\n");

    let mut timelines = Vec::new();
    for kind in [
        SchemeKind::StaticSinglePath,
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::DynamicTwoDisjoint,
        SchemeKind::TargetedRedundancy,
    ] {
        let mut scheme = build_scheme(
            kind,
            &graph,
            flow,
            ServiceRequirement::default(),
            &SchemeParams::default(),
        )?;
        let (stats, records) = run_flow_detailed(&graph, &traces, scheme.as_mut(), &config);
        timelines.push((kind, stats, records));
    }

    println!("timeline ('.' = available second, 'X' = violated second):");
    for (kind, _, records) in &timelines {
        let line: String = records.iter().map(|r| if r.unavailable { 'X' } else { '.' }).collect();
        println!("  {:<24} {line}", kind.label());
    }
    println!("\nsummary:");
    for (kind, stats, _) in &timelines {
        println!(
            "  {:<24} unavailable {:>2}s of {}s   on-time {:.2}%   cost {:.2} packets/msg",
            kind.label(),
            stats.unavailable_seconds,
            stats.seconds,
            stats.on_time_fraction() * 100.0,
            stats.average_cost()
        );
    }
    println!(
        "\nthe targeted destination-problem graph enters {} on every usable link,",
        graph.node(flow.destination).name
    );
    println!("masking the problem that blinds the one- and two-path schemes.");
    Ok(())
}
