//! The offline experiment workflow: generate a synthetic WAN trace,
//! persist it (compact binary), reload it, analyse where its problems
//! sit, and replay it against two schemes — the full `dg-trace` →
//! `dg-sim` pipeline a researcher would run on recorded data.
//!
//! Run with: `cargo run --release --example trace_workflow`

use dissemination_graphs::prelude::*;
use dissemination_graphs::trace::{analysis, gen, stats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();

    // 1. Generate twenty minutes of conditions with a busy problem mix.
    let mut wan = SyntheticWanConfig::calibrated(99);
    wan.duration = Micros::from_secs(1_200);
    wan.node_problems.events_per_hour = 3.0;
    let (traces, events) = gen::generate_with_events(&graph, &wan);
    println!(
        "generated {} link-intervals with {} injected problem events",
        traces.link_count() * traces.interval_count(),
        events.len()
    );

    // 2. Persist and reload (binary round trip).
    let dir = std::env::temp_dir().join("dg_trace_workflow");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("wan.dgtrace");
    traces.save_binary(&path)?;
    let traces = TraceSet::load_binary(&path)?;
    println!(
        "persisted to {} ({} bytes) and reloaded",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 3. Summary statistics and problem-location analysis.
    let summary = stats::summarize(&traces, 0.05);
    println!(
        "mean loss {:.4}, {:.2}% of link-intervals problematic",
        summary.mean_loss,
        summary.problematic_fraction() * 100.0
    );
    let flows = topology::presets::transcontinental_flows(&graph);
    let locations =
        analysis::classify_flows(&graph, &traces, &flows, 0.05, Micros::from_millis(65));
    println!(
        "{:.1}% of problematic flow-intervals involve an endpoint",
        locations.fraction_around_endpoints() * 100.0
    );

    // 4. Replay against two schemes.
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SEA").unwrap());
    let config = PlaybackConfig { packets_per_second: 50, ..Default::default() };
    for kind in [SchemeKind::StaticSinglePath, SchemeKind::TargetedRedundancy] {
        let mut scheme = build_scheme(
            kind,
            &graph,
            flow,
            ServiceRequirement::default(),
            &SchemeParams::default(),
        )?;
        let stats = dissemination_graphs::sim::run_flow(&graph, &traces, scheme.as_mut(), &config);
        println!(
            "{:<24} {} unavailable s of {}, cost {:.2}",
            kind.label(),
            stats.unavailable_seconds,
            stats.seconds,
            stats.average_cost()
        );
    }
    std::fs::remove_file(&path)?;
    Ok(())
}
