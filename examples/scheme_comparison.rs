//! A miniature Table 2: generate a fresh synthetic WAN trace and
//! compare all six routing schemes on one transcontinental flow.
//!
//! Run with: `cargo run --release --example scheme_comparison [seed]`

use dissemination_graphs::prelude::*;
use dissemination_graphs::sim::experiment::{run_comparison, tabulate, ExperimentConfig};
use dissemination_graphs::trace::gen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args().nth(1).map_or(7, |s| s.parse().unwrap_or(7));
    let graph = topology::presets::north_america_12();

    // Ten minutes of synthetic conditions with problems cranked up so a
    // short run still contains several events.
    let mut wan = SyntheticWanConfig::calibrated(seed);
    wan.duration = Micros::from_secs(600);
    wan.node_problems.events_per_hour = 4.0;
    wan.link_problems.events_per_hour = 1.0;
    let traces = gen::generate(&graph, &wan);

    let flows = vec![(graph.node_by_name("WAS").unwrap(), graph.node_by_name("LAX").unwrap())];
    let config = ExperimentConfig {
        playback: PlaybackConfig { packets_per_second: 100, seed, ..Default::default() },
        ..Default::default()
    };
    let aggregates = run_comparison(&graph, &traces, &flows, &SchemeKind::ALL, &config)?;
    let rows =
        tabulate(&aggregates, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);

    println!("WAS->LAX, 600s synthetic trace (seed {seed}), 100 pkt/s:\n");
    println!(
        "{:<28} {:>9} {:>14} {:>13} {:>9}",
        "scheme", "unavail s", "availability %", "gap covered %", "avg cost"
    );
    for r in &rows {
        println!(
            "{:<28} {:>9} {:>14.4} {:>13.1} {:>9.2}",
            r.scheme.label(),
            r.unavailable_seconds,
            r.availability_pct,
            r.gap_coverage * 100.0,
            r.average_cost
        );
    }
    println!("\n(the full 16-flow, multi-week version is `cargo run -p dg-bench --bin table2`)");
    Ok(())
}
