//! Run the real overlay on localhost: 12 UDP daemons with emulated WAN
//! latency, live monitoring, and targeted-redundancy routing reacting
//! to an injected problem around the source.
//!
//! Run with: `cargo run --release --example overlay_demo`

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    println!("launching {} overlay nodes on localhost...", graph.node_count());
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(20),
            link_state_interval: Duration::from_millis(80),
            ..ClusterConfig::default()
        },
    )?;
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));
    println!("link-state flooding converged\n");

    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let rx = cluster.open_receiver(flow)?;
    let tx =
        cluster.open_sender(flow, SchemeKind::TargetedRedundancy, ServiceRequirement::default())?;

    let send_phase = |label: &str, n: u64| {
        for i in 0..n {
            tx.send(format!("{label}-{i}").as_bytes()).expect("send succeeds");
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(300));
        let got = rx.drain();
        let on_time = got.iter().filter(|d| d.on_time).count();
        let out_degree = tx.current_graph().forwarding_edges(&graph, flow.source).count();
        println!(
            "{label:<16} delivered {:>3}/{n} on time {on_time:>3}  source branches in use: {out_degree}",
            got.len()
        );
    };

    send_phase("clean", 100);

    println!("\ninjecting 40% loss on every link around NYC (a source-area problem)...");
    cluster.impair_node(flow.source, 0.4, Micros::ZERO);
    std::thread::sleep(Duration::from_millis(500)); // detection + switch
    send_phase("under-problem", 100);

    println!("\nhealing NYC...");
    cluster.heal_node(flow.source);
    std::thread::sleep(Duration::from_millis(500));
    send_phase("healed", 100);

    let counters = cluster.node(flow.source).metrics_snapshot().counters;
    println!(
        "\nNYC stats: {} data sent, {} retransmissions, {} graph changes",
        counters.data_sent, counters.retransmissions_served, counters.graph_changes
    );
    cluster.shutdown();
    Ok(())
}
