//! The paper's headline number: 130 ms round trips across the US.
//!
//! Runs the real overlay on localhost (emulated WAN latencies), sets up
//! a request flow NYC→SJC and a response flow SJC→NYC (each under the
//! 65 ms one-way deadline), echoes every request back, and measures the
//! application-level round-trip time — including while a problem
//! develops around the requester.
//!
//! Run with: `cargo run --release --example round_trip`

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(20),
            link_state_interval: Duration::from_millis(80),
            ..ClusterConfig::default()
        },
    )?;
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));

    let nyc = graph.node_by_name("NYC").unwrap();
    let sjc = graph.node_by_name("SJC").unwrap();
    let forward = Flow::new(nyc, sjc);
    let backward = Flow::new(sjc, nyc);
    let requirement = ServiceRequirement::default(); // 65 ms each way

    let request_rx = cluster.open_receiver(forward)?;
    let response_rx = cluster.open_receiver(backward)?;
    let request_tx = cluster.open_sender(forward, SchemeKind::TargetedRedundancy, requirement)?;
    let response_tx = cluster.open_sender(backward, SchemeKind::TargetedRedundancy, requirement)?;

    // The SJC side: echo every request back immediately.
    let echo = std::thread::spawn(move || {
        let mut echoed = 0u64;
        loop {
            match request_rx.recv_timeout(Duration::from_millis(1_500)) {
                Some(delivery) => {
                    response_tx.send(&delivery.payload).expect("echo sends");
                    echoed += 1;
                }
                None => return echoed,
            }
        }
    });

    let measure_phase = |label: &str, n: u64| {
        let mut outstanding: HashMap<u64, Instant> = HashMap::new();
        let mut rtts: Vec<Duration> = Vec::new();
        for i in 0..n {
            request_tx.send(format!("{i:020}").as_bytes()).expect("request sends");
            outstanding.insert(i, Instant::now());
            std::thread::sleep(Duration::from_millis(5));
            while let Some(resp) = response_rx.try_recv() {
                let id: u64 = std::str::from_utf8(&resp.payload).unwrap().trim().parse().unwrap();
                if let Some(sent) = outstanding.remove(&id) {
                    rtts.push(sent.elapsed());
                }
            }
        }
        // Drain stragglers.
        let settle = Instant::now();
        while !outstanding.is_empty() && settle.elapsed() < Duration::from_millis(500) {
            if let Some(resp) = response_rx.recv_timeout(Duration::from_millis(100)) {
                let id: u64 = std::str::from_utf8(&resp.payload).unwrap().trim().parse().unwrap();
                if let Some(sent) = outstanding.remove(&id) {
                    rtts.push(sent.elapsed());
                }
            }
        }
        rtts.sort();
        let within = rtts.iter().filter(|r| **r <= Duration::from_millis(130)).count();
        let median = rtts.get(rtts.len() / 2).copied().unwrap_or_default();
        println!(
            "{label:<16} {:>3}/{n} answered, {within:>3} within 130 ms, median RTT {:.1} ms",
            rtts.len(),
            median.as_secs_f64() * 1_000.0
        );
    };

    measure_phase("clean", 100);
    println!("injecting a 40% loss problem around NYC...");
    cluster.impair_node(nyc, 0.4, Micros::ZERO);
    std::thread::sleep(Duration::from_millis(500));
    measure_phase("under-problem", 100);
    cluster.heal_node(nyc);

    drop(request_tx);
    let echoed = echo.join().expect("echo thread exits");
    println!("SJC echoed {echoed} requests");
    cluster.shutdown();
    Ok(())
}
