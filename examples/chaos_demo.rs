//! Replay a seeded chaos storm against a live localhost overlay and
//! watch it degrade gracefully: bursty loss, duplication, corruption,
//! a blackholed link, a node crash/restart, and queue-overload bursts
//! that trip the SLA shedding machinery, followed by a settle window
//! where delivery recovers.
//!
//! Run with: `cargo run --release --example chaos_demo`

use dissemination_graphs::overlay::chaos::{ChaosProfile, ChaosRunner, ChaosSchedule};
use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::overlay::metrics::{ClusterMetricsReport, EventKind};
use dissemination_graphs::prelude::*;
use std::time::{Duration, Instant};

/// Journal entries matching `pred`, summed across every live node.
fn count_events(report: &ClusterMetricsReport, pred: impl Fn(&EventKind) -> bool) -> usize {
    report.nodes.iter().flat_map(|n| &n.events).filter(|e| pred(&e.kind)).count()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let mut cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            fault_seed: 7,
            // Small enough that the storm's overload bursts actually
            // cross the class shed bands (256/384/512 here).
            shipper_queue: 512,
            overload_hold_down: Duration::from_millis(300),
            ..ClusterConfig::default()
        },
    )?;
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));

    let rx = cluster.open_receiver(flow)?;
    // Surgical class: targeted redundancy, the 65 ms deadline, and the
    // last spot in the shed order when an overload burst lands.
    let tx = cluster.open_sla_sender(flow, SlaClass::Surgical)?;

    // A deterministic storm: same seed, same schedule, every time. The
    // flow's endpoints are protected from crashes.
    let profile = ChaosProfile { overload_events: 2, ..ChaosProfile::default() };
    let schedule = ChaosSchedule::generate(
        7,
        graph.edge_count(),
        graph.node_count(),
        &[flow.source, flow.destination],
        &profile,
    );
    println!("chaos schedule ({} events):", schedule.events.len());
    println!("{}", schedule.to_json());

    let mut runner = ChaosRunner::new(&schedule);
    let started = Instant::now();
    let mut sent = 0u64;
    while started.elapsed() < Duration::from_millis(profile.duration_ms) {
        let fired = runner.poll(&mut cluster, started.elapsed())?;
        if fired > 0 {
            println!("[{:>5} ms] {fired} chaos event(s) fired", started.elapsed().as_millis());
        }
        tx.send(format!("msg-{sent}").as_bytes())?;
        sent += 1;
        std::thread::sleep(Duration::from_millis(4));
    }
    std::thread::sleep(Duration::from_millis(500));

    let deliveries = rx.drain();
    let on_time = deliveries.iter().filter(|d| d.on_time).count();
    println!("storm over: {sent} sent, {} delivered ({on_time} on time)", deliveries.len());

    let report = cluster.metrics_report();
    println!(
        "fault totals: drops {} dup {} corrupt {} | malformed {} | queue drops {} | links down {}",
        report.totals.fault_drops,
        report.totals.fault_duplicates,
        report.totals.fault_corruptions,
        report.totals.malformed,
        report.totals.queue_drops,
        report.totals.links_declared_down,
    );
    println!(
        "overload: shed bulk {} / timely {} / surgical {} | episodes entered {} exited {} downgrades {}",
        report.totals.shed_bulk,
        report.totals.shed_timely,
        report.totals.shed_surgical,
        count_events(&report, |k| matches!(k, EventKind::OverloadEnter { .. })),
        count_events(&report, |k| matches!(k, EventKind::OverloadExit { .. })),
        count_events(&report, |k| matches!(k, EventKind::ClassDowngraded { .. })),
    );
    let fr = report.flow(flow).expect("flow was active");
    println!(
        "flow: sent {} delivered {} lost {} (conservation: {})",
        fr.packets_sent,
        fr.packets_delivered,
        fr.packets_lost,
        fr.packets_sent == fr.packets_delivered + fr.packets_lost,
    );
    cluster.shutdown();
    Ok(())
}
