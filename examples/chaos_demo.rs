//! Replay a seeded chaos storm against a live localhost overlay and
//! watch it degrade gracefully: bursty loss, duplication, corruption,
//! a blackholed link, and a node crash/restart, followed by a settle
//! window where delivery recovers.
//!
//! Run with: `cargo run --release --example chaos_demo`

use dissemination_graphs::overlay::chaos::{ChaosProfile, ChaosRunner, ChaosSchedule};
use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::prelude::*;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let mut cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            fault_seed: 7,
            ..ClusterConfig::default()
        },
    )?;
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));

    let rx = cluster.open_receiver(flow)?;
    let tx =
        cluster.open_sender(flow, SchemeKind::TargetedRedundancy, ServiceRequirement::default())?;

    // A deterministic storm: same seed, same schedule, every time. The
    // flow's endpoints are protected from crashes.
    let profile = ChaosProfile::default();
    let schedule = ChaosSchedule::generate(
        7,
        graph.edge_count(),
        graph.node_count(),
        &[flow.source, flow.destination],
        &profile,
    );
    println!("chaos schedule ({} events):", schedule.events.len());
    println!("{}", schedule.to_json());

    let mut runner = ChaosRunner::new(&schedule);
    let started = Instant::now();
    let mut sent = 0u64;
    while started.elapsed() < Duration::from_millis(profile.duration_ms) {
        let fired = runner.poll(&mut cluster, started.elapsed())?;
        if fired > 0 {
            println!("[{:>5} ms] {fired} chaos event(s) fired", started.elapsed().as_millis());
        }
        tx.send(format!("msg-{sent}").as_bytes())?;
        sent += 1;
        std::thread::sleep(Duration::from_millis(4));
    }
    std::thread::sleep(Duration::from_millis(500));

    let deliveries = rx.drain();
    let on_time = deliveries.iter().filter(|d| d.on_time).count();
    println!("storm over: {sent} sent, {} delivered ({on_time} on time)", deliveries.len());

    let report = cluster.metrics_report();
    println!(
        "fault totals: drops {} dup {} corrupt {} | malformed {} | queue drops {} | links down {}",
        report.totals.fault_drops,
        report.totals.fault_duplicates,
        report.totals.fault_corruptions,
        report.totals.malformed,
        report.totals.queue_drops,
        report.totals.links_declared_down,
    );
    let fr = report.flow(flow).expect("flow was active");
    println!(
        "flow: sent {} delivered {} lost {} (conservation: {})",
        fr.packets_sent,
        fr.packets_delivered,
        fr.packets_lost,
        fr.packets_sent == fr.packets_delivered + fr.packets_lost,
    );
    cluster.shutdown();
    Ok(())
}
