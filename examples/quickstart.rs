//! Quickstart: compute every routing scheme's dissemination graph for
//! one transcontinental flow and compare their shape, latency, and cost.
//!
//! Run with: `cargo run --example quickstart`

use dissemination_graphs::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(
        graph.node_by_name("NYC").expect("preset has NYC"),
        graph.node_by_name("SJC").expect("preset has SJC"),
    );
    let requirement = ServiceRequirement::default(); // 65 ms one-way
    let params = SchemeParams::default();

    println!("flow {} under a {} one-way deadline\n", flow.label(&graph), requirement.deadline);
    println!("{:<28} {:>6} {:>12} {:>10}", "scheme", "edges", "best latency", "cost");
    for kind in SchemeKind::ALL {
        let scheme = build_scheme(kind, &graph, flow, requirement, &params)?;
        let dg = scheme.current();
        println!(
            "{:<28} {:>6} {:>12} {:>10}",
            kind.label(),
            dg.len(),
            dg.best_latency(&graph).to_string(),
            dg.cost(&graph)
        );
    }

    // Show the actual routes of the disjoint pair.
    let (p1, p2) = topology::algo::disjoint::disjoint_pair(
        &graph,
        flow.source,
        flow.destination,
        topology::algo::disjoint::Disjointness::Node,
    )?;
    println!("\ndisjoint pair:");
    println!("  primary:   {} ({})", p1.display(&graph), p1.latency(&graph));
    println!("  secondary: {} ({})", p2.display(&graph), p2.latency(&graph));
    Ok(())
}
