//! Drive a localhost overlay through a fault, then dump the cluster's
//! full observability report — per-node counters, per-flow and per-link
//! cells, and each node's event journal — as JSON on shutdown.
//!
//! Run with: `cargo run --release --example overlay_metrics`

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::prelude::*;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = topology::presets::north_america_12();
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(20),
            link_state_interval: Duration::from_millis(80),
            ..ClusterConfig::default()
        },
    )?;
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));

    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let rx = cluster.open_receiver(flow)?;
    let tx =
        cluster.open_sender(flow, SchemeKind::TargetedRedundancy, ServiceRequirement::default())?;

    // Clean traffic, then the same under a source-area problem so the
    // journal records detector triggers and recovery activity.
    for phase in ["clean", "impaired"] {
        if phase == "impaired" {
            cluster.impair_node(flow.source, 0.4, Micros::ZERO);
            std::thread::sleep(Duration::from_millis(500));
        }
        for i in 0..100u32 {
            tx.send(format!("{phase}-{i}").as_bytes())?;
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    std::thread::sleep(Duration::from_millis(500));
    drop(rx.drain());

    let report = cluster.metrics_report();
    cluster.shutdown();

    // The headline numbers, then the full serializable report.
    let fr = report.flow(flow).expect("flow was active");
    eprintln!(
        "flow {}: sent {} delivered {} (on time {}) lost {} cost {:.2} route changes {}",
        flow,
        fr.packets_sent,
        fr.packets_delivered,
        fr.packets_on_time,
        fr.packets_lost,
        fr.average_cost(),
        fr.graph_changes,
    );
    let events: usize = report.nodes.iter().map(|n| n.events.len()).sum();
    eprintln!(
        "cluster totals: {} datagrams / {} bytes shipped, {} journal events across {} nodes",
        report.totals.datagrams_sent,
        report.totals.bytes_sent,
        events,
        report.nodes.len(),
    );
    println!("{}", serde_json::to_string_pretty(&report)?);
    Ok(())
}
