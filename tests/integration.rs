//! Cross-crate integration tests: trace generation → analysis, playback
//! simulation → metrics, and agreement between the simulator and the
//! real overlay.

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::prelude::*;
use dissemination_graphs::sim::experiment::{run_comparison, tabulate, ExperimentConfig};
use dissemination_graphs::trace::analysis::classify_flows;
use dissemination_graphs::trace::gen::{self, ProblemKind};
use dissemination_graphs::trace::LinkCondition;
use std::time::Duration;

#[test]
fn generator_ground_truth_matches_analysis() {
    let graph = topology::presets::north_america_12();
    // Only node problems, only at NYC, full coverage and high loss.
    let mut wan = SyntheticWanConfig::calibrated(11);
    wan.duration = Micros::from_secs(1_200);
    wan.background.enter_bad = 0.0;
    wan.background.loss_good = 0.0;
    wan.jitter_max = Micros::ZERO;
    wan.link_problems.events_per_hour = 0.0;
    wan.node_problems.events_per_hour = 6.0;
    wan.node_problems.coverage_range = (1.0, 1.0);
    wan.node_problems.loss_range = (0.5, 0.9);
    let nyc = graph.node_by_name("NYC").unwrap();
    let mut weights = vec![0.0; graph.node_count()];
    weights[nyc.index()] = 1.0;
    wan.node_weights = Some(weights);

    let (traces, events) = gen::generate_with_events(&graph, &wan);
    assert!(!events.is_empty());
    assert!(events.iter().all(|e| e.kind == ProblemKind::Node(nyc)));

    // For flows sourced at NYC every problematic interval is a source
    // problem; for other flows NYC is mid-network.
    let sjc = graph.node_by_name("SJC").unwrap();
    let from_nyc = classify_flows(&graph, &traces, &[(nyc, sjc)], 0.3, Micros::from_millis(65));
    assert!(from_nyc.problematic_intervals > 0);
    assert_eq!(from_nyc.source, from_nyc.problematic_intervals);
    assert_eq!(from_nyc.fraction_around_endpoints(), 1.0);

    // For a flow whose endpoints are not adjacent to NYC (a node
    // problem impairs the shared links of its neighbours too, so the
    // endpoints must not neighbour NYC), the same events are
    // mid-network problems.
    let mia = graph.node_by_name("MIA").unwrap();
    let sea = graph.node_by_name("SEA").unwrap();
    let other = classify_flows(&graph, &traces, &[(mia, sea)], 0.3, Micros::from_millis(65));
    assert!(other.problematic_intervals > 0, "NYC is inside MIA->SEA's flooding region");
    assert_eq!(other.source, 0);
    assert_eq!(other.destination, 0);
    assert_eq!(other.middle, other.problematic_intervals);
}

#[test]
fn full_pipeline_produces_the_papers_ordering() {
    let graph = topology::presets::north_america_12();
    let mut wan = SyntheticWanConfig::calibrated(23);
    wan.duration = Micros::from_secs(900);
    wan.node_problems.events_per_hour = 4.0;
    let traces = gen::generate(&graph, &wan);
    let flows = topology::presets::transcontinental_flows(&graph);
    let config = ExperimentConfig {
        playback: PlaybackConfig { packets_per_second: 20, ..Default::default() },
        ..Default::default()
    };
    let aggs =
        run_comparison(&graph, &traces, &flows, &SchemeKind::ALL, &config).expect("flows routable");
    let rows = tabulate(&aggs, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);
    let get = |k: SchemeKind| rows.iter().find(|r| r.scheme == k).unwrap();
    let single = get(SchemeKind::StaticSinglePath);
    let disjoint = get(SchemeKind::StaticTwoDisjoint);
    let targeted = get(SchemeKind::TargetedRedundancy);
    let flooding = get(SchemeKind::TimeConstrainedFlooding);

    // The paper's qualitative ordering.
    assert!(flooding.unavailable_seconds <= targeted.unavailable_seconds);
    assert!(targeted.unavailable_seconds <= disjoint.unavailable_seconds);
    assert!(disjoint.unavailable_seconds <= single.unavailable_seconds);
    // And the cost ordering.
    assert!(single.average_cost < disjoint.average_cost);
    assert!(disjoint.average_cost <= targeted.average_cost);
    assert!(targeted.average_cost < flooding.average_cost / 3.0);
}

#[test]
fn simulator_and_overlay_agree_on_recovery() {
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    // Scenario: 30% loss on the single path's first hop, recovery on.
    let scheme = build_scheme(
        SchemeKind::StaticSinglePath,
        &graph,
        flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let first_hop = scheme.current().forwarding_edges(&graph, flow.source).next().unwrap();

    // Simulator side.
    let mut traces = TraceSet::clean(graph.edge_count(), 3, Micros::from_secs(10)).unwrap();
    for i in 0..3 {
        traces.set_condition(first_hop, i, LinkCondition::new(0.3, Micros::ZERO));
    }
    let mut sim_scheme = build_scheme(
        SchemeKind::StaticSinglePath,
        &graph,
        flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let sim_stats = run_flow(
        &graph,
        &traces,
        sim_scheme.as_mut(),
        &PlaybackConfig { packets_per_second: 50, ..Default::default() },
    );
    let sim_rate = sim_stats.on_time_fraction();

    // Overlay side.
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig { hello_interval: Duration::from_millis(25), ..Default::default() },
    )
    .unwrap();
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    cluster.set_link_fault(first_hop, 0.3, Micros::ZERO);
    let total = 200;
    for i in 0..total {
        tx.send(format!("{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    std::thread::sleep(Duration::from_millis(300));
    let overlay_rate = rx.drain().iter().filter(|d| d.on_time).count() as f64 / f64::from(total);
    cluster.shutdown();

    // Both stacks implement the same single-retransmission recovery, so
    // both should land near the analytic 1 - 0.3^2 = 91% on-time rate.
    assert!((0.85..=0.97).contains(&sim_rate), "sim rate {sim_rate}");
    assert!((0.80..=0.98).contains(&overlay_rate), "overlay rate {overlay_rate}");
    assert!(
        (sim_rate - overlay_rate).abs() < 0.1,
        "stacks disagree: sim {sim_rate:.3} vs overlay {overlay_rate:.3}"
    );
}

#[test]
fn wire_mask_agrees_with_dissemination_graph() {
    use dissemination_graphs::overlay::wire::{DataPacket, Envelope, Message};
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("BOS").unwrap(), graph.node_by_name("LAX").unwrap());
    let scheme = build_scheme(
        SchemeKind::TargetedRedundancy,
        &graph,
        flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let dg = scheme.current();
    let packet = DataPacket {
        flow,
        flow_seq: 1,
        sent_at: Micros::ZERO,
        deadline: Micros::from_millis(65),
        link_seq: 0,
        retransmission: false,
        class: SlaClass::Surgical,
        mask: bytes::Bytes::from(dg.to_bitmask(graph.edge_count())),
        payload: bytes::Bytes::from_static(b"x"),
    };
    // Round-trip through the wire and compare bit-for-bit with the graph.
    let env = Envelope { from: flow.source, message: Message::Data(packet) };
    let decoded = Envelope::decode(&env.encode()).unwrap();
    let Message::Data(d) = decoded.message else { panic!("data expected") };
    for e in graph.edges() {
        assert_eq!(d.mask_contains(e), dg.contains(e), "edge {e}");
    }
}

#[test]
fn prelude_covers_the_common_workflow() {
    // This test is primarily the compile-time check that the prelude
    // exposes everything a typical program needs.
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(NodeId::new(0), NodeId::new(9));
    let scheme = build_scheme(
        SchemeKind::DynamicTwoDisjoint,
        &graph,
        flow,
        ServiceRequirement::new(Micros::from_millis(80)),
        &SchemeParams::default(),
    )
    .unwrap();
    let traces = TraceSet::clean(graph.edge_count(), 2, Micros::from_secs(10)).unwrap();
    let state: NetworkState = traces.state_at(Micros::ZERO);
    assert_eq!(state.link_count(), graph.edge_count());
    let dg: &DisseminationGraph = scheme.current();
    assert!(dg.cost(&graph) > 0);
}
