//! Property tests for the observability layer: counter conservation in
//! the simulator and algebraic laws of snapshot merging.

use dissemination_graphs::overlay::metrics::{FlowMetrics, NodeCounters};
use dissemination_graphs::prelude::*;
use dissemination_graphs::sim::FlowRunStats;
use dissemination_graphs::trace::LinkCondition;
use proptest::prelude::*;
use serde::{Deserialize, Serialize, Value};

/// Builds a `NodeCounters` with every field pseudo-randomly populated,
/// by mutating the serde object form — so new counters added to the
/// macro are automatically covered without touching this test.
fn counters_from_seed(seed: u64) -> NodeCounters {
    let Value::Object(mut fields) = NodeCounters::default().to_value() else {
        panic!("counters serialize as an object");
    };
    let mut state = seed;
    for (_, v) in fields.iter_mut() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Keep values far from u64::MAX so sums never wrap.
        *v = Value::UInt(state >> 40);
    }
    NodeCounters::from_value(&Value::Object(fields)).expect("counters deserialize")
}

fn stats_from(seed: u64, flow: Flow) -> FlowRunStats {
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 44
    };
    let on_time = next();
    let late = next();
    let lost = next();
    FlowRunStats {
        scheme: SchemeKind::StaticSinglePath,
        flow,
        seconds: next(),
        unavailable_seconds: next(),
        packets_sent: on_time + late + lost,
        packets_on_time: on_time,
        packets_delivered: on_time + late,
        packets_lost: lost,
        transmissions: next(),
        graph_changes: next(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation in the simulator: every packet sent is accounted
    /// for as delivered or lost — exactly, for arbitrary loss patterns
    /// and seeds — and the aggregates never disagree with one another.
    #[test]
    fn playback_conserves_packets(seed in 0u64..10_000, loss in 0.0f64..0.9) {
        let graph = topology::presets::north_america_12();
        let mut traces = TraceSet::clean(graph.edge_count(), 2, Micros::from_secs(10)).unwrap();
        // Impair a seed-dependent set of edges.
        for k in 0..8u64 {
            let e = topology::EdgeId::new(((seed.wrapping_mul(131).wrapping_add(k * 17)) %
                graph.edge_count() as u64) as u32);
            traces.set_condition(e, (k % 2) as usize, LinkCondition::new(loss, Micros::ZERO));
        }
        let flow = Flow::new(
            graph.node_by_name("NYC").unwrap(),
            graph.node_by_name("SJC").unwrap(),
        );
        let config = PlaybackConfig { packets_per_second: 10, seed, ..Default::default() };
        for kind in [SchemeKind::StaticSinglePath, SchemeKind::TargetedRedundancy] {
            let mut scheme = build_scheme(kind, &graph, flow, ServiceRequirement::default(),
                &SchemeParams::default()).unwrap();
            let stats = run_flow(&graph, &traces, scheme.as_mut(), &config);
            prop_assert_eq!(stats.packets_sent,
                stats.packets_delivered + stats.packets_lost,
                "{} leaks packets", kind);
            prop_assert!(stats.packets_on_time <= stats.packets_delivered);
            prop_assert!(stats.packets_delivered <= stats.packets_sent);
            // Conservation survives merging.
            let mut doubled = stats;
            doubled.merge(&stats);
            prop_assert_eq!(doubled.packets_sent,
                doubled.packets_delivered + doubled.packets_lost);
        }
    }

    /// Node-counter merging is associative and commutative over every
    /// field, so cluster totals are independent of the order and
    /// grouping in which node snapshots are folded.
    #[test]
    fn node_counters_merge_is_associative_and_commutative(
        sa in 0u64..u64::MAX, sb in 0u64..u64::MAX, sc in 0u64..u64::MAX
    ) {
        let (a, b, c) = (counters_from_seed(sa), counters_from_seed(sb), counters_from_seed(sc));
        // Commutativity: a + b == b + a.
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
        // Associativity: (a + b) + c == a + (b + c).
        let mut left = ab;
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
        // Identity: a + 0 == a.
        let mut with_zero = a;
        with_zero.merge(&NodeCounters::default());
        prop_assert_eq!(with_zero, a);
    }

    /// The same laws for per-flow cells and the simulator's run stats:
    /// merging is order-insensitive, so multi-node and multi-week
    /// aggregation is well defined.
    #[test]
    fn flow_merges_are_order_insensitive(sa in 0u64..u64::MAX, sb in 0u64..u64::MAX) {
        let flow = Flow::new(NodeId::new(3), NodeId::new(7));
        let mk = |seed: u64| {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 44
            };
            FlowMetrics {
                flow,
                packets_sent: next(),
                packets_on_time: next(),
                packets_late: next(),
                transmissions: next(),
                graph_changes: next(),
            }
        };
        let (fa, fb) = (mk(sa), mk(sb));
        let mut ab = fa;
        ab.merge(&fb);
        let mut ba = fb;
        ba.merge(&fa);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab.packets_delivered(), fa.packets_delivered() + fb.packets_delivered());

        let (ra, rb) = (stats_from(sa, flow), stats_from(sb, flow));
        let mut rab = ra;
        rab.merge(&rb);
        let mut rba = rb;
        rba.merge(&ra);
        // `scheme`/`flow` are carried, the numeric fields are summed.
        prop_assert_eq!(rab, rba);
        prop_assert_eq!(rab.packets_sent, rab.packets_delivered + rab.packets_lost);
    }
}
