//! Chaos soak: seeded fault storms against the real UDP overlay.
//!
//! The tentpole robustness claims under test:
//! - the fault model is deterministic for a fixed seed, so a chaos run
//!   is reproducible;
//! - a storm of bursty loss, reordering, duplication, corruption,
//!   blackholes, and a node crash/restart never panics the overlay,
//!   never delivers a corrupted payload (corrupt datagrams only ever
//!   surface as `malformed`), and keeps the conservation identity;
//! - once the storm heals, delivery recovers to ≥99% on-time within a
//!   settle window;
//! - a crashed-then-restarted node's link-state reports are accepted
//!   again via its fresh epoch, well before aging would have bailed the
//!   database out;
//! - hello-timeout link-down declarations let adaptive schemes reroute
//!   around a killed node while the static baseline loses its flow.

use dissemination_graphs::overlay::chaos::{
    ChaosAction, ChaosEvent, ChaosProfile, ChaosRunner, ChaosSchedule,
};
use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::overlay::fault::{BurstLoss, FaultPlan, LinkFault};
use dissemination_graphs::overlay::metrics::EventKind;
use dissemination_graphs::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn by_name(graph: &Graph, name: &str) -> NodeId {
    graph.node_by_name(name).unwrap()
}

/// CI sweeps the soak across seeds via `DG_CHAOS_SEED`; the invariants
/// under test hold for any seed, so a fixed default keeps local runs
/// reproducible.
fn chaos_seed() -> u64 {
    std::env::var("DG_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Every fault decision a storm makes, folded into comparable totals.
#[derive(Debug, PartialEq, Eq)]
struct VerdictTotals {
    drops: u64,
    duplicates: u64,
    corruptions: u64,
    delay_sum_us: u64,
    corrupt_seed_hash: u64,
}

/// Replays a fixed decision sequence — including a mid-run heal and
/// re-inject — against a seeded plan and tallies the verdicts.
fn run_verdict_stream(seed: u64) -> VerdictTotals {
    let plan = FaultPlan::with_seed(seed);
    let storm = LinkFault {
        loss: 0.1,
        burst: Some(BurstLoss { p_enter: 0.08, p_exit: 0.3, good_loss: 0.01, bad_loss: 0.8 }),
        jitter: Micros::from_millis(2),
        reorder: 0.2,
        duplicate: 0.15,
        corrupt: 0.1,
        ..LinkFault::default()
    };
    plan.set(NodeId::new(1), LinkFault::lossy(0.3, Micros::from_millis(1)));
    plan.set(NodeId::new(2), storm);
    let mut totals = VerdictTotals {
        drops: 0,
        duplicates: 0,
        corruptions: 0,
        delay_sum_us: 0,
        corrupt_seed_hash: 0,
    };
    for step in 0..10_000u64 {
        if step == 5_000 {
            // Heal and re-inject: the per-link RNG stream must carry on
            // where it left off, not restart.
            plan.clear(NodeId::new(2));
            plan.set(NodeId::new(2), storm);
        }
        for neighbor in [NodeId::new(1), NodeId::new(2)] {
            let v = plan.decide(neighbor);
            totals.drops += u64::from(v.drop);
            totals.duplicates += u64::from(v.duplicate);
            totals.corruptions += u64::from(v.corrupt);
            totals.delay_sum_us += v.delay.as_micros();
            totals.corrupt_seed_hash ^= v.corrupt_seed.rotate_left((step % 63) as u32);
        }
    }
    totals
}

/// Acceptance criterion: the chaos fault model is bit-deterministic for
/// a fixed seed — two runs produce identical drop/duplicate/corruption
/// totals — and a different seed produces a different storm.
#[test]
fn seeded_chaos_is_deterministic() {
    let first = run_verdict_stream(0xDEAD_BEEF);
    let second = run_verdict_stream(0xDEAD_BEEF);
    assert_eq!(first, second, "same seed must replay the same storm");
    let other = run_verdict_stream(0xFEED_FACE);
    assert_ne!(first, other, "different seeds must differ");

    let graph = topology::presets::north_america_12();
    let profile = ChaosProfile::default();
    let a = ChaosSchedule::generate(7, graph.edge_count(), graph.node_count(), &[], &profile);
    let b = ChaosSchedule::generate(7, graph.edge_count(), graph.node_count(), &[], &profile);
    assert_eq!(a, b, "schedule generation must be deterministic");
}

/// The tentpole soak: a scripted storm covering every impairment mode
/// plus a node crash/restart, replayed against the live overlay while a
/// targeted-redundancy flow keeps sending. Invariants: conservation,
/// corrupt datagrams never reach a receiver intact-looking, and
/// post-heal delivery recovers to ≥99% on-time.
#[test]
fn chaos_storm_soak_holds_invariants_and_recovers() {
    let graph = topology::presets::north_america_12();
    let flow = Flow::new(by_name(&graph, "NYC"), by_name(&graph, "SJC"));
    let mut cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            fault_seed: chaos_seed(),
            ..Default::default()
        },
    )
    .unwrap();
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::TargetedRedundancy, ServiceRequirement::default())
        .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "no link-state convergence");

    // The storm: every failure mode in the model, all healed by 1300 ms,
    // with DEN crashed and restarted (DEN is on neither coast, so the
    // flow's endpoints stay up).
    let nyc_out: Vec<_> = graph.out_edges(flow.source).to_vec();
    let schedule = ChaosSchedule {
        seed: 42,
        events: vec![
            ChaosEvent {
                at_ms: 100,
                action: ChaosAction::InjectEdge {
                    edge: nyc_out[0],
                    fault: LinkFault { corrupt: 0.3, ..LinkFault::default() },
                },
            },
            ChaosEvent {
                at_ms: 150,
                action: ChaosAction::InjectEdge {
                    edge: nyc_out[1],
                    fault: LinkFault {
                        burst: Some(BurstLoss {
                            p_enter: 0.1,
                            p_exit: 0.25,
                            good_loss: 0.02,
                            bad_loss: 0.9,
                        }),
                        duplicate: 0.2,
                        ..LinkFault::default()
                    },
                },
            },
            ChaosEvent {
                at_ms: 200,
                action: ChaosAction::ImpairNode {
                    node: by_name(&graph, "CHI"),
                    fault: LinkFault {
                        jitter: Micros::from_millis(4),
                        reorder: 0.3,
                        loss: 0.1,
                        ..LinkFault::default()
                    },
                },
            },
            ChaosEvent {
                at_ms: 300,
                action: ChaosAction::InjectEdge {
                    edge: nyc_out[2],
                    fault: LinkFault { blackhole: true, ..LinkFault::default() },
                },
            },
            ChaosEvent {
                at_ms: 400,
                action: ChaosAction::CrashNode { node: by_name(&graph, "DEN") },
            },
            ChaosEvent { at_ms: 1000, action: ChaosAction::HealEdge { edge: nyc_out[0] } },
            ChaosEvent { at_ms: 1050, action: ChaosAction::HealEdge { edge: nyc_out[1] } },
            ChaosEvent {
                at_ms: 1100,
                action: ChaosAction::HealNode { node: by_name(&graph, "CHI") },
            },
            ChaosEvent { at_ms: 1150, action: ChaosAction::HealEdge { edge: nyc_out[2] } },
            ChaosEvent {
                at_ms: 1300,
                action: ChaosAction::RestartNode { node: by_name(&graph, "DEN") },
            },
        ],
    };
    let mut runner = ChaosRunner::new(&schedule);

    // Send through the storm, polling chaos events between packets.
    let mut sent: HashMap<u64, Vec<u8>> = HashMap::new();
    let started = Instant::now();
    let mut i = 0u64;
    while !runner.finished() || started.elapsed() < Duration::from_millis(1500) {
        runner.poll(&mut cluster, started.elapsed()).unwrap();
        let payload = format!("storm-{i}");
        let seq = tx.send(payload.as_bytes()).unwrap();
        sent.insert(seq, payload.into_bytes());
        i += 1;
        std::thread::sleep(Duration::from_millis(3));
    }
    assert!(runner.finished(), "schedule did not complete");
    assert!(cluster.is_alive(by_name(&graph, "DEN")), "DEN was not restarted");

    // Settle, then measure post-heal recovery on a fresh batch.
    std::thread::sleep(Duration::from_millis(1200));
    drop(rx.drain());
    let recovery_total = 300u64;
    let mut recovery_seqs = std::collections::HashSet::new();
    for i in 0..recovery_total {
        let payload = format!("recovery-{i}");
        let seq = tx.send(payload.as_bytes()).unwrap();
        sent.insert(seq, payload.into_bytes());
        recovery_seqs.insert(seq);
        std::thread::sleep(Duration::from_millis(3));
    }
    std::thread::sleep(Duration::from_millis(700));
    let deliveries = rx.drain();

    // Corrupted datagrams must never surface as deliveries: every
    // delivered payload is byte-identical to what was sent.
    for d in &deliveries {
        let expected = sent.get(&d.flow_seq).expect("delivered an unknown sequence");
        assert_eq!(
            &d.payload[..],
            &expected[..],
            "corrupted payload delivered for seq {}",
            d.flow_seq
        );
    }
    let on_time_recovered =
        deliveries.iter().filter(|d| recovery_seqs.contains(&d.flow_seq) && d.on_time).count()
            as u64;
    assert!(
        on_time_recovered as f64 >= 0.99 * recovery_total as f64,
        "post-heal recovery too weak: {on_time_recovered}/{recovery_total} on time"
    );

    let report = cluster.metrics_report();
    cluster.shutdown();

    // The storm actually exercised the new fault modes...
    let corruptions: u64 = report.nodes.iter().map(|n| n.counters.fault_corruptions).sum();
    let dup_injected: u64 = report.nodes.iter().map(|n| n.counters.fault_duplicates).sum();
    let malformed: u64 = report.nodes.iter().map(|n| n.counters.malformed).sum();
    assert!(corruptions > 0, "corruption fault never fired");
    assert!(dup_injected > 0, "duplication fault never fired");
    // ...and every corruption that reached a live receiver was caught
    // by the checksum, not parsed: corrupt datagrams only ever increment
    // `malformed`. (Some corrupted datagrams can vanish entirely when
    // their target crashed mid-storm, so malformed ≤ corruptions.)
    assert!(malformed > 0, "no corrupted datagram was counted malformed");
    assert!(malformed <= corruptions, "malformed exceeds injected corruptions");

    // Conservation: everything sent is delivered or counted lost.
    let fr = *report.flow(flow).expect("flow was active");
    assert_eq!(fr.packets_sent, fr.packets_delivered + fr.packets_lost);
    assert_eq!(fr.packets_sent, sent.len() as u64);
}

/// A crashed-then-restarted node's reports must be re-accepted through
/// its fresh epoch — observably faster than the 3 s database aging that
/// would eventually bail out a stale-sequence deadlock.
#[test]
fn restarted_node_link_state_is_reaccepted_via_epoch() {
    let graph = topology::presets::north_america_12();
    let mut cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "no link-state convergence");

    // DEN reports the condition of its in-links. Impair one and wait
    // until a far-away observer (NYC) sees DEN's report of it.
    let den = by_name(&graph, "DEN");
    let observer = cluster.node(by_name(&graph, "NYC"));
    let watched = graph.in_edges(den)[0];
    cluster.set_link_fault(watched, 0.9, Micros::ZERO);
    let deadline = Instant::now() + Duration::from_secs(4);
    loop {
        if observer.network_state().condition(watched).loss_rate > 0.5 {
            break;
        }
        assert!(Instant::now() < deadline, "observer never saw the impairment");
        std::thread::sleep(Duration::from_millis(50));
    }

    // Crash DEN, heal the link while it is down, and restart it. The
    // old incarnation's report (high sequence) says the link is lossy;
    // only the new incarnation — reset sequence, fresh epoch — knows it
    // healed.
    cluster.kill_node(den);
    std::thread::sleep(Duration::from_millis(400));
    cluster.clear_link_fault(watched);
    cluster.restart_node(den).unwrap();
    let restarted_at = Instant::now();

    // The observer must see the healed condition well before the 3 s
    // aging fallback could explain it — i.e. the restarted node's fresh
    // epoch outranked the stale high-sequence record.
    let deadline = restarted_at + Duration::from_millis(2200);
    loop {
        if cluster.node(by_name(&graph, "NYC")).network_state().condition(watched).loss_rate < 0.5 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "restarted node's link-state reports were not re-accepted via epoch"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

/// Kill a node mid-flow: hello silence declares its links down within
/// the detector window, the declarations flood, and adaptive schemes
/// reroute — while the static single path, pinned through the corpse,
/// loses its flow.
#[test]
fn link_down_declarations_let_adaptive_schemes_survive_a_node_kill() {
    let graph = topology::presets::north_america_12();
    let nyc = by_name(&graph, "NYC");
    let sjc = by_name(&graph, "SJC");
    let static_flow = Flow::new(nyc, sjc);
    let dynamic_flow = Flow::new(sjc, nyc);

    // Find the static path's first intermediate node — the victim.
    let scheme = build_scheme(
        SchemeKind::StaticSinglePath,
        &graph,
        static_flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let first_hop = scheme.current().forwarding_edges(&graph, nyc).next().unwrap();
    let victim = graph.edge(first_hop).dst;
    assert_ne!(victim, sjc, "static path must be multi-hop for this test");

    let mut cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .unwrap();
    let static_rx = cluster.open_receiver(static_flow).unwrap();
    let static_tx = cluster
        .open_sender(static_flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    let dynamic_rx = cluster.open_receiver(dynamic_flow).unwrap();
    let dynamic_tx = cluster
        .open_sender(dynamic_flow, SchemeKind::TargetedRedundancy, ServiceRequirement::default())
        .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "no link-state convergence");

    // Warm both flows, then kill the victim.
    for _ in 0..50 {
        static_tx.send(b"warm").unwrap();
        dynamic_tx.send(b"warm").unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    cluster.kill_node(victim);
    // Detector window: 5 hello intervals of silence (125 ms) declares
    // the links down, plus flood and route recomputation time.
    std::thread::sleep(Duration::from_millis(800));
    drop(static_rx.drain());
    drop(dynamic_rx.drain());

    let total = 200u64;
    for i in 0..total {
        static_tx.send(format!("s{i}").as_bytes()).unwrap();
        dynamic_tx.send(format!("d{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    std::thread::sleep(Duration::from_millis(600));
    let static_after = static_rx.drain().len() as u64;
    let dynamic_after = dynamic_rx.drain().iter().filter(|d| d.on_time).count() as u64;

    // The declarations must be visible in the metrics...
    let report = cluster.metrics_report();
    cluster.shutdown();
    let declared: u64 = report.nodes.iter().map(|n| n.counters.links_declared_down).sum();
    assert!(declared > 0, "no link was declared down after the kill");
    assert!(
        report
            .nodes
            .iter()
            .flat_map(|n| &n.events)
            .any(|e| matches!(e.kind, EventKind::LinkDown { neighbor } if neighbor == victim)),
        "no LinkDown event named the killed node"
    );
    // ...and the service outcome must split: the adaptive flow survives,
    // the static flow through the corpse starves.
    assert!(
        dynamic_after as f64 >= 0.95 * total as f64,
        "adaptive flow did not survive the kill: {dynamic_after}/{total} on time"
    );
    assert!(
        static_after as f64 <= 0.2 * total as f64,
        "static single path somehow delivered {static_after}/{total} through a dead node"
    );
}
