//! Serial-vs-parallel simulator equivalence.
//!
//! `run_flows` promises that fixed-seed results are **byte-identical**
//! to the serial path no matter how many workers execute the replay:
//! loss draws are a pure function of `(seed, seq, edge, attempt)` and
//! each job owns its scheme and scratch arena, so scheduling cannot
//! leak into the statistics. `FlowRunStats` is all-`u64` and compared
//! with `==`, which is exactly byte equality.

use dissemination_graphs::prelude::*;
use dissemination_graphs::sim::{run_flow, run_flows, FlowJob};
use dissemination_graphs::topology::presets;
use dissemination_graphs::trace::gen;

fn chaos_traces(graph: &Graph, seed: u64) -> TraceSet {
    let mut cfg = SyntheticWanConfig::calibrated(seed);
    cfg.duration = Micros::from_secs(30);
    cfg.node_problems.events_per_hour = 40.0;
    cfg.link_problems.events_per_hour = 30.0;
    gen::generate(graph, &cfg)
}

#[test]
fn serial_and_parallel_runs_agree() {
    let graph = presets::north_america_12();
    let traces = chaos_traces(&graph, 2017);
    let flows = presets::transcontinental_flows(&graph);
    let jobs: Vec<FlowJob> = SchemeKind::ALL
        .iter()
        .flat_map(|&kind| {
            flows.iter().take(4).map(move |&(s, t)| FlowJob {
                kind,
                flow: Flow::new(s, t),
                requirement: ServiceRequirement::default(),
            })
        })
        .collect();
    assert_eq!(jobs.len(), 24);
    let config = PlaybackConfig { packets_per_second: 20, seed: 2017, ..Default::default() };

    let serial = run_flows(&graph, &traces, &jobs, &config, 1).unwrap();
    for threads in [2, 4, 16] {
        let parallel = run_flows(&graph, &traces, &jobs, &config, threads).unwrap();
        assert_eq!(serial, parallel, "{threads} workers diverged from the serial path");
    }

    // And the serial path of run_flows is itself identical to driving
    // run_flow by hand, scheme by scheme — no hidden state in the
    // shared cache or the per-worker scratch reuse.
    for (job, stats) in jobs.iter().zip(&serial) {
        let mut scheme = dissemination_graphs::core::scheme::build_scheme(
            job.kind,
            &graph,
            job.flow,
            job.requirement,
            &dissemination_graphs::core::scheme::SchemeParams::default(),
        )
        .unwrap();
        let direct = run_flow(&graph, &traces, scheme.as_mut(), &config);
        assert_eq!(&direct, stats, "{} {:?} diverged from direct run_flow", job.flow, job.kind);
    }
}

#[test]
fn zero_threads_means_all_cores() {
    let graph = presets::north_america_12();
    let traces = chaos_traces(&graph, 7);
    let n = |name: &str| graph.node_by_name(name).unwrap();
    let jobs = [FlowJob {
        kind: SchemeKind::TargetedRedundancy,
        flow: Flow::new(n("NYC"), n("SJC")),
        requirement: ServiceRequirement::default(),
    }];
    let config = PlaybackConfig { packets_per_second: 20, seed: 7, ..Default::default() };
    let auto = run_flows(&graph, &traces, &jobs, &config, 0).unwrap();
    let one = run_flows(&graph, &traces, &jobs, &config, 1).unwrap();
    assert_eq!(auto, one);
}
