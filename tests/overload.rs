//! Overload-resilience soak tests: a node driven past its outbound
//! queue capacity must shed strictly by SLA class (bulk first, timely
//! next, surgical last), downgrade redundancy per class while the
//! pressure lasts, keep its control plane alive the whole time — data
//! saturation must never fake a link failure — and restore full
//! redundancy after a sustained quiet period.
//!
//! Seeded via `DG_CHAOS_SEED` like the chaos battery, so CI can run the
//! same soak under several fault-RNG streams.

use dissemination_graphs::overlay::metrics::EventKind;
use dissemination_graphs::overlay::OverlayError;
use dissemination_graphs::prelude::*;
use dissemination_graphs::topology::GraphBuilder;
use std::time::{Duration, Instant};

/// Cluster tests bind real UDP sockets and measure wall-clock timing;
/// serialize them so they do not starve each other on CI runners.
static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn seed() -> u64 {
    std::env::var("DG_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Source `SRC`, two disjoint relays, and one sink per SLA class, so
/// every class's preferred scheme (single path, two disjoint paths,
/// targeted redundancy) is constructible and the flows do not share
/// dedup state.
fn overload_graph() -> Graph {
    let mut b = GraphBuilder::new();
    let src = b.add_node("SRC");
    let r1 = b.add_node("RLY1");
    let r2 = b.add_node("RLY2");
    let bulk = b.add_node("BULK");
    let timely = b.add_node("TIMELY");
    let surgical = b.add_node("SURGICAL");
    for (a, z) in [
        (src, r1),
        (src, r2),
        (r1, bulk),
        (r2, bulk),
        (r1, timely),
        (r2, timely),
        (r1, surgical),
        (r2, surgical),
    ] {
        b.add_link(a, z, Micros::from_millis(10), 1).expect("links are distinct");
    }
    b.build()
}

/// A small-queue cluster configuration: 128 outbound slots put the
/// class admission bands at 64 (bulk), 96 (timely), and 128
/// (surgical), and a short hold-down keeps the soak's enter →
/// escalate → exit cycle inside a couple of seconds.
fn overload_config() -> ClusterConfig {
    ClusterConfig {
        hello_interval: Duration::from_millis(20),
        link_state_interval: Duration::from_millis(80),
        shipper_queue: 128,
        overload_hold_down: Duration::from_millis(250),
        fault_seed: seed(),
        ..Default::default()
    }
}

fn by_name(graph: &Graph, name: &str) -> NodeId {
    graph.node_by_name(name).expect("site exists")
}

fn wait_until(timeout: Duration, mut done: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    done()
}

/// The tentpole soak: hold the source's outbound queue at ~80% of its
/// bound with synthetic bulk pressure while offering several times the
/// admissible load across all three classes. Bulk and timely must shed
/// and downgrade; surgical must keep its targeted graph and its on-time
/// rate; the control plane must never declare a link down; and once the
/// pressure lifts, full redundancy must return within the hold-down
/// machinery's horizon.
#[test]
fn overload_soak_sheds_by_class_and_recovers() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = overload_graph();
    let cluster = Cluster::launch(&graph, overload_config()).expect("cluster launches");
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "link state converges");

    let src = by_name(&graph, "SRC");
    let bulk = Flow::new(src, by_name(&graph, "BULK"));
    let timely = Flow::new(src, by_name(&graph, "TIMELY"));
    let surgical = Flow::new(src, by_name(&graph, "SURGICAL"));

    let rx_bulk = cluster.open_receiver(bulk).unwrap();
    let rx_timely = cluster.open_receiver(timely).unwrap();
    let rx_surgical = cluster.open_receiver(surgical).unwrap();
    let tx_bulk = cluster.open_sla_sender(bulk, SlaClass::Bulk).unwrap();
    let tx_timely = cluster.open_sla_sender(timely, SlaClass::Timely).unwrap();
    let tx_surgical = cluster.open_sla_sender(surgical, SlaClass::Surgical).unwrap();
    let mut surgical_sent = 0u64;

    // Phase A — warm-up at trivial load: every class delivers, nothing
    // is downgraded.
    for _ in 0..20 {
        tx_bulk.send(b"warm-bulk").unwrap();
        tx_timely.send(b"warm-timely").unwrap();
        tx_surgical.send(b"warm-surgical").unwrap();
        surgical_sent += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(300));
    assert!(!rx_bulk.drain().is_empty(), "bulk delivers unloaded");
    assert!(!rx_timely.drain().is_empty(), "timely delivers unloaded");
    assert_eq!(cluster.node(src).overload_level(), 0);
    assert!(!tx_bulk.is_downgraded() && !tx_timely.is_downgraded() && !tx_surgical.is_downgraded());

    // Phase B1 — park 72 synthetic shipments in the source's 128-slot
    // queue: past the bulk band (64) but a comfortable margin below
    // the timely band (96) even with the offered traffic's own
    // in-flight spikes on top, so only the lowest class sheds while
    // timely still delivers.
    cluster.inject_overload(src, 72, Duration::from_millis(550));
    let phase = Instant::now();
    while phase.elapsed() < Duration::from_millis(600) {
        for _ in 0..4 {
            tx_bulk.send(b"flood-bulk").unwrap();
        }
        for _ in 0..2 {
            tx_timely.send(b"flood-timely").unwrap();
        }
        tx_surgical.send(b"steady-surgical").unwrap();
        surgical_sent += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    let mid = cluster.node(src).metrics_snapshot();
    assert!(mid.counters.shed_bulk > 0, "mid-band pressure sheds bulk");
    assert_eq!(mid.counters.shed_timely, 0, "mid-band pressure spares timely");
    assert!(!rx_timely.drain().is_empty(), "timely keeps delivering while only bulk sheds");

    // Phase B2 — deepen the pressure to 104 parked shipments: past the
    // timely band too, but still below the surgical band (128).
    cluster.inject_overload(src, 104, Duration::from_millis(700));
    let phase = Instant::now();
    while phase.elapsed() < Duration::from_millis(600) {
        for _ in 0..4 {
            tx_bulk.send(b"flood-bulk").unwrap();
        }
        for _ in 0..2 {
            tx_timely.send(b"flood-timely").unwrap();
        }
        tx_surgical.send(b"steady-surgical").unwrap();
        surgical_sent += 1;
        std::thread::sleep(Duration::from_millis(10));
    }

    // Still under pressure: the detector must have escalated to its
    // deepest level and downgraded exactly the two lower classes.
    assert_eq!(cluster.node(src).overload_level(), 2, "sustained pressure escalates to level 2");
    assert!(tx_bulk.is_downgraded(), "bulk falls to a single path");
    assert!(tx_timely.is_downgraded(), "timely falls to two disjoint paths");
    assert!(!tx_surgical.is_downgraded(), "surgical keeps its targeted graph at every level");

    // Phase C — stop offering load; the synthetic dwell expires ~400 ms
    // later and the queue drains. Exit requires the smoothed depth to
    // decay below the exit threshold and a full quiet hold-down, so
    // give it a generous poll budget.
    let recovered = wait_until(Duration::from_secs(4), || {
        cluster.node(src).overload_level() == 0
            && !tx_bulk.is_downgraded()
            && !tx_timely.is_downgraded()
    });
    assert!(recovered, "full redundancy restored after sustained quiet");

    // Post-recovery traffic rides the restored graphs.
    for _ in 0..10 {
        tx_surgical.send(b"after-surgical").unwrap();
        surgical_sent += 1;
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(300));

    // Surgical stayed on time throughout — overload at the source must
    // not show up as missed deadlines in the protected class.
    let deliveries = rx_surgical.drain();
    let on_time = deliveries.iter().filter(|d| d.on_time).count() as f64;
    let fraction = on_time / surgical_sent as f64;
    assert!(
        fraction >= 0.99,
        "surgical on-time fraction {fraction:.4} ({on_time}/{surgical_sent})"
    );

    // Shedding was strictly class-ordered: bulk absorbed the most,
    // surgical none at all.
    let snap = cluster.node(src).metrics_snapshot();
    assert!(snap.counters.shed_bulk > 0, "bulk was shed");
    assert!(snap.counters.shed_timely > 0, "timely was shed");
    assert_eq!(snap.counters.shed_surgical, 0, "surgical was never shed");
    assert!(
        snap.counters.shed_bulk > snap.counters.shed_timely,
        "bulk ({}) absorbs more shedding than timely ({})",
        snap.counters.shed_bulk,
        snap.counters.shed_timely
    );

    // The whole episode is journaled: enter, escalate, per-class
    // downgrades (never surgical), and the exit.
    let has = |pred: &dyn Fn(&EventKind) -> bool| snap.events.iter().any(|e| pred(&e.kind));
    assert!(has(&|k| matches!(k, EventKind::OverloadEnter { level: 1 })), "enter journaled");
    assert!(has(&|k| matches!(k, EventKind::OverloadEnter { level: 2 })), "escalation journaled");
    assert!(has(&|k| matches!(k, EventKind::OverloadExit { level: 2 })), "exit journaled");
    assert!(
        has(&|k| matches!(k, EventKind::ClassDowngraded { class: SlaClass::Bulk, .. })),
        "bulk downgrade journaled"
    );
    assert!(
        has(&|k| matches!(k, EventKind::ClassDowngraded { class: SlaClass::Timely, .. })),
        "timely downgrade journaled"
    );
    assert!(
        !has(&|k| matches!(k, EventKind::ClassDowngraded { class: SlaClass::Surgical, .. })),
        "surgical is never downgraded"
    );

    // Overload is not failure: no node ever declared a link down.
    let report = cluster.metrics_report();
    assert_eq!(report.totals.links_declared_down, 0, "no spurious link-down declarations");
    for node in &report.nodes {
        assert!(
            !node.events.iter().any(|e| matches!(e.kind, EventKind::LinkDown { .. })),
            "node {} journaled a LinkDown under pure data overload",
            node.node
        );
    }
    // Per-cause drop accounting stays consistent with the deprecated
    // aggregate.
    assert_eq!(
        report.totals.queue_drops,
        report.totals.shipper_drops + report.totals.delivery_drops,
        "queue_drops must stay the exact sum of its per-cause parts"
    );
    cluster.shutdown();
}

/// The reserved-lane regression: saturate every node's *data* queue so
/// hard that even surgical traffic sheds, for many hello horizons, and
/// assert the control plane never misreads the pressure as loss — zero
/// link-down declarations, zero LinkDown journal entries.
#[test]
fn saturated_data_plane_never_fakes_link_down() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = overload_graph();
    let config = ClusterConfig {
        // Eight slots: the class bands collapse to 4/6/8, so the
        // synthetic pressure below exhausts the queue for every class.
        shipper_queue: 8,
        ..overload_config()
    };
    let cluster = Cluster::launch(&graph, config).expect("cluster launches");
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "link state converges");

    let src = by_name(&graph, "SRC");
    let surgical = Flow::new(src, by_name(&graph, "SURGICAL"));
    let tx = cluster.open_sla_sender(surgical, SlaClass::Surgical).unwrap();

    // Park 4x the queue bound at every node and keep offering data for
    // ~75 hello intervals — an order of magnitude past the hello
    // silence horizon that declares links down.
    for node in graph.nodes() {
        cluster.inject_overload(node, 32, Duration::from_millis(1_500));
    }
    let start = Instant::now();
    while start.elapsed() < Duration::from_millis(1_500) {
        tx.send(b"pressure").unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(300));

    let report = cluster.metrics_report();
    // The queue really was exhausted: even the last-shed class dropped.
    assert!(report.totals.shed_surgical > 0, "saturation never reached the surgical band");
    // ... yet hellos kept flowing on the reserved control lane.
    assert_eq!(report.totals.links_declared_down, 0, "data saturation faked a link failure");
    for node in &report.nodes {
        assert!(
            !node.events.iter().any(|e| matches!(e.kind, EventKind::LinkDown { .. })),
            "node {} declared a neighbour down under data saturation",
            node.node
        );
    }
    assert_eq!(
        report.totals.queue_drops,
        report.totals.shipper_drops + report.totals.delivery_drops,
        "queue_drops must stay the exact sum of its per-cause parts"
    );
    cluster.shutdown();
}

/// Admission control: a node refuses sender sessions past its
/// configured capacity with a structured error naming both sides of the
/// comparison.
#[test]
fn sender_admission_is_capacity_bounded() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = overload_graph();
    let config = ClusterConfig { sender_capacity: 2, ..overload_config() };
    let cluster = Cluster::launch(&graph, config).expect("cluster launches");

    let src = by_name(&graph, "SRC");
    let _a = cluster.open_sla_sender(Flow::new(src, by_name(&graph, "BULK")), SlaClass::Bulk);
    let _b = cluster.open_sla_sender(Flow::new(src, by_name(&graph, "TIMELY")), SlaClass::Timely);
    assert!(_a.is_ok() && _b.is_ok(), "capacity admits the first two sessions");
    let denied = cluster
        .open_sla_sender(Flow::new(src, by_name(&graph, "SURGICAL")), SlaClass::Surgical)
        .expect_err("third session exceeds capacity");
    assert!(
        matches!(denied, OverlayError::AdmissionDenied { active: 2, capacity: 2 }),
        "unexpected admission error: {denied}"
    );
    // Receivers are not admission-controlled.
    assert!(cluster.open_receiver(Flow::new(src, by_name(&graph, "SURGICAL"))).is_ok());
    cluster.shutdown();
}
