//! Cross-crate property tests: invariants that must hold across the
//! trace → scheme → simulator pipeline on arbitrary inputs.

use dissemination_graphs::prelude::*;
use dissemination_graphs::trace::LinkCondition;
use proptest::prelude::*;

fn scaled_traces(base: &TraceSet, edge_count: usize, factor: f64) -> TraceSet {
    let mut out = base.clone();
    for e in 0..edge_count {
        let edge = topology::EdgeId::new(e as u32);
        for i in 0..base.interval_count() {
            let c = base.condition_in_interval(edge, i);
            out.set_condition(edge, i, LinkCondition::new(c.loss_rate * factor, c.extra_latency));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// More loss can never *improve* availability: loss draws are a
    /// fixed function of (seed, edge, seq, attempt), so raising every
    /// loss rate can only convert deliveries into losses.
    #[test]
    fn availability_is_monotone_in_loss(seed in 0u64..1_000, base_loss in 0.05f64..0.3) {
        let graph = topology::presets::north_america_12();
        let mut traces = TraceSet::clean(graph.edge_count(), 3, Micros::from_secs(10)).unwrap();
        // Seeded pseudo-random loss pattern over a few edges.
        for k in 0..10u64 {
            let e = topology::EdgeId::new(((seed.wrapping_mul(31).wrapping_add(k * 7)) %
                graph.edge_count() as u64) as u32);
            let i = (k % 3) as usize;
            traces.set_condition(e, i, LinkCondition::new(base_loss, Micros::ZERO));
        }
        let harsher = scaled_traces(&traces, graph.edge_count(), 2.5);

        let flow = Flow::new(
            graph.node_by_name("NYC").unwrap(),
            graph.node_by_name("SJC").unwrap(),
        );
        let config = PlaybackConfig { packets_per_second: 20, seed, ..Default::default() };
        for kind in [SchemeKind::StaticSinglePath, SchemeKind::StaticTwoDisjoint] {
            let mut a = build_scheme(kind, &graph, flow, ServiceRequirement::default(),
                &SchemeParams::default()).unwrap();
            let mut b = build_scheme(kind, &graph, flow, ServiceRequirement::default(),
                &SchemeParams::default()).unwrap();
            let mild = run_flow(&graph, &traces, a.as_mut(), &config);
            let harsh = run_flow(&graph, &harsher, b.as_mut(), &config);
            prop_assert!(harsh.packets_on_time <= mild.packets_on_time,
                "{kind}: harsher trace delivered more ({} > {})",
                harsh.packets_on_time, mild.packets_on_time);
            prop_assert!(harsh.unavailable_seconds >= mild.unavailable_seconds);
        }
    }

    /// Dissemination-graph construction is a normalization: feeding a
    /// graph's own edges back in reproduces it exactly, and the bitmask
    /// codec round-trips.
    #[test]
    fn dissemination_graph_normalization_is_idempotent(
        src in 0u32..12, dst in 0u32..12, extra in proptest::collection::vec(0u32..60, 0..20)
    ) {
        prop_assume!(src != dst);
        let graph = topology::presets::north_america_12();
        let (s, t) = (NodeId::new(src), NodeId::new(dst));
        let base = topology::algo::dijkstra::shortest_path(&graph, s, t).unwrap();
        let mut edges: Vec<topology::EdgeId> = base.edges().to_vec();
        edges.extend(extra.iter().map(|&i| topology::EdgeId::new(i)));
        let dg = DisseminationGraph::new(&graph, s, t, edges).unwrap();
        let again = DisseminationGraph::new(&graph, s, t, dg.edges().to_vec()).unwrap();
        prop_assert_eq!(&dg, &again);
        let mask = dg.to_bitmask(graph.edge_count());
        let back = DisseminationGraph::from_bitmask(&graph, s, t, &mask).unwrap();
        prop_assert_eq!(&dg, &back);
        // Cost counts exactly the normalized edges.
        prop_assert_eq!(dg.cost(&graph) as usize, dg.len());
    }

    /// Every scheme on every feasible flow of a random grid produces a
    /// graph within the flooding superset, meeting the deadline.
    #[test]
    fn schemes_hold_invariants_on_grids(rows in 2usize..4, cols in 2usize..5) {
        let graph = topology::presets::grid(rows, cols, Micros::from_millis(5));
        let s = NodeId::new(0);
        let t = NodeId::new((rows * cols - 1) as u32);
        let req = ServiceRequirement::new(Micros::from_millis(5 * (rows + cols) as u64 * 2));
        let params = SchemeParams::default();
        let flood = build_scheme(SchemeKind::TimeConstrainedFlooding, &graph,
            Flow::new(s, t), req, &params).unwrap();
        for kind in SchemeKind::ALL {
            match build_scheme(kind, &graph, Flow::new(s, t), req, &params) {
                Ok(scheme) => {
                    let dg = scheme.current();
                    prop_assert_eq!(dg.source(), s);
                    prop_assert_eq!(dg.destination(), t);
                    prop_assert!(dg.best_latency(&graph) <= req.deadline,
                        "{kind} misses deadline");
                    prop_assert!(flood.current().is_superset_of(dg),
                        "{kind} outside the flooding set");
                }
                Err(e) => {
                    // Only acceptable on shapes without two disjoint paths.
                    prop_assert!(rows.min(cols) == 1, "{kind} failed: {e}");
                }
            }
        }
    }

    /// Playback is deterministic: identical configs produce identical
    /// stats, and the per-second records sum to the totals.
    #[test]
    fn playback_is_deterministic_and_self_consistent(seed in 0u64..500) {
        let graph = topology::presets::north_america_12();
        let mut wan = SyntheticWanConfig::calibrated(seed);
        wan.duration = Micros::from_secs(60);
        wan.node_problems.events_per_hour = 10.0;
        let traces = dissemination_graphs::trace::gen::generate(&graph, &wan);
        let flow = Flow::new(
            graph.node_by_name("WAS").unwrap(),
            graph.node_by_name("DEN").unwrap(),
        );
        let config = PlaybackConfig { packets_per_second: 10, seed, ..Default::default() };
        let run = |_: ()| {
            let mut scheme = build_scheme(SchemeKind::TargetedRedundancy, &graph, flow,
                ServiceRequirement::default(), &SchemeParams::default()).unwrap();
            dissemination_graphs::sim::run_flow_detailed(&graph, &traces, scheme.as_mut(), &config)
        };
        let (stats_a, records_a) = run(());
        let (stats_b, _) = run(());
        prop_assert_eq!(stats_a, stats_b);
        let sent: u64 = records_a.iter().map(|r| r.sent).sum();
        let on_time: u64 = records_a.iter().map(|r| r.on_time).sum();
        let unavailable = records_a.iter().filter(|r| r.unavailable).count() as u64;
        prop_assert_eq!(sent, stats_a.packets_sent);
        prop_assert_eq!(on_time, stats_a.packets_on_time);
        prop_assert_eq!(unavailable, stats_a.unavailable_seconds);
    }
}
