//! Runtime-mode equivalence and scale tests.
//!
//! The redesigned `Runtime` API promises that the event-driven reactor
//! is semantically identical to the historical three-threads-per-node
//! mode: same protocol behaviour, same metrics, same journal
//! vocabulary — only the scheduling differs. These tests pin that
//! promise on a fixed-seed 12-node chaos scenario, and demonstrate the
//! scale the reactor exists for: a 100-node generated-topology cluster
//! in one process on a 4-worker pool.

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::overlay::fault::LinkFault;
use dissemination_graphs::prelude::*;
use dissemination_graphs::topology::presets;
use std::time::Duration;

/// Cluster tests bind real UDP sockets and measure wall-clock timing;
/// serialize them so they do not starve each other on CI runners.
static CLUSTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Per-flow delivery outcome, comparable across runtime modes.
#[derive(Debug, PartialEq, Eq)]
struct FlowOutcome {
    flow: Flow,
    sent: u64,
    delivered: u64,
    on_time: u64,
}

/// Runs the fixed chaos scenario on `runtime`: a 12-node cluster with
/// deterministic non-lossy impairments (jitter, duplication,
/// reordering) on a spread of links, three flows on three different
/// schemes, paced sends, and a recovery grace period. Impairments are
/// non-lossy and the deadline is generous, so every packet must arrive
/// on time regardless of scheduling — which is exactly what makes the
/// outcome comparable bit-for-bit between modes.
fn run_chaos_scenario(runtime: Runtime) -> Vec<FlowOutcome> {
    let graph = presets::north_america_12();
    let config = ClusterConfig {
        hello_interval: Duration::from_millis(50),
        link_state_interval: Duration::from_millis(200),
        fault_seed: 42,
        ..Default::default()
    };
    let cluster = Cluster::launch_on(&graph, config, runtime.clone()).unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(10)), "cluster never converged");

    // Every 5th edge gets shaken, not dropped: jitter spreads arrival
    // times, duplication exercises dedup, reordering exercises the gap
    // tracker. None of it can lose a packet.
    for e in graph.edges() {
        if e.index() % 5 == 0 {
            cluster.set_link_impairment(
                e,
                LinkFault {
                    jitter: Micros::from_millis(2),
                    duplicate: 0.25,
                    reorder: 0.2,
                    ..LinkFault::default()
                },
            );
        }
    }

    let requirement = ServiceRequirement::new(Micros::from_millis(1_000));
    let n = |name: &str| graph.node_by_name(name).unwrap();
    let specs = [
        (Flow::new(n("NYC"), n("SJC")), SchemeKind::TargetedRedundancy),
        (Flow::new(n("WAS"), n("SEA")), SchemeKind::StaticTwoDisjoint),
        (Flow::new(n("BOS"), n("LAX")), SchemeKind::DynamicSinglePath),
    ];
    let sessions: Vec<_> = specs
        .iter()
        .map(|&(flow, kind)| {
            let rx = cluster.open_receiver(flow).unwrap();
            let tx = cluster.open_sender(flow, kind, requirement).unwrap();
            (flow, rx, tx)
        })
        .collect();

    let total = 60u64;
    for i in 0..total {
        for (flow, _, tx) in &sessions {
            tx.send(format!("{flow}:{i}").as_bytes()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let in-flight packets, duplicates, and NACK repairs settle.
    std::thread::sleep(Duration::from_millis(1_500));
    for (_, rx, _) in &sessions {
        drop(rx.drain());
    }

    let report = cluster.metrics_report();
    let outcomes = specs
        .iter()
        .map(|&(flow, _)| {
            let fr = *report.flow(flow).expect("flow was active");
            FlowOutcome {
                flow,
                sent: fr.packets_sent,
                delivered: fr.packets_delivered,
                on_time: fr.packets_on_time,
            }
        })
        .collect();
    drop(sessions);
    cluster.shutdown();
    outcomes
}

/// The satellite equivalence test: `Threaded` and `Reactor` must
/// produce identical delivery and on-time metrics on the fixed-seed
/// chaos scenario. Both must also be *perfect* — the impairments are
/// non-lossy — so any socket-level drop the reactor's polling cadence
/// introduced (or any shipment it forgot to flush) shows up as a
/// counted loss, not as noise absorbed by a tolerance.
#[test]
fn threaded_and_reactor_produce_identical_delivery_metrics() {
    let _serial = CLUSTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let threaded = run_chaos_scenario(Runtime::threaded());
    let reactor_rt = Runtime::reactor(4);
    let reactor = run_chaos_scenario(reactor_rt.clone());
    reactor_rt.shutdown();

    for outcome in threaded.iter().chain(reactor.iter()) {
        assert_eq!(
            outcome.sent, outcome.delivered,
            "{}: non-lossy impairments must lose nothing",
            outcome.flow
        );
        assert_eq!(
            outcome.sent, outcome.on_time,
            "{}: a 1 s deadline must absorb all injected jitter",
            outcome.flow
        );
    }
    assert_eq!(threaded, reactor, "runtime modes disagree on delivery metrics");
}

/// Node deaths and restarts must work when the node is a reactor slot
/// rather than three threads: the slot retires (flushing its parked
/// shipments), the port is rebound, and the replacement registers with
/// the same pool.
#[test]
fn reactor_nodes_survive_kill_and_restart() {
    let _serial = CLUSTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = presets::north_america_12();
    let runtime = Runtime::reactor(2);
    let mut cluster =
        Cluster::launch_on(&graph, ClusterConfig::default(), runtime.clone()).unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(10)));

    let victim = graph.node_by_name("DEN").unwrap();
    cluster.kill_node(victim);
    assert!(!cluster.is_alive(victim));
    cluster.restart_node(victim).unwrap();
    assert!(cluster.is_alive(victim));
    // The restarted node re-joins the overlay: its link-state database
    // fills back up from its peers.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if cluster.node(victim).link_state_origins() == graph.node_count() {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "restarted reactor node never re-converged");
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
    runtime.shutdown();
    // A stopped runtime refuses new nodes.
    assert!(matches!(
        Cluster::launch_on(&graph, ClusterConfig::default(), runtime),
        Err(dissemination_graphs::overlay::OverlayError::RuntimeShutDown)
    ));
}

/// The acceptance-criteria scale demonstration: a 100-node generated
/// topology runs in ONE process on a FOUR-worker reactor — where the
/// threaded mode would need 300 OS threads — converges its link-state
/// database, and delivers traffic end to end.
#[test]
fn hundred_node_cluster_runs_on_four_worker_reactor() {
    use dissemination_graphs::topology::generate::{
        feasible_deadline, representative_flows, GeneratorConfig,
    };

    let _serial = CLUSTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = GeneratorConfig::ring_of_cliques(100, 2017).generate();
    assert_eq!(graph.node_count(), 100);
    let runtime = Runtime::reactor(4);
    assert_eq!(runtime.workers(), 4);

    // Calm control cadences: at 100 nodes the default 50 ms hello /
    // 200 ms link-state rates are a reliably-flooded message storm that
    // has nothing to do with what this test measures.
    let cluster = Cluster::launch_on(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(500),
            link_state_interval: Duration::from_secs(1),
            digest_interval: Duration::from_secs(3),
            watchdog_stale_after: Duration::from_secs(10),
            ..Default::default()
        },
        runtime.clone(),
    )
    .unwrap();
    assert!(
        cluster.wait_for_link_state(Duration::from_secs(60)),
        "100-node reactor cluster never converged"
    );

    let (src, dst) = *representative_flows(&graph, 1, 2017)
        .first()
        .expect("generated overlays have routable flows");
    let flow = Flow::new(src, dst);
    assert!(feasible_deadline(&graph, &[(src, dst)], 2.0) < Micros::from_millis(500));
    let requirement = ServiceRequirement::new(Micros::from_millis(1_000));
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster.open_sender(flow, SchemeKind::StaticTwoDisjoint, requirement).unwrap();
    let total = 50u64;
    for i in 0..total {
        tx.send(format!("{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(1_500));
    drop(rx.drain());
    let report = cluster.metrics_report();
    cluster.shutdown();
    runtime.shutdown();

    let fr = *report.flow(flow).expect("flow was active");
    assert_eq!(fr.packets_sent, total);
    assert_eq!(fr.packets_sent, fr.packets_delivered + fr.packets_lost, "conservation");
    assert!(
        fr.packets_delivered * 10 >= total * 9,
        "100-node reactor delivered only {}/{total}",
        fr.packets_delivered
    );
}
