//! Observability-layer integration tests: the overlay's metrics report
//! must tell the same story as the simulator for the same topology and
//! fault schedule, the two report schemas must stay field-compatible,
//! and the fixed-seed Table 2 comparison must keep the paper's scheme
//! ordering.

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::prelude::*;
use dissemination_graphs::sim::experiment::{run_comparison, tabulate, ExperimentConfig};
use dissemination_graphs::trace::gen::{self};
use dissemination_graphs::trace::LinkCondition;
use std::time::Duration;

/// The cluster tests spin up full UDP overlays on localhost and assert
/// wall-clock-sensitive delivery rates; the golden Table 2 test
/// saturates every core with simulation work. Running them concurrently
/// starves the clusters' sockets, so the heavy tests serialize on this
/// lock.
static CLUSTER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn nyc_sjc(graph: &Graph) -> Flow {
    Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap())
}

/// Satellite: the same topology and fault schedule (30% loss on the
/// static path's first hop), driven once through the playback simulator
/// and once through the real UDP overlay, must agree on delivery, loss,
/// and cost within tolerance — and the overlay's own conservation
/// identity must hold exactly.
#[test]
fn overlay_metrics_report_agrees_with_simulator() {
    let _cluster_serial = CLUSTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = topology::presets::north_america_12();
    let flow = nyc_sjc(&graph);
    let scheme = build_scheme(
        SchemeKind::StaticSinglePath,
        &graph,
        flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let first_hop = scheme.current().forwarding_edges(&graph, flow.source).next().unwrap();

    // Simulator side: 30% loss on the first hop for the whole run.
    let mut traces = TraceSet::clean(graph.edge_count(), 3, Micros::from_secs(10)).unwrap();
    for i in 0..3 {
        traces.set_condition(first_hop, i, LinkCondition::new(0.3, Micros::ZERO));
    }
    let mut sim_scheme = build_scheme(
        SchemeKind::StaticSinglePath,
        &graph,
        flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let sim = dissemination_graphs::sim::run_flow(
        &graph,
        &traces,
        sim_scheme.as_mut(),
        &PlaybackConfig { packets_per_second: 50, ..Default::default() },
    );
    // The simulator's own conservation identity.
    assert_eq!(sim.packets_sent, sim.packets_delivered + sim.packets_lost);

    // Overlay side: identical fault on the same edge.
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig { hello_interval: Duration::from_millis(25), ..Default::default() },
    )
    .unwrap();
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    cluster.set_link_fault(first_hop, 0.3, Micros::ZERO);
    let total = 200u64;
    for i in 0..total {
        tx.send(format!("{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    // Give recovery time to settle, then snapshot before shutdown.
    std::thread::sleep(Duration::from_millis(500));
    drop(rx.drain());
    let report = cluster.metrics_report();

    // The fault schedule must have left its trace in the journals: the
    // first hop's receiving node saw loss cross the detector threshold.
    let lossy_dst = graph.edge(first_hop).dst;
    let dst_snapshot = report.nodes.iter().find(|n| n.node == lossy_dst).unwrap();
    use dissemination_graphs::overlay::metrics::EventKind;
    assert!(
        dst_snapshot
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DetectorTriggered { neighbor, .. }
                if neighbor == flow.source)),
        "detector never triggered on the impaired link"
    );
    assert!(
        dst_snapshot.events.iter().any(|e| matches!(e.kind, EventKind::RecoveryRequested { .. })),
        "30% loss produced no recovery requests"
    );
    cluster.shutdown();

    let fr = *report.flow(flow).expect("flow was active");
    assert_eq!(fr.packets_sent, total);
    // Conservation at snapshot time: everything sent is delivered or
    // counted lost (in-flight included) — exactly, not approximately.
    assert_eq!(fr.packets_sent, fr.packets_delivered + fr.packets_lost);

    // Agreement within tolerance (both stacks implement the same
    // single-retransmission recovery; the analytic delivery rate is
    // 1 - 0.3^2 = 91%).
    let sim_delivered = sim.packets_delivered as f64 / sim.packets_sent as f64;
    let overlay_delivered = fr.packets_delivered as f64 / fr.packets_sent as f64;
    assert!(
        (sim_delivered - overlay_delivered).abs() < 0.1,
        "delivery disagrees: sim {sim_delivered:.3} vs overlay {overlay_delivered:.3}"
    );
    let sim_lost = sim.packets_lost as f64 / sim.packets_sent as f64;
    let overlay_lost = fr.packets_lost as f64 / fr.packets_sent as f64;
    assert!(
        (sim_lost - overlay_lost).abs() < 0.1,
        "loss disagrees: sim {sim_lost:.3} vs overlay {overlay_lost:.3}"
    );
    // Cost: path length plus ~0.3 retransmissions per packet in both.
    let (sim_cost, overlay_cost) = (sim.average_cost(), fr.average_cost());
    assert!(
        (sim_cost - overlay_cost).abs() / sim_cost < 0.15,
        "cost disagrees: sim {sim_cost:.3} vs overlay {overlay_cost:.3}"
    );
}

/// Satellite: the overlay's per-flow report intentionally reuses the
/// simulator's `FlowRunStats` field names, so the two JSON encodings
/// must keep every shared field spelled identically.
#[test]
fn flow_report_schema_matches_flow_run_stats() {
    use dissemination_graphs::overlay::metrics::FlowReport;
    let flow = Flow::new(NodeId::new(0), NodeId::new(1));
    let sim_stats = dissemination_graphs::sim::FlowRunStats {
        scheme: SchemeKind::StaticSinglePath,
        flow,
        seconds: 1,
        unavailable_seconds: 0,
        packets_sent: 10,
        packets_on_time: 9,
        packets_delivered: 9,
        packets_lost: 1,
        transmissions: 40,
        graph_changes: 0,
    };
    let report = FlowReport {
        flow,
        packets_sent: 10,
        packets_on_time: 9,
        packets_late: 0,
        packets_delivered: 9,
        packets_lost: 1,
        transmissions: 40,
        graph_changes: 0,
    };
    let sim_json: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&sim_stats).unwrap()).unwrap();
    let overlay_json: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    let (serde_json::Value::Object(sim_map), serde_json::Value::Object(overlay_map)) =
        (&sim_json, &overlay_json)
    else {
        panic!("both serialize as objects");
    };
    // Every field the two schemas share must carry the same value for
    // the same underlying quantities.
    let shared: Vec<&str> = sim_map
        .iter()
        .map(|(k, _)| k.as_str())
        .filter(|k| overlay_map.iter().any(|(ok, _)| ok == k))
        .collect();
    for key in [
        "flow",
        "packets_sent",
        "packets_on_time",
        "packets_delivered",
        "packets_lost",
        "transmissions",
        "graph_changes",
    ] {
        assert!(shared.contains(&key), "schemas drifted: {key} no longer shared");
        let sv = sim_map.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap();
        let ov = overlay_map.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap();
        assert_eq!(sv, ov, "field {key} disagrees");
    }
}

/// Satellite: fixed-seed Table 2 regression. The exact per-scheme
/// numbers are pinned for seed 42 — a behaviour change in the schemes,
/// the playback engine, or the loss sampling shows up here first — and
/// the paper's qualitative orderings are asserted on top.
#[test]
fn golden_table2_ordering_is_stable_for_fixed_seed() {
    let _cluster_serial = CLUSTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = topology::presets::north_america_12();
    let mut wan = SyntheticWanConfig::calibrated(42);
    wan.duration = Micros::from_secs(600);
    wan.node_problems.events_per_hour = 6.0;
    let traces = gen::generate(&graph, &wan);
    let flows = topology::presets::transcontinental_flows(&graph);
    let config = ExperimentConfig {
        playback: PlaybackConfig { packets_per_second: 10, seed: 42, ..Default::default() },
        ..Default::default()
    };
    let schemes = [
        SchemeKind::StaticSinglePath,
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::TargetedRedundancy,
        SchemeKind::TimeConstrainedFlooding,
    ];
    let aggs = run_comparison(&graph, &traces, &flows, &schemes, &config).expect("routable");
    let rows = tabulate(&aggs, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);
    let get = |k: SchemeKind| rows.iter().find(|r| r.scheme == k).unwrap();
    let single = get(SchemeKind::StaticSinglePath);
    let disjoint = get(SchemeKind::StaticTwoDisjoint);
    let targeted = get(SchemeKind::TargetedRedundancy);
    let flooding = get(SchemeKind::TimeConstrainedFlooding);

    // The paper's availability ordering (Table 2): flooding >= targeted
    // >= two-disjoint >= single path.
    assert!(flooding.unavailable_seconds <= targeted.unavailable_seconds);
    assert!(targeted.unavailable_seconds <= disjoint.unavailable_seconds);
    assert!(disjoint.unavailable_seconds <= single.unavailable_seconds);
    // And the cost ordering: targeted buys its availability far cheaper
    // than flooding.
    assert!(targeted.average_cost < flooding.average_cost);
    assert!(single.average_cost < disjoint.average_cost);

    // Golden values for seed 42. The playback engine is deterministic,
    // so any drift here is a real behaviour change — update these only
    // with an explanation of what changed.
    let golden: Vec<(SchemeKind, u64)> = vec![
        (SchemeKind::StaticSinglePath, single.unavailable_seconds),
        (SchemeKind::StaticTwoDisjoint, disjoint.unavailable_seconds),
        (SchemeKind::TargetedRedundancy, targeted.unavailable_seconds),
        (SchemeKind::TimeConstrainedFlooding, flooding.unavailable_seconds),
    ];
    let expected: Vec<(SchemeKind, u64)> = vec![
        (SchemeKind::StaticSinglePath, GOLDEN_SINGLE),
        (SchemeKind::StaticTwoDisjoint, GOLDEN_DISJOINT),
        (SchemeKind::TargetedRedundancy, GOLDEN_TARGETED),
        (SchemeKind::TimeConstrainedFlooding, GOLDEN_FLOODING),
    ];
    assert_eq!(golden, expected, "fixed-seed Table 2 numbers drifted");
}

// Unavailable seconds per scheme for seed 42 / 600 s / 10 pps, summed
// over the four transcontinental flows.
const GOLDEN_SINGLE: u64 = 952;
const GOLDEN_DISJOINT: u64 = 597;
const GOLDEN_TARGETED: u64 = 66;
const GOLDEN_FLOODING: u64 = 48;

/// Satellite: the sim↔overlay agreement holds on a *generated* overlay
/// too, not just the hand-built 12-site preset. A 50-node
/// ring-of-cliques topology (the scale experiments' family) driven
/// through both stacks with the same two-disjoint scheme: delivery and
/// loss must agree within tolerance, conservation must hold exactly,
/// and the overlay side routes through the shared `GraphCache`. (The
/// fault-response agreement is the preset test's job above; a 50-node
/// debug-build cluster under a loss-driven link-state storm is too
/// scheduling-sensitive to assert tight deliver rates on.)
#[test]
fn overlay_agrees_with_simulator_on_generated_topology() {
    use dissemination_graphs::topology::generate::{
        feasible_deadline, representative_flows, GeneratorConfig,
    };

    let _cluster_serial = CLUSTER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let graph = GeneratorConfig::ring_of_cliques(50, 2017).generate();
    let (src, dst) = *representative_flows(&graph, 1, 2017)
        .first()
        .expect("generated overlays have disjoint-routable flows");
    let flow = Flow::new(src, dst);
    // The generated-topology deadline (~2x shortest path, tens of ms)
    // is an *emulated-time* budget; the overlay enforces deadlines in
    // wall-clock time, where a 50-node debug-build cluster's scheduling
    // noise would expire packets mid-path and skew the delivered/lost
    // comparison (which is deadline-independent in the simulator). Use
    // a generous real-time budget for both stacks instead.
    assert!(feasible_deadline(&graph, &[(src, dst)], 2.0) < Micros::from_millis(500));
    let requirement = ServiceRequirement::new(Micros::from_millis(500));

    let mut sim_scheme = build_scheme(
        SchemeKind::StaticTwoDisjoint,
        &graph,
        flow,
        requirement,
        &SchemeParams::default(),
    )
    .unwrap();
    let traces = TraceSet::clean(graph.edge_count(), 3, Micros::from_secs(10)).unwrap();
    let sim = dissemination_graphs::sim::run_flow(
        &graph,
        &traces,
        sim_scheme.as_mut(),
        &PlaybackConfig {
            packets_per_second: 50,
            deadline: requirement.deadline,
            ..Default::default()
        },
    );
    assert_eq!(sim.packets_sent, sim.packets_delivered + sim.packets_lost);

    // Overlay side: 50 real UDP nodes, same topology and scheme. The
    // default control-plane cadences are tuned for a 12-node cluster;
    // at 50 nodes on a small CI machine they produce tens of thousands
    // of reliably-flooded link-state messages per second, which starves
    // the data path at the sockets. Relax them — this test measures
    // forwarding agreement, not detector reaction time.
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(500),
            link_state_interval: Duration::from_secs(1),
            digest_interval: Duration::from_secs(3),
            watchdog_stale_after: Duration::from_secs(5),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(10)), "cluster never converged");
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster.open_sender(flow, SchemeKind::StaticTwoDisjoint, requirement).unwrap();
    let total = 150u64;
    for i in 0..total {
        tx.send(format!("{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    // Let hop-by-hop recovery finish repairing any socket-level drops.
    std::thread::sleep(Duration::from_millis(1_500));
    drop(rx.drain());
    let report = cluster.metrics_report();
    // The sender went through the cluster's shared scheme cache.
    assert!(cluster.scheme_cache_stats().baseline.misses >= 1);
    cluster.shutdown();

    let fr = *report.flow(flow).expect("flow was active");
    assert_eq!(fr.packets_sent, total);
    assert_eq!(fr.packets_sent, fr.packets_delivered + fr.packets_lost);

    let sim_delivered = sim.packets_delivered as f64 / sim.packets_sent as f64;
    let overlay_delivered = fr.packets_delivered as f64 / fr.packets_sent as f64;
    assert!(
        (sim_delivered - overlay_delivered).abs() < 0.15,
        "delivery disagrees on generated topology: \
         sim {sim_delivered:.3} vs overlay {overlay_delivered:.3}"
    );
    let sim_lost = sim.packets_lost as f64 / sim.packets_sent as f64;
    let overlay_lost = fr.packets_lost as f64 / fr.packets_sent as f64;
    assert!(
        (sim_lost - overlay_lost).abs() < 0.15,
        "loss disagrees on generated topology: sim {sim_lost:.3} vs overlay {overlay_lost:.3}"
    );
}
