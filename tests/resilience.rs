//! Resilient-control-plane acceptance tests.
//!
//! The claims under test, against the real UDP overlay:
//! - a partitioned cluster reconverges after healing: reliable LSA
//!   flooding plus anti-entropy digests drive every node to an
//!   identical per-origin `(epoch, seq)` link-state digest, and
//!   post-heal delivery recovers to ≥99%;
//! - a supervised protocol thread that panics is journaled, restarts,
//!   flags the node degraded for the watchdog window, and the node
//!   keeps forwarding; the flag clears afterwards;
//! - an oscillating link is flap-damped: down declarations stay
//!   fail-fast, but recoveries are held down, suppressions are counted
//!   and journaled, and the admitted transition rate is bounded.
//!
//! All tests are seeded via `DG_CHAOS_SEED` (default 42) so CI can run
//! the same scenarios across a seed matrix.

use dissemination_graphs::overlay::cluster::{Cluster, ClusterConfig};
use dissemination_graphs::overlay::fault::LinkFault;
use dissemination_graphs::overlay::metrics::{EventKind, NodeThread};
use dissemination_graphs::overlay::wire::DigestEntry;
use dissemination_graphs::prelude::*;
use std::time::{Duration, Instant};

fn chaos_seed() -> u64 {
    std::env::var("DG_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// Blackholes or restores both directions of the `a <-> b` link pair.
fn set_cut(cluster: &Cluster, graph: &Graph, a: NodeId, b: NodeId, cut: bool) {
    for (src, dst) in [(a, b), (b, a)] {
        let edge = graph.edge_between(src, dst).expect("ring links exist");
        if cut {
            cluster
                .set_link_impairment(edge, LinkFault { blackhole: true, ..LinkFault::default() });
        } else {
            cluster.clear_link_fault(edge);
        }
    }
}

/// Acceptance criterion: partition a 6-node ring into two halves, let
/// both sides keep originating, heal, and require every node to
/// converge to the identical per-origin `(epoch, seq)` digest — then
/// require ≥99% delivery on a flow that spans the former cut.
#[test]
fn partition_heals_to_identical_digests_and_full_delivery() {
    let graph = topology::presets::ring(6, Micros::from_millis(5));
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            digest_interval: Duration::from_millis(300),
            fault_seed: chaos_seed(),
            ..Default::default()
        },
    )
    .unwrap();
    let (n0, n2, n3, n5) = (NodeId::new(0), NodeId::new(2), NodeId::new(3), NodeId::new(5));
    let flow = Flow::new(n0, n3);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticTwoDisjoint, ServiceRequirement::default())
        .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "no initial convergence");

    // Cut {0,1,2} from {3,4,5}: both ring crossings, both directions.
    set_cut(&cluster, &graph, n2, n3, true);
    set_cut(&cluster, &graph, n5, n0, true);
    // Hold the partition long enough for both sides to diverge (many
    // originations) but well under the 3 s database aging fallback —
    // reconvergence must come from flooding and digest repair, not
    // from expiry.
    std::thread::sleep(Duration::from_millis(1_500));
    set_cut(&cluster, &graph, n2, n3, false);
    set_cut(&cluster, &graph, n5, n0, false);

    // Every node must reach the identical per-origin digest.
    let deadline = Instant::now() + Duration::from_secs(8);
    loop {
        let digests: Vec<Vec<DigestEntry>> =
            (0..6).map(|i| cluster.link_state_digest(NodeId::new(i))).collect();
        let complete = digests.iter().all(|d| d.len() == 6);
        if complete && digests.iter().all(|d| d == &digests[0]) {
            break;
        }
        assert!(Instant::now() < deadline, "digests never converged after heal: {digests:?}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // Post-heal service: ≥99% of packets across the former cut arrive.
    drop(rx.drain());
    let total = 200usize;
    for i in 0..total {
        tx.send(format!("p{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(400));
    let delivered = rx.drain().len();
    assert!(delivered * 100 >= total * 99, "post-heal delivery too low: {delivered}/{total}");

    // The reliable-flooding machinery must actually have run.
    let report = cluster.metrics_report();
    cluster.shutdown();
    let acks: u64 = report.nodes.iter().map(|n| n.counters.lsa_acks_received).sum();
    let digests_sent: u64 = report.nodes.iter().map(|n| n.counters.digests_sent).sum();
    assert!(acks > 0, "no LSA ever acknowledged");
    assert!(digests_sent > 0, "anti-entropy digests never exchanged");
}

/// Acceptance criterion: an injected panic in each protocol thread is
/// caught, journaled, and survived — the node reports itself degraded
/// for the watchdog window, keeps forwarding throughout, and the flag
/// clears once the window passes.
#[test]
fn thread_crashes_degrade_then_recover() {
    let graph = topology::presets::ring(3, Micros::from_millis(2));
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            watchdog_stale_after: Duration::from_millis(400),
            fault_seed: chaos_seed(),
            ..Default::default()
        },
    )
    .unwrap();
    let (n0, n1) = (NodeId::new(0), NodeId::new(1));
    let flow = Flow::new(n0, n1);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "no link-state convergence");
    assert!(!cluster.node(n1).is_degraded(), "fresh node must not be degraded");

    for thread in [NodeThread::Receive, NodeThread::Shipper, NodeThread::Ticker] {
        cluster.panic_thread(n1, thread);
    }
    std::thread::sleep(Duration::from_millis(250));
    assert!(cluster.node(n1).is_degraded(), "crashes must flag degradation");
    let snap = cluster.node(n1).metrics_snapshot();
    assert!(snap.degraded, "snapshot must carry the degraded flag");
    assert_eq!(snap.counters.thread_crashes, 3, "each injected panic counts once");
    for thread in [NodeThread::Receive, NodeThread::Shipper, NodeThread::Ticker] {
        assert!(
            snap.events.iter().any(|e| e.kind == EventKind::ThreadCrash { thread }),
            "no ThreadCrash journal entry for {thread:?}"
        );
    }

    // The restarted threads must still move traffic.
    drop(rx.drain());
    let total = 100usize;
    for i in 0..total {
        tx.send(format!("c{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(300));
    let delivered = rx.drain().len();
    assert!(delivered * 100 >= total * 99, "degraded node stopped forwarding: {delivered}/{total}");

    // Past the watchdog window, with healthy heartbeats, the flag clears.
    std::thread::sleep(Duration::from_millis(400));
    assert!(!cluster.node(n1).is_degraded(), "degradation must clear after the window");
    assert!(!cluster.node(n1).metrics_snapshot().degraded);
    cluster.shutdown();
}

/// Acceptance criterion: an oscillating link is flap-damped. Down
/// declarations stay fail-fast, recoveries wait out the hold-down, the
/// suppressed attempts are counted and journaled, and the total
/// admitted transition rate stays far below the raw oscillation rate.
#[test]
fn oscillating_link_is_flap_damped() {
    let graph = topology::presets::ring(3, Micros::from_millis(2));
    let hold_down = Duration::from_secs(2);
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            flap_hold_down: hold_down,
            fault_seed: chaos_seed(),
            ..Default::default()
        },
    )
    .unwrap();
    let (n0, n1) = (NodeId::new(0), NodeId::new(1));
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "no link-state convergence");

    // Oscillate the directed link 0 -> 1: nine cycles of 250 ms dark
    // (past the 125 ms down horizon, and wide enough that every cycle
    // spans an origination tick) and 400 ms bright. Undamped, that is
    // up to 18 admitted down/up transitions.
    let edge = graph.edge_between(n0, n1).expect("ring link exists");
    for _ in 0..9 {
        cluster.set_link_impairment(edge, LinkFault { blackhole: true, ..LinkFault::default() });
        std::thread::sleep(Duration::from_millis(250));
        cluster.clear_link_fault(edge);
        std::thread::sleep(Duration::from_millis(400));
    }
    std::thread::sleep(Duration::from_millis(300));

    let snap = cluster.node(n1).metrics_snapshot();
    cluster.shutdown();
    assert!(snap.counters.flap_suppressions > 0, "no transition was ever suppressed");
    assert!(
        snap.events.iter().any(
            |e| matches!(e.kind, EventKind::FlapSuppressed { neighbor, .. } if neighbor == n0)
        ),
        "suppressions must be journaled"
    );
    let downs = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LinkDown { neighbor } if neighbor == n0))
        .count();
    let ups: Vec<Micros> = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::LinkUp { neighbor } if neighbor == n0))
        .map(|e| e.at)
        .collect();
    assert!(downs >= 1, "fail-fast down declarations must still go through");
    assert!(
        downs + ups.len() <= 6,
        "damping admitted too many transitions: {downs} downs, {} ups",
        ups.len()
    );
    // The damped direction: at most one admitted recovery per hold-down
    // window (generous slack for scheduling jitter).
    for pair in ups.windows(2) {
        assert!(
            pair[1].saturating_sub(pair[0]) >= Micros::from_millis(1_800),
            "recoveries {pair:?} violate the hold-down spacing"
        );
    }
}
