//! Property battery for the overload detector: the damped, hysteretic
//! state machine must honour its hold-down under *every* load trace,
//! not just the hand-picked unit-test ones. Each case drives the real
//! [`OverloadDetector`] and an independently written reference state
//! machine over the same observation trace and cross-checks them.

use dissemination_graphs::overlay::{
    OverloadConfig, OverloadDetector, OverloadTransition, MAX_LEVEL,
};
use dissemination_graphs::prelude::*;
use proptest::prelude::*;
use std::time::Duration;

const DEPTH_ALPHA: f64 = 0.3;

/// One observation: instantaneous queue depth and how many packets
/// were shed since the previous observation.
type Step = (u16, u8);

/// A straight-line re-statement of the documented detector contract,
/// written without looking at the production control flow: smooth the
/// depth, classify the instant as pressured / quiet / neither, extend
/// or reset the quiet streak, and admit at most one transition per
/// hold-down.
struct Reference {
    level: u8,
    ewma: f64,
    quiet_run: u64,
    since_transition: Option<u64>,
}

enum RefStep {
    None,
    Enter(u8),
    Escalate(u8),
    Exit(u8),
}

impl Reference {
    fn new() -> Self {
        Reference { level: 0, ewma: 0.0, quiet_run: 0, since_transition: None }
    }

    /// Advances one observation taken `dt_us` after the previous one.
    fn step(&mut self, depth: u16, shed_delta: u8, dt_us: u64, config: &OverloadConfig) -> RefStep {
        self.ewma = DEPTH_ALPHA * f64::from(depth) + (1.0 - DEPTH_ALPHA) * self.ewma;
        let bound = config.queue_bound as f64;
        let pressured = shed_delta > 0 || self.ewma >= config.enter_depth * bound;
        let quiet = shed_delta == 0 && self.ewma <= config.exit_depth * bound;
        // The streak includes the time elapsed *since* the observation
        // that started it, matching a timestamped `quiet_since` marker:
        // the starting observation contributes no elapsed time itself.
        self.quiet_run = if quiet { self.quiet_run + dt_us } else { 0 };
        if let Some(t) = self.since_transition.as_mut() {
            *t += dt_us;
        }
        let hold = config.hold_down.as_micros() as u64;
        if self.since_transition.is_some_and(|t| t < hold) {
            return RefStep::None;
        }
        if pressured && self.level < MAX_LEVEL {
            self.level += 1;
            self.since_transition = Some(0);
            return if self.level == 1 { RefStep::Enter(1) } else { RefStep::Escalate(self.level) };
        }
        if self.level > 0 && quiet && self.quiet_run >= hold + dt_us {
            let from = self.level;
            self.level = 0;
            self.since_transition = Some(0);
            return RefStep::Exit(from);
        }
        RefStep::None
    }
}

fn arb_config() -> impl Strategy<Value = OverloadConfig> {
    (16u64..=256, 50u64..=300)
        .prop_map(|(bound, hold_ms)| OverloadConfig::new(bound, Duration::from_millis(hold_ms)))
}

fn arb_trace() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0u16..1_024, 0u8..4), 1..200)
}

/// Timestep between observations, microseconds. The floor of 15 ms
/// guarantees the quiet tail in `sustained_quiet_always_restores` can
/// both decay the EWMA and out-wait the longest hold-down.
fn arb_dt() -> impl Strategy<Value = u64> {
    15_000u64..=50_000
}

/// Runs the production detector over a trace, returning
/// `(time_us, transition)` pairs and the final level.
fn run_detector(
    config: OverloadConfig,
    trace: &[Step],
    dt_us: u64,
) -> (Vec<(u64, OverloadTransition)>, u8) {
    let mut d = OverloadDetector::new(config);
    let mut shed_total = 0u64;
    let mut out = Vec::new();
    for (i, &(depth, shed)) in trace.iter().enumerate() {
        shed_total += u64::from(shed);
        let now = (i as u64 + 1) * dt_us;
        if let Some(tr) = d.observe(Micros::from_micros(now), u64::from(depth), shed_total) {
            out.push((now, tr));
        }
    }
    (out, d.level())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No two admitted transitions are ever closer than the hold-down,
    /// whatever the load does.
    #[test]
    fn transitions_respect_hold_down(
        config in arb_config(),
        trace in arb_trace(),
        dt in arb_dt(),
    ) {
        let (transitions, _) = run_detector(config, &trace, dt);
        let hold = config.hold_down.as_micros() as u64;
        for pair in transitions.windows(2) {
            let gap = pair[1].0 - pair[0].0;
            prop_assert!(
                gap >= hold,
                "transitions {:?} and {:?} only {gap} us apart (hold-down {hold} us)",
                pair[0],
                pair[1]
            );
        }
    }

    /// Within one pressure episode the level only deepens: Enter is
    /// always 0 → 1, Escalate always climbs one step, Exit always lands
    /// on 0, and the level never leaves `0..=MAX_LEVEL`.
    #[test]
    fn levels_are_monotone_within_an_episode(
        config in arb_config(),
        trace in arb_trace(),
        dt in arb_dt(),
    ) {
        let (transitions, final_level) = run_detector(config, &trace, dt);
        let mut level = 0u8;
        for &(at, tr) in &transitions {
            match tr {
                OverloadTransition::Enter { level: l } => {
                    prop_assert_eq!(level, 0, "Enter from level {} at {}", level, at);
                    prop_assert_eq!(l, 1);
                    level = l;
                }
                OverloadTransition::Escalate { level: l } => {
                    prop_assert_eq!(l, level + 1, "Escalate skipped a level at {}", at);
                    prop_assert!(l <= MAX_LEVEL);
                    level = l;
                }
                OverloadTransition::Exit { from_level } => {
                    prop_assert_eq!(from_level, level, "Exit from the wrong level at {}", at);
                    prop_assert!(from_level > 0);
                    level = 0;
                }
            }
        }
        prop_assert_eq!(level, final_level, "replayed transitions disagree with final level");
    }

    /// Sustained quiet always restores full redundancy: appending a
    /// long idle tail (zero depth, zero sheds) to *any* trace brings
    /// the detector back to level 0.
    #[test]
    fn sustained_quiet_always_restores(
        config in arb_config(),
        mut trace in arb_trace(),
        dt in arb_dt(),
    ) {
        // 64 idle steps at >= 15 ms each: ~18 steps decay a saturated
        // EWMA below the exit threshold, the rest out-wait the 300 ms
        // worst-case hold-down twice over.
        trace.extend(std::iter::repeat_n((0u16, 0u8), 64));
        let (_, final_level) = run_detector(config, &trace, dt);
        prop_assert_eq!(final_level, 0, "idle tail did not restore level 0");
    }

    /// The production detector and the independently written reference
    /// admit the *same* transitions at the same observations.
    #[test]
    fn detector_matches_reference_state_machine(
        config in arb_config(),
        trace in arb_trace(),
        dt in arb_dt(),
    ) {
        let mut reference = Reference::new();
        let mut detector = OverloadDetector::new(config);
        let mut shed_total = 0u64;
        for (i, &(depth, shed)) in trace.iter().enumerate() {
            shed_total += u64::from(shed);
            let now = (i as u64 + 1) * dt;
            let got = detector.observe(Micros::from_micros(now), u64::from(depth), shed_total);
            let want = reference.step(depth, shed, dt, &config);
            let agree = match (&want, &got) {
                (RefStep::None, None) => true,
                (RefStep::Enter(l), Some(OverloadTransition::Enter { level }))
                | (RefStep::Escalate(l), Some(OverloadTransition::Escalate { level })) => {
                    l == level
                }
                (RefStep::Exit(l), Some(OverloadTransition::Exit { from_level })) => {
                    l == from_level
                }
                _ => false,
            };
            prop_assert!(agree, "step {i}: detector said {got:?}, reference disagrees");
            let want_level = match want {
                RefStep::Enter(l) | RefStep::Escalate(l) => Some(l),
                RefStep::Exit(_) => Some(0),
                RefStep::None => None,
            };
            if let Some(l) = want_level {
                prop_assert_eq!(detector.level(), l, "step {}: levels diverge", i);
            }
            prop_assert_eq!(detector.level(), reference.level, "step {}: state diverged", i);
        }
    }
}
