//! Grouped many-flow playback over multicast dissemination graphs.
//!
//! The paper's flows are strictly unicast, but the north-star workload
//! — thousands of concurrent flows per node — shares sources heavily
//! (one feed, many subscribers). This module replays that shape the
//! way the overlay sends it: flows sharing a source collapse into one
//! **group job** routed by a single interned [`MulticastGraph`], and
//! each packet propagates through the shared graph **once**, with
//! every receiver's outcome read from that one propagation. The naive
//! alternative ([`run_unicast_static_with`]) replays each receiver as
//! its own unicast flow — the baseline the `many-flow` bench compares
//! against.
//!
//! Determinism matches the unicast runner: loss draws are a pure
//! function of `(seed, edge, seq, attempt)`, worker counts cannot
//! change results, and a single-receiver group run is byte-identical
//! to the plain unicast replay of the same graph (same seed mixing,
//! same propagation core).

use crate::packet::{simulate_group_packet_with, simulate_packet_with, PacketOutcome, SimScratch};
use crate::playback::PlaybackConfig;
use dg_core::{
    receiver_digest, CoreError, DisseminationGraph, Flow, GraphCache, MulticastGraph,
    MulticastKind, ServiceRequirement,
};
use dg_topology::{Graph, Micros, NodeId};
use dg_trace::TraceSet;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One unit of grouped playback work: all flows from `source` to
/// `receivers`, routed by one `kind` multicast graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupJob {
    /// The shared sending site.
    pub source: NodeId,
    /// The receiver set (canonicalized by the graph construction).
    pub receivers: Vec<NodeId>,
    /// Which multicast graph to route the group over.
    pub kind: MulticastKind,
    /// The timeliness contract the graph is built against.
    pub requirement: ServiceRequirement,
}

/// Per-receiver outcome counters of a group run — the group analogue
/// of one unicast flow's delivery accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiverRunStats {
    /// The receiving site.
    pub receiver: NodeId,
    /// Application packets addressed to this receiver.
    pub packets_sent: u64,
    /// Packets delivered within the deadline.
    pub packets_on_time: u64,
    /// Packets delivered at all.
    pub packets_delivered: u64,
    /// Packets never delivered.
    pub packets_lost: u64,
}

impl ReceiverRunStats {
    fn new(receiver: NodeId) -> Self {
        ReceiverRunStats {
            receiver,
            packets_sent: 0,
            packets_on_time: 0,
            packets_delivered: 0,
            packets_lost: 0,
        }
    }

    fn record(&mut self, outcome: &PacketOutcome) {
        self.packets_sent += 1;
        if outcome.delivered_at.is_some() {
            self.packets_delivered += 1;
        } else {
            self.packets_lost += 1;
        }
        if outcome.on_time {
            self.packets_on_time += 1;
        }
    }

    /// Fraction of this receiver's packets delivered on time.
    pub fn on_time_fraction(&self) -> f64 {
        if self.packets_sent == 0 {
            return 0.0;
        }
        self.packets_on_time as f64 / self.packets_sent as f64
    }
}

/// Everything one group replay produces.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupRunStats {
    /// The shared sending site.
    pub source: NodeId,
    /// Trace seconds replayed.
    pub seconds: u64,
    /// Total link transmissions of the group — **shared** across the
    /// whole receiver set: one send covers every receiver, which is
    /// the cost the unicast baseline pays per flow.
    pub transmissions: u64,
    /// Per-receiver delivery counters, in the graph's canonical
    /// receiver order.
    pub receivers: Vec<ReceiverRunStats>,
}

/// Collapses a list of unicast flows into `(source, receivers)` group
/// specs, preserving first-seen source order (self-flows and duplicate
/// receivers are dropped by the graph's canonicalization later).
pub fn group_flows(flows: &[Flow]) -> Vec<(NodeId, Vec<NodeId>)> {
    let mut order: Vec<NodeId> = Vec::new();
    let mut by_source: std::collections::HashMap<NodeId, Vec<NodeId>> =
        std::collections::HashMap::new();
    for f in flows {
        let entry = by_source.entry(f.source).or_insert_with(|| {
            order.push(f.source);
            Vec::new()
        });
        entry.push(f.destination);
    }
    order
        .into_iter()
        .map(|s| {
            let receivers = by_source.remove(&s).expect("every ordered source has receivers");
            (s, receivers)
        })
        .collect()
}

/// The sampling seed of a group run. A single-receiver group mixes
/// exactly as the unicast playback does — `(source << 32) | receiver`
/// — so `--flows 1` group runs are byte-identical to the unicast path
/// on fixed seeds; larger groups mix the canonical receiver-set digest
/// so distinct groups see independent draws.
fn group_seed(seed: u64, source: NodeId, receivers: &[NodeId]) -> u64 {
    let key = match receivers {
        [only] => ((source.index() as u64) << 32) | only.index() as u64,
        many => ((source.index() as u64) << 32) | (receiver_digest(many) & 0xFFFF_FFFF),
    };
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(key)
}

/// Replays `traces` for one multicast group over a caller-held scratch
/// arena. The graph is static for the run (the cached graph a sender
/// would hold between reroutes); each of the `seconds × pps` packets
/// propagates once and every receiver's outcome is read from that
/// propagation.
pub fn run_group_with(
    topology: &Graph,
    traces: &TraceSet,
    mgraph: &MulticastGraph,
    config: &PlaybackConfig,
    scratch: &mut SimScratch,
) -> GroupRunStats {
    assert!(config.packets_per_second > 0, "at least one packet per second");
    let seed = group_seed(config.seed, mgraph.source(), mgraph.receivers());
    let total_seconds = traces.duration().as_secs();
    let spacing = Micros::from_micros(1_000_000 / u64::from(config.packets_per_second));

    let mut stats = GroupRunStats {
        source: mgraph.source(),
        seconds: total_seconds,
        transmissions: 0,
        receivers: mgraph.receivers().iter().map(|&r| ReceiverRunStats::new(r)).collect(),
    };
    let mut outcomes: Vec<PacketOutcome> = Vec::with_capacity(stats.receivers.len());
    let mut seq = 0u64;
    scratch.index_multicast(topology, mgraph);
    for second in 0..total_seconds {
        for k in 0..u64::from(config.packets_per_second) {
            let t = Micros::from_secs(second).saturating_add(spacing.saturating_mul(k));
            stats.transmissions += simulate_group_packet_with(
                scratch,
                topology,
                mgraph,
                traces,
                t,
                config.deadline,
                &config.recovery,
                seed,
                seq,
                &mut outcomes,
            );
            seq += 1;
            for (cell, outcome) in stats.receivers.iter_mut().zip(&outcomes) {
                cell.record(outcome);
            }
        }
    }
    stats
}

/// The naive per-flow baseline: replays `traces` for one **unicast**
/// flow over a static dissemination graph, with the exact seed mixing
/// and packet cadence of [`crate::run_flow`]. Returns the receiver's
/// counters plus the flow's total link transmissions.
pub fn run_unicast_static_with(
    topology: &Graph,
    traces: &TraceSet,
    dgraph: &DisseminationGraph,
    config: &PlaybackConfig,
    scratch: &mut SimScratch,
) -> (ReceiverRunStats, u64) {
    assert!(config.packets_per_second > 0, "at least one packet per second");
    let seed = group_seed(config.seed, dgraph.source(), &[dgraph.destination()]);
    let total_seconds = traces.duration().as_secs();
    let spacing = Micros::from_micros(1_000_000 / u64::from(config.packets_per_second));

    let mut stats = ReceiverRunStats::new(dgraph.destination());
    let mut transmissions = 0u64;
    let mut seq = 0u64;
    scratch.index_graph(topology, dgraph);
    for second in 0..total_seconds {
        for k in 0..u64::from(config.packets_per_second) {
            let t = Micros::from_secs(second).saturating_add(spacing.saturating_mul(k));
            let outcome = simulate_packet_with(
                scratch,
                topology,
                dgraph,
                traces,
                t,
                config.deadline,
                &config.recovery,
                seed,
                seq,
            );
            seq += 1;
            transmissions += outcome.transmissions;
            stats.record(&outcome);
        }
    }
    (stats, transmissions)
}

/// Replays every group job against `traces`, fanned out over `threads`
/// workers (zero = one per CPU core), returning one [`GroupRunStats`]
/// per job **in input order**. Graphs are built serially through the
/// shared `cache`, so jobs with the same `(source, receiver set, kind,
/// deadline)` intern one computation; each worker holds one
/// [`SimScratch`] whose forwarding index is rebuilt once per group,
/// not per packet. Worker counts cannot change results.
///
/// # Errors
///
/// Propagates multicast-graph construction failures (an unreachable
/// receiver, an empty receiver set), in job order.
pub fn run_groups(
    topology: &Graph,
    traces: &TraceSet,
    cache: &GraphCache,
    jobs: &[GroupJob],
    config: &PlaybackConfig,
    threads: usize,
) -> Result<Vec<GroupRunStats>, CoreError> {
    let mut graphs: Vec<Arc<MulticastGraph>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        graphs.push(cache.multicast(job.source, &job.receivers, job.kind, job.requirement)?);
    }
    let total = graphs.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    let threads = match threads {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
    .min(total);

    if threads == 1 {
        // The serial reference path: one scratch, jobs in order.
        let mut scratch = SimScratch::new();
        return Ok(graphs
            .iter()
            .map(|g| run_group_with(topology, traces, g, config, &mut scratch))
            .collect());
    }

    let results: Mutex<Vec<Option<GroupRunStats>>> = Mutex::new(vec![None; total]);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut scratch = SimScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        return;
                    }
                    let stats = run_group_with(topology, traces, &graphs[i], config, &mut scratch);
                    results.lock().expect("results lock")[i] = Some(stats);
                }
            });
        }
    })
    .expect("worker threads do not panic");

    Ok(results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect())
}

/// A convenience wrapper of [`run_groups`] that builds its own cache.
///
/// # Errors
///
/// Propagates multicast-graph construction failures, in job order.
pub fn run_groups_fresh(
    topology: &Graph,
    traces: &TraceSet,
    jobs: &[GroupJob],
    config: &PlaybackConfig,
    threads: usize,
) -> Result<Vec<GroupRunStats>, CoreError> {
    let cache = GraphCache::new(topology.clone(), dg_core::scheme::SchemeParams::default());
    run_groups(topology, traces, &cache, jobs, config, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_core::scheme::SchemeParams;
    use dg_topology::presets;
    use dg_trace::gen::{self, SyntheticWanConfig};

    fn noisy_traces(g: &Graph) -> TraceSet {
        let mut cfg = SyntheticWanConfig::calibrated(3);
        cfg.duration = Micros::from_secs(10);
        cfg.link_problems.events_per_hour = 40.0;
        gen::generate(g, &cfg)
    }

    fn quick_config() -> PlaybackConfig {
        PlaybackConfig { packets_per_second: 10, seed: 11, ..PlaybackConfig::default() }
    }

    #[test]
    fn grouping_preserves_source_order() {
        let n = NodeId::new;
        let flows = [
            Flow::new(n(2), n(5)),
            Flow::new(n(0), n(1)),
            Flow::new(n(2), n(7)),
            Flow::new(n(0), n(3)),
        ];
        let groups = group_flows(&flows);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (n(2), vec![n(5), n(7)]));
        assert_eq!(groups[1], (n(0), vec![n(1), n(3)]));
    }

    #[test]
    fn single_receiver_group_is_byte_identical_to_unicast() {
        let g = presets::north_america_12();
        let traces = noisy_traces(&g);
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let (src, dst) = (g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let config = quick_config();
        let mgraph = cache
            .multicast(src, &[dst], MulticastKind::Tree, ServiceRequirement::default())
            .unwrap();
        let mut scratch = SimScratch::new();
        let group = run_group_with(&g, &traces, &mgraph, &config, &mut scratch);
        let uni = mgraph.unicast_view(&g, dst).unwrap();
        let (stats, transmissions) =
            run_unicast_static_with(&g, &traces, &uni, &config, &mut scratch);
        assert_eq!(group.receivers, vec![stats]);
        assert_eq!(group.transmissions, transmissions);
        let a = serde_json::to_string(&group.receivers[0]).unwrap();
        let b = serde_json::to_string(&stats).unwrap();
        assert_eq!(a, b, "single-receiver group must be byte-identical to unicast");
    }

    #[test]
    fn one_group_send_costs_less_than_per_receiver_unicast() {
        let g = presets::north_america_12();
        let traces = noisy_traces(&g);
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let src = g.node_by_name("NYC").unwrap();
        let receivers: Vec<NodeId> = ["SJC", "LAX", "SEA", "DEN", "MIA"]
            .iter()
            .map(|n| g.node_by_name(n).unwrap())
            .collect();
        let config = quick_config();
        let mgraph = cache
            .multicast(src, &receivers, MulticastKind::Tree, ServiceRequirement::default())
            .unwrap();
        let mut scratch = SimScratch::new();
        let group = run_group_with(&g, &traces, &mgraph, &config, &mut scratch);
        let mut unicast_total = 0u64;
        for &r in &receivers {
            let uni = cache
                .compute_multicast_uncached(src, &[r], MulticastKind::Tree, Default::default())
                .unwrap()
                .unicast_view(&g, r)
                .unwrap();
            let (_, tx) = run_unicast_static_with(&g, &traces, &uni, &config, &mut scratch);
            unicast_total += tx;
        }
        assert!(
            group.transmissions < unicast_total,
            "shared tree ({}) must beat per-receiver unicast ({unicast_total})",
            group.transmissions
        );
        assert_eq!(group.receivers.len(), receivers.len());
        for r in &group.receivers {
            assert!(r.packets_sent > 0);
        }
    }

    #[test]
    fn worker_counts_cannot_change_group_results() {
        let g = presets::north_america_12();
        let traces = noisy_traces(&g);
        let names: [(&str, &[&str]); 3] = [
            ("NYC", &["SJC", "LAX", "MIA"]),
            ("SEA", &["WAS", "ATL"]),
            ("DEN", &["NYC", "SJC", "SEA", "CHI"]),
        ];
        let jobs: Vec<GroupJob> = names
            .into_iter()
            .map(|(s, rs)| GroupJob {
                source: g.node_by_name(s).unwrap(),
                receivers: rs.iter().map(|r| g.node_by_name(r).unwrap()).collect(),
                kind: MulticastKind::Targeted,
                requirement: ServiceRequirement::default(),
            })
            .collect();
        let config = quick_config();
        let serial = run_groups_fresh(&g, &traces, &jobs, &config, 1).unwrap();
        for threads in [2, 4] {
            let parallel = run_groups_fresh(&g, &traces, &jobs, &config, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn repeated_jobs_intern_one_graph() {
        let g = presets::north_america_12();
        let traces = TraceSet::clean(g.edge_count(), 1, Micros::from_secs(2)).unwrap();
        let cache = GraphCache::new(g.clone(), SchemeParams::default());
        let job = GroupJob {
            source: g.node_by_name("NYC").unwrap(),
            receivers: vec![g.node_by_name("SJC").unwrap(), g.node_by_name("LAX").unwrap()],
            kind: MulticastKind::Targeted,
            requirement: ServiceRequirement::default(),
        };
        let jobs = vec![job.clone(), job.clone(), job];
        run_groups(&g, &traces, &cache, &jobs, &quick_config(), 1).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.multicast.misses, 1, "one construction");
        assert_eq!(stats.multicast.hits, 2, "two interned hits");
    }
}
