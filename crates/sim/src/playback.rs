//! Replaying a trace against one flow and one routing scheme.

use crate::histogram::LatencyHistogram;
use crate::metrics::{FlowRunStats, SecondRecord};
use crate::packet::{simulate_packet_with, RecoveryModel, SimScratch};
use dg_core::scheme::RoutingScheme;
use dg_topology::{Graph, Micros};
use dg_trace::TraceSet;
use serde::{Deserialize, Serialize};

/// Playback parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaybackConfig {
    /// Application packets per second (evenly spaced).
    pub packets_per_second: u32,
    /// One-way delivery deadline.
    pub deadline: Micros,
    /// A second is available when `on_time / sent >= threshold`;
    /// the default `1.0` counts any missed packet as an unavailable
    /// second (the strictest reading of the paper's contract).
    pub availability_threshold: f64,
    /// Delay between a monitoring interval boundary and the moment
    /// routing schemes observe the new conditions (link-state
    /// propagation plus loss-estimation time).
    pub detection_lag: Micros,
    /// Hop-by-hop recovery model.
    pub recovery: RecoveryModel,
    /// Seed for the deterministic loss draws.
    pub seed: u64,
}

impl Default for PlaybackConfig {
    fn default() -> Self {
        PlaybackConfig {
            packets_per_second: 100,
            deadline: Micros::from_millis(65),
            availability_threshold: 1.0,
            detection_lag: Micros::from_secs(1),
            recovery: RecoveryModel::default(),
            seed: 0,
        }
    }
}

/// Everything one playback run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaybackOutput {
    /// Aggregate statistics.
    pub stats: FlowRunStats,
    /// One record per simulated second.
    pub seconds: Vec<SecondRecord>,
    /// Distribution of delivered-packet latencies (lost packets are
    /// tracked for loss-aware quantiles).
    pub latency: LatencyHistogram,
}

/// Replays `traces` for the scheme's flow and returns aggregate stats.
///
/// See [`run_flow_detailed`] for the per-second breakdown and
/// [`run_flow_full`] for the latency distribution as well.
pub fn run_flow(
    topology: &Graph,
    traces: &TraceSet,
    scheme: &mut dyn RoutingScheme,
    config: &PlaybackConfig,
) -> FlowRunStats {
    run_flow_full(topology, traces, scheme, config).stats
}

/// Like [`run_flow`], reusing a caller-provided scratch arena. The
/// parallel runner ([`crate::run_flows`]) keeps one scratch per worker
/// so consecutive jobs on a thread reuse the event heap, arrival table,
/// and edge-index allocations; results are identical to [`run_flow`]
/// (the scratch is re-indexed for the scheme's graph before any packet
/// is simulated).
pub fn run_flow_with(
    topology: &Graph,
    traces: &TraceSet,
    scheme: &mut dyn RoutingScheme,
    config: &PlaybackConfig,
    scratch: &mut SimScratch,
) -> FlowRunStats {
    run_flow_full_with(topology, traces, scheme, config, scratch).stats
}

/// Replays `traces` and additionally returns one record per second
/// (used for the case-study timeline figure).
pub fn run_flow_detailed(
    topology: &Graph,
    traces: &TraceSet,
    scheme: &mut dyn RoutingScheme,
    config: &PlaybackConfig,
) -> (FlowRunStats, Vec<SecondRecord>) {
    let out = run_flow_full(topology, traces, scheme, config);
    (out.stats, out.seconds)
}

/// Replays `traces` and returns stats, per-second records, and the
/// latency distribution.
///
/// Scheme updates fire `detection_lag` after each monitoring interval
/// boundary, with that boundary's conditions — packets sent before the
/// update still use the previous dissemination graph, which is how a
/// real deployment experiences a problem's onset.
pub fn run_flow_full(
    topology: &Graph,
    traces: &TraceSet,
    scheme: &mut dyn RoutingScheme,
    config: &PlaybackConfig,
) -> PlaybackOutput {
    // One scratch for the whole run: the forwarding index is rebuilt
    // only when the scheme actually reroutes, and the event heap and
    // arrival table are reused across every packet.
    let mut scratch = SimScratch::new();
    run_flow_full_with(topology, traces, scheme, config, &mut scratch)
}

/// [`run_flow_full`] over a caller-provided scratch arena (see
/// [`run_flow_with`]).
pub fn run_flow_full_with(
    topology: &Graph,
    traces: &TraceSet,
    scheme: &mut dyn RoutingScheme,
    config: &PlaybackConfig,
    scratch: &mut SimScratch,
) -> PlaybackOutput {
    assert!(config.packets_per_second > 0, "at least one packet per second");
    let flow = scheme.flow();
    // Mix the flow into the sampling seed so different flows see
    // independent loss draws while schemes stay paired.
    let seed = config
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((flow.source.index() as u64) << 32 | flow.destination.index() as u64);

    let total_seconds = traces.duration().as_secs();
    let spacing = Micros::from_micros(1_000_000 / u64::from(config.packets_per_second));

    // Pending scheme updates: (observe_time, interval_start).
    let mut updates: Vec<(Micros, Micros)> = traces
        .interval_starts()
        .map(|start| (start.saturating_add(config.detection_lag), start))
        .collect();
    updates.reverse(); // pop from the back in chronological order

    let mut stats = FlowRunStats {
        scheme: scheme.kind(),
        flow,
        seconds: total_seconds,
        unavailable_seconds: 0,
        packets_sent: 0,
        packets_on_time: 0,
        packets_delivered: 0,
        packets_lost: 0,
        transmissions: 0,
        graph_changes: 0,
    };
    let mut records = Vec::with_capacity(total_seconds as usize);
    let mut latency = LatencyHistogram::new();
    let mut seq = 0u64;
    scratch.index_graph(topology, scheme.current());

    for second in 0..total_seconds {
        let mut sent = 0u64;
        let mut on_time = 0u64;
        for k in 0..u64::from(config.packets_per_second) {
            let t = Micros::from_secs(second).saturating_add(spacing.saturating_mul(k));
            // Apply monitoring updates that have become observable.
            while updates.last().is_some_and(|&(observe, _)| observe <= t) {
                let (_, interval_start) = updates.pop().expect("checked non-empty");
                let state = traces.state_at(interval_start);
                if scheme.update(topology, &state) {
                    stats.graph_changes += 1;
                    scratch.index_graph(topology, scheme.current());
                }
            }
            let outcome = simulate_packet_with(
                scratch,
                topology,
                scheme.current(),
                traces,
                t,
                config.deadline,
                &config.recovery,
                seed,
                seq,
            );
            seq += 1;
            sent += 1;
            stats.packets_sent += 1;
            stats.transmissions += outcome.transmissions;
            match outcome.delivered_at {
                Some(arrived) => {
                    stats.packets_delivered += 1;
                    latency.record(arrived.saturating_sub(t));
                }
                None => {
                    stats.packets_lost += 1;
                    latency.record_lost();
                }
            }
            if outcome.on_time {
                on_time += 1;
                stats.packets_on_time += 1;
            }
        }
        let unavailable = (on_time as f64) < config.availability_threshold * sent as f64;
        if unavailable {
            stats.unavailable_seconds += 1;
        }
        records.push(SecondRecord { second, sent, on_time, unavailable });
    }
    PlaybackOutput { stats, seconds: records, latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
    use dg_core::{Flow, ServiceRequirement};
    use dg_topology::presets;
    use dg_trace::LinkCondition;

    fn quick_config() -> PlaybackConfig {
        PlaybackConfig { packets_per_second: 20, ..PlaybackConfig::default() }
    }

    fn flow(g: &Graph) -> Flow {
        Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap())
    }

    fn scheme(g: &Graph, kind: SchemeKind) -> Box<dyn RoutingScheme> {
        build_scheme(kind, g, flow(g), ServiceRequirement::default(), &SchemeParams::default())
            .unwrap()
    }

    #[test]
    fn clean_trace_is_fully_available() {
        let g = presets::north_america_12();
        let traces = TraceSet::clean(g.edge_count(), 3, Micros::from_secs(10)).unwrap();
        let mut s = scheme(&g, SchemeKind::StaticSinglePath);
        let (stats, records) = run_flow_detailed(&g, &traces, s.as_mut(), &quick_config());
        assert_eq!(stats.seconds, 30);
        assert_eq!(stats.unavailable_seconds, 0);
        assert_eq!(stats.packets_sent, 600);
        assert_eq!(stats.packets_on_time, 600);
        assert_eq!(records.len(), 30);
        assert!(records.iter().all(|r| !r.unavailable && r.on_time == 20));
        // Single path cost: path length per packet.
        let expected = s.current().len() as u64 * 600;
        assert_eq!(stats.transmissions, expected);
    }

    #[test]
    fn dead_path_makes_static_single_unavailable() {
        let g = presets::north_america_12();
        let mut traces = TraceSet::clean(g.edge_count(), 3, Micros::from_secs(10)).unwrap();
        let mut s = scheme(&g, SchemeKind::StaticSinglePath);
        // Kill the whole middle interval on the scheme's path.
        for &e in s.current().edges() {
            traces.set_condition(e, 1, LinkCondition::down());
        }
        let (stats, records) = run_flow_detailed(&g, &traces, s.as_mut(), &quick_config());
        assert_eq!(stats.unavailable_seconds, 10);
        for r in &records {
            assert_eq!(r.unavailable, (10..20).contains(&r.second), "second {}", r.second);
        }
    }

    #[test]
    fn dynamic_single_recovers_after_detection_lag() {
        let g = presets::north_america_12();
        let mut traces = TraceSet::clean(g.edge_count(), 6, Micros::from_secs(10)).unwrap();
        let mut s = scheme(&g, SchemeKind::DynamicSinglePath);
        for &e in s.current().edges() {
            for i in 1..6 {
                traces.set_condition(e, i, LinkCondition::down());
            }
        }
        let (stats, records) = run_flow_detailed(&g, &traces, s.as_mut(), &quick_config());
        // Problem starts at second 10; detection at 11; from then on the
        // dynamic scheme routes around it.
        assert!(records[10].unavailable, "onset second is lost");
        for r in &records[12..] {
            assert!(!r.unavailable, "second {} should be recovered", r.second);
        }
        assert!(stats.graph_changes >= 1);
        assert!(stats.unavailable_seconds <= 2);
    }

    #[test]
    fn static_disjoint_survives_what_kills_single() {
        let g = presets::north_america_12();
        let mut traces = TraceSet::clean(g.edge_count(), 3, Micros::from_secs(10)).unwrap();
        let mut single = scheme(&g, SchemeKind::StaticSinglePath);
        let mut disjoint = scheme(&g, SchemeKind::StaticTwoDisjoint);
        for &e in single.current().edges() {
            traces.set_condition(e, 1, LinkCondition::down());
        }
        let cfg = quick_config();
        let s1 = run_flow(&g, &traces, single.as_mut(), &cfg);
        let s2 = run_flow(&g, &traces, disjoint.as_mut(), &cfg);
        assert_eq!(s1.unavailable_seconds, 10);
        // The second disjoint path shares at most the lossy-edge-free
        // portions; at least one disjoint route stays clean.
        assert_eq!(s2.unavailable_seconds, 0);
        assert!(s2.average_cost() > s1.average_cost());
    }

    #[test]
    fn availability_threshold_changes_the_verdict() {
        let g = presets::north_america_12();
        let mut traces = TraceSet::clean(g.edge_count(), 2, Micros::from_secs(10)).unwrap();
        let mut s = scheme(&g, SchemeKind::StaticSinglePath);
        // 20% loss on one path edge without recovery: most seconds see
        // some losses but far fewer than half.
        let victim = s.current().edges()[0];
        for i in 0..2 {
            traces.set_condition(victim, i, LinkCondition::new(0.2, Micros::ZERO));
        }
        let mut strict = quick_config();
        strict.recovery.enabled = false;
        let lenient = PlaybackConfig { availability_threshold: 0.5, ..strict };
        let a = run_flow(&g, &traces, s.as_mut(), &strict);
        let mut s2 = scheme(&g, SchemeKind::StaticSinglePath);
        let b = run_flow(&g, &traces, s2.as_mut(), &lenient);
        assert!(a.unavailable_seconds > 0);
        assert_eq!(b.unavailable_seconds, 0);
        assert_eq!(a.packets_on_time, b.packets_on_time, "paired draws");
    }

    #[test]
    fn detection_lag_delays_reaction() {
        let g = presets::north_america_12();
        let mut traces = TraceSet::clean(g.edge_count(), 4, Micros::from_secs(10)).unwrap();
        let mut s_fast = scheme(&g, SchemeKind::DynamicSinglePath);
        // Kill the path from interval 1 onward.
        for &e in s_fast.current().edges() {
            for i in 1..4 {
                traces.set_condition(e, i, LinkCondition::down());
            }
        }
        let fast = PlaybackConfig {
            packets_per_second: 20,
            detection_lag: Micros::from_millis(100),
            ..PlaybackConfig::default()
        };
        let slow = PlaybackConfig {
            packets_per_second: 20,
            detection_lag: Micros::from_secs(5),
            ..PlaybackConfig::default()
        };
        let a = run_flow(&g, &traces, s_fast.as_mut(), &fast);
        let mut s_slow = scheme(&g, SchemeKind::DynamicSinglePath);
        let b = run_flow(&g, &traces, s_slow.as_mut(), &slow);
        // Faster detection loses strictly fewer seconds: ~1 vs ~6.
        assert!(a.unavailable_seconds <= 2, "fast lag lost {}", a.unavailable_seconds);
        assert!(
            b.unavailable_seconds >= a.unavailable_seconds + 3,
            "slow {} vs fast {}",
            b.unavailable_seconds,
            a.unavailable_seconds
        );
    }

    #[test]
    fn graph_changes_are_counted() {
        let g = presets::north_america_12();
        let mut traces = TraceSet::clean(g.edge_count(), 4, Micros::from_secs(10)).unwrap();
        let s = scheme(&g, SchemeKind::DynamicSinglePath);
        // Problem appears in interval 1 and clears in interval 2.
        for &e in s.current().edges() {
            traces.set_condition(e, 1, LinkCondition::down());
        }
        // Zero hysteresis so the heal-back switch is counted too.
        let mut s = build_scheme(
            SchemeKind::DynamicSinglePath,
            &g,
            flow(&g),
            ServiceRequirement::default(),
            &SchemeParams { hysteresis: 0.0, ..SchemeParams::default() },
        )
        .unwrap();
        let stats = run_flow(&g, &traces, s.as_mut(), &quick_config());
        assert_eq!(stats.graph_changes, 2, "one switch away, one back");
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_rate_panics() {
        let g = presets::north_america_12();
        let traces = TraceSet::clean(g.edge_count(), 1, Micros::from_secs(1)).unwrap();
        let mut s = scheme(&g, SchemeKind::StaticSinglePath);
        let cfg = PlaybackConfig { packets_per_second: 0, ..PlaybackConfig::default() };
        run_flow(&g, &traces, s.as_mut(), &cfg);
    }
}
