//! Parallel flow playback.
//!
//! Flow replays are embarrassingly parallel: each `(scheme, flow)` job
//! reads the shared immutable topology and traces, mutates only its own
//! scheme and scratch arena, and every loss draw is a pure function of
//! the event coordinates `(seed, seq, edge, attempt)` — so execution
//! order cannot leak into results. [`run_flows`] exploits that shape:
//!
//! - schemes are pre-built **serially** through one shared
//!   [`GraphCache`], so the expensive dissemination-graph constructions
//!   are interned once (its baseline tier is immutable during the run)
//!   and construction errors surface in deterministic job order;
//! - replay jobs fan out over `threads` workers pulling from an atomic
//!   job index, each worker reusing **one** [`SimScratch`] arena
//!   (event heap, arrival table, forwarding index) across all the jobs
//!   it executes;
//! - results land in a slot-per-job vector, so the returned order is
//!   the input order regardless of which worker ran what, and every
//!   [`FlowRunStats`] is byte-identical to what the serial path
//!   produces for the same seed.

use crate::metrics::FlowRunStats;
use crate::packet::SimScratch;
use crate::playback::{run_flow_with, PlaybackConfig};
use dg_core::scheme::{RoutingScheme, SchemeKind};
use dg_core::{build_scheme_cached, CoreError, Flow, GraphCache, ServiceRequirement};
use dg_topology::Graph;
use dg_trace::TraceSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One unit of playback work: replay the traces for `flow` routed by a
/// freshly built `kind` scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowJob {
    /// The routing scheme to build for this job.
    pub kind: SchemeKind,
    /// The flow to replay.
    pub flow: Flow,
    /// The timeliness contract the scheme is built against.
    pub requirement: ServiceRequirement,
}

/// Replays every job in `jobs` against `traces`, fanned out over
/// `threads` worker threads (zero = one per CPU core), and returns one
/// [`FlowRunStats`] per job **in input order**.
///
/// Fixed-seed results are byte-identical to running the same jobs
/// serially (`threads == 1` included) — the equivalence the
/// `serial_and_parallel_runs_agree` test in `tests/parallel.rs` pins.
///
/// # Errors
///
/// Propagates scheme-construction failures (e.g. a flow without two
/// disjoint paths), in job order.
pub fn run_flows(
    topology: &Graph,
    traces: &TraceSet,
    jobs: &[FlowJob],
    config: &PlaybackConfig,
    threads: usize,
) -> Result<Vec<FlowRunStats>, CoreError> {
    let cache = GraphCache::new(topology.clone(), dg_core::scheme::SchemeParams::default());
    run_flows_cached(topology, traces, jobs, config, threads, &cache)
}

/// [`run_flows`] over a caller-provided scheme cache, so several runs
/// on the same topology (and the cluster side of an experiment) share
/// one set of precomputed dissemination graphs. Only the cache's
/// immutable baseline tier is read during the fan-out.
///
/// # Errors
///
/// Propagates scheme-construction failures, in job order.
pub fn run_flows_cached(
    topology: &Graph,
    traces: &TraceSet,
    jobs: &[FlowJob],
    config: &PlaybackConfig,
    threads: usize,
    cache: &GraphCache,
) -> Result<Vec<FlowRunStats>, CoreError> {
    // Build every scheme serially so errors surface deterministically
    // and all graph construction is interned through one cache.
    let mut built: Vec<Option<Box<dyn RoutingScheme>>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        built.push(Some(build_scheme_cached(job.kind, cache, job.flow, job.requirement)?));
    }
    let total = built.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    let threads = match threads {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
    .min(total);

    if threads == 1 {
        // The serial reference path: one scratch, jobs in order.
        let mut scratch = SimScratch::new();
        let mut out = Vec::with_capacity(total);
        for mut scheme in built.into_iter().flatten() {
            out.push(run_flow_with(topology, traces, scheme.as_mut(), config, &mut scratch));
        }
        return Ok(out);
    }

    let built = Mutex::new(built);
    let results: Mutex<Vec<Option<FlowRunStats>>> = Mutex::new(vec![None; total]);
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // One scratch arena per worker, reused across its jobs.
                let mut scratch = SimScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= total {
                        return;
                    }
                    let mut scheme =
                        built.lock().expect("jobs lock")[i].take().expect("each job taken once");
                    let stats =
                        run_flow_with(topology, traces, scheme.as_mut(), config, &mut scratch);
                    results.lock().expect("results lock")[i] = Some(stats);
                }
            });
        }
    })
    .expect("worker threads do not panic");

    Ok(results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};
    use dg_trace::gen::{self, SyntheticWanConfig};

    #[test]
    fn empty_job_list_is_fine() {
        let g = presets::north_america_12();
        let traces = TraceSet::clean(g.edge_count(), 1, Micros::from_secs(1)).unwrap();
        let out = run_flows(&g, &traces, &[], &PlaybackConfig::default(), 4).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn worker_counts_cannot_change_results() {
        let g = presets::north_america_12();
        let mut cfg = SyntheticWanConfig::calibrated(2);
        cfg.duration = Micros::from_secs(10);
        cfg.link_problems.events_per_hour = 30.0;
        let traces = gen::generate(&g, &cfg);
        let n = |name: &str| g.node_by_name(name).unwrap();
        let jobs: Vec<FlowJob> = [("NYC", "SJC"), ("WAS", "SEA"), ("ATL", "LAX")]
            .into_iter()
            .flat_map(|(s, t)| {
                [SchemeKind::StaticSinglePath, SchemeKind::TargetedRedundancy].map(|kind| FlowJob {
                    kind,
                    flow: Flow::new(n(s), n(t)),
                    requirement: ServiceRequirement::default(),
                })
            })
            .collect();
        let config = PlaybackConfig { packets_per_second: 10, seed: 7, ..Default::default() };
        let serial = run_flows(&g, &traces, &jobs, &config, 1).unwrap();
        for threads in [2, 5] {
            let parallel = run_flows(&g, &traces, &jobs, &config, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }
}
