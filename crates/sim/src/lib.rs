//! Playback network simulator for dissemination-graph routing.
//!
//! A reimplementation of the methodology behind the paper's evaluation
//! tool (the Playback Network Simulator): per-link loss and latency
//! conditions recorded in a [`dg_trace::TraceSet`] are *replayed*, and
//! application flows are simulated packet-by-packet over whichever
//! dissemination graph their routing scheme currently selects. Overlay
//! links perform hop-by-hop recovery limited to a single
//! retransmission, exactly like the real transport service.
//!
//! The headline metric is per-second **availability**: a second counts
//! as unavailable when the fraction of its packets delivered within the
//! deadline falls below the configured threshold.
//!
//! # Example
//!
//! ```
//! use dg_topology::presets;
//! use dg_trace::gen::{self, SyntheticWanConfig};
//! use dg_core::{Flow, scheme::{build_scheme, SchemeKind, SchemeParams}};
//! use dg_sim::{PlaybackConfig, run_flow};
//!
//! let g = presets::north_america_12();
//! let mut cfg = SyntheticWanConfig::calibrated(1);
//! cfg.duration = dg_topology::Micros::from_secs(30);
//! let traces = gen::generate(&g, &cfg);
//! let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
//! let mut scheme = build_scheme(
//!     SchemeKind::StaticTwoDisjoint, &g, flow,
//!     Default::default(), &SchemeParams::default(),
//! )?;
//! let stats = run_flow(&g, &traces, scheme.as_mut(), &PlaybackConfig::default());
//! assert_eq!(stats.seconds, 30);
//! # Ok::<(), dg_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
mod group;
mod histogram;
mod metrics;
mod packet;
mod parallel;
mod playback;
mod rng;

pub use group::{
    group_flows, run_group_with, run_groups, run_groups_fresh, run_unicast_static_with, GroupJob,
    GroupRunStats, ReceiverRunStats,
};
pub use histogram::LatencyHistogram;
pub use metrics::{gap_coverage, FlowRunStats, SecondRecord};
pub use packet::{
    simulate_group_packet_with, simulate_packet, simulate_packet_with, PacketOutcome,
    RecoveryModel, SimScratch,
};
pub use parallel::{run_flows, run_flows_cached, FlowJob};
pub use playback::{
    run_flow, run_flow_detailed, run_flow_full, run_flow_full_with, run_flow_with, PlaybackConfig,
    PlaybackOutput,
};
