//! Per-packet propagation through a dissemination graph.

use crate::rng::unit_sample;
use dg_core::{DisseminationGraph, MulticastGraph};
use dg_topology::{Graph, Micros};
use dg_trace::TraceSet;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The overlay's hop-by-hop recovery protocol, as the paper models it:
/// a lost packet is detected at the receiver when the following packet
/// arrives (one inter-packet gap later), a NACK travels back, and the
/// sender retransmits **once**. More retransmissions would blow the
/// latency budget, so a doubly-lost packet is abandoned on that link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryModel {
    /// Whether links attempt recovery at all.
    pub enabled: bool,
    /// Time for the receiver to notice the gap (≈ the flow's
    /// inter-packet spacing).
    pub gap_detection: Micros,
}

impl Default for RecoveryModel {
    fn default() -> Self {
        RecoveryModel { enabled: true, gap_detection: Micros::from_millis(10) }
    }
}

/// What happened to one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketOutcome {
    /// Earliest arrival time at the destination, if it arrived at all
    /// before nodes dropped it as expired.
    pub delivered_at: Option<Micros>,
    /// True when `delivered_at` is within the deadline.
    pub on_time: bool,
    /// Link transmissions performed (originals + retransmissions) —
    /// the per-packet cost.
    pub transmissions: u64,
}

/// Reusable per-flow simulation state, so replaying millions of packets
/// allocates nothing per packet.
///
/// Holds the event heap, a generation-stamped arrival table (cleared in
/// O(1) by bumping the generation), and a per-node index of the current
/// dissemination graph's forwarding edges — computed once per graph
/// instead of scanning every member edge at every node visit.
#[derive(Debug, Default)]
pub struct SimScratch {
    heap: BinaryHeap<Reverse<(Micros, dg_topology::NodeId)>>,
    arrival: Vec<(u64, Micros)>,
    generation: u64,
    /// `out[node] = ` the dissemination graph's edges leaving `node`.
    out: Vec<Vec<dg_topology::EdgeId>>,
}

impl SimScratch {
    /// Fresh scratch state; sized lazily on first use.
    pub fn new() -> Self {
        SimScratch::default()
    }

    /// Rebuilds the per-node forwarding index for `dgraph`. Call once
    /// per dissemination graph (and again whenever the scheme reroutes);
    /// [`simulate_packet_with`] then does O(out-degree) work per visit.
    pub fn index_graph(&mut self, topology: &Graph, dgraph: &DisseminationGraph) {
        self.index_edges(topology, dgraph.edges());
    }

    /// Rebuilds the per-node forwarding index for a multicast graph;
    /// one index then serves every receiver of the group.
    pub fn index_multicast(&mut self, topology: &Graph, mgraph: &MulticastGraph) {
        self.index_edges(topology, mgraph.edges());
    }

    /// Rebuilds the per-node forwarding index from a raw edge set.
    pub fn index_edges(&mut self, topology: &Graph, edges: &[dg_topology::EdgeId]) {
        let n = topology.node_count();
        self.out.iter_mut().for_each(Vec::clear);
        self.out.resize(n, Vec::new());
        for &e in edges {
            self.out[topology.edge(e).src.index()].push(e);
        }
    }

    fn begin(&mut self, n: usize) {
        self.heap.clear();
        self.generation += 1;
        if self.arrival.len() < n {
            self.arrival.resize(n, (0, Micros::ZERO));
        }
    }

    fn arrived(&self, node: usize) -> Option<Micros> {
        let (generation, at) = self.arrival[node];
        (generation == self.generation).then_some(at)
    }

    fn mark(&mut self, node: usize, at: Micros) {
        self.arrival[node] = (self.generation, at);
    }
}

/// Simulates one packet sent at `send_time` over `dgraph`.
///
/// Every node receiving the packet for the first time forwards it once
/// on each of its out-edges in the graph; duplicates are suppressed;
/// nodes drop packets that have already exceeded the deadline (the
/// deadline-aware service never forwards useless data). Loss draws are
/// deterministic in `(seed, edge, seq, attempt)`, making scheme
/// comparisons paired rather than noisy.
///
/// This convenience wrapper builds fresh scratch state per call; bulk
/// replays should hold a [`SimScratch`] and call
/// [`simulate_packet_with`].
#[allow(clippy::too_many_arguments)] // a flat hot-path signature beats a builder here
pub fn simulate_packet(
    topology: &Graph,
    dgraph: &DisseminationGraph,
    traces: &TraceSet,
    send_time: Micros,
    deadline: Micros,
    recovery: &RecoveryModel,
    seed: u64,
    seq: u64,
) -> PacketOutcome {
    let mut scratch = SimScratch::new();
    scratch.index_graph(topology, dgraph);
    simulate_packet_with(
        &mut scratch,
        topology,
        dgraph,
        traces,
        send_time,
        deadline,
        recovery,
        seed,
        seq,
    )
}

/// [`simulate_packet`] against caller-held [`SimScratch`] — the
/// allocation-free bulk-replay path. The scratch must have been indexed
/// for `dgraph` via [`SimScratch::index_graph`].
#[allow(clippy::too_many_arguments)] // a flat hot-path signature beats a builder here
pub fn simulate_packet_with(
    scratch: &mut SimScratch,
    topology: &Graph,
    dgraph: &DisseminationGraph,
    traces: &TraceSet,
    send_time: Micros,
    deadline: Micros,
    recovery: &RecoveryModel,
    seed: u64,
    seq: u64,
) -> PacketOutcome {
    let expiry = send_time.saturating_add(deadline);
    let transmissions = propagate(
        scratch,
        topology,
        dgraph.source(),
        traces,
        send_time,
        expiry,
        recovery,
        seed,
        seq,
    );
    let delivered_at = scratch.arrived(dgraph.destination().index());
    PacketOutcome {
        delivered_at,
        on_time: delivered_at.is_some_and(|t| t <= expiry),
        transmissions,
    }
}

/// Simulates one multicast packet over `mgraph`, reading every
/// receiver's outcome from a single propagation — the packet spreads
/// through the shared dissemination graph once, exactly as one overlay
/// send covers the whole group. `outcomes[i]` is the result for
/// `mgraph.receivers()[i]`; the returned count is the packet's total
/// link transmissions (the shared group cost). The scratch must have
/// been indexed via [`SimScratch::index_multicast`].
#[allow(clippy::too_many_arguments)] // a flat hot-path signature beats a builder here
pub fn simulate_group_packet_with(
    scratch: &mut SimScratch,
    topology: &Graph,
    mgraph: &MulticastGraph,
    traces: &TraceSet,
    send_time: Micros,
    deadline: Micros,
    recovery: &RecoveryModel,
    seed: u64,
    seq: u64,
    outcomes: &mut Vec<PacketOutcome>,
) -> u64 {
    let expiry = send_time.saturating_add(deadline);
    let transmissions = propagate(
        scratch,
        topology,
        mgraph.source(),
        traces,
        send_time,
        expiry,
        recovery,
        seed,
        seq,
    );
    outcomes.clear();
    outcomes.extend(mgraph.receivers().iter().map(|r| {
        let delivered_at = scratch.arrived(r.index());
        PacketOutcome {
            delivered_at,
            on_time: delivered_at.is_some_and(|t| t <= expiry),
            transmissions,
        }
    }));
    transmissions
}

/// The shared propagation core: first-arrival times at every node the
/// packet reaches are left in the scratch's arrival table for the
/// caller to read (one node for unicast, the receiver set for
/// multicast). Returns the packet's link transmissions.
#[allow(clippy::too_many_arguments)]
fn propagate(
    scratch: &mut SimScratch,
    topology: &Graph,
    source: dg_topology::NodeId,
    traces: &TraceSet,
    send_time: Micros,
    expiry: Micros,
    recovery: &RecoveryModel,
    seed: u64,
    seq: u64,
) -> u64 {
    let mut transmissions = 0u64;
    scratch.begin(topology.node_count());
    scratch.heap.push(Reverse((send_time, source)));

    while let Some(Reverse((t, u))) = scratch.heap.pop() {
        if scratch.arrived(u.index()).is_some() {
            continue;
        }
        scratch.mark(u.index(), t);
        if t > expiry {
            // Expired packets are not forwarded further.
            continue;
        }
        for i in 0..scratch.out[u.index()].len() {
            let e = scratch.out[u.index()][i];
            let cond = traces.condition_at(e, t);
            let latency = topology.edge(e).latency.saturating_add(cond.extra_latency);
            transmissions += 1;
            if unit_sample(seed, e.index() as u32, seq, 0) >= cond.loss_rate {
                scratch.heap.push(Reverse((t.saturating_add(latency), topology.edge(e).dst)));
            } else if recovery.enabled {
                // Lost: receiver detects the gap one inter-packet spacing
                // after the packet would have arrived, NACKs back, and the
                // source of the link retransmits once.
                transmissions += 1;
                if unit_sample(seed, e.index() as u32, seq, 1) >= cond.loss_rate {
                    let recovered = t
                        .saturating_add(recovery.gap_detection)
                        .saturating_add(latency.saturating_mul(3));
                    scratch.heap.push(Reverse((recovered, topology.edge(e).dst)));
                }
            }
        }
    }
    transmissions
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_core::Flow;
    use dg_topology::algo::{dijkstra, disjoint};
    use dg_topology::{presets, EdgeId};
    use dg_trace::{LinkCondition, TraceSet};

    fn setup() -> (Graph, DisseminationGraph, TraceSet, Flow) {
        let g = presets::north_america_12();
        let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
        let p = dijkstra::shortest_path(&g, flow.source, flow.destination).unwrap();
        let dg = DisseminationGraph::from_path(&g, &p);
        let traces = TraceSet::clean(g.edge_count(), 10, Micros::from_secs(10)).unwrap();
        (g, dg, traces, flow)
    }

    use dg_topology::Graph;

    const DEADLINE: Micros = Micros::from_millis(65);

    #[test]
    fn clean_network_delivers_at_path_latency() {
        let (g, dg, traces, _) = setup();
        let out = simulate_packet(
            &g,
            &dg,
            &traces,
            Micros::ZERO,
            DEADLINE,
            &RecoveryModel::default(),
            1,
            0,
        );
        assert!(out.on_time);
        assert_eq!(out.delivered_at, Some(dg.best_latency(&g)));
        assert_eq!(out.transmissions, dg.len() as u64);
    }

    #[test]
    fn dead_path_without_recovery_loses_packet() {
        let (g, dg, mut traces, _) = setup();
        let victim = dg.edges()[0];
        for i in 0..traces.interval_count() {
            traces.set_condition(victim, i, LinkCondition::down());
        }
        let out = simulate_packet(
            &g,
            &dg,
            &traces,
            Micros::ZERO,
            DEADLINE,
            &RecoveryModel { enabled: false, gap_detection: Micros::ZERO },
            1,
            0,
        );
        assert!(!out.on_time);
        assert_eq!(out.delivered_at, None);
    }

    #[test]
    fn recovery_saves_single_losses_on_time() {
        let (g, dg, mut traces, _) = setup();
        // Moderate loss on one edge: find a seq where the first attempt
        // fails but the retransmission succeeds.
        let victim = dg.edges()[0];
        for i in 0..traces.interval_count() {
            traces.set_condition(victim, i, LinkCondition::new(0.5, Micros::ZERO));
        }
        let recovery = RecoveryModel { enabled: true, gap_detection: Micros::from_millis(2) };
        let mut saw_recovered_on_time = false;
        for seq in 0..200 {
            let first = crate::rng::unit_sample(1, victim.index() as u32, seq, 0) < 0.5;
            let second = crate::rng::unit_sample(1, victim.index() as u32, seq, 1) < 0.5;
            let out = simulate_packet(&g, &dg, &traces, Micros::ZERO, DEADLINE, &recovery, 1, seq);
            if first && !second {
                assert!(out.on_time, "recovered packet should still meet 65ms");
                // Recovery replaces the hop's 1x latency with gap + 3x,
                // i.e. a penalty of gap + 2x over the clean path.
                let base = dg.best_latency(&g);
                let penalty =
                    Micros::from_millis(2).saturating_add(g.edge(victim).latency.saturating_mul(2));
                assert_eq!(out.delivered_at, Some(base + penalty));
                assert_eq!(out.transmissions, dg.len() as u64 + 1);
                saw_recovered_on_time = true;
            } else if first && second {
                assert_eq!(out.delivered_at, None, "double loss is abandoned");
            }
        }
        assert!(saw_recovered_on_time, "expected at least one recovered packet");
    }

    #[test]
    fn disjoint_pair_survives_one_dead_path() {
        let (g, _, mut traces, flow) = setup();
        let (p1, p2) = disjoint::disjoint_pair(
            &g,
            flow.source,
            flow.destination,
            disjoint::Disjointness::Node,
        )
        .unwrap();
        let dg = DisseminationGraph::from_paths(&g, &[p1.clone(), p2]).unwrap();
        for &e in p1.edges() {
            for i in 0..traces.interval_count() {
                traces.set_condition(e, i, LinkCondition::down());
            }
        }
        let out = simulate_packet(
            &g,
            &dg,
            &traces,
            Micros::ZERO,
            DEADLINE,
            &RecoveryModel::default(),
            7,
            3,
        );
        assert!(out.on_time, "second disjoint path should deliver");
    }

    #[test]
    fn expired_packets_stop_spreading() {
        let (g, dg, mut traces, _) = setup();
        // Huge extra latency on every edge: packet arrives late at the
        // first hop and is not forwarded.
        for e in g.edges() {
            for i in 0..traces.interval_count() {
                traces.set_condition(e, i, LinkCondition::new(0.0, Micros::from_millis(100)));
            }
        }
        let out = simulate_packet(
            &g,
            &dg,
            &traces,
            Micros::ZERO,
            DEADLINE,
            &RecoveryModel::default(),
            1,
            0,
        );
        assert_eq!(out.delivered_at, None);
        assert!(!out.on_time);
        // Only the source's own transmissions happened.
        assert_eq!(out.transmissions, 1);
    }

    #[test]
    fn conditions_are_read_at_send_time() {
        let (g, dg, mut traces, _) = setup();
        let victim = dg.edges()[0];
        // Interval 1 (10s..20s) is dead, the rest clean; no recovery so
        // the loss is decisive.
        traces.set_condition(victim, 1, LinkCondition::down());
        let no_rec = RecoveryModel { enabled: false, gap_detection: Micros::ZERO };
        let ok = simulate_packet(&g, &dg, &traces, Micros::from_secs(5), DEADLINE, &no_rec, 1, 0);
        assert!(ok.on_time);
        let bad = simulate_packet(&g, &dg, &traces, Micros::from_secs(15), DEADLINE, &no_rec, 1, 0);
        assert!(!bad.on_time);
    }

    #[test]
    fn same_seed_is_reproducible_and_seeds_differ() {
        let (g, dg, mut traces, _) = setup();
        for e in g.edges() {
            for i in 0..traces.interval_count() {
                traces.set_condition(e, i, LinkCondition::new(0.3, Micros::ZERO));
            }
        }
        let rec = RecoveryModel::default();
        let a = simulate_packet(&g, &dg, &traces, Micros::ZERO, DEADLINE, &rec, 5, 9);
        let b = simulate_packet(&g, &dg, &traces, Micros::ZERO, DEADLINE, &rec, 5, 9);
        assert_eq!(a, b);
        let outcomes: std::collections::HashSet<bool> = (0..50)
            .map(|seq| {
                simulate_packet(&g, &dg, &traces, Micros::ZERO, DEADLINE, &rec, 5, seq).on_time
            })
            .collect();
        assert_eq!(outcomes.len(), 2, "30% loss should produce both outcomes");
    }

    #[test]
    fn flooding_costs_every_reachable_edge() {
        let (g, _, traces, flow) = setup();
        let edges = dg_topology::algo::reach::time_constrained_edges(
            &g,
            flow.source,
            flow.destination,
            DEADLINE,
        )
        .unwrap();
        let dg = DisseminationGraph::new(&g, flow.source, flow.destination, edges).unwrap();
        let out = simulate_packet(
            &g,
            &dg,
            &traces,
            Micros::ZERO,
            DEADLINE,
            &RecoveryModel::default(),
            1,
            0,
        );
        assert!(out.on_time);
        // On a clean network every member edge whose tail is reached
        // before expiry transmits once. All tails are reachable within
        // the deadline by construction, so cost == graph size.
        assert_eq!(out.transmissions, dg.len() as u64);
        let _ = EdgeId::new(0);
    }
}
