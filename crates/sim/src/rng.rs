//! Deterministic per-event sampling.
//!
//! Loss draws are a pure function of `(seed, edge, packet seq,
//! attempt)` rather than a sequential RNG stream. This makes scheme
//! comparisons *paired*: every scheme replaying the same trace sees
//! identical loss outcomes on identical (edge, packet) events, so
//! differences between schemes reflect routing, not sampling noise.

/// SplitMix64 finalizer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform sample in `[0, 1)` determined by the event coordinates.
pub fn unit_sample(seed: u64, edge: u32, seq: u64, attempt: u32) -> f64 {
    let mut h = splitmix64(seed);
    h = splitmix64(h ^ u64::from(edge));
    h = splitmix64(h ^ seq);
    h = splitmix64(h ^ u64::from(attempt));
    // 53 random bits into the mantissa range.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(unit_sample(1, 2, 3, 0), unit_sample(1, 2, 3, 0));
    }

    #[test]
    fn coordinates_matter() {
        let base = unit_sample(1, 2, 3, 0);
        assert_ne!(base, unit_sample(2, 2, 3, 0));
        assert_ne!(base, unit_sample(1, 3, 3, 0));
        assert_ne!(base, unit_sample(1, 2, 4, 0));
        assert_ne!(base, unit_sample(1, 2, 3, 1));
    }

    #[test]
    fn in_unit_interval_and_roughly_uniform() {
        let n = 10_000;
        let mut sum = 0.0;
        for seq in 0..n {
            let s = unit_sample(42, 7, seq, 0);
            assert!((0.0..1.0).contains(&s));
            sum += s;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn loss_frequency_tracks_probability() {
        let n = 20_000;
        let p = 0.3;
        let losses = (0..n).filter(|&seq| unit_sample(9, 1, seq, 0) < p).count();
        let freq = losses as f64 / n as f64;
        assert!((freq - p).abs() < 0.02, "freq {freq}");
    }
}
