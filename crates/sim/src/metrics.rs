//! Per-flow run statistics and the paper's gap-coverage metric.

use dg_core::scheme::SchemeKind;
use dg_core::Flow;
use serde::{Deserialize, Serialize};

/// What happened during one second of a flow's playback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecondRecord {
    /// Second index from the start of the trace.
    pub second: u64,
    /// Packets sent in this second.
    pub sent: u64,
    /// Packets delivered within the deadline.
    pub on_time: u64,
    /// Whether the second counted as unavailable.
    pub unavailable: bool,
}

/// Aggregate result of replaying one flow under one scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRunStats {
    /// The scheme that was driven.
    pub scheme: SchemeKind,
    /// The flow replayed.
    pub flow: Flow,
    /// Seconds simulated.
    pub seconds: u64,
    /// Seconds in which the timeliness contract was violated.
    pub unavailable_seconds: u64,
    /// Packets sent.
    pub packets_sent: u64,
    /// Packets delivered within the deadline.
    pub packets_on_time: u64,
    /// Packets delivered at all (on time or late).
    pub packets_delivered: u64,
    /// Packets sent but never delivered.
    pub packets_lost: u64,
    /// Total link transmissions (the cost numerator).
    pub transmissions: u64,
    /// Times the scheme changed its dissemination graph.
    pub graph_changes: u64,
}

impl FlowRunStats {
    /// Fraction of seconds that met the contract.
    pub fn availability(&self) -> f64 {
        if self.seconds == 0 {
            return 1.0;
        }
        1.0 - self.unavailable_seconds as f64 / self.seconds as f64
    }

    /// Fraction of packets delivered on time.
    pub fn on_time_fraction(&self) -> f64 {
        if self.packets_sent == 0 {
            return 1.0;
        }
        self.packets_on_time as f64 / self.packets_sent as f64
    }

    /// Average link transmissions per message — the paper's cost.
    pub fn average_cost(&self) -> f64 {
        if self.packets_sent == 0 {
            return 0.0;
        }
        self.transmissions as f64 / self.packets_sent as f64
    }

    /// Merges another run (e.g. a different flow or week) into this one.
    pub fn merge(&mut self, other: &FlowRunStats) {
        self.seconds += other.seconds;
        self.unavailable_seconds += other.unavailable_seconds;
        self.packets_sent += other.packets_sent;
        self.packets_on_time += other.packets_on_time;
        self.packets_delivered += other.packets_delivered;
        self.packets_lost += other.packets_lost;
        self.transmissions += other.transmissions;
        self.graph_changes += other.graph_changes;
    }
}

/// The paper's headline metric: what fraction of the gap between the
/// single-path baseline and the optimal scheme a given scheme covers.
///
/// `coverage = (baseline - scheme) / (baseline - optimal)`, in
/// unavailable seconds. Returns 1.0 when the baseline already matches
/// the optimum (no gap to cover).
///
/// # Example
///
/// ```
/// // Single path lost 100 s, flooding 2 s; a scheme losing 30 s
/// // covered ~71% of the gap.
/// let c = dg_sim::gap_coverage(100, 2, 30);
/// assert!((c - 0.714).abs() < 0.01);
/// ```
pub fn gap_coverage(
    baseline_unavailable: u64,
    optimal_unavailable: u64,
    scheme_unavailable: u64,
) -> f64 {
    let gap = baseline_unavailable.saturating_sub(optimal_unavailable);
    if gap == 0 {
        return 1.0;
    }
    let covered = baseline_unavailable.saturating_sub(scheme_unavailable);
    covered as f64 / gap as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::NodeId;

    fn stats(unavail: u64, sent: u64, on_time: u64, tx: u64) -> FlowRunStats {
        FlowRunStats {
            scheme: SchemeKind::StaticSinglePath,
            flow: Flow::new(NodeId::new(0), NodeId::new(1)),
            seconds: 100,
            unavailable_seconds: unavail,
            packets_sent: sent,
            packets_on_time: on_time,
            packets_delivered: on_time,
            packets_lost: sent - on_time,
            transmissions: tx,
            graph_changes: 0,
        }
    }

    #[test]
    fn ratios() {
        let s = stats(5, 1_000, 990, 4_000);
        assert!((s.availability() - 0.95).abs() < 1e-12);
        assert!((s.on_time_fraction() - 0.99).abs() < 1e-12);
        assert!((s.average_cost() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_vacuously_available() {
        let mut s = stats(0, 0, 0, 0);
        s.seconds = 0;
        assert_eq!(s.availability(), 1.0);
        assert_eq!(s.on_time_fraction(), 1.0);
        assert_eq!(s.average_cost(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = stats(5, 1_000, 990, 4_000);
        let b = stats(3, 1_000, 999, 4_100);
        a.merge(&b);
        assert_eq!(a.seconds, 200);
        assert_eq!(a.unavailable_seconds, 8);
        assert_eq!(a.packets_sent, 2_000);
        assert_eq!(a.packets_lost, 11);
        assert_eq!(a.transmissions, 8_100);
    }

    #[test]
    fn gap_coverage_bounds() {
        // Baseline 100s unavailable, optimal 2s.
        assert!((gap_coverage(100, 2, 100) - 0.0).abs() < 1e-12);
        assert!((gap_coverage(100, 2, 2) - 1.0).abs() < 1e-12);
        let half = gap_coverage(100, 2, 51);
        assert!((half - 0.5).abs() < 1e-12);
        // No gap at all.
        assert_eq!(gap_coverage(5, 5, 7), 1.0);
        // A scheme worse than baseline floors at 0 via saturation.
        assert_eq!(gap_coverage(100, 2, 150), 0.0);
    }
}
