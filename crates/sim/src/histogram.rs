//! Latency distributions.
//!
//! The playback simulator records every delivered packet's one-way
//! latency into a log-spaced histogram, cheap enough to keep per run
//! and precise enough for the percentiles a timeliness evaluation
//! reports (P50/P99/P99.9 and full CDFs).

use dg_topology::Micros;
use serde::{Deserialize, Serialize};

/// Number of log-spaced buckets: 128 buckets over [100 µs, ~1.6 s) at
/// ~7.3% relative width each.
const BUCKETS: usize = 128;
/// Lower edge of the first bucket.
const FLOOR_US: f64 = 100.0;
/// Per-bucket growth factor; 128 buckets * ln(1.073) spans ~8000x.
const GROWTH: f64 = 1.073;

/// A log-spaced latency histogram with undeliverable-packet tracking.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    /// Latencies below the first bucket.
    underflow: u64,
    /// Latencies beyond the last bucket.
    overflow: u64,
    /// Packets that never arrived (counted for loss-aware percentiles).
    lost: u64,
    total_recorded: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            underflow: 0,
            overflow: 0,
            lost: 0,
            total_recorded: 0,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(latency: Micros) -> Option<usize> {
        let us = latency.as_micros() as f64;
        if us < FLOOR_US {
            return None;
        }
        let idx = ((us / FLOOR_US).ln() / GROWTH.ln()) as usize;
        (idx < BUCKETS).then_some(idx)
    }

    /// Upper edge of bucket `i` in microseconds.
    fn bucket_edge(i: usize) -> Micros {
        Micros::from_micros((FLOOR_US * GROWTH.powi(i as i32 + 1)).round() as u64)
    }

    /// Records one delivered packet's latency.
    pub fn record(&mut self, latency: Micros) {
        self.total_recorded += 1;
        match Self::bucket_of(latency) {
            Some(i) => self.counts[i] += 1,
            None if latency.as_micros() < FLOOR_US as u64 => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Records a packet that was never delivered.
    pub fn record_lost(&mut self) {
        self.lost += 1;
    }

    /// Delivered packets recorded.
    pub fn delivered(&self) -> u64 {
        self.total_recorded
    }

    /// Lost packets recorded.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Latency at or below which fraction `q` (of *all* packets,
    /// delivered and lost) falls; `None` when that quantile sits in the
    /// lost tail (the packet never arrived) or nothing was recorded.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    pub fn quantile(&self, q: f64) -> Option<Micros> {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let total = self.total_recorded + self.lost;
        if total == 0 {
            return None;
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(Micros::from_micros(FLOOR_US as u64));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Some(Self::bucket_edge(i));
            }
        }
        seen += self.overflow;
        if rank <= seen {
            return Some(Self::bucket_edge(BUCKETS - 1));
        }
        None // the quantile falls among lost packets
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.lost += other.lost;
        self.total_recorded += other.total_recorded;
    }

    /// The CDF as `(latency upper edge, cumulative fraction of all
    /// packets)` pairs over non-empty buckets.
    pub fn cdf(&self) -> Vec<(Micros, f64)> {
        let total = (self.total_recorded + self.lost) as f64;
        if total == 0.0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut cum = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                cum += c;
                out.push((Self::bucket_edge(i), cum as f64 / total));
            }
        }
        if self.overflow > 0 {
            cum += self.overflow;
            out.push((Self::bucket_edge(BUCKETS - 1), cum as f64 / total));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn quantiles_bracket_recorded_values() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1_000 {
            h.record(Micros::from_millis(30));
        }
        let p50 = h.quantile(0.5).unwrap();
        // Log buckets: the answer is within one bucket (~7.3%) of 30 ms.
        assert!(p50 >= Micros::from_millis(28) && p50 <= Micros::from_millis(33), "p50 {p50}");
        assert_eq!(h.quantile(1.0).unwrap(), p50);
    }

    #[test]
    fn lost_packets_push_high_quantiles_to_none() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Micros::from_millis(10));
        }
        for _ in 0..10 {
            h.record_lost();
        }
        assert!(h.quantile(0.9).is_some());
        assert_eq!(h.quantile(0.95), None, "the tail is lost packets");
        assert_eq!(h.delivered(), 90);
        assert_eq!(h.lost(), 10);
    }

    #[test]
    fn distribution_orders_quantiles() {
        let mut h = LatencyHistogram::new();
        for ms in [5u64, 10, 20, 40, 80, 160] {
            for _ in 0..100 {
                h.record(Micros::from_millis(ms));
            }
        }
        let p10 = h.quantile(0.1).unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p10 < p50 && p50 < p99, "{p10} {p50} {p99}");
        assert!(p99 >= Micros::from_millis(150));
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // CDF is monotone.
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn extremes_land_in_under_and_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(Micros::from_micros(10)); // below floor
        h.record(Micros::from_secs(100)); // above ceiling
        assert_eq!(h.delivered(), 2);
        assert!(h.quantile(0.5).is_some());
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Micros::from_millis(10));
        b.record(Micros::from_millis(10));
        b.record_lost();
        a.merge(&b);
        assert_eq!(a.delivered(), 2);
        assert_eq!(a.lost(), 1);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn zero_quantile_panics() {
        LatencyHistogram::new().quantile(0.0);
    }
}
