//! Multi-flow, multi-scheme comparison experiments (the Table 2 engine).

use crate::metrics::{gap_coverage, FlowRunStats};
use crate::parallel::{run_flows_cached, FlowJob};
use crate::playback::{run_flow, PlaybackConfig};
use dg_core::scheme::{SchemeKind, SchemeParams};
use dg_core::{build_scheme_cached, CoreError, Flow, GraphCache, ServiceRequirement, SlaClass};
use dg_topology::{Graph, NodeId};
use dg_trace::TraceSet;
use serde::{Deserialize, Serialize};

/// Full configuration of a comparison experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Scheme construction tunables.
    pub scheme_params: SchemeParams,
    /// The flows' timeliness contract.
    pub requirement: ServiceRequirement,
    /// Playback parameters.
    pub playback: PlaybackConfig,
}

/// A validation failure from [`ExperimentConfigBuilder::build`]: the
/// violated rule, in prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidExperiment(pub &'static str);

impl std::fmt::Display for InvalidExperiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid experiment configuration: {}", self.0)
    }
}

impl std::error::Error for InvalidExperiment {}

impl ExperimentConfig {
    /// Starts a builder seeded with the paper's defaults.
    ///
    /// Prefer this over struct-literal construction: [`build`] rejects
    /// internally inconsistent knobs (a zero packet rate, a threshold
    /// outside `(0, 1]`, a zero deadline) instead of letting them
    /// surface as panics or nonsense mid-run.
    ///
    /// [`build`]: ExperimentConfigBuilder::build
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder { config: ExperimentConfig::default() }
    }
}

/// Builder for [`ExperimentConfig`] with validated defaults.
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the scheme construction tunables.
    #[must_use]
    pub fn scheme_params(mut self, params: SchemeParams) -> Self {
        self.config.scheme_params = params;
        self
    }

    /// Sets the flows' timeliness contract.
    #[must_use]
    pub fn requirement(mut self, requirement: ServiceRequirement) -> Self {
        self.config.requirement = requirement;
        self
    }

    /// Sets the full playback parameter block.
    #[must_use]
    pub fn playback(mut self, playback: PlaybackConfig) -> Self {
        self.config.playback = playback;
        self
    }

    /// Sets the application packet rate.
    #[must_use]
    pub fn packets_per_second(mut self, rate: u32) -> Self {
        self.config.playback.packets_per_second = rate;
        self
    }

    /// Sets the one-way delivery deadline (both the playback cutoff
    /// and the schemes' timeliness contract).
    #[must_use]
    pub fn deadline(mut self, deadline: dg_topology::Micros) -> Self {
        self.config.playback.deadline = deadline;
        self.config.requirement.deadline = deadline;
        self
    }

    /// Sets the per-second availability threshold.
    #[must_use]
    pub fn availability_threshold(mut self, threshold: f64) -> Self {
        self.config.playback.availability_threshold = threshold;
        self
    }

    /// Sets the seed for the deterministic loss draws.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.playback.seed = seed;
        self
    }

    /// Validates the knobs and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidExperiment`] naming the first violated rule.
    pub fn build(self) -> Result<ExperimentConfig, InvalidExperiment> {
        let p = &self.config.playback;
        if p.packets_per_second == 0 {
            return Err(InvalidExperiment("packets_per_second must be positive"));
        }
        if p.deadline == dg_topology::Micros::ZERO {
            return Err(InvalidExperiment("deadline must be positive"));
        }
        if !(p.availability_threshold > 0.0 && p.availability_threshold <= 1.0) {
            return Err(InvalidExperiment("availability_threshold must be in (0, 1]"));
        }
        if self.config.requirement.deadline == dg_topology::Micros::ZERO {
            return Err(InvalidExperiment("requirement deadline must be positive"));
        }
        if p.deadline < self.config.requirement.deadline {
            return Err(InvalidExperiment(
                "playback deadline must not be tighter than the schemes' requirement",
            ));
        }
        Ok(self.config)
    }
}

/// One scheme's aggregate over all flows (one row of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeAggregate {
    /// The scheme.
    pub kind: SchemeKind,
    /// Sum over flows.
    pub totals: FlowRunStats,
    /// The individual flow runs (for per-flow figures).
    pub per_flow: Vec<FlowRunStats>,
}

impl SchemeAggregate {
    /// Availability over all flow-seconds.
    pub fn availability(&self) -> f64 {
        self.totals.availability()
    }

    /// Average cost per message over all packets.
    pub fn average_cost(&self) -> f64 {
        self.totals.average_cost()
    }
}

/// Runs every scheme in `kinds` over every flow against `traces`.
///
/// All schemes replay identical traces with paired loss draws, so the
/// comparison isolates routing differences.
///
/// # Errors
///
/// Propagates scheme-construction failures (e.g. a flow without two
/// disjoint paths).
pub fn run_comparison(
    topology: &Graph,
    traces: &TraceSet,
    flows: &[(NodeId, NodeId)],
    kinds: &[SchemeKind],
    config: &ExperimentConfig,
) -> Result<Vec<SchemeAggregate>, CoreError> {
    // One cache per run: the expensive graph constructions (disjoint
    // pairs, targeted bundles) are shared across the schemes that need
    // them instead of being recomputed per (kind, flow).
    let cache = GraphCache::new(topology.clone(), config.scheme_params);
    let mut out = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let mut per_flow = Vec::with_capacity(flows.len());
        for &(s, t) in flows {
            let flow = Flow::new(s, t);
            let mut scheme = build_scheme_cached(kind, &cache, flow, config.requirement)?;
            per_flow.push(run_flow(topology, traces, scheme.as_mut(), &config.playback));
        }
        let mut totals = per_flow[0];
        for f in &per_flow[1..] {
            totals.merge(f);
        }
        out.push(SchemeAggregate { kind, totals, per_flow });
    }
    Ok(out)
}

/// Evaluates each SLA service class under its own scheme preference
/// and deadline budget — bulk on a dynamic single path at 250 ms,
/// timely on two disjoint paths at 100 ms, surgical on a targeted
/// graph at 65 ms — over identical traces. This is the simulator-side
/// counterpart of the overlay's per-class bindings: it sizes, offline,
/// what each class's redundancy budget buys in timeliness, the numbers
/// an operator needs before writing an `--sla-json` plan.
///
/// # Errors
///
/// Propagates scheme-construction failures (e.g. a flow without two
/// disjoint paths).
pub fn run_sla_comparison(
    topology: &Graph,
    traces: &TraceSet,
    flows: &[(NodeId, NodeId)],
    config: &ExperimentConfig,
) -> Result<Vec<(SlaClass, SchemeAggregate)>, CoreError> {
    let cache = GraphCache::new(topology.clone(), config.scheme_params);
    let mut out = Vec::with_capacity(SlaClass::ALL.len());
    for class in SlaClass::ALL {
        let requirement = class.requirement();
        let kind = class.preferred_scheme();
        let playback = PlaybackConfig { deadline: requirement.deadline, ..config.playback };
        let mut per_flow = Vec::with_capacity(flows.len());
        for &(s, t) in flows {
            let flow = Flow::new(s, t);
            let mut scheme = build_scheme_cached(kind, &cache, flow, requirement)?;
            per_flow.push(run_flow(topology, traces, scheme.as_mut(), &playback));
        }
        let mut totals = per_flow[0];
        for f in &per_flow[1..] {
            totals.merge(f);
        }
        out.push((class, SchemeAggregate { kind, totals, per_flow }));
    }
    Ok(out)
}

/// Like [`run_comparison`], fanning the per-(scheme, flow) runs out
/// over `threads` worker threads. Results are bit-identical to the
/// serial version (loss draws are a pure function of the event
/// coordinates, so execution order cannot matter).
///
/// # Errors
///
/// Propagates scheme-construction failures.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn run_comparison_parallel(
    topology: &Graph,
    traces: &TraceSet,
    flows: &[(NodeId, NodeId)],
    kinds: &[SchemeKind],
    config: &ExperimentConfig,
    threads: usize,
) -> Result<Vec<SchemeAggregate>, CoreError> {
    assert!(threads > 0, "at least one worker thread required");
    let cache = GraphCache::new(topology.clone(), config.scheme_params);
    let jobs: Vec<FlowJob> = kinds
        .iter()
        .flat_map(|&kind| {
            flows.iter().map(move |&(s, t)| FlowJob {
                kind,
                flow: Flow::new(s, t),
                requirement: config.requirement,
            })
        })
        .collect();
    let results = run_flows_cached(topology, traces, &jobs, &config.playback, threads, &cache)?;

    let flows_per_kind = flows.len();
    let mut out = Vec::with_capacity(kinds.len());
    for (ki, &kind) in kinds.iter().enumerate() {
        let per_flow: Vec<FlowRunStats> =
            results[ki * flows_per_kind..(ki + 1) * flows_per_kind].to_vec();
        let mut totals = per_flow[0];
        for f in &per_flow[1..] {
            totals.merge(f);
        }
        out.push(SchemeAggregate { kind, totals, per_flow });
    }
    Ok(out)
}

/// A Table-2-style row derived from a comparison run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRow {
    /// Scheme label.
    pub scheme: SchemeKind,
    /// Total unavailable seconds across flows.
    pub unavailable_seconds: u64,
    /// Availability percentage.
    pub availability_pct: f64,
    /// Fraction of the baseline-to-optimal gap covered.
    pub gap_coverage: f64,
    /// Average packets sent per message.
    pub average_cost: f64,
}

/// Derives Table-2 rows from aggregates, using `baseline` and
/// `optimal` (scheme kinds that must be present in `aggregates`) as the
/// endpoints of the gap-coverage metric.
///
/// # Panics
///
/// Panics if `baseline` or `optimal` is missing from `aggregates`.
pub fn tabulate(
    aggregates: &[SchemeAggregate],
    baseline: SchemeKind,
    optimal: SchemeKind,
) -> Vec<TableRow> {
    let base = aggregates
        .iter()
        .find(|a| a.kind == baseline)
        .expect("baseline scheme present")
        .totals
        .unavailable_seconds;
    let best = aggregates
        .iter()
        .find(|a| a.kind == optimal)
        .expect("optimal scheme present")
        .totals
        .unavailable_seconds;
    aggregates
        .iter()
        .map(|a| TableRow {
            scheme: a.kind,
            unavailable_seconds: a.totals.unavailable_seconds,
            availability_pct: a.availability() * 100.0,
            gap_coverage: gap_coverage(base, best, a.totals.unavailable_seconds),
            average_cost: a.average_cost(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::{presets, Micros};
    use dg_trace::gen::{self, SyntheticWanConfig};

    fn tiny_experiment() -> (Graph, TraceSet, Vec<(NodeId, NodeId)>) {
        let g = presets::north_america_12();
        let mut cfg = SyntheticWanConfig::calibrated(5);
        cfg.duration = Micros::from_secs(60);
        // Crank problems up so the short run actually contains some.
        cfg.node_problems.events_per_hour = 3.0;
        cfg.link_problems.events_per_hour = 2.0;
        let traces = gen::generate(&g, &cfg);
        let flows = vec![
            (g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap()),
            (g.node_by_name("WAS").unwrap(), g.node_by_name("SEA").unwrap()),
        ];
        (g, traces, flows)
    }

    #[test]
    fn comparison_covers_all_schemes_and_flows() {
        let (g, traces, flows) = tiny_experiment();
        let config = ExperimentConfig {
            playback: PlaybackConfig { packets_per_second: 10, ..Default::default() },
            ..Default::default()
        };
        let aggs = run_comparison(&g, &traces, &flows, &SchemeKind::ALL, &config).unwrap();
        assert_eq!(aggs.len(), 6);
        for a in &aggs {
            assert_eq!(a.per_flow.len(), 2);
            assert_eq!(a.totals.seconds, 120);
            assert!(a.totals.packets_sent == 1_200);
        }
        // Flooding is at least as available as everything else, and the
        // most expensive.
        let flood = aggs.iter().find(|a| a.kind == SchemeKind::TimeConstrainedFlooding).unwrap();
        for a in &aggs {
            assert!(
                flood.totals.unavailable_seconds <= a.totals.unavailable_seconds,
                "{} beat flooding",
                a.kind
            );
            assert!(flood.average_cost() >= a.average_cost());
        }
        // Single path is the cheapest.
        let single = aggs.iter().find(|a| a.kind == SchemeKind::StaticSinglePath).unwrap();
        for a in &aggs {
            assert!(single.average_cost() <= a.average_cost() + 1e-9);
        }
    }

    #[test]
    fn sla_comparison_binds_each_class_to_its_scheme() {
        let (g, traces, flows) = tiny_experiment();
        let config = ExperimentConfig {
            playback: PlaybackConfig { packets_per_second: 10, ..Default::default() },
            ..Default::default()
        };
        let aggs = run_sla_comparison(&g, &traces, &flows, &config).unwrap();
        assert_eq!(aggs.len(), SlaClass::ALL.len());
        for (class, agg) in &aggs {
            assert_eq!(agg.kind, class.preferred_scheme());
            assert_eq!(agg.per_flow.len(), flows.len());
        }
        // The classes spend strictly increasing redundancy budgets.
        let cost = |c: SlaClass| {
            aggs.iter().find(|(k, _)| *k == c).map(|(_, a)| a.average_cost()).unwrap()
        };
        assert!(cost(SlaClass::Bulk) <= cost(SlaClass::Timely) + 1e-9);
        assert!(cost(SlaClass::Timely) <= cost(SlaClass::Surgical) + 1e-9);
    }

    #[test]
    fn parallel_runner_matches_serial() {
        let (g, traces, flows) = tiny_experiment();
        let config = ExperimentConfig {
            playback: PlaybackConfig { packets_per_second: 10, ..Default::default() },
            ..Default::default()
        };
        let serial = run_comparison(&g, &traces, &flows, &SchemeKind::ALL, &config).unwrap();
        for threads in [1, 3] {
            let parallel =
                run_comparison_parallel(&g, &traces, &flows, &SchemeKind::ALL, &config, threads)
                    .unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn builder_defaults_match_default_and_validate() {
        let built = ExperimentConfig::builder().build().unwrap();
        assert_eq!(built, ExperimentConfig::default());
    }

    #[test]
    fn builder_rejects_inconsistent_knobs() {
        assert!(ExperimentConfig::builder().packets_per_second(0).build().is_err());
        assert!(ExperimentConfig::builder().availability_threshold(0.0).build().is_err());
        assert!(ExperimentConfig::builder().availability_threshold(1.5).build().is_err());
        assert!(ExperimentConfig::builder().deadline(Micros::ZERO).build().is_err());
        let err = ExperimentConfig::builder().packets_per_second(0).build().unwrap_err();
        assert!(err.to_string().contains("packets_per_second"));
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = ExperimentConfig::builder()
            .packets_per_second(250)
            .deadline(Micros::from_millis(80))
            .availability_threshold(0.999)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(cfg.playback.packets_per_second, 250);
        assert_eq!(cfg.playback.deadline, Micros::from_millis(80));
        assert_eq!(cfg.requirement.deadline, Micros::from_millis(80));
        assert_eq!(cfg.playback.seed, 42);
    }

    #[test]
    fn tabulate_produces_consistent_rows() {
        let (g, traces, flows) = tiny_experiment();
        let config = ExperimentConfig {
            playback: PlaybackConfig { packets_per_second: 10, ..Default::default() },
            ..Default::default()
        };
        let aggs = run_comparison(&g, &traces, &flows, &SchemeKind::ALL, &config).unwrap();
        let rows =
            tabulate(&aggs, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);
        assert_eq!(rows.len(), 6);
        let base = rows.iter().find(|r| r.scheme == SchemeKind::StaticSinglePath).unwrap();
        let best = rows.iter().find(|r| r.scheme == SchemeKind::TimeConstrainedFlooding).unwrap();
        if base.unavailable_seconds > best.unavailable_seconds {
            assert_eq!(base.gap_coverage, 0.0);
        }
        assert_eq!(best.gap_coverage, 1.0);
        for r in &rows {
            assert!((0.0..=100.0).contains(&r.availability_pct));
            assert!((0.0..=1.0).contains(&r.gap_coverage));
        }
    }
}
