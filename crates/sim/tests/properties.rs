//! Property tests of the packet-propagation model.

use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{DisseminationGraph, Flow, ServiceRequirement};
use dg_sim::{simulate_packet, RecoveryModel};
use dg_topology::{presets, EdgeId, Micros};
use dg_trace::{LinkCondition, TraceSet};
use proptest::prelude::*;

/// A one-interval trace with arbitrary (loss, extra-latency) per edge —
/// conditions constant in time, which makes dominance properties exact.
fn constant_trace(losses: &[(u32, f64, u64)], edges: usize) -> TraceSet {
    let mut t = TraceSet::clean(edges, 1, Micros::from_secs(3_600)).unwrap();
    for &(e, loss, extra_ms) in losses {
        t.set_condition(
            EdgeId::new(e % edges as u32),
            0,
            LinkCondition::new(loss, Micros::from_millis(extra_ms)),
        );
    }
    t
}

fn graphs() -> (dg_topology::Graph, Flow, Vec<DisseminationGraph>) {
    let g = presets::north_america_12();
    let flow = Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap());
    let dgs = [
        SchemeKind::StaticSinglePath,
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::TargetedRedundancy,
        SchemeKind::TimeConstrainedFlooding,
    ]
    .iter()
    .map(|&k| {
        build_scheme(k, &g, flow, ServiceRequirement::default(), &SchemeParams::default())
            .unwrap()
            .current()
            .clone()
    })
    .collect();
    (g, flow, dgs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under constant conditions with paired loss draws, the flooding
    /// graph (a superset of every scheme's graph) delivers at least as
    /// early as any other graph: adding edges can only help.
    #[test]
    fn flooding_dominates_under_constant_conditions(
        losses in proptest::collection::vec((0u32..60, 0.0f64..0.9, 0u64..5), 0..25),
        seq in 0u64..5_000,
    ) {
        let (g, _, dgs) = graphs();
        let traces = constant_trace(&losses, g.edge_count());
        let recovery = RecoveryModel::default();
        let deadline = Micros::from_millis(65);
        let flood = simulate_packet(
            &g, dgs.last().unwrap(), &traces, Micros::from_secs(1),
            deadline, &recovery, 99, seq,
        );
        for dg in &dgs[..dgs.len() - 1] {
            let out = simulate_packet(
                &g, dg, &traces, Micros::from_secs(1), deadline, &recovery, 99, seq,
            );
            if let Some(t) = out.delivered_at {
                let ft = flood.delivered_at.expect("flooding also delivers");
                prop_assert!(ft <= t, "flooding {ft} later than subgraph {t}");
            }
            prop_assert!(flood.on_time >= out.on_time);
        }
    }

    /// Cost accounting: without recovery, a packet transmits at most
    /// once per graph edge; with recovery, at most twice.
    #[test]
    fn transmission_counts_are_bounded(
        losses in proptest::collection::vec((0u32..60, 0.0f64..1.0, 0u64..3), 0..30),
        seq in 0u64..5_000,
    ) {
        let (g, _, dgs) = graphs();
        let traces = constant_trace(&losses, g.edge_count());
        let deadline = Micros::from_millis(65);
        for dg in &dgs {
            let plain = simulate_packet(
                &g, dg, &traces, Micros::ZERO, deadline,
                &RecoveryModel { enabled: false, gap_detection: Micros::ZERO }, 5, seq,
            );
            prop_assert!(plain.transmissions <= dg.len() as u64);
            let rec = simulate_packet(
                &g, dg, &traces, Micros::ZERO, deadline,
                &RecoveryModel::default(), 5, seq,
            );
            prop_assert!(rec.transmissions <= 2 * dg.len() as u64);
            prop_assert!(rec.transmissions >= plain.transmissions);
        }
    }

    /// A longer deadline never hurts: arrivals can only get earlier (or
    /// stay equal) because expiry prunes less of the dissemination.
    #[test]
    fn on_time_is_monotone_in_deadline(
        losses in proptest::collection::vec((0u32..60, 0.0f64..0.8, 0u64..20), 0..25),
        seq in 0u64..5_000,
    ) {
        let (g, _, dgs) = graphs();
        let traces = constant_trace(&losses, g.edge_count());
        let recovery = RecoveryModel::default();
        for dg in &dgs {
            let tight = simulate_packet(
                &g, dg, &traces, Micros::ZERO, Micros::from_millis(50),
                &recovery, 5, seq,
            );
            let loose = simulate_packet(
                &g, dg, &traces, Micros::ZERO, Micros::from_millis(90),
                &recovery, 5, seq,
            );
            prop_assert!(u8::from(loose.on_time) >= u8::from(tight.on_time));
            if let (Some(a), Some(b)) = (tight.delivered_at, loose.delivered_at) {
                prop_assert!(b <= a);
            }
        }
    }

    /// Recovery never loses packets it would have delivered without it,
    /// and a recovered delivery is never *earlier* than a direct one.
    #[test]
    fn recovery_only_adds_deliveries(
        losses in proptest::collection::vec((0u32..60, 0.0f64..0.9, 0u64..2), 0..25),
        seq in 0u64..5_000,
    ) {
        let (g, _, dgs) = graphs();
        let traces = constant_trace(&losses, g.edge_count());
        let deadline = Micros::from_millis(65);
        for dg in &dgs {
            let without = simulate_packet(
                &g, dg, &traces, Micros::ZERO, deadline,
                &RecoveryModel { enabled: false, gap_detection: Micros::ZERO }, 5, seq,
            );
            let with = simulate_packet(
                &g, dg, &traces, Micros::ZERO, deadline,
                &RecoveryModel::default(), 5, seq,
            );
            if without.delivered_at.is_some() {
                let a = without.delivered_at.expect("checked");
                let b = with.delivered_at.expect("recovery cannot lose a delivery");
                prop_assert!(b <= a, "recovery delayed a direct delivery");
            }
        }
    }
}
