//! Shared harness for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library provides the
//! common pieces: argument parsing, the standard experiment setup, and
//! table/CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dg_core::scheme::SchemeKind;
use dg_sim::experiment::{ExperimentConfig, SchemeAggregate};
use dg_topology::{Graph, Micros, NodeId};
use dg_trace::gen::{self, SyntheticWanConfig};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

/// Simple `--key value` argument parser for the experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses the process arguments; `--key value` pairs only.
    pub fn from_env() -> Self {
        let mut values = HashMap::new();
        let mut argv = std::env::args().skip(1);
        while let Some(key) = argv.next() {
            if let Some(name) = key.strip_prefix("--") {
                if let Some(value) = argv.next() {
                    values.insert(name.to_string(), value);
                }
            }
        }
        Args { values }
    }

    /// Returns the parsed value for `key`, or `default`.
    ///
    /// # Panics
    ///
    /// Panics with a clear message when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => {
                v.parse().unwrap_or_else(|e| panic!("invalid value for --{key}: {v:?} ({e:?})"))
            }
            None => default,
        }
    }
}

/// The standard experiment: the evaluation topology, its 16
/// transcontinental flows, and the calibrated synthetic-WAN config.
#[derive(Debug)]
pub struct Experiment {
    /// The 12-site evaluation topology.
    pub topology: Graph,
    /// The 16 transcontinental flows.
    pub flows: Vec<(NodeId, NodeId)>,
    /// Duration of each simulated "week" (scaled down by default).
    pub seconds_per_week: u64,
    /// Seeds, one per simulated week.
    pub seeds: Vec<u64>,
    /// Simulation configuration.
    pub config: ExperimentConfig,
    /// Worker threads for the playback fan-out.
    pub threads: usize,
    /// Replay this recorded trace file instead of generating synthetic
    /// weeks (seeds then only vary the playback loss draws).
    pub trace_file: Option<PathBuf>,
}

impl Experiment {
    /// Builds the standard experiment from CLI arguments:
    /// `--seconds` (per week, default 1800), `--weeks` (default 4),
    /// `--rate` (packets/s, default 100), `--seed` (base, default
    /// 2017), `--threshold` (per-second availability threshold, default
    /// 1.0 = any miss), and `--topology` (`us`, the default 12-site
    /// overlay with 16 transcontinental flows at a 65 ms deadline, or
    /// `global`, the 16-site three-continent overlay with 8
    /// intercontinental flows at 110 ms).
    pub fn from_args(args: &Args) -> Self {
        let seconds_per_week: u64 = args.get("seconds", 1_800);
        let weeks: u64 = args.get("weeks", 4);
        let base_seed: u64 = args.get("seed", 2_017);
        let rate: u32 = args.get("rate", 100);
        let threshold: f64 = args.get("threshold", 1.0);
        let which: String = args.get("topology", "us".to_string());
        let (topology, flows, deadline) = match which.as_str() {
            "us" => {
                let t = dg_topology::presets::north_america_12();
                let f = dg_topology::presets::transcontinental_flows(&t);
                (t, f, Micros::from_millis(65))
            }
            "global" => {
                let t = dg_topology::presets::global_16();
                let f = dg_topology::presets::intercontinental_flows(&t);
                (t, f, Micros::from_millis(110))
            }
            other => panic!("unknown --topology {other:?} (use us or global)"),
        };
        let mut config = ExperimentConfig::default();
        config.playback.packets_per_second = rate;
        config.playback.availability_threshold = threshold;
        config.playback.deadline = deadline;
        config.requirement.deadline = deadline;
        let threads: usize =
            args.get("threads", std::thread::available_parallelism().map_or(1, |n| n.get()));
        let trace_file = {
            let path: String = args.get("trace", String::new());
            (!path.is_empty()).then(|| PathBuf::from(path))
        };
        Experiment {
            topology,
            flows,
            seconds_per_week,
            seeds: (0..weeks).map(|w| base_seed + w).collect(),
            config,
            threads,
            trace_file,
        }
    }

    /// The trace for one week: the recorded file when `--trace` was
    /// given (loaded per its extension), otherwise a fresh synthetic
    /// generation for `seed`.
    pub fn traces_for(&self, seed: u64) -> dg_trace::TraceSet {
        match &self.trace_file {
            Some(path) if path.extension().is_some_and(|e| e == "json") => {
                dg_trace::TraceSet::load_json(path).expect("trace file loads")
            }
            Some(path) => dg_trace::TraceSet::load_binary(path).expect("trace file loads"),
            None => gen::generate(&self.topology, &self.wan_config(seed)),
        }
    }

    /// The access sites of the evaluation topology: the eight
    /// flow-endpoint cities plus MIA (an access-like leaf), as opposed
    /// to the core transit hubs (CHI, ATL, DFW, DEN).
    pub const ACCESS_SITES: [&'static str; 8] =
        ["NYC", "JHU", "WAS", "BOS", "SEA", "SJC", "LAX", "MIA"];

    /// How much more often access sites suffer problems than core hubs
    /// in the calibrated generator.
    pub const ACCESS_BIAS: f64 = 6.0;

    /// The calibrated trace-generator config for one week's seed:
    /// problems biased toward access sites, matching the paper's
    /// finding that flow-affecting problems concentrate around sources
    /// and destinations.
    pub fn wan_config(&self, seed: u64) -> SyntheticWanConfig {
        let mut cfg = SyntheticWanConfig::calibrated(seed);
        cfg.duration = Micros::from_secs(self.seconds_per_week);
        cfg.node_weights =
            Some(gen::biased_node_weights(&self.topology, &Self::ACCESS_SITES, Self::ACCESS_BIAS));
        cfg
    }

    /// Runs the full multi-week comparison for `kinds`, merging
    /// per-scheme aggregates across weeks.
    pub fn run(&self, kinds: &[SchemeKind]) -> Vec<SchemeAggregate> {
        let mut merged: Vec<SchemeAggregate> = Vec::new();
        for (week, &seed) in self.seeds.iter().enumerate() {
            let mut config = self.config;
            config.playback.seed = seed;
            let traces = self.traces_for(seed);
            let aggs = dg_sim::experiment::run_comparison_parallel(
                &self.topology,
                &traces,
                &self.flows,
                kinds,
                &config,
                self.threads,
            )
            .expect("standard experiment flows are routable");
            if week == 0 {
                merged = aggs;
            } else {
                for (m, a) in merged.iter_mut().zip(&aggs) {
                    assert_eq!(m.kind, a.kind);
                    m.totals.merge(&a.totals);
                    for (mf, af) in m.per_flow.iter_mut().zip(&a.per_flow) {
                        mf.merge(af);
                    }
                }
            }
            eprintln!("week {} (seed {seed}) done", week + 1);
        }
        merged
    }
}

/// Directory where experiment binaries drop their CSV outputs.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

/// Writes CSV rows (first row = header) to `results/<name>.csv`.
pub fn write_csv(name: &str, rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let body: String = rows.iter().map(|r| r.join(",")).collect::<Vec<_>>().join("\n");
    fs::write(&path, body + "\n").expect("csv is writable");
    eprintln!("wrote {}", path.display());
}

/// Prints an aligned text table (first row = header).
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let widths: Vec<usize> =
        (0..cols).map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0)).collect();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> =
            row.iter().zip(&widths).map(|(cell, w)| format!("{cell:>w$}")).collect();
        println!("{}", line.join("  "));
        if i == 0 {
            println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_defaults_and_values() {
        let args = Args { values: HashMap::from([("rate".into(), "50".into())]) };
        assert_eq!(args.get("rate", 100u32), 50);
        assert_eq!(args.get("weeks", 4u64), 4);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_arg_panics() {
        let args = Args { values: HashMap::from([("rate".into(), "abc".into())]) };
        let _: u32 = args.get("rate", 100);
    }

    #[test]
    fn experiment_setup_is_standard() {
        let exp = Experiment::from_args(&Args { values: HashMap::new() });
        assert_eq!(exp.topology.node_count(), 12);
        assert_eq!(exp.flows.len(), 16);
        assert_eq!(exp.seeds.len(), 4);
        assert!(exp.trace_file.is_none());
        let wan = exp.wan_config(7);
        assert_eq!(wan.seed, 7);
        assert_eq!(wan.duration.as_secs(), exp.seconds_per_week);
    }

    #[test]
    fn global_topology_option() {
        let exp = Experiment::from_args(&Args {
            values: HashMap::from([("topology".into(), "global".into())]),
        });
        assert_eq!(exp.topology.node_count(), 16);
        assert_eq!(exp.flows.len(), 8);
        assert_eq!(exp.config.playback.deadline, Micros::from_millis(110));
    }

    #[test]
    fn trace_file_overrides_generation() {
        let dir = std::env::temp_dir().join("dg_bench_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dgtrace");
        let trace = dg_trace::TraceSet::clean(60, 5, Micros::from_secs(10)).unwrap();
        trace.save_binary(&path).unwrap();
        let exp = Experiment::from_args(&Args {
            values: HashMap::from([("trace".into(), path.display().to_string())]),
        });
        let loaded = exp.traces_for(123);
        assert_eq!(loaded.interval_count(), 5);
        assert_eq!(loaded.link_count(), 60);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "unknown --topology")]
    fn bad_topology_panics() {
        Experiment::from_args(&Args {
            values: HashMap::from([("topology".into(), "mars".into())]),
        });
    }
}
