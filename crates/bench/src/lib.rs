//! Shared harness for the experiment binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). This library provides the
//! common pieces: argument parsing, the standard experiment setup, and
//! table/CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dg_cli::{Cli, CliError, Matches};
use dg_core::scheme::SchemeKind;
use dg_sim::experiment::{ExperimentConfig, SchemeAggregate};
use dg_topology::generate::TopoSpec;
use dg_topology::{Graph, Micros, NodeId};
use dg_trace::gen::{self, SyntheticWanConfig};
use std::fs;
use std::path::PathBuf;

/// The shared command-line toolkit (re-exported so binaries depend on
/// one crate): [`cli::Cli`], [`cli::Matches`], [`cli::CliError`].
pub use dg_cli as cli;

/// The standard experiment: the evaluation topology, its 16
/// transcontinental flows, and the calibrated synthetic-WAN config.
#[derive(Debug)]
pub struct Experiment {
    /// The 12-site evaluation topology.
    pub topology: Graph,
    /// The 16 transcontinental flows.
    pub flows: Vec<(NodeId, NodeId)>,
    /// Duration of each simulated "week" (scaled down by default).
    pub seconds_per_week: u64,
    /// Seeds, one per simulated week.
    pub seeds: Vec<u64>,
    /// Simulation configuration.
    pub config: ExperimentConfig,
    /// Worker threads for the playback fan-out.
    pub threads: usize,
    /// Replay this recorded trace file instead of generating synthetic
    /// weeks (seeds then only vary the playback loss draws).
    pub trace_file: Option<PathBuf>,
}

impl Experiment {
    /// The declarative CLI shared by every experiment binary: the
    /// standard flags (`--seconds`, `--weeks`, `--rate`, `--seed`,
    /// `--threshold`, `--topology`, `--threads`, `--trace`) plus
    /// whatever extras a binary chains on afterwards.
    pub fn cli(name: &'static str, about: &'static str) -> Cli {
        Cli::new(name, about)
            .flag_default("seconds", "N", "simulated seconds per week", "1800")
            .flag_default("weeks", "N", "number of simulated weeks", "4")
            .flag_default("rate", "PPS", "application packets per second", "100")
            .flag_default("seed", "N", "base seed (week w uses seed+w)", "2017")
            .flag_default("threshold", "F", "per-second availability threshold", "1.0")
            .flag_default("topology", "us|global|ring|waxman", "evaluation topology", "us")
            .flag_default("nodes", "N", "node count for generated topologies", "100")
            .flag("threads", "N", "playback worker threads (default: all cores)")
            .flag("trace", "PATH", "replay a recorded trace instead of generating weeks")
    }

    /// Builds the standard experiment from parsed [`Matches`]: `us` is
    /// the 12-site overlay with 16 transcontinental flows at a 65 ms
    /// deadline, `global` the 16-site three-continent overlay with 8
    /// intercontinental flows at 110 ms.
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] for unparsable or out-of-range values —
    /// render it with [`Cli::exit_with`].
    pub fn from_matches(matches: &Matches) -> Result<Self, CliError> {
        let seconds_per_week: u64 = matches.get_or("seconds", 1_800)?;
        let weeks: u64 = matches.get_or("weeks", 4)?;
        let base_seed: u64 = matches.get_or("seed", 2_017)?;
        let rate: u32 = matches.get_or("rate", 100)?;
        let threshold: f64 = matches.get_or("threshold", 1.0)?;
        let which = matches.value("topology").unwrap_or("us");
        let nodes: usize = matches.get_or("nodes", 100)?;
        let spec = TopoSpec::parse(which, nodes, base_seed).map_err(|_| CliError::BadValue {
            flag: "topology".to_string(),
            value: which.to_string(),
            expected: "us, global, ring, or waxman",
        })?;
        let topology = spec.build();
        let flows = spec.default_flows(&topology, 16);
        let deadline = spec.default_deadline(&topology, &flows);
        let config = ExperimentConfig::builder()
            .packets_per_second(rate)
            .availability_threshold(threshold)
            .deadline(deadline)
            .build()
            .map_err(|e| CliError::BadValue {
                flag: "rate/threshold".to_string(),
                value: e.0.to_string(),
                expected: "a consistent experiment configuration",
            })?;
        let threads: usize = matches
            .get_or("threads", std::thread::available_parallelism().map_or(1, |n| n.get()))?;
        let trace_file = matches.value("trace").map(PathBuf::from);
        Ok(Experiment {
            topology,
            flows,
            seconds_per_week,
            seeds: (0..weeks).map(|w| base_seed + w).collect(),
            config,
            threads,
            trace_file,
        })
    }

    /// The trace for one week: the recorded file when `--trace` was
    /// given (loaded per its extension), otherwise a fresh synthetic
    /// generation for `seed`.
    pub fn traces_for(&self, seed: u64) -> dg_trace::TraceSet {
        match &self.trace_file {
            Some(path) if path.extension().is_some_and(|e| e == "json") => {
                dg_trace::TraceSet::load_json(path).expect("trace file loads")
            }
            Some(path) => dg_trace::TraceSet::load_binary(path).expect("trace file loads"),
            None => gen::generate(&self.topology, &self.wan_config(seed)),
        }
    }

    /// The access sites of the evaluation topology: the eight
    /// flow-endpoint cities plus MIA (an access-like leaf), as opposed
    /// to the core transit hubs (CHI, ATL, DFW, DEN).
    pub const ACCESS_SITES: [&'static str; 8] =
        ["NYC", "JHU", "WAS", "BOS", "SEA", "SJC", "LAX", "MIA"];

    /// How much more often access sites suffer problems than core hubs
    /// in the calibrated generator.
    pub const ACCESS_BIAS: f64 = 6.0;

    /// The calibrated trace-generator config for one week's seed:
    /// problems biased toward access sites, matching the paper's
    /// finding that flow-affecting problems concentrate around sources
    /// and destinations.
    pub fn wan_config(&self, seed: u64) -> SyntheticWanConfig {
        let mut cfg = SyntheticWanConfig::calibrated(seed);
        cfg.duration = Micros::from_secs(self.seconds_per_week);
        // Generated topologies carry none of the preset site names;
        // they get unbiased problem placement.
        let present: Vec<&str> = Self::ACCESS_SITES
            .iter()
            .copied()
            .filter(|n| self.topology.node_by_name(n).is_some())
            .collect();
        if !present.is_empty() {
            cfg.node_weights =
                Some(gen::biased_node_weights(&self.topology, &present, Self::ACCESS_BIAS));
        }
        cfg
    }

    /// Runs the full multi-week comparison for `kinds`, merging
    /// per-scheme aggregates across weeks.
    pub fn run(&self, kinds: &[SchemeKind]) -> Vec<SchemeAggregate> {
        let mut merged: Vec<SchemeAggregate> = Vec::new();
        for (week, &seed) in self.seeds.iter().enumerate() {
            let mut config = self.config;
            config.playback.seed = seed;
            let traces = self.traces_for(seed);
            let aggs = dg_sim::experiment::run_comparison_parallel(
                &self.topology,
                &traces,
                &self.flows,
                kinds,
                &config,
                self.threads,
            )
            .expect("standard experiment flows are routable");
            if week == 0 {
                merged = aggs;
            } else {
                for (m, a) in merged.iter_mut().zip(&aggs) {
                    assert_eq!(m.kind, a.kind);
                    m.totals.merge(&a.totals);
                    for (mf, af) in m.per_flow.iter_mut().zip(&a.per_flow) {
                        mf.merge(af);
                    }
                }
            }
            eprintln!("week {} (seed {seed}) done", week + 1);
        }
        merged
    }
}

/// Chains the shared topology-selection flags onto a CLI: `--topo
/// {us|global|ring|waxman}`, `--nodes N` (generated families only),
/// and `--topo-seed N`. Parse the result with [`topo_from_matches`] —
/// every binary that can run on generated overlays shares this one
/// construction path instead of hardcoding a preset.
pub fn topo_cli(cli: Cli) -> Cli {
    cli.flag_default("topo", "us|global|ring|waxman", "topology family", "us")
        .flag_default("nodes", "N", "node count for generated topologies", "100")
        .flag_default("topo-seed", "N", "generator seed for ring/waxman", "2017")
}

/// Parses the [`topo_cli`] flags into a [`TopoSpec`].
///
/// # Errors
///
/// Returns a [`CliError`] for an unknown family or unparsable numbers.
pub fn topo_from_matches(matches: &Matches) -> Result<TopoSpec, CliError> {
    let which = matches.value("topo").unwrap_or("us");
    let nodes: usize = matches.get_or("nodes", 100)?;
    let seed: u64 = matches.get_or("topo-seed", 2_017)?;
    TopoSpec::parse(which, nodes, seed).map_err(|_| CliError::BadValue {
        flag: "topo".to_string(),
        value: which.to_string(),
        expected: "us, global, ring, or waxman",
    })
}

/// Directory where experiment binaries drop their CSV outputs.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

/// Writes CSV rows (first row = header) to `results/<name>.csv`.
pub fn write_csv(name: &str, rows: &[Vec<String>]) {
    let path = results_dir().join(format!("{name}.csv"));
    let body: String = rows.iter().map(|r| r.join(",")).collect::<Vec<_>>().join("\n");
    fs::write(&path, body + "\n").expect("csv is writable");
    eprintln!("wrote {}", path.display());
}

/// Prints an aligned text table (first row = header).
pub fn print_table(rows: &[Vec<String>]) {
    if rows.is_empty() {
        return;
    }
    let cols = rows[0].len();
    let widths: Vec<usize> =
        (0..cols).map(|c| rows.iter().map(|r| r[c].len()).max().unwrap_or(0)).collect();
    for (i, row) in rows.iter().enumerate() {
        let line: Vec<String> =
            row.iter().zip(&widths).map(|(cell, w)| format!("{cell:>w$}")).collect();
        println!("{}", line.join("  "));
        if i == 0 {
            println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matches(args: &[&str]) -> Matches {
        Experiment::cli("test", "test harness")
            .parse(args.iter().map(|s| s.to_string()))
            .expect("test arguments parse")
    }

    #[test]
    fn experiment_setup_is_standard() {
        let exp = Experiment::from_matches(&matches(&[])).unwrap();
        assert_eq!(exp.topology.node_count(), 12);
        assert_eq!(exp.flows.len(), 16);
        assert_eq!(exp.seeds.len(), 4);
        assert!(exp.trace_file.is_none());
        let wan = exp.wan_config(7);
        assert_eq!(wan.seed, 7);
        assert_eq!(wan.duration.as_secs(), exp.seconds_per_week);
    }

    #[test]
    fn global_topology_option() {
        let exp = Experiment::from_matches(&matches(&["--topology", "global"])).unwrap();
        assert_eq!(exp.topology.node_count(), 16);
        assert_eq!(exp.flows.len(), 8);
        assert_eq!(exp.config.playback.deadline, Micros::from_millis(110));
    }

    #[test]
    fn generated_topology_option() {
        let exp =
            Experiment::from_matches(&matches(&["--topology", "ring", "--nodes", "50"])).unwrap();
        assert_eq!(exp.topology.node_count(), 50);
        assert!(!exp.flows.is_empty());
        assert!(exp.config.playback.deadline > Micros::ZERO);
        // No preset site names exist, so problem placement is unbiased.
        assert!(exp.wan_config(1).node_weights.is_none());
    }

    #[test]
    fn topo_helper_parses_shared_flags() {
        let m = topo_cli(Cli::new("t", "t"))
            .parse(
                ["--topo", "waxman", "--nodes", "60", "--topo-seed", "9"]
                    .iter()
                    .map(|s| s.to_string()),
            )
            .unwrap();
        let spec = topo_from_matches(&m).unwrap();
        assert_eq!(spec.label(), "waxman-60");
        assert_eq!(spec.build().node_count(), 60);
        let bad = topo_cli(Cli::new("t", "t"))
            .parse(["--topo", "mars"].iter().map(|s| s.to_string()))
            .unwrap();
        assert!(topo_from_matches(&bad).is_err());
    }

    #[test]
    fn trace_file_overrides_generation() {
        let dir = std::env::temp_dir().join("dg_bench_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.dgtrace");
        let trace = dg_trace::TraceSet::clean(60, 5, Micros::from_secs(10)).unwrap();
        trace.save_binary(&path).unwrap();
        let exp =
            Experiment::from_matches(&matches(&["--trace", &path.display().to_string()])).unwrap();
        let loaded = exp.traces_for(123);
        assert_eq!(loaded.interval_count(), 5);
        assert_eq!(loaded.link_count(), 60);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_values_are_errors_not_panics() {
        let err = Experiment::from_matches(&matches(&["--topology", "mars"])).unwrap_err();
        assert!(err.to_string().contains("mars"));
        let err = Experiment::from_matches(&matches(&["--rate", "fast"])).unwrap_err();
        assert!(matches!(err, CliError::BadValue { .. }));
        let err = Experiment::from_matches(&matches(&["--rate", "0"])).unwrap_err();
        assert!(err.to_string().contains("packets_per_second"));
    }
}
