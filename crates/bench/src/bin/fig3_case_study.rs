//! Figure 3 (reconstructed): case study of one problem event.
//!
//! A destination-area problem strikes mid-trace; the figure is the
//! per-second on-time delivery rate of each scheme across the event —
//! the paper's illustration of *why* targeted redundancy tracks the
//! optimal scheme while path-based routing suffers.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig3_case_study --
//! [--loss F] [--rate N]`

use dg_bench::cli::Cli;
use dg_bench::{topo_cli, topo_from_matches, write_csv};
use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{Flow, ServiceRequirement};
use dg_sim::{run_flow_detailed, PlaybackConfig};
use dg_topology::generate::TopoSpec;
use dg_topology::Micros;
use dg_trace::{LinkCondition, TraceSet};

fn main() {
    let cli = topo_cli(
        Cli::new("fig3_case_study", "per-second delivery across one problem event")
            .flag_default("loss", "F", "loss fraction on the destination's links", "0.35")
            .flag_default("rate", "PPS", "application packets per second", "100"),
    );
    let matches = cli.parse_env();
    let loss: f64 = matches.get_or("loss", 0.35).unwrap_or_else(|e| cli.exit_with(&e));
    let rate: u32 = matches.get_or("rate", 100).unwrap_or_else(|e| cli.exit_with(&e));
    let spec = topo_from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let graph = spec.build();
    // The paper's case-study flow on its preset; the first sampled
    // disjoint-routable flow on a generated overlay.
    let flow = if spec == TopoSpec::NorthAmerica {
        Flow::new(graph.node_by_name("WAS").unwrap(), graph.node_by_name("SEA").unwrap())
    } else {
        let (s, t) = *spec.default_flows(&graph, 1).first().expect("topology has a flow");
        Flow::new(s, t)
    };
    let endpoints = [(flow.source, flow.destination)];
    let deadline = spec.default_deadline(&graph, &endpoints);

    // 90 seconds; the event covers 30s..60s on every link into SEA.
    let mut traces =
        TraceSet::clean(graph.edge_count(), 9, Micros::from_secs(10)).expect("valid shape");
    for &e in graph.in_edges(flow.destination) {
        for interval in 3..6 {
            traces.set_condition(e, interval, LinkCondition::new(loss, Micros::ZERO));
        }
    }

    let config = PlaybackConfig { packets_per_second: rate, deadline, ..Default::default() };
    println!(
        "case study {}: {}% loss on all destination links, 30s..60s\n",
        flow.label(&graph),
        (loss * 100.0) as u32
    );

    let mut csv = vec![vec!["second".to_string()]];
    let mut series = Vec::new();
    for kind in SchemeKind::ALL {
        let mut scheme = build_scheme(
            kind,
            &graph,
            flow,
            ServiceRequirement::new(deadline),
            &SchemeParams::default(),
        )
        .expect("flow routable");
        let (stats, records) = run_flow_detailed(&graph, &traces, scheme.as_mut(), &config);
        csv[0].push(kind.label().to_string());
        println!(
            "{:<28} unavailable {:>2}s  on-time {:>7.3}%",
            kind.label(),
            stats.unavailable_seconds,
            stats.on_time_fraction() * 100.0
        );
        series.push(records);
    }

    for second in 0..series[0].len() {
        let mut row = vec![second.to_string()];
        for s in &series {
            let r = &s[second];
            row.push(format!("{:.3}", r.on_time as f64 / r.sent.max(1) as f64));
        }
        csv.push(row);
    }
    write_csv("fig3_case_study", &csv);
    println!("\nper-second on-time series written to results/fig3_case_study.csv");
}
