//! Figure 6 (reconstructed): sensitivity of gap coverage to the
//! problem-location mix and to the deadline.
//!
//! An ablation of the paper's premise: targeted redundancy's advantage
//! rests on problems clustering around flow endpoints. Sweeping the
//! access-site bias from uniform (1x) to strongly clustered (8x) shows
//! how each scheme's coverage responds; sweeping the deadline shows how
//! much slack the schemes need.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig6_sensitivity --
//! [--seconds N] [--rate N]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::SchemeKind;
use dg_sim::experiment::{run_comparison, tabulate};
use dg_topology::Micros;
use dg_trace::gen;

const SCHEMES: [SchemeKind; 4] = [
    SchemeKind::StaticTwoDisjoint,
    SchemeKind::DynamicTwoDisjoint,
    SchemeKind::TargetedRedundancy,
    SchemeKind::TimeConstrainedFlooding,
];

/// Sums unavailable seconds per scheme across weeks, then tabulates a
/// coverage row against the merged baseline/optimal.
fn coverage_row(
    experiment: &Experiment,
    label: String,
    run_week: impl Fn(u64) -> Vec<dg_sim::experiment::SchemeAggregate>,
) -> Vec<String> {
    let mut merged: Vec<dg_sim::experiment::SchemeAggregate> = Vec::new();
    for (week, &seed) in experiment.seeds.iter().enumerate() {
        let aggs = run_week(seed);
        if week == 0 {
            merged = aggs;
        } else {
            for (m, a) in merged.iter_mut().zip(&aggs) {
                m.totals.merge(&a.totals);
            }
        }
    }
    let rows = tabulate(&merged, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);
    let mut line = vec![label];
    for kind in SCHEMES {
        let r = rows.iter().find(|r| r.scheme == kind).expect("present");
        line.push(format!("{:.1}", r.gap_coverage * 100.0));
    }
    line
}

fn main() {
    let cli = Experiment::cli("fig6_sensitivity", "sensitivity sweep over generator problem rates");
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));

    let mut kinds = vec![SchemeKind::StaticSinglePath];
    kinds.extend(SCHEMES);

    // Sweep 1: how clustered problems are around access sites.
    println!("sweep 1: gap coverage vs access-site problem bias\n");
    let mut bias_table = vec![{
        let mut h = vec!["bias".to_string()];
        h.extend(SCHEMES.iter().map(|k| k.label().to_string()));
        h
    }];
    for bias in [1.0, 2.0, 4.0, 8.0] {
        bias_table.push(coverage_row(&experiment, format!("{bias}x"), |seed| {
            let mut wan = experiment.wan_config(seed);
            wan.node_weights = Some(gen::biased_node_weights(
                &experiment.topology,
                &dg_bench::Experiment::ACCESS_SITES,
                bias,
            ));
            let traces = gen::generate(&experiment.topology, &wan);
            let mut config = experiment.config;
            config.playback.seed = seed;
            run_comparison(&experiment.topology, &traces, &experiment.flows, &kinds, &config)
                .expect("flows routable")
        }));
        eprintln!("bias {bias}x done");
    }
    print_table(&bias_table);
    write_csv("fig6_bias_sweep", &bias_table);

    // Sweep 2: deadline headroom.
    println!("\nsweep 2: gap coverage vs one-way deadline\n");
    let mut deadline_table = vec![{
        let mut h = vec!["deadline".to_string()];
        h.extend(SCHEMES.iter().map(|k| k.label().to_string()));
        h
    }];
    for deadline_ms in [50u64, 65, 80, 100] {
        deadline_table.push(coverage_row(&experiment, format!("{deadline_ms}ms"), |seed| {
            let traces = gen::generate(&experiment.topology, &experiment.wan_config(seed));
            let mut config = experiment.config;
            config.playback.seed = seed;
            config.requirement.deadline = Micros::from_millis(deadline_ms);
            config.playback.deadline = Micros::from_millis(deadline_ms);
            run_comparison(&experiment.topology, &traces, &experiment.flows, &kinds, &config)
                .expect("flows routable")
        }));
        eprintln!("deadline {deadline_ms}ms done");
    }
    print_table(&deadline_table);
    write_csv("fig6_deadline_sweep", &deadline_table);
}
