//! Table 2 (reconstructed): the headline routing-scheme comparison.
//!
//! For every scheme: total unavailable seconds across the 16
//! transcontinental flows and all simulated weeks, availability,
//! fraction of the single-path-to-optimal gap covered, and average
//! cost. The paper's claims to reproduce in shape:
//!
//! - static two disjoint paths cover ≈ 45 % of the gap,
//! - dynamic two disjoint paths cover ≈ 70 %,
//! - targeted redundancy covers > 99 %,
//! - targeted redundancy costs ≈ 2 % more than two disjoint paths.
//!
//! Usage: `cargo run --release -p dg-bench --bin table2 --
//! [--seconds N] [--weeks N] [--rate N] [--seed N]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::SchemeKind;
use dg_sim::experiment::tabulate;

fn main() {
    let cli = Experiment::cli("table2", "the headline availability/cost comparison table");
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    eprintln!(
        "table2: {} flows x {} weeks x {}s at {} pkt/s",
        experiment.flows.len(),
        experiment.seeds.len(),
        experiment.seconds_per_week,
        experiment.config.playback.packets_per_second,
    );

    let aggregates = experiment.run(&SchemeKind::ALL);
    let rows =
        tabulate(&aggregates, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);

    let disjoint_cost = rows
        .iter()
        .find(|r| r.scheme == SchemeKind::StaticTwoDisjoint)
        .expect("static disjoint present")
        .average_cost;

    let mut table = vec![vec![
        "scheme".to_string(),
        "unavail s".to_string(),
        "availability %".to_string(),
        "gap coverage %".to_string(),
        "avg cost".to_string(),
        "cost vs 2-disjoint".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.scheme.label().to_string(),
            r.unavailable_seconds.to_string(),
            format!("{:.4}", r.availability_pct),
            format!("{:.1}", r.gap_coverage * 100.0),
            format!("{:.2}", r.average_cost),
            format!("{:+.1}%", (r.average_cost / disjoint_cost - 1.0) * 100.0),
        ]);
    }
    print_table(&table);
    write_csv("table2", &table);
}
