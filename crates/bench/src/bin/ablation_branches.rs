//! Ablation: how many targeted branches are enough?
//!
//! The paper's problem graphs branch through *every* usable neighbour
//! of the troubled endpoint. This sweep caps the number of extra
//! branches (0 = plain disjoint pair, up to unlimited) and measures the
//! coverage/cost trade-off — the design-choice ablation DESIGN.md §4
//! calls out.
//!
//! Usage: `cargo run --release -p dg-bench --bin ablation_branches --
//! [--seconds N] [--weeks N] [--rate N]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::SchemeKind;
use dg_sim::experiment::{run_comparison, SchemeAggregate};
use dg_sim::gap_coverage;
use dg_trace::gen;

fn main() {
    let cli = Experiment::cli(
        "ablation_branches",
        "ablation: coverage vs cost as targeted branch caps vary",
    );
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));

    // Baseline + optimal anchors, then targeted at each branch cap.
    let anchors = [SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding];
    let limits: [Option<u8>; 4] = [Some(0), Some(1), Some(2), None];

    let mut anchor_aggs: Vec<SchemeAggregate> = Vec::new();
    let mut targeted_aggs: Vec<(Option<u8>, SchemeAggregate)> = Vec::new();

    for (week, &seed) in experiment.seeds.iter().enumerate() {
        let traces = gen::generate(&experiment.topology, &experiment.wan_config(seed));
        let mut config = experiment.config;
        config.playback.seed = seed;

        let aggs =
            run_comparison(&experiment.topology, &traces, &experiment.flows, &anchors, &config)
                .expect("flows routable");
        merge_into(&mut anchor_aggs, aggs, week);

        for (i, &limit) in limits.iter().enumerate() {
            let mut cfg = config;
            cfg.scheme_params.problem_branch_limit = limit;
            let aggs = run_comparison(
                &experiment.topology,
                &traces,
                &experiment.flows,
                &[SchemeKind::TargetedRedundancy],
                &cfg,
            )
            .expect("flows routable");
            if week == 0 {
                targeted_aggs.push((limit, aggs.into_iter().next().expect("one agg")));
            } else {
                let agg = aggs.into_iter().next().expect("one agg");
                targeted_aggs[i].1.totals.merge(&agg.totals);
            }
        }
        eprintln!("week {} done", week + 1);
    }

    let baseline = anchor_aggs[0].totals.unavailable_seconds;
    let optimal = anchor_aggs[1].totals.unavailable_seconds;
    let pair_cost = targeted_aggs
        .iter()
        .find(|(l, _)| *l == Some(0))
        .expect("limit 0 present")
        .1
        .average_cost();

    let mut table = vec![vec![
        "extra branches".to_string(),
        "unavail s".to_string(),
        "gap coverage %".to_string(),
        "avg cost".to_string(),
        "cost vs pair".to_string(),
    ]];
    for (limit, agg) in &targeted_aggs {
        let label = limit.map_or("all".to_string(), |l| l.to_string());
        table.push(vec![
            label,
            agg.totals.unavailable_seconds.to_string(),
            format!(
                "{:.1}",
                gap_coverage(baseline, optimal, agg.totals.unavailable_seconds) * 100.0
            ),
            format!("{:.2}", agg.average_cost()),
            format!("{:+.2}%", (agg.average_cost() / pair_cost - 1.0) * 100.0),
        ]);
    }
    println!(
        "targeted redundancy vs branch cap (baseline {} / optimal {} unavailable s):\n",
        baseline, optimal
    );
    print_table(&table);
    write_csv("ablation_branches", &table);
}

fn merge_into(into: &mut Vec<SchemeAggregate>, aggs: Vec<SchemeAggregate>, week: usize) {
    if week == 0 {
        *into = aggs;
    } else {
        for (m, a) in into.iter_mut().zip(&aggs) {
            m.totals.merge(&a.totals);
        }
    }
}
