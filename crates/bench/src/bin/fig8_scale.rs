//! Figure 8 (extension): scheme quality and route-computation cost as
//! the overlay grows past the paper's 12 sites.
//!
//! The paper evaluates on a 12-node North-America overlay and claims
//! targeted redundancy covers >99% of the single-path-to-optimal
//! availability gap at roughly twice single-path cost. This experiment
//! sweeps *generated* topologies (`dg_topology::generate`) across
//! sizes, and for each size reports:
//!
//! * gap coverage per scheme (does the paper's claim survive scale?),
//! * route-computation latency percentiles (cold targeted-redundancy
//!   bundle construction per flow, the flow-setup hot path),
//! * the cost of reacting to a single link flap with the shared
//!   [`dg_core::GraphCache`] versus recomputing every flow's graphs
//!   from scratch — the incremental-invalidation payoff.
//!
//! Results land in `BENCH_fig8_scale.json`. `--check` turns the run
//! into a gate: cached flap reaction must beat full recomputation and
//! every reported coverage must be a valid fraction.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig8_scale --
//! [--quick] [--sizes 50,100,200] [--families waxman,ring]
//! [--flows N] [--rate PPS] [--trace-seconds N] [--seed N]
//! [--out DIR] [--check]`

use dg_bench::cli::Cli;
use dg_core::scheme::{SchemeKind, SchemeParams};
use dg_core::{CachedGraphKind, Flow, GraphCache, ServiceRequirement};
use dg_sim::experiment::{tabulate, ExperimentConfig, TableRow};
use dg_topology::generate::TopoSpec;
use dg_topology::Micros;
use dg_trace::gen::{self, SyntheticWanConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SCHEMA_VERSION: u32 = 1;

/// The schemes compared at every size: the availability-gap endpoints
/// plus the two redundant schemes whose scaling we care about.
const KINDS: [SchemeKind; 4] = [
    SchemeKind::StaticSinglePath,
    SchemeKind::StaticTwoDisjoint,
    SchemeKind::TargetedRedundancy,
    SchemeKind::TimeConstrainedFlooding,
];

#[derive(Debug, Serialize, Deserialize)]
struct Quantiles {
    p50: f64,
    p90: f64,
    p99: f64,
}

impl Quantiles {
    /// Nearest-rank percentiles over an unsorted sample of microsecond
    /// timings.
    fn of(mut samples: Vec<f64>) -> Quantiles {
        assert!(!samples.is_empty(), "timing sample is never empty");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let pick = |q: f64| {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[rank - 1]
        };
        Quantiles { p50: pick(0.50), p90: pick(0.90), p99: pick(0.99) }
    }
}

#[derive(Debug, Serialize, Deserialize)]
struct SchemeRow {
    scheme: String,
    unavailable_seconds: u64,
    availability_pct: f64,
    gap_coverage: f64,
    average_cost: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct FlapResult {
    /// Microseconds to recompute every flow's robust graph from
    /// scratch after the flap (what a cache-less implementation pays).
    full_recompute_us: f64,
    /// Microseconds to re-serve every flow through the cache after the
    /// same flap (only entries depending on the flapped link recompute).
    cached_recompute_us: f64,
    /// Live entries the flap actually invalidated.
    entries_invalidated: u64,
    speedup: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct SizeResult {
    topo: String,
    nodes: usize,
    edges: usize,
    flows: usize,
    deadline_ms: u64,
    /// Cold per-flow targeted-bundle construction time (flow setup).
    route_compute_us: Quantiles,
    schemes: Vec<SchemeRow>,
    flap: FlapResult,
}

#[derive(Debug, Serialize, Deserialize)]
struct Fig8Result {
    bench: String,
    schema_version: u32,
    mode: String,
    rate: u32,
    trace_seconds: u64,
    sizes: Vec<SizeResult>,
}

fn scheme_rows(rows: &[TableRow]) -> Vec<SchemeRow> {
    rows.iter()
        .map(|r| SchemeRow {
            scheme: r.scheme.label().to_string(),
            unavailable_seconds: r.unavailable_seconds,
            availability_pct: r.availability_pct,
            gap_coverage: r.gap_coverage,
            average_cost: r.average_cost,
        })
        .collect()
}

fn run_size(
    spec: &TopoSpec,
    flows_wanted: usize,
    rate: u32,
    trace_secs: u64,
    seed: u64,
    threads: usize,
) -> SizeResult {
    let graph = spec.build();
    let flows = spec.default_flows(&graph, flows_wanted);
    assert!(!flows.is_empty(), "{} yields no disjoint-routable flows", spec.label());
    let deadline = spec.default_deadline(&graph, &flows);
    let requirement = ServiceRequirement::new(deadline);
    let params = SchemeParams::default();

    // --- route-computation latency: cold targeted bundles per flow ---
    let cache = GraphCache::new(graph.clone(), params);
    let mut route_us = Vec::with_capacity(flows.len());
    for &(s, t) in &flows {
        let start = Instant::now();
        cache.baseline(Flow::new(s, t), requirement).expect("sampled flows are disjoint-routable");
        route_us.push(start.elapsed().as_secs_f64() * 1e6);
    }

    // --- single-link-flap reaction: cached vs from-scratch ---
    // Warm every flow's robust graph, then flap one link of the first
    // flow's graph across the usability threshold.
    for &(s, t) in &flows {
        cache
            .live(Flow::new(s, t), CachedGraphKind::Robust, requirement)
            .expect("robust graph computable");
    }
    let (s0, t0) = flows[0];
    let first = cache
        .live(Flow::new(s0, t0), CachedGraphKind::Robust, requirement)
        .expect("robust graph computable");
    let flapped = first.edges()[0];

    let start = Instant::now();
    for &(s, t) in &flows {
        cache
            .compute_uncached(Flow::new(s, t), CachedGraphKind::Robust, requirement)
            .expect("robust graph computable");
    }
    let full_recompute_us = start.elapsed().as_secs_f64() * 1e6;

    let before = cache.stats().live.invalidated;
    assert!(cache.note_loss(flapped, 0.9), "crossing the threshold flips the link");
    let entries_invalidated = cache.stats().live.invalidated - before;
    let start = Instant::now();
    for &(s, t) in &flows {
        cache
            .live(Flow::new(s, t), CachedGraphKind::Robust, requirement)
            .expect("robust graph computable");
    }
    let cached_recompute_us = start.elapsed().as_secs_f64() * 1e6;

    // --- scheme quality: gap coverage over a synthetic trace ---
    let mut wan = SyntheticWanConfig::calibrated(seed);
    wan.duration = Micros::from_secs(trace_secs);
    // Short horizons need elevated problem rates to contain problems at
    // all (the calibrated weekly rates would often produce none).
    wan.node_problems.events_per_hour = 6.0;
    wan.link_problems.events_per_hour = 4.0;
    let traces = gen::generate(&graph, &wan);
    let config = ExperimentConfig::builder()
        .packets_per_second(rate)
        .deadline(deadline)
        .seed(seed)
        .build()
        .expect("experiment configuration is consistent");
    let aggregates = dg_sim::experiment::run_comparison_parallel(
        &graph, &traces, &flows, &KINDS, &config, threads,
    )
    .expect("sampled flows are routable under every scheme");
    let rows =
        tabulate(&aggregates, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);

    SizeResult {
        topo: spec.label(),
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        flows: flows.len(),
        deadline_ms: deadline.as_millis(),
        route_compute_us: Quantiles::of(route_us),
        schemes: scheme_rows(&rows),
        flap: FlapResult {
            full_recompute_us,
            cached_recompute_us,
            entries_invalidated,
            speedup: full_recompute_us / cached_recompute_us.max(1e-9),
        },
    }
}

fn write_result(dir: &Path, result: &Fig8Result) {
    std::fs::create_dir_all(dir).expect("output directory is creatable");
    let path = dir.join("BENCH_fig8_scale.json");
    let json = serde_json::to_string_pretty(result).expect("result serializes");
    std::fs::write(&path, json + "\n").expect("result file is writable");
    eprintln!("wrote {}", path.display());
}

/// The invariants `--check` enforces; returns violation descriptions.
fn check(result: &Fig8Result) -> Vec<String> {
    let mut failures = Vec::new();
    for size in &result.sizes {
        let t = &size.topo;
        if size.flap.cached_recompute_us >= size.flap.full_recompute_us {
            failures.push(format!(
                "{t}: cached flap reaction ({:.0}us) not cheaper than full recompute ({:.0}us)",
                size.flap.cached_recompute_us, size.flap.full_recompute_us
            ));
        }
        if !(size.route_compute_us.p50 > 0.0 && size.route_compute_us.p99 > 0.0) {
            failures.push(format!("{t}: degenerate route-computation percentiles"));
        }
        for row in &size.schemes {
            if !(0.0..=1.0).contains(&row.gap_coverage) {
                failures.push(format!(
                    "{t}/{}: gap coverage {} out of range",
                    row.scheme, row.gap_coverage
                ));
            }
        }
    }
    failures
}

fn main() {
    let cli = Cli::new("fig8_scale", "scheme quality and route-computation cost vs topology size")
        .switch("quick", "CI smoke run: 50/100 nodes, short traces")
        .flag("sizes", "N,N,...", "node counts to sweep (default: 50,100,200)")
        .flag_default("families", "LIST", "generated families to sweep", "waxman,ring")
        .flag_default("flows", "N", "flows sampled per topology", "8")
        .flag_default("rate", "PPS", "application packet rate", "100")
        .flag("trace-seconds", "N", "trace horizon per topology (default: 30; quick 10)")
        .flag_default("seed", "N", "generator + trace seed", "2017")
        .flag("threads", "N", "playback worker threads (default: all cores)")
        .flag("out", "DIR", "output directory (default: results/)")
        .switch("check", "fail when cached flap reaction is not cheaper than full recompute");
    let matches = cli.parse_env();
    let quick = matches.is_set("quick");
    let mode = if quick { "quick" } else { "full" };
    let sizes: Vec<usize> = match matches.value("sizes") {
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    cli.exit_with(&dg_bench::cli::CliError::BadValue {
                        flag: "sizes".to_string(),
                        value: raw.to_string(),
                        expected: "comma-separated node counts",
                    })
                })
            })
            .collect(),
        None if quick => vec![50, 100],
        None => vec![50, 100, 200],
    };
    let families: Vec<String> = matches
        .value("families")
        .unwrap_or("waxman,ring")
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let flows: usize = matches.get_or("flows", 8).unwrap_or_else(|e| cli.exit_with(&e));
    let rate: u32 = matches.get_or("rate", 100).unwrap_or_else(|e| cli.exit_with(&e));
    let trace_secs: u64 = matches
        .get_or("trace-seconds", if quick { 10 } else { 30 })
        .unwrap_or_else(|e| cli.exit_with(&e));
    let seed: u64 = matches.get_or("seed", 2_017).unwrap_or_else(|e| cli.exit_with(&e));
    let threads: usize = matches
        .get_or("threads", std::thread::available_parallelism().map_or(1, |n| n.get()))
        .unwrap_or_else(|e| cli.exit_with(&e));
    let out_dir = matches.value("out").map_or_else(dg_bench::results_dir, PathBuf::from);

    let mut results = Vec::new();
    for family in &families {
        for &nodes in &sizes {
            let spec = TopoSpec::parse(family, nodes, seed).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2)
            });
            eprintln!("running {} ...", spec.label());
            let size = run_size(&spec, flows, rate, trace_secs, seed, threads);
            println!(
                "{:<12} {:>4} nodes {:>5} edges  route p50/p99 {:>8.0}/{:>8.0} us  \
                 flap cached/full {:>8.0}/{:>9.0} us ({:.0}x)  targeted gap {:.3}",
                size.topo,
                size.nodes,
                size.edges,
                size.route_compute_us.p50,
                size.route_compute_us.p99,
                size.flap.cached_recompute_us,
                size.flap.full_recompute_us,
                size.flap.speedup,
                size.schemes
                    .iter()
                    .find(|r| r.scheme == SchemeKind::TargetedRedundancy.label())
                    .map_or(f64::NAN, |r| r.gap_coverage),
            );
            results.push(size);
        }
    }

    let result = Fig8Result {
        bench: "fig8_scale".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        rate,
        trace_seconds: trace_secs,
        sizes: results,
    };
    write_result(&out_dir, &result);

    if matches.is_set("check") {
        let failures = check(&result);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("REGRESSION {f}");
            }
            std::process::exit(1);
        }
        println!("check passed: cached flap reaction beats full recompute at every size");
    }
}
