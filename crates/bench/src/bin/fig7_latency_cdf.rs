//! Figure 7 (extension): the latency distribution behind the
//! availability numbers.
//!
//! Per scheme: delivered-packet latency percentiles (loss-aware — a
//! quantile that falls among never-delivered packets reports `lost`)
//! and the full CDF as CSV. Shows the other face of redundancy: the
//! extra branches don't just rescue packets, they tighten the tail,
//! while flooding's tail is the best money can buy.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig7_latency_cdf --
//! [--seconds N] [--weeks N] [--rate N] [--topology us|global]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::{build_scheme, SchemeKind};
use dg_core::Flow;
use dg_sim::{run_flow_full, LatencyHistogram};
use dg_trace::gen;

fn main() {
    let cli = Experiment::cli("fig7_latency_cdf", "latency distribution (CDF) per scheme");
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));

    let mut histograms: Vec<(SchemeKind, LatencyHistogram)> =
        SchemeKind::ALL.iter().map(|&k| (k, LatencyHistogram::new())).collect();

    for (week, &seed) in experiment.seeds.iter().enumerate() {
        let traces = gen::generate(&experiment.topology, &experiment.wan_config(seed));
        let mut config = experiment.config;
        config.playback.seed = seed;
        for (kind, hist) in &mut histograms {
            for &(s, t) in &experiment.flows {
                let mut scheme = build_scheme(
                    *kind,
                    &experiment.topology,
                    Flow::new(s, t),
                    config.requirement,
                    &config.scheme_params,
                )
                .expect("flows routable");
                let out =
                    run_flow_full(&experiment.topology, &traces, scheme.as_mut(), &config.playback);
                hist.merge(&out.latency);
            }
        }
        eprintln!("week {} done", week + 1);
    }

    let fmt = |q: Option<dg_topology::Micros>| {
        q.map_or("lost".to_string(), |m| format!("{:.1}ms", m.as_micros() as f64 / 1_000.0))
    };
    let mut table = vec![vec![
        "scheme".to_string(),
        "P50".to_string(),
        "P90".to_string(),
        "P99".to_string(),
        "P99.9".to_string(),
        "P99.99".to_string(),
    ]];
    for (kind, hist) in &histograms {
        table.push(vec![
            kind.label().to_string(),
            fmt(hist.quantile(0.5)),
            fmt(hist.quantile(0.9)),
            fmt(hist.quantile(0.99)),
            fmt(hist.quantile(0.999)),
            fmt(hist.quantile(0.9999)),
        ]);
    }
    println!(
        "one-way latency percentiles over all packets (deadline {}):\n",
        experiment.config.playback.deadline
    );
    print_table(&table);
    write_csv("fig7_percentiles", &table);

    // Full CDFs, one column pair per scheme.
    let mut cdf_rows =
        vec![vec!["scheme".to_string(), "latency_ms".to_string(), "cdf".to_string()]];
    for (kind, hist) in &histograms {
        for (lat, frac) in hist.cdf() {
            cdf_rows.push(vec![
                kind.label().to_string(),
                format!("{:.3}", lat.as_micros() as f64 / 1_000.0),
                format!("{frac:.6}"),
            ]);
        }
    }
    write_csv("fig7_latency_cdf", &cdf_rows);
}
