//! Ablation: does "just add more disjoint paths" match targeted
//! redundancy?
//!
//! The paper argues that *targeted* redundancy — extra branches only
//! around troubled endpoints, only while the trouble lasts — buys
//! near-optimal timeliness at near-disjoint-path cost. The obvious
//! alternative is permanent extra redundancy: three or four always-on
//! disjoint paths. This experiment runs both families side by side.
//!
//! Usage: `cargo run --release -p dg-bench --bin ablation_kpaths --
//! [--seconds N] [--weeks N] [--rate N]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::SchemeKind;
use dg_sim::experiment::tabulate;

fn main() {
    let cli = Experiment::cli(
        "ablation_kpaths",
        "ablation: k-disjoint-path schemes vs targeted redundancy",
    );
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let kinds = [
        SchemeKind::StaticSinglePath,
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::StaticKDisjoint(3),
        SchemeKind::StaticKDisjoint(4),
        SchemeKind::TargetedRedundancy,
        SchemeKind::TimeConstrainedFlooding,
    ];
    let aggregates = experiment.run(&kinds);
    let rows =
        tabulate(&aggregates, SchemeKind::StaticSinglePath, SchemeKind::TimeConstrainedFlooding);
    let disjoint_cost = rows
        .iter()
        .find(|r| r.scheme == SchemeKind::StaticTwoDisjoint)
        .expect("2-disjoint present")
        .average_cost;

    let mut table = vec![vec![
        "scheme".to_string(),
        "unavail s".to_string(),
        "gap coverage %".to_string(),
        "avg cost".to_string(),
        "cost vs 2-disjoint".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.scheme.label().to_string(),
            r.unavailable_seconds.to_string(),
            format!("{:.1}", r.gap_coverage * 100.0),
            format!("{:.2}", r.average_cost),
            format!("{:+.1}%", (r.average_cost / disjoint_cost - 1.0) * 100.0),
        ]);
    }
    print_table(&table);
    write_csv("ablation_kpaths", &table);
    println!(
        "\nreading: permanent k-path redundancy pays its full cost all the time;\n\
         targeted redundancy approaches flooding's coverage while paying extra\n\
         only during endpoint problems."
    );
}
