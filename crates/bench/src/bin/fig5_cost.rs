//! Figure 5 (reconstructed): the cost of each routing scheme.
//!
//! Two views of the paper's cost story: the *static* cost of each
//! scheme's dissemination graphs (edges per message across the 16
//! flows), and the *measured* average cost from playback (which folds
//! in targeted redundancy's occasional escalations — the paper's
//! "about 2% over two disjoint paths" claim).
//!
//! Usage: `cargo run --release -p dg-bench --bin fig5_cost --
//! [--seconds N] [--weeks N] [--rate N]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::{build_scheme, SchemeKind};
use dg_core::Flow;

fn main() {
    let cli = Experiment::cli("fig5_cost", "cost (packets per message) comparison across schemes");
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let graph = &experiment.topology;

    // Static graph costs.
    println!("static dissemination-graph cost (edges per message):\n");
    let mut table =
        vec![vec!["scheme".to_string(), "min".to_string(), "mean".to_string(), "max".to_string()]];
    for kind in SchemeKind::ALL {
        let costs: Vec<u64> = experiment
            .flows
            .iter()
            .map(|&(s, t)| {
                build_scheme(
                    kind,
                    graph,
                    Flow::new(s, t),
                    experiment.config.requirement,
                    &experiment.config.scheme_params,
                )
                .expect("flows routable")
                .current()
                .cost(graph)
            })
            .collect();
        let mean = costs.iter().sum::<u64>() as f64 / costs.len() as f64;
        table.push(vec![
            kind.label().to_string(),
            costs.iter().min().unwrap().to_string(),
            format!("{mean:.2}"),
            costs.iter().max().unwrap().to_string(),
        ]);
    }
    print_table(&table);
    write_csv("fig5_cost_static", &table);

    // Measured costs from playback, normalized to two disjoint paths.
    println!("\nmeasured cost from playback (packets actually sent per message):\n");
    let aggregates = experiment.run(&SchemeKind::ALL);
    let disjoint = aggregates
        .iter()
        .find(|a| a.kind == SchemeKind::StaticTwoDisjoint)
        .expect("disjoint present")
        .average_cost();
    let mut measured =
        vec![vec!["scheme".to_string(), "avg cost".to_string(), "vs 2-disjoint".to_string()]];
    for agg in &aggregates {
        measured.push(vec![
            agg.kind.label().to_string(),
            format!("{:.2}", agg.average_cost()),
            format!("{:+.1}%", (agg.average_cost() / disjoint - 1.0) * 100.0),
        ]);
    }
    print_table(&measured);
    write_csv("fig5_cost_measured", &measured);
}
