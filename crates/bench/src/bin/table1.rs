//! Table 1 (reconstructed): classification of problematic intervals by
//! location relative to each flow.
//!
//! The paper's key empirical finding is that most problems affecting a
//! flow sit around its source or destination; this regenerates that
//! analysis over the synthetic traces (restricted, per flow, to the
//! links inside its time-constrained flooding region).
//!
//! Usage: `cargo run --release -p dg-bench --bin table1 --
//! [--seconds N] [--weeks N] [--loss-threshold F]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_topology::Micros;
use dg_trace::analysis::{classify_flows, FlowProblemSummary};
use dg_trace::gen;

fn main() {
    let cli = Experiment::cli("table1", "problem classification by location relative to each flow")
        .flag_default(
            "loss-threshold",
            "F",
            "loss rate above which an interval counts as problematic",
            "0.05",
        );
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let threshold: f64 =
        matches.get_or("loss-threshold", 0.05).unwrap_or_else(|e| cli.exit_with(&e));
    let deadline = Micros::from_millis(65);

    let mut total = FlowProblemSummary::default();
    for &seed in &experiment.seeds {
        let traces = gen::generate(&experiment.topology, &experiment.wan_config(seed));
        let summary =
            classify_flows(&experiment.topology, &traces, &experiment.flows, threshold, deadline);
        total.merge(&summary);
        eprintln!("seed {seed} done");
    }

    // Problem-episode durations: reactive routing only pays off when
    // problems outlive the detection delay.
    let mut episodes: Vec<usize> = Vec::new();
    for &seed in &experiment.seeds {
        let traces = gen::generate(&experiment.topology, &experiment.wan_config(seed));
        for &(s, t) in &experiment.flows {
            let relevant = dg_topology::algo::reach::time_constrained_edges(
                &experiment.topology,
                s,
                t,
                deadline,
            )
            .unwrap_or_default();
            episodes.extend(dg_trace::analysis::problem_episode_durations(
                &experiment.topology,
                &traces,
                s,
                t,
                threshold,
                Some(&relevant),
            ));
        }
    }
    episodes.sort_unstable();

    let pct = |n: usize| {
        if total.problematic_intervals == 0 {
            0.0
        } else {
            100.0 * n as f64 / total.problematic_intervals as f64
        }
    };
    let table = vec![
        vec!["problem location".to_string(), "intervals".to_string(), "% of problems".to_string()],
        vec!["source only".into(), total.source.to_string(), format!("{:.1}", pct(total.source))],
        vec![
            "destination only".into(),
            total.destination.to_string(),
            format!("{:.1}", pct(total.destination)),
        ],
        vec!["both endpoints".into(), total.both.to_string(), format!("{:.1}", pct(total.both))],
        vec!["middle only".into(), total.middle.to_string(), format!("{:.1}", pct(total.middle))],
    ];
    print_table(&table);
    println!(
        "\nproblematic flow-intervals: {} of {} ({:.2}%)",
        total.problematic_intervals,
        total.total_intervals,
        100.0 * total.problematic_intervals as f64 / total.total_intervals.max(1) as f64
    );
    println!(
        "fraction involving an endpoint: {:.1}% (paper: roughly two-thirds)",
        total.fraction_around_endpoints() * 100.0
    );
    if !episodes.is_empty() {
        let interval_secs = 10;
        let at = |q: f64| episodes[((episodes.len() - 1) as f64 * q) as usize] * interval_secs;
        println!(
            "problem episodes: {} total; duration P50 {}s, P90 {}s, max {}s \
             (monitoring interval {interval_secs}s — most episodes long outlive \
             a ~1s detection delay, which is why reactive routing works)",
            episodes.len(),
            at(0.5),
            at(0.9),
            episodes.last().expect("non-empty") * interval_secs,
        );
    }
    write_csv("table1", &table);
}
