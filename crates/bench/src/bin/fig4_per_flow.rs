//! Figure 4 (reconstructed): per-flow unavailability by scheme.
//!
//! One series per scheme across the 16 transcontinental flows — the
//! paper's view of how uniformly each scheme's benefit holds up across
//! source/destination pairs.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig4_per_flow --
//! [--seconds N] [--weeks N] [--rate N]`

use dg_bench::{print_table, write_csv, Experiment};
use dg_core::scheme::SchemeKind;

fn main() {
    let cli = Experiment::cli("fig4_per_flow", "per-flow availability comparison across schemes");
    let matches = cli.parse_env();
    let experiment = Experiment::from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let aggregates = experiment.run(&SchemeKind::ALL);

    let mut table = vec![{
        let mut header = vec!["flow".to_string()];
        header.extend(SchemeKind::ALL.iter().map(|k| k.label().to_string()));
        header
    }];
    for (i, &(s, t)) in experiment.flows.iter().enumerate() {
        let mut row = vec![format!(
            "{}->{}",
            experiment.topology.node(s).name,
            experiment.topology.node(t).name
        )];
        for agg in &aggregates {
            row.push(agg.per_flow[i].unavailable_seconds.to_string());
        }
        table.push(row);
    }
    println!(
        "unavailable seconds per flow ({} weeks x {}s):\n",
        experiment.seeds.len(),
        experiment.seconds_per_week
    );
    print_table(&table);
    write_csv("fig4_per_flow", &table);

    // Worst-flow summary: the paper highlights that targeted redundancy
    // helps the *worst* flows, not just the average.
    println!("\nworst flow per scheme:");
    for agg in &aggregates {
        let worst = agg.per_flow.iter().max_by_key(|f| f.unavailable_seconds).expect("16 flows");
        println!(
            "  {:<28} {:>5}s unavailable ({})",
            agg.kind.label(),
            worst.unavailable_seconds,
            worst.flow.label(&experiment.topology)
        );
    }
}
