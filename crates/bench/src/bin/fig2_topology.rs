//! Figure 2 (reconstructed): the evaluation overlay topology.
//!
//! Prints the 12 sites, their links with one-way latencies, and writes
//! a DOT rendering. Also verifies the properties the evaluation relies
//! on (two node-disjoint routes and a feasible 65 ms deadline for every
//! transcontinental flow).
//!
//! Usage: `cargo run --release -p dg-bench --bin fig2_topology`

use dg_bench::{print_table, results_dir, write_csv};
use dg_topology::algo::disjoint::{max_disjoint, Disjointness};
use dg_topology::algo::{dijkstra, reach};
use dg_topology::{presets, Micros};

fn main() {
    // No tunables, but the shared parser still rejects stray flags and
    // answers --help like every other binary.
    dg_bench::cli::Cli::new("fig2_topology", "the evaluation overlay topology").parse_env();
    let graph = presets::north_america_12();
    println!(
        "evaluation topology: {} sites, {} directed edges\n",
        graph.node_count(),
        graph.edge_count()
    );

    let mut table = vec![vec!["link".to_string(), "one-way latency".to_string()]];
    for e in graph.edges() {
        let info = graph.edge(e);
        // Print each bidirectional link once.
        if info.src < info.dst {
            table.push(vec![
                format!("{} <-> {}", graph.node(info.src).name, graph.node(info.dst).name),
                info.latency.to_string(),
            ]);
        }
    }
    print_table(&table);
    write_csv("fig2_topology", &table);

    println!("\ntranscontinental flows:");
    let mut rows = vec![vec![
        "flow".to_string(),
        "shortest path".to_string(),
        "latency".to_string(),
        "disjoint capacity".to_string(),
        "65ms feasible".to_string(),
    ]];
    for (s, t) in presets::transcontinental_flows(&graph) {
        let p = dijkstra::shortest_path(&graph, s, t).expect("flows are routable");
        rows.push(vec![
            format!("{}->{}", graph.node(s).name, graph.node(t).name),
            p.display(&graph),
            p.latency(&graph).to_string(),
            max_disjoint(&graph, s, t, Disjointness::Node).to_string(),
            reach::deadline_feasible(&graph, s, t, Micros::from_millis(65)).to_string(),
        ]);
    }
    print_table(&rows);

    let path = results_dir().join("fig2_topology.dot");
    std::fs::write(&path, graph.to_dot()).expect("results dir is writable");
    eprintln!("wrote {}", path.display());
}
