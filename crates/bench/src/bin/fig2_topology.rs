//! Figure 2 (reconstructed): the evaluation overlay topology.
//!
//! Prints the sites, their links with one-way latencies, and writes a
//! DOT rendering. Also verifies the properties the evaluation relies
//! on (two node-disjoint routes and a feasible deadline for every
//! evaluation flow). Defaults to the paper's 12-site preset; `--topo
//! ring|waxman --nodes N` inspects a generated overlay instead.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig2_topology --
//! [--topo us|global|ring|waxman] [--nodes N]`

use dg_bench::{print_table, results_dir, topo_cli, topo_from_matches, write_csv};
use dg_topology::algo::disjoint::{max_disjoint, Disjointness};
use dg_topology::algo::{dijkstra, reach};

fn main() {
    let cli = topo_cli(dg_bench::cli::Cli::new("fig2_topology", "the evaluation overlay topology"));
    let matches = cli.parse_env();
    let spec = topo_from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let graph = spec.build();
    println!(
        "evaluation topology {}: {} sites, {} directed edges\n",
        spec.label(),
        graph.node_count(),
        graph.edge_count()
    );

    let mut table = vec![vec!["link".to_string(), "one-way latency".to_string()]];
    for e in graph.edges() {
        let info = graph.edge(e);
        // Print each bidirectional link once.
        if info.src < info.dst {
            table.push(vec![
                format!("{} <-> {}", graph.node(info.src).name, graph.node(info.dst).name),
                info.latency.to_string(),
            ]);
        }
    }
    print_table(&table);
    write_csv("fig2_topology", &table);

    let flows = spec.default_flows(&graph, 16);
    let deadline = spec.default_deadline(&graph, &flows);
    println!("\nevaluation flows (deadline {deadline}):");
    let mut rows = vec![vec![
        "flow".to_string(),
        "shortest path".to_string(),
        "latency".to_string(),
        "disjoint capacity".to_string(),
        "deadline feasible".to_string(),
    ]];
    for (s, t) in flows {
        let p = dijkstra::shortest_path(&graph, s, t).expect("flows are routable");
        rows.push(vec![
            format!("{}->{}", graph.node(s).name, graph.node(t).name),
            p.display(&graph),
            p.latency(&graph).to_string(),
            max_disjoint(&graph, s, t, Disjointness::Node).to_string(),
            reach::deadline_feasible(&graph, s, t, deadline).to_string(),
        ]);
    }
    print_table(&rows);

    let path = results_dir().join("fig2_topology.dot");
    std::fs::write(&path, graph.to_dot()).expect("results dir is writable");
    eprintln!("wrote {}", path.display());
}
