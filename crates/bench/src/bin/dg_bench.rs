//! `dg-bench` — the repo's performance harness.
//!
//! Two hot paths plus one resilience scenario, one stable JSON schema
//! per result so CI can diff runs:
//!
//! * **forwarding** — a two-node loopback overlay cluster forwarding
//!   batched application traffic; reports sustained delivered packets
//!   per second, Gbps, and p50/p99/p999 end-to-end latency.
//! * **sim** — trace playback of the two most expensive routing schemes
//!   over the evaluation topology; reports simulated packets per
//!   wall-clock second.
//! * **sim-parallel** (`--parallel` or `--only sim-parallel`) — the
//!   same replay fanned out over a batch of flow×scheme jobs, run once
//!   serially and once on the worker-pool `run_flows` path; reports
//!   both throughputs, the speedup, and whether the parallel results
//!   were byte-identical to the serial ones (they must be — a mismatch
//!   fails the bench even without `--check`).
//! * **overload** (`--overload` or `--only overload`) — a cluster
//!   driven past its outbound queue bound with synthetic bulk
//!   pressure; reports the surgical class's on-time fraction, the
//!   per-class shed counters, and how long full redundancy took to
//!   restore after the load lifted.
//!
//! Each bench writes `BENCH_<name>.json` under `results/` (or `--out`).
//! `--quick` shrinks the runs for CI smoke tests; `--check DIR`
//! compares the fresh numbers against committed baseline JSONs and
//! exits non-zero when throughput regresses by more than `--tolerance`
//! (default 0.2 = 20%). The overload scenario's surgical on-time
//! fraction is gated at a fixed 2% tolerance — an SLA floor, not a
//! throughput band.
//!
//! Usage: `cargo run --release -p dg-bench --bin dg-bench --
//! [--quick] [--only forwarding|sim|sim-parallel|overload]
//! [--overload] [--parallel] [--topo us|global|ring|waxman] [--nodes N]
//! [--check docs/bench_baseline]`
//!
//! `--topo`/`--nodes` swap the sim bench's topology for a generated
//! overlay (see `dg_topology::generate`); the forwarding bench is
//! topology-independent.

use dg_bench::cli::Cli;
use dg_bench::{topo_cli, topo_from_matches};
use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{Flow, ServiceRequirement};
use dg_overlay::cluster::{Cluster, ClusterConfig};
use dg_sim::{run_flow, run_flows, FlowJob, LatencyHistogram, PlaybackConfig};
use dg_topology::generate::TopoSpec;
use dg_topology::{GraphBuilder, Micros};
use dg_trace::gen::{self, SyntheticWanConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Schema version stamped into every result file; bump when a field
/// changes meaning so baseline comparisons fail loudly instead of
/// silently comparing different quantities.
const SCHEMA_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct ForwardingResult {
    bench: String,
    schema_version: u32,
    mode: String,
    seconds: u64,
    payload_bytes: usize,
    batch: usize,
    sent: u64,
    delivered: u64,
    pps: f64,
    gbps: f64,
    latency_us: LatencyQuantiles,
}

#[derive(Debug, Serialize, Deserialize)]
struct LatencyQuantiles {
    p50: Option<u64>,
    p99: Option<u64>,
    p999: Option<u64>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SimResult {
    bench: String,
    schema_version: u32,
    mode: String,
    #[serde(default)]
    topo: String,
    trace_seconds: u64,
    rate: u32,
    packets: u64,
    wall_secs: f64,
    packets_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct SimParallelResult {
    bench: String,
    schema_version: u32,
    mode: String,
    #[serde(default)]
    topo: String,
    trace_seconds: u64,
    rate: u32,
    /// Cores the host reported at run time; the speedup gate only
    /// applies when this is ≥ 2 (a single-core box cannot speed up).
    cores: usize,
    /// Worker threads the parallel leg actually used.
    threads: usize,
    jobs: usize,
    packets: u64,
    serial_wall_secs: f64,
    serial_packets_per_sec: f64,
    parallel_wall_secs: f64,
    parallel_packets_per_sec: f64,
    speedup: f64,
    /// Whether the parallel results were byte-identical to the serial
    /// ones. Anything but `true` is a correctness failure.
    identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct OverloadResult {
    bench: String,
    schema_version: u32,
    mode: String,
    seconds: u64,
    queue_bound: usize,
    surgical_sent: u64,
    surgical_on_time: u64,
    surgical_on_time_fraction: f64,
    shed_bulk: u64,
    shed_timely: u64,
    shed_surgical: u64,
    peak_level: u8,
    recovery_ms: Option<u64>,
}

/// Drives the overload soak topology (one source, two disjoint relays,
/// one sink per SLA class) with the source's queue parked at ~80% of
/// its bound and several times the admissible load offered in every
/// class, then measures what the service-class machinery protected.
fn overload_bench(secs: u64, mode: &str) -> OverloadResult {
    use dg_core::SlaClass;

    let mut b = GraphBuilder::new();
    let src = b.add_node("SRC");
    let relays = [b.add_node("RLY1"), b.add_node("RLY2")];
    let sinks = [b.add_node("BULK"), b.add_node("TIMELY"), b.add_node("SURGICAL")];
    for r in relays {
        b.add_link(src, r, Micros::from_millis(10), 1).expect("links are distinct");
        for s in sinks {
            b.add_link(r, s, Micros::from_millis(10), 1).expect("links are distinct");
        }
    }
    let graph = b.build();

    let queue_bound = 128;
    let config = ClusterConfig {
        hello_interval: Duration::from_millis(20),
        link_state_interval: Duration::from_millis(80),
        shipper_queue: queue_bound,
        overload_hold_down: Duration::from_millis(250),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::launch(&graph, config).expect("cluster launches");
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "link state converges");

    let flows: Vec<_> = [SlaClass::Bulk, SlaClass::Timely, SlaClass::Surgical]
        .into_iter()
        .zip(sinks)
        .map(|(class, sink)| (class, Flow::new(src, sink)))
        .collect();
    let receivers: Vec<_> =
        flows.iter().map(|&(_, f)| cluster.open_receiver(f).expect("receiver opens")).collect();
    let senders: Vec<_> = flows
        .iter()
        .map(|&(class, f)| cluster.open_sla_sender(f, class).expect("sender admits"))
        .collect();

    // Park synthetic pressure between the timely band (3/4 of the
    // bound) and the surgical band (the bound itself) for the whole
    // measured window, then offer multiples of the admissible load.
    cluster.inject_overload(
        src,
        queue_bound * 13 / 16,
        Duration::from_secs(secs) + Duration::from_millis(200),
    );
    let mut surgical_sent = 0u64;
    let mut peak_level = 0u8;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(secs);
    while Instant::now() < deadline {
        for _ in 0..4 {
            senders[0].send(b"flood-bulk").expect("bulk send");
        }
        for _ in 0..2 {
            senders[1].send(b"flood-timely").expect("timely send");
        }
        senders[2].send(b"steady-surgical").expect("surgical send");
        surgical_sent += 1;
        peak_level = peak_level.max(cluster.node(src).overload_level());
        std::thread::sleep(Duration::from_millis(10));
    }

    // Load lifted: time the walk back to full redundancy (EWMA decay
    // plus a sustained-quiet hold-down).
    let lifted = Instant::now();
    let recovery_deadline = lifted + Duration::from_secs(5);
    let mut recovery_ms = None;
    while Instant::now() < recovery_deadline {
        if cluster.node(src).overload_level() == 0 {
            recovery_ms = Some(lifted.elapsed().as_millis() as u64);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(300));

    let surgical_on_time = receivers[2].drain().iter().filter(|d| d.on_time).count() as u64;
    let counters = cluster.node(src).metrics_snapshot().counters;
    cluster.shutdown();
    OverloadResult {
        bench: "overload".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        seconds: secs,
        queue_bound,
        surgical_sent,
        surgical_on_time,
        surgical_on_time_fraction: surgical_on_time as f64 / surgical_sent as f64,
        shed_bulk: counters.shed_bulk,
        shed_timely: counters.shed_timely,
        shed_surgical: counters.shed_surgical,
        peak_level,
        recovery_ms,
    }
}

fn forwarding_bench(secs: u64, payload_len: usize, batch: usize, mode: &str) -> ForwardingResult {
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let z = b.add_node("B");
    b.add_link(a, z, Micros::from_millis(1), 1).expect("two-node link");
    let graph = b.build();

    let config = ClusterConfig {
        // Loopback: measure the forwarding path itself, not emulated
        // propagation delay, and coalesce aggressively (the loopback
        // MTU is 64 KiB, not a WAN's 1500 B).
        latency_scale: 0.0,
        max_batch_bytes: 60_000,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::launch(&graph, config).expect("cluster launches");
    let flow = Flow::new(a, z);
    let rx = cluster.open_receiver(flow).expect("receiver opens");
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .expect("sender opens");

    let payload = vec![0xABu8; payload_len];
    let burst: Vec<&[u8]> = (0..batch).map(|_| payload.as_slice()).collect();
    let mut hist = LatencyHistogram::new();
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(secs);
    while Instant::now() < deadline {
        tx.send_batch(&burst).expect("batch send succeeds");
        sent += batch as u64;
        while let Some(d) = rx.try_recv() {
            delivered += 1;
            hist.record(d.latency());
        }
        // Cap outstanding so we measure sustainable throughput, not
        // queue growth.
        while sent - delivered > 1024 {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Some(d) => {
                    delivered += 1;
                    hist.record(d.latency());
                }
                None => break,
            }
        }
    }
    let drain_deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < drain_deadline && delivered < sent {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Some(d) => {
                delivered += 1;
                hist.record(d.latency());
            }
            None => break,
        }
    }
    let wall = start.elapsed().as_secs_f64();
    cluster.shutdown();

    let pps = delivered as f64 / wall;
    let quantile = |q| hist.quantile(q).map(|v| v.as_micros());
    ForwardingResult {
        bench: "forwarding".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        seconds: secs,
        payload_bytes: payload_len,
        batch,
        sent,
        delivered,
        pps,
        gbps: pps * payload_len as f64 * 8.0 / 1e9,
        latency_us: LatencyQuantiles {
            p50: quantile(0.5),
            p99: quantile(0.99),
            p999: quantile(0.999),
        },
    }
}

fn sim_bench(trace_secs: u64, rate: u32, mode: &str, spec: &TopoSpec) -> SimResult {
    let g = spec.build();
    let mut cfg = SyntheticWanConfig::calibrated(2017);
    cfg.duration = Micros::from_secs(trace_secs);
    let traces = gen::generate(&g, &cfg);
    let flow = if *spec == TopoSpec::NorthAmerica {
        Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap())
    } else {
        let (s, t) = *spec.default_flows(&g, 1).first().expect("topology has a flow");
        Flow::new(s, t)
    };
    let deadline = spec.default_deadline(&g, &[(flow.source, flow.destination)]);
    let mut packets = 0u64;
    let start = Instant::now();
    // The two most expensive schemes: the paper's recommended policy
    // and the flooding upper bound.
    for kind in [SchemeKind::TargetedRedundancy, SchemeKind::TimeConstrainedFlooding] {
        let mut scheme = build_scheme(
            kind,
            &g,
            flow,
            ServiceRequirement::new(deadline),
            &SchemeParams::default(),
        )
        .expect("flow is routable");
        let config =
            PlaybackConfig { packets_per_second: rate, deadline, ..PlaybackConfig::default() };
        let stats = run_flow(&g, &traces, scheme.as_mut(), &config);
        packets += stats.packets_sent;
    }
    let wall = start.elapsed().as_secs_f64();
    SimResult {
        bench: "sim".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        topo: spec.label(),
        trace_seconds: trace_secs,
        rate,
        packets,
        wall_secs: wall,
        packets_per_sec: packets as f64 / wall,
    }
}

/// Fans the sim bench out: a batch of flow×scheme jobs replayed once
/// on the serial `run_flows(.., 1)` path and once on the worker pool
/// (`threads = min(cores, jobs)`), timing both and comparing the
/// `FlowRunStats` for byte equality. The batch uses the topology's
/// default flow set so the jobs are heterogeneous — exactly the load
/// shape the pull-based job queue has to balance.
fn sim_parallel_bench(
    trace_secs: u64,
    rate: u32,
    mode: &str,
    spec: &TopoSpec,
) -> SimParallelResult {
    let g = spec.build();
    let mut cfg = SyntheticWanConfig::calibrated(2017);
    cfg.duration = Micros::from_secs(trace_secs);
    let traces = gen::generate(&g, &cfg);
    let flows = spec.default_flows(&g, 8);
    let deadline = spec.default_deadline(&g, &flows);
    let jobs: Vec<FlowJob> = [SchemeKind::TargetedRedundancy, SchemeKind::TimeConstrainedFlooding]
        .into_iter()
        .flat_map(|kind| {
            flows.iter().map(move |&(s, t)| FlowJob {
                kind,
                flow: Flow::new(s, t),
                requirement: ServiceRequirement::new(deadline),
            })
        })
        .collect();
    let config = PlaybackConfig { packets_per_second: rate, deadline, ..PlaybackConfig::default() };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(jobs.len()).max(1);

    let start = Instant::now();
    let serial = run_flows(&g, &traces, &jobs, &config, 1).expect("flows are routable");
    let serial_wall = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_flows(&g, &traces, &jobs, &config, threads).expect("flows are routable");
    let parallel_wall = start.elapsed().as_secs_f64();

    let packets: u64 = serial.iter().map(|s| s.packets_sent).sum();
    SimParallelResult {
        bench: "sim_parallel".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        topo: spec.label(),
        trace_seconds: trace_secs,
        rate,
        cores,
        threads,
        jobs: jobs.len(),
        packets,
        serial_wall_secs: serial_wall,
        serial_packets_per_sec: packets as f64 / serial_wall,
        parallel_wall_secs: parallel_wall,
        parallel_packets_per_sec: packets as f64 / parallel_wall,
        speedup: serial_wall / parallel_wall,
        identical: serial == parallel,
    }
}

fn write_result<T: Serialize>(dir: &Path, name: &str, result: &T) -> PathBuf {
    std::fs::create_dir_all(dir).expect("output directory is creatable");
    let path = dir.join(format!("BENCH_{name}.json"));
    let json = serde_json::to_string_pretty(result).expect("result serializes");
    std::fs::write(&path, json + "\n").expect("result file is writable");
    eprintln!("wrote {}", path.display());
    path
}

/// One throughput comparison: fails (returns an error line) when
/// `current` falls more than `tolerance` below `baseline`.
fn check_metric(name: &str, baseline: f64, current: f64, tolerance: f64) -> Result<String, String> {
    let floor = baseline * (1.0 - tolerance);
    let line = format!(
        "{name}: baseline {baseline:.0}, current {current:.0} ({:+.1}%)",
        (current / baseline - 1.0) * 100.0
    );
    if current < floor {
        Err(format!("{line} — below the {:.0}% floor", (1.0 - tolerance) * 100.0))
    } else {
        Ok(line)
    }
}

fn load_json<T: Deserialize>(path: &Path) -> Option<T> {
    let raw = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&raw).ok()
}

fn main() {
    let cli = topo_cli(Cli::new("dg-bench", "hot-path performance harness (forwarding + sim)"))
        .switch("quick", "abbreviated CI-smoke run (1s forwarding, 20s trace)")
        .switch("overload", "also run the overload-resilience scenario")
        .switch("parallel", "also run the parallel-simulator scaling scenario")
        .flag_default("seconds", "N", "forwarding bench duration", "5")
        .flag_default("payload", "BYTES", "application payload size", "512")
        .flag_default("batch", "N", "application packets per send_batch call", "32")
        .flag_default("sim-seconds", "N", "simulated trace duration", "60")
        .flag_default("rate", "PPS", "sim application packet rate", "2000")
        .flag("only", "forwarding|sim|sim-parallel|overload", "run a single bench")
        .flag("out", "DIR", "output directory (default: results/)")
        .flag("check", "DIR", "compare against baseline BENCH_*.json in DIR")
        .flag_default("tolerance", "F", "allowed throughput regression for --check", "0.2");
    let matches = cli.parse_env();
    let quick = matches.is_set("quick");
    let mode = if quick { "quick" } else { "full" };
    let secs: u64 =
        if quick { 1 } else { matches.get_or("seconds", 5).unwrap_or_else(|e| cli.exit_with(&e)) };
    let sim_secs: u64 = if quick {
        20
    } else {
        matches.get_or("sim-seconds", 60).unwrap_or_else(|e| cli.exit_with(&e))
    };
    let payload: usize = matches.get_or("payload", 512).unwrap_or_else(|e| cli.exit_with(&e));
    let batch: usize = matches.get_or("batch", 32).unwrap_or_else(|e| cli.exit_with(&e));
    let rate: u32 = matches.get_or("rate", 2_000).unwrap_or_else(|e| cli.exit_with(&e));
    let tolerance: f64 = matches.get_or("tolerance", 0.2).unwrap_or_else(|e| cli.exit_with(&e));
    let only = matches.value("only");
    if let Some(o) = only {
        if o != "forwarding" && o != "sim" && o != "sim-parallel" && o != "overload" {
            cli.exit_with(&dg_bench::cli::CliError::BadValue {
                flag: "only".to_string(),
                value: o.to_string(),
                expected: "forwarding, sim, sim-parallel, or overload",
            });
        }
    }
    let out_dir = matches.value("out").map_or_else(dg_bench::results_dir, PathBuf::from);
    let spec = topo_from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));

    let forwarding = (only.is_none() || only == Some("forwarding")).then(|| {
        let r = forwarding_bench(secs, payload, batch, mode);
        println!(
            "forwarding: {} delivered / {} sent in {}s -> {:.0} pps, {:.4} Gbps (p50 {:?} p99 {:?} p999 {:?} us)",
            r.delivered, r.sent, r.seconds, r.pps, r.gbps,
            r.latency_us.p50, r.latency_us.p99, r.latency_us.p999
        );
        write_result(&out_dir, "forwarding", &r);
        r
    });
    let sim = (only.is_none() || only == Some("sim")).then(|| {
        let r = sim_bench(sim_secs, rate, mode, &spec);
        println!(
            "sim: {} packets in {:.2}s -> {:.0} packets/sec",
            r.packets, r.wall_secs, r.packets_per_sec
        );
        write_result(&out_dir, "sim", &r);
        r
    });
    let sim_parallel = (matches.is_set("parallel") || only == Some("sim-parallel")).then(|| {
        let r = sim_parallel_bench(sim_secs, rate, mode, &spec);
        println!(
            "sim-parallel: {} packets over {} jobs, serial {:.0} pps, {} threads {:.0} pps \
             ({:.2}x on {} cores), identical: {}",
            r.packets,
            r.jobs,
            r.serial_packets_per_sec,
            r.threads,
            r.parallel_packets_per_sec,
            r.speedup,
            r.cores,
            r.identical
        );
        write_result(&out_dir, "sim_parallel", &r);
        // Byte-identity is a correctness invariant, not a performance
        // band: a divergence fails the run even without --check.
        if !r.identical {
            eprintln!(
                "REGRESSION sim-parallel: worker-pool results diverged from the serial replay"
            );
            std::process::exit(1);
        }
        r
    });
    let overload = (matches.is_set("overload") || only == Some("overload")).then(|| {
        let overload_secs = if quick { 1 } else { 3 };
        let r = overload_bench(overload_secs, mode);
        println!(
            "overload: surgical {}/{} on time ({:.4}), shed bulk {} / timely {} / surgical {}, peak level {}, recovery {:?} ms",
            r.surgical_on_time, r.surgical_sent, r.surgical_on_time_fraction,
            r.shed_bulk, r.shed_timely, r.shed_surgical, r.peak_level, r.recovery_ms
        );
        write_result(&out_dir, "overload", &r);
        r
    });

    let Some(baseline_dir) = matches.value("check") else { return };
    let baseline_dir = PathBuf::from(baseline_dir);
    let mut failures = Vec::new();
    if let Some(current) = forwarding {
        match load_json::<ForwardingResult>(&baseline_dir.join("BENCH_forwarding.json")) {
            Some(base) => match check_metric("forwarding pps", base.pps, current.pps, tolerance) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_forwarding.json",
                baseline_dir.display()
            )),
        }
    }
    if let Some(current) = sim {
        match load_json::<SimResult>(&baseline_dir.join("BENCH_sim.json")) {
            Some(base) => match check_metric(
                "sim packets/sec",
                base.packets_per_sec,
                current.packets_per_sec,
                tolerance,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures
                .push(format!("no readable baseline at {}/BENCH_sim.json", baseline_dir.display())),
        }
    }
    if let Some(current) = sim_parallel {
        // The single-thread leg must not regress: the worker-pool
        // machinery is free when threads == 1.
        match load_json::<SimParallelResult>(&baseline_dir.join("BENCH_sim_parallel.json")) {
            Some(base) => match check_metric(
                "sim-parallel serial packets/sec",
                base.serial_packets_per_sec,
                current.serial_packets_per_sec,
                tolerance,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_sim_parallel.json",
                baseline_dir.display()
            )),
        }
        // The speedup gate is absolute, not baseline-relative: on a
        // multi-core host the pool must actually scale. A 2-3 core
        // runner cannot hit 2x (2.0 is its theoretical ceiling), so it
        // gets a softer floor; a single core skips the gate entirely.
        if current.cores >= 2 {
            let floor = if current.cores >= 4 { 2.0 } else { 1.5 };
            let line = format!(
                "sim-parallel speedup: {:.2}x on {} cores (floor {floor:.1}x)",
                current.speedup, current.cores
            );
            if current.speedup < floor {
                failures.push(format!("{line} — parallel run_flows is not scaling"));
            } else {
                println!("check {line}");
            }
        } else {
            println!("check sim-parallel speedup: skipped on a single-core host");
        }
    }
    if let Some(current) = overload {
        match load_json::<OverloadResult>(&baseline_dir.join("BENCH_overload.json")) {
            // The on-time fraction is an SLA floor, not a throughput
            // band: gate it at a fixed 2% regardless of --tolerance.
            Some(base) => match check_metric(
                "overload surgical on-time %",
                base.surgical_on_time_fraction * 100.0,
                current.surgical_on_time_fraction * 100.0,
                0.02,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_overload.json",
                baseline_dir.display()
            )),
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        std::process::exit(1);
    }
}
