//! `dg-bench` — the repo's performance harness.
//!
//! Two hot paths plus one resilience scenario, one stable JSON schema
//! per result so CI can diff runs:
//!
//! * **forwarding** — a two-node loopback overlay cluster forwarding
//!   batched application traffic; reports sustained delivered packets
//!   per second, Gbps, and p50/p99/p999 end-to-end latency.
//! * **sim** — trace playback of the two most expensive routing schemes
//!   over the evaluation topology; reports simulated packets per
//!   wall-clock second.
//! * **sim-parallel** (`--parallel` or `--only sim-parallel`) — the
//!   same replay fanned out over a batch of flow×scheme jobs, run once
//!   serially and once on the worker-pool `run_flows` path; reports
//!   both throughputs, the speedup, and whether the parallel results
//!   were byte-identical to the serial ones (they must be — a mismatch
//!   fails the bench even without `--check`).
//! * **many-flow** (`--flows 1|100|10000`, default 10000) — thousands
//!   of unicast flows collapsed into source-sharing multicast groups
//!   routed by interned graphs, replayed against the naive per-flow
//!   baseline (fresh graph + full playback per flow); reports the
//!   aggregate flow-packets/sec of both legs, the speedup, the
//!   multicast-tier interning hit rate, per-flow fairness percentiles,
//!   and a single-receiver byte-identity spot-check (a divergence
//!   fails the bench even without `--check`).
//! * **overload** (`--overload` or `--only overload`) — a cluster
//!   driven past its outbound queue bound with synthetic bulk
//!   pressure; reports the surgical class's on-time fraction, the
//!   per-class shed counters, and how long full redundancy took to
//!   restore after the load lifted.
//!
//! Each bench writes `BENCH_<name>.json` under `results/` (or `--out`).
//! `--quick` shrinks the runs for CI smoke tests; `--check DIR`
//! compares the fresh numbers against committed baseline JSONs and
//! exits non-zero when throughput regresses by more than `--tolerance`
//! (default 0.2 = 20%). The overload scenario's surgical on-time
//! fraction is gated at a fixed 2% tolerance — an SLA floor, not a
//! throughput band.
//!
//! Usage: `cargo run --release -p dg-bench --bin dg-bench --
//! [--quick] [--only forwarding|sim|sim-parallel|overload|many-flow]
//! [--overload] [--parallel] [--flows N]
//! [--topo us|global|ring|waxman] [--nodes N]
//! [--check docs/bench_baseline]`
//!
//! `--topo`/`--nodes` swap the sim bench's topology for a generated
//! overlay (see `dg_topology::generate`); the forwarding bench is
//! topology-independent.

use dg_bench::cli::Cli;
use dg_bench::{topo_cli, topo_from_matches};
use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{Flow, GraphCache, GraphCacheStats, MulticastKind, ServiceRequirement};
use dg_overlay::cluster::{Cluster, ClusterConfig};
use dg_sim::{
    group_flows, run_flow, run_flows, run_group_with, run_groups, run_unicast_static_with, FlowJob,
    GroupJob, LatencyHistogram, PlaybackConfig, SimScratch,
};
use dg_topology::generate::TopoSpec;
use dg_topology::{GraphBuilder, Micros};
use dg_trace::gen::{self, SyntheticWanConfig};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Schema version stamped into every result file; bump when a field
/// changes meaning so baseline comparisons fail loudly instead of
/// silently comparing different quantities.
const SCHEMA_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct ForwardingResult {
    bench: String,
    schema_version: u32,
    mode: String,
    seconds: u64,
    payload_bytes: usize,
    batch: usize,
    sent: u64,
    delivered: u64,
    pps: f64,
    gbps: f64,
    latency_us: LatencyQuantiles,
}

#[derive(Debug, Serialize, Deserialize)]
struct LatencyQuantiles {
    p50: Option<u64>,
    p99: Option<u64>,
    p999: Option<u64>,
}

#[derive(Debug, Serialize, Deserialize)]
struct SimResult {
    bench: String,
    schema_version: u32,
    mode: String,
    #[serde(default)]
    topo: String,
    trace_seconds: u64,
    rate: u32,
    packets: u64,
    wall_secs: f64,
    packets_per_sec: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct SimParallelResult {
    bench: String,
    schema_version: u32,
    mode: String,
    #[serde(default)]
    topo: String,
    trace_seconds: u64,
    rate: u32,
    /// Cores the host reported at run time; the speedup gate only
    /// applies when this is ≥ 2 (a single-core box cannot speed up).
    cores: usize,
    /// Worker threads the parallel leg actually used.
    threads: usize,
    jobs: usize,
    packets: u64,
    serial_wall_secs: f64,
    serial_packets_per_sec: f64,
    parallel_wall_secs: f64,
    parallel_packets_per_sec: f64,
    speedup: f64,
    /// Whether the parallel results were byte-identical to the serial
    /// ones. Anything but `true` is a correctness failure.
    identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct ManyFlowResult {
    bench: String,
    schema_version: u32,
    mode: String,
    #[serde(default)]
    topo: String,
    /// Application flows replayed (the `--flows` knob).
    flows: usize,
    /// Source-sharing groups the flows collapsed into.
    groups: usize,
    trace_seconds: u64,
    rate: u32,
    /// Grouped fast path: wall time and aggregate source-side
    /// throughput (flow-packets per wall second — every flow's packets
    /// count, even though grouped flows share one propagation).
    group_wall_secs: f64,
    group_flow_pps: f64,
    /// Naive baseline: one uncached graph construction plus one full
    /// playback per flow.
    naive_wall_secs: f64,
    naive_flow_pps: f64,
    /// `naive_wall_secs / group_wall_secs` — the many-flow payoff.
    speedup: f64,
    /// Link transmissions per leg; the grouped leg sends each packet
    /// once per shared edge instead of once per flow.
    group_transmissions: u64,
    naive_transmissions: u64,
    /// Multicast-tier interning counters: one cache lookup per flow
    /// (plus one per group at replay), so the hit rate approaches
    /// `flows / (flows + groups)` as flows grow.
    intern_hits: u64,
    intern_misses: u64,
    intern_hit_rate: f64,
    /// Percentiles of the per-flow on-time delivery rate — grouping
    /// must not starve any single flow.
    fairness_p50: f64,
    fairness_p99: f64,
    /// Whether a single-receiver group replay was byte-identical to
    /// the plain unicast replay. Anything but `true` is a correctness
    /// failure.
    identical: bool,
}

#[derive(Debug, Serialize, Deserialize)]
struct OverloadResult {
    bench: String,
    schema_version: u32,
    mode: String,
    seconds: u64,
    queue_bound: usize,
    surgical_sent: u64,
    surgical_on_time: u64,
    surgical_on_time_fraction: f64,
    shed_bulk: u64,
    shed_timely: u64,
    shed_surgical: u64,
    peak_level: u8,
    recovery_ms: Option<u64>,
}

/// Drives the overload soak topology (one source, two disjoint relays,
/// one sink per SLA class) with the source's queue parked at ~80% of
/// its bound and several times the admissible load offered in every
/// class, then measures what the service-class machinery protected.
fn overload_bench(secs: u64, mode: &str) -> OverloadResult {
    use dg_core::SlaClass;

    let mut b = GraphBuilder::new();
    let src = b.add_node("SRC");
    let relays = [b.add_node("RLY1"), b.add_node("RLY2")];
    let sinks = [b.add_node("BULK"), b.add_node("TIMELY"), b.add_node("SURGICAL")];
    for r in relays {
        b.add_link(src, r, Micros::from_millis(10), 1).expect("links are distinct");
        for s in sinks {
            b.add_link(r, s, Micros::from_millis(10), 1).expect("links are distinct");
        }
    }
    let graph = b.build();

    let queue_bound = 128;
    let config = ClusterConfig {
        hello_interval: Duration::from_millis(20),
        link_state_interval: Duration::from_millis(80),
        shipper_queue: queue_bound,
        overload_hold_down: Duration::from_millis(250),
        ..ClusterConfig::default()
    };
    let cluster = Cluster::launch(&graph, config).expect("cluster launches");
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)), "link state converges");

    let flows: Vec<_> = [SlaClass::Bulk, SlaClass::Timely, SlaClass::Surgical]
        .into_iter()
        .zip(sinks)
        .map(|(class, sink)| (class, Flow::new(src, sink)))
        .collect();
    let receivers: Vec<_> =
        flows.iter().map(|&(_, f)| cluster.open_receiver(f).expect("receiver opens")).collect();
    let senders: Vec<_> = flows
        .iter()
        .map(|&(class, f)| cluster.open_sla_sender(f, class).expect("sender admits"))
        .collect();

    // Park synthetic pressure between the timely band (3/4 of the
    // bound) and the surgical band (the bound itself) for the whole
    // measured window, then offer multiples of the admissible load.
    cluster.inject_overload(
        src,
        queue_bound * 13 / 16,
        Duration::from_secs(secs) + Duration::from_millis(200),
    );
    let mut surgical_sent = 0u64;
    let mut peak_level = 0u8;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(secs);
    while Instant::now() < deadline {
        for _ in 0..4 {
            senders[0].send(b"flood-bulk").expect("bulk send");
        }
        for _ in 0..2 {
            senders[1].send(b"flood-timely").expect("timely send");
        }
        senders[2].send(b"steady-surgical").expect("surgical send");
        surgical_sent += 1;
        peak_level = peak_level.max(cluster.node(src).overload_level());
        std::thread::sleep(Duration::from_millis(10));
    }

    // Load lifted: time the walk back to full redundancy (EWMA decay
    // plus a sustained-quiet hold-down).
    let lifted = Instant::now();
    let recovery_deadline = lifted + Duration::from_secs(5);
    let mut recovery_ms = None;
    while Instant::now() < recovery_deadline {
        if cluster.node(src).overload_level() == 0 {
            recovery_ms = Some(lifted.elapsed().as_millis() as u64);
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(300));

    let surgical_on_time = receivers[2].drain().iter().filter(|d| d.on_time).count() as u64;
    let counters = cluster.node(src).metrics_snapshot().counters;
    cluster.shutdown();
    OverloadResult {
        bench: "overload".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        seconds: secs,
        queue_bound,
        surgical_sent,
        surgical_on_time,
        surgical_on_time_fraction: surgical_on_time as f64 / surgical_sent as f64,
        shed_bulk: counters.shed_bulk,
        shed_timely: counters.shed_timely,
        shed_surgical: counters.shed_surgical,
        peak_level,
        recovery_ms,
    }
}

fn forwarding_bench(secs: u64, payload_len: usize, batch: usize, mode: &str) -> ForwardingResult {
    let mut b = GraphBuilder::new();
    let a = b.add_node("A");
    let z = b.add_node("B");
    b.add_link(a, z, Micros::from_millis(1), 1).expect("two-node link");
    let graph = b.build();

    let config = ClusterConfig {
        // Loopback: measure the forwarding path itself, not emulated
        // propagation delay, and coalesce aggressively (the loopback
        // MTU is 64 KiB, not a WAN's 1500 B).
        latency_scale: 0.0,
        max_batch_bytes: 60_000,
        ..ClusterConfig::default()
    };
    let cluster = Cluster::launch(&graph, config).expect("cluster launches");
    let flow = Flow::new(a, z);
    let rx = cluster.open_receiver(flow).expect("receiver opens");
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .expect("sender opens");

    let payload = vec![0xABu8; payload_len];
    let burst: Vec<&[u8]> = (0..batch).map(|_| payload.as_slice()).collect();
    let mut hist = LatencyHistogram::new();
    let mut sent = 0u64;
    let mut delivered = 0u64;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(secs);
    while Instant::now() < deadline {
        tx.send_batch(&burst).expect("batch send succeeds");
        sent += batch as u64;
        while let Some(d) = rx.try_recv() {
            delivered += 1;
            hist.record(d.latency());
        }
        // Cap outstanding so we measure sustainable throughput, not
        // queue growth.
        while sent - delivered > 1024 {
            match rx.recv_timeout(Duration::from_millis(5)) {
                Some(d) => {
                    delivered += 1;
                    hist.record(d.latency());
                }
                None => break,
            }
        }
    }
    let drain_deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < drain_deadline && delivered < sent {
        match rx.recv_timeout(Duration::from_millis(20)) {
            Some(d) => {
                delivered += 1;
                hist.record(d.latency());
            }
            None => break,
        }
    }
    let wall = start.elapsed().as_secs_f64();
    println!("{}", cache_stats_line(&cluster.node(a).metrics_snapshot().graph_cache));
    cluster.shutdown();

    let pps = delivered as f64 / wall;
    let quantile = |q| hist.quantile(q).map(|v| v.as_micros());
    ForwardingResult {
        bench: "forwarding".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        seconds: secs,
        payload_bytes: payload_len,
        batch,
        sent,
        delivered,
        pps,
        gbps: pps * payload_len as f64 * 8.0 / 1e9,
        latency_us: LatencyQuantiles {
            p50: quantile(0.5),
            p99: quantile(0.99),
            p999: quantile(0.999),
        },
    }
}

fn sim_bench(trace_secs: u64, rate: u32, mode: &str, spec: &TopoSpec) -> SimResult {
    let g = spec.build();
    let mut cfg = SyntheticWanConfig::calibrated(2017);
    cfg.duration = Micros::from_secs(trace_secs);
    let traces = gen::generate(&g, &cfg);
    let flow = if *spec == TopoSpec::NorthAmerica {
        Flow::new(g.node_by_name("NYC").unwrap(), g.node_by_name("SJC").unwrap())
    } else {
        let (s, t) = *spec.default_flows(&g, 1).first().expect("topology has a flow");
        Flow::new(s, t)
    };
    let deadline = spec.default_deadline(&g, &[(flow.source, flow.destination)]);
    let mut packets = 0u64;
    let start = Instant::now();
    // The two most expensive schemes: the paper's recommended policy
    // and the flooding upper bound.
    for kind in [SchemeKind::TargetedRedundancy, SchemeKind::TimeConstrainedFlooding] {
        let mut scheme = build_scheme(
            kind,
            &g,
            flow,
            ServiceRequirement::new(deadline),
            &SchemeParams::default(),
        )
        .expect("flow is routable");
        let config =
            PlaybackConfig { packets_per_second: rate, deadline, ..PlaybackConfig::default() };
        let stats = run_flow(&g, &traces, scheme.as_mut(), &config);
        packets += stats.packets_sent;
    }
    let wall = start.elapsed().as_secs_f64();
    SimResult {
        bench: "sim".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        topo: spec.label(),
        trace_seconds: trace_secs,
        rate,
        packets,
        wall_secs: wall,
        packets_per_sec: packets as f64 / wall,
    }
}

/// Fans the sim bench out: a batch of flow×scheme jobs replayed once
/// on the serial `run_flows(.., 1)` path and once on the worker pool
/// (`threads = min(cores, jobs)`), timing both and comparing the
/// `FlowRunStats` for byte equality. The batch uses the topology's
/// default flow set so the jobs are heterogeneous — exactly the load
/// shape the pull-based job queue has to balance.
fn sim_parallel_bench(
    trace_secs: u64,
    rate: u32,
    mode: &str,
    spec: &TopoSpec,
) -> SimParallelResult {
    let g = spec.build();
    let mut cfg = SyntheticWanConfig::calibrated(2017);
    cfg.duration = Micros::from_secs(trace_secs);
    let traces = gen::generate(&g, &cfg);
    let flows = spec.default_flows(&g, 8);
    let deadline = spec.default_deadline(&g, &flows);
    let jobs: Vec<FlowJob> = [SchemeKind::TargetedRedundancy, SchemeKind::TimeConstrainedFlooding]
        .into_iter()
        .flat_map(|kind| {
            flows.iter().map(move |&(s, t)| FlowJob {
                kind,
                flow: Flow::new(s, t),
                requirement: ServiceRequirement::new(deadline),
            })
        })
        .collect();
    let config = PlaybackConfig { packets_per_second: rate, deadline, ..PlaybackConfig::default() };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = cores.min(jobs.len()).max(1);

    let start = Instant::now();
    let serial = run_flows(&g, &traces, &jobs, &config, 1).expect("flows are routable");
    let serial_wall = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_flows(&g, &traces, &jobs, &config, threads).expect("flows are routable");
    let parallel_wall = start.elapsed().as_secs_f64();

    let packets: u64 = serial.iter().map(|s| s.packets_sent).sum();
    SimParallelResult {
        bench: "sim_parallel".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        topo: spec.label(),
        trace_seconds: trace_secs,
        rate,
        cores,
        threads,
        jobs: jobs.len(),
        packets,
        serial_wall_secs: serial_wall,
        serial_packets_per_sec: packets as f64 / serial_wall,
        parallel_wall_secs: parallel_wall,
        parallel_packets_per_sec: packets as f64 / parallel_wall,
        speedup: serial_wall / parallel_wall,
        identical: serial == parallel,
    }
}

/// Value at quantile `q` (0..=1) of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One-line rendering of the graph-cache counters (satellite of the
/// many-flow work: the interned share must be visible in bench output).
fn cache_stats_line(stats: &GraphCacheStats) -> String {
    format!(
        "graph-cache: baseline {}h/{}m, live {}h/{}m, multicast {}h/{}m, interned share {:.4}",
        stats.baseline.hits,
        stats.baseline.misses,
        stats.live.hits,
        stats.live.misses,
        stats.multicast.hits,
        stats.multicast.misses,
        stats.interned_share()
    )
}

/// The many-flow fast path against its own absence: `flows` unicast
/// flows (sources round-robined over the topology) are replayed once
/// collapsed into source-sharing multicast groups routed by interned
/// graphs, and once the naive way — a fresh per-flow graph
/// construction plus a full per-flow playback. Both legs run serially
/// so the speedup measures interning + shared propagation, not thread
/// count. A single-receiver identity spot-check rides along: the
/// grouped replay of a 1-flow group must be byte-identical to the
/// plain unicast replay.
fn many_flow_bench(
    flows: usize,
    trace_secs: u64,
    rate: u32,
    mode: &str,
    spec: &TopoSpec,
) -> ManyFlowResult {
    assert!(flows > 0, "at least one flow");
    let g = spec.build();
    let n = g.node_count();
    assert!(n >= 2, "many-flow needs at least two nodes");
    let mut cfg = SyntheticWanConfig::calibrated(2017);
    cfg.duration = Micros::from_secs(trace_secs);
    let traces = gen::generate(&g, &cfg);

    // Deterministic flow population: sources round-robin the nodes,
    // each source cycling through the other nodes as destinations —
    // the "one feed, many subscribers" shape that motivates grouping.
    let flow_list: Vec<Flow> = (0..flows)
        .map(|i| {
            let src = i % n;
            let dst = (src + 1 + (i / n) % (n - 1)) % n;
            Flow::new(dg_topology::NodeId::new(src as u32), dg_topology::NodeId::new(dst as u32))
        })
        .collect();
    let pairs: Vec<_> = {
        let mut seen = std::collections::HashSet::new();
        flow_list
            .iter()
            .filter(|f| seen.insert((f.source, f.destination)))
            .map(|f| (f.source, f.destination))
            .collect()
    };
    let deadline = spec.default_deadline(&g, &pairs);
    let requirement = ServiceRequirement::new(deadline);
    let config = PlaybackConfig { packets_per_second: rate, deadline, ..PlaybackConfig::default() };
    let kind = MulticastKind::Targeted;

    // Grouped leg: every flow interns its group's graph through the
    // shared cache (this is what each per-flow sender open costs), the
    // distinct groups replay once, and per-flow accounting reads each
    // flow's receiver slot out of its group run.
    let cache = GraphCache::new(g.clone(), SchemeParams::default());
    let group_start = Instant::now();
    let grouped = group_flows(&flow_list);
    let by_source: std::collections::HashMap<_, _> = grouped.iter().cloned().collect();
    for f in &flow_list {
        let receivers = &by_source[&f.source];
        cache.multicast(f.source, receivers, kind, requirement).expect("group is routable");
    }
    let jobs: Vec<GroupJob> = grouped
        .iter()
        .map(|(source, receivers)| GroupJob {
            source: *source,
            receivers: receivers.clone(),
            kind,
            requirement,
        })
        .collect();
    let runs = run_groups(&g, &traces, &cache, &jobs, &config, 1).expect("groups are routable");
    let by_run: std::collections::HashMap<_, _> = runs
        .iter()
        .flat_map(|r| r.receivers.iter().map(move |cell| ((r.source, cell.receiver), cell)))
        .collect();
    let mut rates: Vec<f64> =
        flow_list.iter().map(|f| by_run[&(f.source, f.destination)].on_time_fraction()).collect();
    let group_wall = group_start.elapsed().as_secs_f64();
    let group_transmissions: u64 = runs.iter().map(|r| r.transmissions).sum();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let stats = cache.stats();

    // Naive leg: what the same workload costs without grouping — a
    // fresh (uncached) targeted graph and a full playback per flow.
    let mut scratch = SimScratch::new();
    let naive_start = Instant::now();
    let mut naive_transmissions = 0u64;
    for f in &flow_list {
        let uni = cache
            .compute_multicast_uncached(f.source, &[f.destination], kind, requirement)
            .expect("flow is routable")
            .unicast_view(&g, f.destination)
            .expect("receiver is on its own graph");
        let (_, tx) = run_unicast_static_with(&g, &traces, &uni, &config, &mut scratch);
        naive_transmissions += tx;
    }
    let naive_wall = naive_start.elapsed().as_secs_f64();

    // Identity spot-check: a 1-flow group must replay byte-identically
    // to the plain unicast path on the same seed.
    let probe = flow_list[0];
    let mgraph = cache
        .multicast(probe.source, &[probe.destination], MulticastKind::Tree, requirement)
        .expect("probe flow is routable");
    let group_run = run_group_with(&g, &traces, &mgraph, &config, &mut scratch);
    let uni = mgraph.unicast_view(&g, probe.destination).expect("probe receiver is on the graph");
    let (uni_stats, uni_tx) = run_unicast_static_with(&g, &traces, &uni, &config, &mut scratch);
    let identical = group_run.transmissions == uni_tx
        && serde_json::to_string(&group_run.receivers).expect("stats serialize")
            == serde_json::to_string(&[uni_stats]).expect("stats serialize");

    println!("{}", cache_stats_line(&stats));
    let total_packets = (flows as u64) * trace_secs * u64::from(rate);
    ManyFlowResult {
        bench: "many_flow".to_string(),
        schema_version: SCHEMA_VERSION,
        mode: mode.to_string(),
        topo: spec.label(),
        flows,
        groups: jobs.len(),
        trace_seconds: trace_secs,
        rate,
        group_wall_secs: group_wall,
        group_flow_pps: total_packets as f64 / group_wall,
        naive_wall_secs: naive_wall,
        naive_flow_pps: total_packets as f64 / naive_wall,
        speedup: naive_wall / group_wall,
        group_transmissions,
        naive_transmissions,
        intern_hits: stats.multicast.hits,
        intern_misses: stats.multicast.misses,
        intern_hit_rate: stats.interned_share(),
        fairness_p50: percentile(&rates, 0.5),
        fairness_p99: percentile(&rates, 0.99),
        identical,
    }
}

fn write_result<T: Serialize>(dir: &Path, name: &str, result: &T) -> PathBuf {
    std::fs::create_dir_all(dir).expect("output directory is creatable");
    let path = dir.join(format!("BENCH_{name}.json"));
    let json = serde_json::to_string_pretty(result).expect("result serializes");
    std::fs::write(&path, json + "\n").expect("result file is writable");
    eprintln!("wrote {}", path.display());
    path
}

/// One throughput comparison: fails (returns an error line) when
/// `current` falls more than `tolerance` below `baseline`.
fn check_metric(name: &str, baseline: f64, current: f64, tolerance: f64) -> Result<String, String> {
    let floor = baseline * (1.0 - tolerance);
    let line = format!(
        "{name}: baseline {baseline:.0}, current {current:.0} ({:+.1}%)",
        (current / baseline - 1.0) * 100.0
    );
    if current < floor {
        Err(format!("{line} — below the {:.0}% floor", (1.0 - tolerance) * 100.0))
    } else {
        Ok(line)
    }
}

fn load_json<T: Deserialize>(path: &Path) -> Option<T> {
    let raw = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&raw).ok()
}

fn main() {
    let cli = topo_cli(Cli::new("dg-bench", "hot-path performance harness (forwarding + sim)"))
        .switch("quick", "abbreviated CI-smoke run (1s forwarding, 20s trace)")
        .switch("overload", "also run the overload-resilience scenario")
        .switch("parallel", "also run the parallel-simulator scaling scenario")
        .flag_default("seconds", "N", "forwarding bench duration", "5")
        .flag_default("payload", "BYTES", "application payload size", "512")
        .flag_default("batch", "N", "application packets per send_batch call", "32")
        .flag_default("sim-seconds", "N", "simulated trace duration", "60")
        .flag_default("rate", "PPS", "sim application packet rate", "2000")
        .flag("flows", "N", "many-flow bench population (default 10000, quick 100)")
        .flag("only", "forwarding|sim|sim-parallel|overload|many-flow", "run a single bench")
        .flag("out", "DIR", "output directory (default: results/)")
        .flag("check", "DIR", "compare against baseline BENCH_*.json in DIR")
        .flag_default("tolerance", "F", "allowed throughput regression for --check", "0.2");
    let matches = cli.parse_env();
    let quick = matches.is_set("quick");
    let mode = if quick { "quick" } else { "full" };
    let secs: u64 =
        if quick { 1 } else { matches.get_or("seconds", 5).unwrap_or_else(|e| cli.exit_with(&e)) };
    let sim_secs: u64 = if quick {
        20
    } else {
        matches.get_or("sim-seconds", 60).unwrap_or_else(|e| cli.exit_with(&e))
    };
    let payload: usize = matches.get_or("payload", 512).unwrap_or_else(|e| cli.exit_with(&e));
    let batch: usize = matches.get_or("batch", 32).unwrap_or_else(|e| cli.exit_with(&e));
    let rate: u32 = matches.get_or("rate", 2_000).unwrap_or_else(|e| cli.exit_with(&e));
    let tolerance: f64 = matches.get_or("tolerance", 0.2).unwrap_or_else(|e| cli.exit_with(&e));
    let flows: usize = matches
        .get("flows")
        .unwrap_or_else(|e| cli.exit_with(&e))
        .unwrap_or(if quick { 100 } else { 10_000 });
    let only = matches.value("only");
    if let Some(o) = only {
        if o != "forwarding"
            && o != "sim"
            && o != "sim-parallel"
            && o != "overload"
            && o != "many-flow"
        {
            cli.exit_with(&dg_bench::cli::CliError::BadValue {
                flag: "only".to_string(),
                value: o.to_string(),
                expected: "forwarding, sim, sim-parallel, overload, or many-flow",
            });
        }
    }
    let out_dir = matches.value("out").map_or_else(dg_bench::results_dir, PathBuf::from);
    let spec = topo_from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));

    let forwarding = (only.is_none() || only == Some("forwarding")).then(|| {
        let r = forwarding_bench(secs, payload, batch, mode);
        println!(
            "forwarding: {} delivered / {} sent in {}s -> {:.0} pps, {:.4} Gbps (p50 {:?} p99 {:?} p999 {:?} us)",
            r.delivered, r.sent, r.seconds, r.pps, r.gbps,
            r.latency_us.p50, r.latency_us.p99, r.latency_us.p999
        );
        write_result(&out_dir, "forwarding", &r);
        r
    });
    let sim = (only.is_none() || only == Some("sim")).then(|| {
        let r = sim_bench(sim_secs, rate, mode, &spec);
        println!(
            "sim: {} packets in {:.2}s -> {:.0} packets/sec",
            r.packets, r.wall_secs, r.packets_per_sec
        );
        write_result(&out_dir, "sim", &r);
        r
    });
    let sim_parallel = (matches.is_set("parallel") || only == Some("sim-parallel")).then(|| {
        let r = sim_parallel_bench(sim_secs, rate, mode, &spec);
        println!(
            "sim-parallel: {} packets over {} jobs, serial {:.0} pps, {} threads {:.0} pps \
             ({:.2}x on {} cores), identical: {}",
            r.packets,
            r.jobs,
            r.serial_packets_per_sec,
            r.threads,
            r.parallel_packets_per_sec,
            r.speedup,
            r.cores,
            r.identical
        );
        write_result(&out_dir, "sim_parallel", &r);
        // Byte-identity is a correctness invariant, not a performance
        // band: a divergence fails the run even without --check.
        if !r.identical {
            eprintln!(
                "REGRESSION sim-parallel: worker-pool results diverged from the serial replay"
            );
            std::process::exit(1);
        }
        r
    });
    let many_flow = (only.is_none() || only == Some("many-flow")).then(|| {
        let (mf_secs, mf_rate) = if quick { (2, 100) } else { (5, 100) };
        let r = many_flow_bench(flows, mf_secs, mf_rate, mode, &spec);
        println!(
            "many-flow: {} flows in {} groups, grouped {:.2}s ({:.0} flow-pps) vs naive {:.2}s \
             ({:.0} flow-pps) -> {:.2}x, intern rate {:.4}, tx {} vs {}, fairness p50 {:.4} \
             p99 {:.4}, identical: {}",
            r.flows,
            r.groups,
            r.group_wall_secs,
            r.group_flow_pps,
            r.naive_wall_secs,
            r.naive_flow_pps,
            r.speedup,
            r.intern_hit_rate,
            r.group_transmissions,
            r.naive_transmissions,
            r.fairness_p50,
            r.fairness_p99,
            r.identical
        );
        write_result(&out_dir, "manyflow", &r);
        // Single-receiver identity is a correctness invariant, not a
        // performance band: a divergence fails the run even without
        // --check.
        if !r.identical {
            eprintln!(
                "REGRESSION many-flow: single-receiver group replay diverged from the unicast path"
            );
            std::process::exit(1);
        }
        r
    });
    let overload = (matches.is_set("overload") || only == Some("overload")).then(|| {
        let overload_secs = if quick { 1 } else { 3 };
        let r = overload_bench(overload_secs, mode);
        println!(
            "overload: surgical {}/{} on time ({:.4}), shed bulk {} / timely {} / surgical {}, peak level {}, recovery {:?} ms",
            r.surgical_on_time, r.surgical_sent, r.surgical_on_time_fraction,
            r.shed_bulk, r.shed_timely, r.shed_surgical, r.peak_level, r.recovery_ms
        );
        write_result(&out_dir, "overload", &r);
        r
    });

    let Some(baseline_dir) = matches.value("check") else { return };
    let baseline_dir = PathBuf::from(baseline_dir);
    let mut failures = Vec::new();
    if let Some(current) = forwarding {
        match load_json::<ForwardingResult>(&baseline_dir.join("BENCH_forwarding.json")) {
            Some(base) => match check_metric("forwarding pps", base.pps, current.pps, tolerance) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_forwarding.json",
                baseline_dir.display()
            )),
        }
    }
    if let Some(current) = sim {
        match load_json::<SimResult>(&baseline_dir.join("BENCH_sim.json")) {
            Some(base) => match check_metric(
                "sim packets/sec",
                base.packets_per_sec,
                current.packets_per_sec,
                tolerance,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures
                .push(format!("no readable baseline at {}/BENCH_sim.json", baseline_dir.display())),
        }
    }
    if let Some(current) = sim_parallel {
        // The single-thread leg must not regress: the worker-pool
        // machinery is free when threads == 1.
        match load_json::<SimParallelResult>(&baseline_dir.join("BENCH_sim_parallel.json")) {
            Some(base) => match check_metric(
                "sim-parallel serial packets/sec",
                base.serial_packets_per_sec,
                current.serial_packets_per_sec,
                tolerance,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_sim_parallel.json",
                baseline_dir.display()
            )),
        }
        // The speedup gate is absolute, not baseline-relative: on a
        // multi-core host the pool must actually scale. A 2-3 core
        // runner cannot hit 2x (2.0 is its theoretical ceiling), so it
        // gets a softer floor; a single core skips the gate entirely.
        if current.cores >= 2 {
            let floor = if current.cores >= 4 { 2.0 } else { 1.5 };
            let line = format!(
                "sim-parallel speedup: {:.2}x on {} cores (floor {floor:.1}x)",
                current.speedup, current.cores
            );
            if current.speedup < floor {
                failures.push(format!("{line} — parallel run_flows is not scaling"));
            } else {
                println!("check {line}");
            }
        } else {
            println!("check sim-parallel speedup: skipped on a single-core host");
        }
    }
    if let Some(current) = many_flow {
        match load_json::<ManyFlowResult>(&baseline_dir.join("BENCH_manyflow.json")) {
            Some(base) => match check_metric(
                "many-flow grouped flow-pps",
                base.group_flow_pps,
                current.group_flow_pps,
                tolerance,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_manyflow.json",
                baseline_dir.display()
            )),
        }
        // Absolute gates, meaningful only at scale: with ≥1000 flows
        // over a dozen sources, grouping must pay ≥5x and the
        // multicast tier must intern ≥99% of lookups.
        if current.flows >= 1000 {
            let line = format!(
                "many-flow speedup: {:.2}x over {} flows (floor 5.0x)",
                current.speedup, current.flows
            );
            if current.speedup < 5.0 {
                failures.push(format!("{line} — grouping is not paying for itself"));
            } else {
                println!("check {line}");
            }
            let line =
                format!("many-flow intern rate: {:.4} (floor 0.99)", current.intern_hit_rate);
            if current.intern_hit_rate < 0.99 {
                failures.push(format!("{line} — multicast interning is missing"));
            } else {
                println!("check {line}");
            }
        } else {
            println!("check many-flow absolute gates: skipped below 1000 flows");
        }
    }
    if let Some(current) = overload {
        match load_json::<OverloadResult>(&baseline_dir.join("BENCH_overload.json")) {
            // The on-time fraction is an SLA floor, not a throughput
            // band: gate it at a fixed 2% regardless of --tolerance.
            Some(base) => match check_metric(
                "overload surgical on-time %",
                base.surgical_on_time_fraction * 100.0,
                current.surgical_on_time_fraction * 100.0,
                0.02,
            ) {
                Ok(line) => println!("check {line}"),
                Err(line) => failures.push(line),
            },
            None => failures.push(format!(
                "no readable baseline at {}/BENCH_overload.json",
                baseline_dir.display()
            )),
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        std::process::exit(1);
    }
}
