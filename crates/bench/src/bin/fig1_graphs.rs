//! Figure 1 (reconstructed): example dissemination graphs for one flow.
//!
//! The paper's opening figure contrasts the routing schemes the
//! dissemination-graph framework unifies: a single path, two disjoint
//! paths, a source/destination problem graph, and time-constrained
//! flooding. This prints each graph's edges and cost and writes DOT
//! renderings under `results/`.
//!
//! Usage: `cargo run --release -p dg-bench --bin fig1_graphs --
//! [--src NYC] [--dst SJC]`

use dg_bench::cli::Cli;
use dg_bench::{print_table, results_dir, topo_cli, topo_from_matches};
use dg_core::scheme::{SchemeParams, TargetedMode, TargetedRedundancy, TimeConstrainedFlooding};
use dg_core::{DisseminationGraph, Flow, ServiceRequirement};
use dg_topology::Graph;

fn describe(graph: &Graph, dg: &DisseminationGraph) -> String {
    dg.edges()
        .iter()
        .map(|&e| {
            let i = graph.edge(e);
            format!("{}->{}", graph.node(i.src).name, graph.node(i.dst).name)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn dot(graph: &Graph, dg: &DisseminationGraph, name: &str) {
    let mut out = String::from("digraph dg {\n  rankdir=LR;\n");
    for &e in dg.edges() {
        let i = graph.edge(e);
        out.push_str(&format!("  {} -> {};\n", graph.node(i.src).name, graph.node(i.dst).name));
    }
    out.push_str("}\n");
    let path = results_dir().join(format!("fig1_{name}.dot"));
    std::fs::write(&path, out).expect("results dir is writable");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let cli = topo_cli(
        Cli::new("fig1_graphs", "example dissemination graphs for one flow")
            .flag("src", "SITE", "flow source site (default: first default flow)")
            .flag("dst", "SITE", "flow destination site"),
    );
    let matches = cli.parse_env();
    let spec = topo_from_matches(&matches).unwrap_or_else(|e| cli.exit_with(&e));
    let graph = spec.build();
    let flow = match (matches.value("src"), matches.value("dst")) {
        (Some(src), Some(dst)) => Flow::new(
            graph.node_by_name(src).expect("known source site"),
            graph.node_by_name(dst).expect("known destination site"),
        ),
        // Keep the figure's documented NYC -> SJC default on the paper
        // preset; generated families take their first sampled flow.
        _ if spec == dg_topology::generate::TopoSpec::NorthAmerica => Flow::new(
            graph.node_by_name("NYC").expect("preset site"),
            graph.node_by_name("SJC").expect("preset site"),
        ),
        _ => {
            let (s, t) = *spec.default_flows(&graph, 1).first().expect("topology has a flow");
            Flow::new(s, t)
        }
    };
    let flows = [(flow.source, flow.destination)];
    let requirement = ServiceRequirement::new(spec.default_deadline(&graph, &flows));
    let params = SchemeParams::default();

    let targeted =
        TargetedRedundancy::new(&graph, flow, requirement, &params).expect("flow is routable");
    let flooding =
        TimeConstrainedFlooding::new(&graph, flow, requirement).expect("deadline feasible");
    let single = dg_core::scheme::StaticSinglePath::new(&graph, flow).expect("routable");
    use dg_core::scheme::RoutingScheme;

    let graphs: Vec<(&str, &DisseminationGraph)> = vec![
        ("single-path", single.current()),
        ("two-disjoint", targeted.graph_for_mode(TargetedMode::Normal)),
        ("source-problem", targeted.graph_for_mode(TargetedMode::SourceProblem)),
        ("destination-problem", targeted.graph_for_mode(TargetedMode::DestinationProblem)),
        ("robust", targeted.graph_for_mode(TargetedMode::Robust)),
        ("flooding", flooding.current()),
    ];

    println!(
        "dissemination graphs for {} (deadline {}):\n",
        flow.label(&graph),
        requirement.deadline
    );
    let mut table = vec![vec![
        "graph".to_string(),
        "edges".to_string(),
        "cost".to_string(),
        "best latency".to_string(),
    ]];
    for (name, dg) in &graphs {
        table.push(vec![
            name.to_string(),
            dg.len().to_string(),
            dg.cost(&graph).to_string(),
            dg.best_latency(&graph).to_string(),
        ]);
    }
    print_table(&table);
    println!();
    for (name, dg) in &graphs {
        println!("{name}: {}", describe(&graph, dg));
        dot(&graph, dg, name);
    }
}
