//! End-to-end smoke tests of the `dg-bench` harness: the quick mode
//! must emit schema-valid JSON results, and the CLI must behave like
//! every other binary (uniform --help, errors instead of panics).

use serde::Value;
use std::path::Path;
use std::process::Command;

fn dg_bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dg-bench"))
}

fn read_json(path: &Path) -> Value {
    let raw = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad JSON in {}: {e}", path.display()))
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or_else(|| panic!("missing field {key:?} in {v:?}"))
}

fn as_num(v: &Value) -> Option<f64> {
    match *v {
        Value::Int(n) => Some(n as f64),
        Value::UInt(n) => Some(n as f64),
        Value::Float(n) => Some(n),
        _ => None,
    }
}

#[test]
fn quick_run_emits_schema_valid_results() {
    let dir = std::env::temp_dir().join(format!("dg_bench_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let output = dg_bench()
        .args(["--quick", "--parallel", "--out", dir.to_str().unwrap()])
        .output()
        .expect("dg-bench runs");
    assert!(
        output.status.success(),
        "dg-bench --quick failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );

    let fwd = read_json(&dir.join("BENCH_forwarding.json"));
    assert_eq!(field(&fwd, "bench"), &Value::String("forwarding".into()));
    assert_eq!(field(&fwd, "schema_version"), &Value::UInt(1));
    assert_eq!(field(&fwd, "mode"), &Value::String("quick".into()));
    for key in ["seconds", "payload_bytes", "batch", "sent", "delivered", "pps", "gbps"] {
        assert!(as_num(field(&fwd, key)).is_some(), "{key} must be numeric");
    }
    assert!(as_num(field(&fwd, "pps")).unwrap() > 0.0, "no packets forwarded");
    let latency = field(&fwd, "latency_us");
    for q in ["p50", "p99", "p999"] {
        assert!(latency.get(q).is_some(), "latency_us.{q} missing");
    }

    let sim = read_json(&dir.join("BENCH_sim.json"));
    assert_eq!(field(&sim, "bench"), &Value::String("sim".into()));
    assert_eq!(field(&sim, "schema_version"), &Value::UInt(1));
    for key in ["trace_seconds", "rate", "packets", "wall_secs", "packets_per_sec"] {
        assert!(as_num(field(&sim, key)).is_some(), "{key} must be numeric");
    }
    assert!(as_num(field(&sim, "packets_per_sec")).unwrap() > 0.0);

    let par = read_json(&dir.join("BENCH_sim_parallel.json"));
    assert_eq!(field(&par, "bench"), &Value::String("sim_parallel".into()));
    assert_eq!(field(&par, "schema_version"), &Value::UInt(1));
    for key in [
        "trace_seconds",
        "rate",
        "cores",
        "threads",
        "jobs",
        "packets",
        "serial_wall_secs",
        "serial_packets_per_sec",
        "parallel_wall_secs",
        "parallel_packets_per_sec",
        "speedup",
    ] {
        assert!(as_num(field(&par, key)).is_some(), "{key} must be numeric");
    }
    // The harness exits nonzero on divergence, so a written file must
    // say identical — but pin it anyway: it is the bench's contract.
    assert_eq!(field(&par, "identical"), &Value::Bool(true));

    // A self-check against the numbers just produced always passes.
    let check = dg_bench()
        .args([
            "--quick",
            "--only",
            "sim",
            "--out",
            dir.to_str().unwrap(),
            "--check",
            dir.to_str().unwrap(),
            "--tolerance",
            "0.9",
        ])
        .output()
        .expect("dg-bench runs");
    assert!(
        check.status.success(),
        "self-check regressed:\n{}",
        String::from_utf8_lossy(&check.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_errors_are_uniform() {
    let help = dg_bench().arg("--help").output().expect("dg-bench runs");
    assert!(help.status.success());
    let text = String::from_utf8_lossy(&help.stdout);
    assert!(text.contains("--quick"), "help lists --quick:\n{text}");
    assert!(text.contains("--check"), "help lists --check:\n{text}");

    let bad = dg_bench().args(["--bogus", "1"]).output().expect("dg-bench runs");
    assert_eq!(bad.status.code(), Some(2), "unknown flags exit 2");
    let err = String::from_utf8_lossy(&bad.stderr);
    assert!(err.contains("unknown flag"), "uniform error text:\n{err}");

    let bad_only = dg_bench().args(["--only", "everything"]).output().expect("dg-bench runs");
    assert_eq!(bad_only.status.code(), Some(2), "bad --only exits 2");
}
