//! Benchmarks of scheme lifecycle operations: construction (route
//! precomputation), per-update reaction to link state, and the
//! dissemination-graph bitmask codec used on the wire.

use criterion::{criterion_group, criterion_main, Criterion};
use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{DisseminationGraph, Flow, ServiceRequirement};
use dg_topology::{presets, Micros};
use dg_trace::{LinkCondition, NetworkState};
use std::hint::black_box;

fn bench_schemes(c: &mut Criterion) {
    let graph = presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let req = ServiceRequirement::default();
    let params = SchemeParams::default();

    let mut group = c.benchmark_group("schemes");
    group.sample_size(60);

    for kind in [
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::TargetedRedundancy,
        SchemeKind::TimeConstrainedFlooding,
    ] {
        group.bench_function(format!("construct/{}", kind.label()), |b| {
            b.iter(|| build_scheme(kind, black_box(&graph), flow, req, &params).unwrap())
        });
    }

    // Per-update cost, clean state vs a source problem.
    let clean = NetworkState::clean(graph.edge_count(), Micros::ZERO);
    let mut problem = clean.clone();
    for &e in graph.out_edges(flow.source) {
        problem.set_condition(e, LinkCondition::new(0.4, Micros::ZERO));
    }
    for kind in [SchemeKind::DynamicTwoDisjoint, SchemeKind::TargetedRedundancy] {
        let mut scheme = build_scheme(kind, &graph, flow, req, &params).unwrap();
        group.bench_function(format!("update_clean/{}", kind.label()), |b| {
            b.iter(|| black_box(scheme.update(&graph, &clean)))
        });
        let mut scheme = build_scheme(kind, &graph, flow, req, &params).unwrap();
        group.bench_function(format!("update_problem/{}", kind.label()), |b| {
            b.iter(|| black_box(scheme.update(&graph, &problem)))
        });
    }

    // Bitmask codec (the per-packet header work a source performs).
    let flood =
        build_scheme(SchemeKind::TimeConstrainedFlooding, &graph, flow, req, &params).unwrap();
    let dg = flood.current().clone();
    let mask = dg.to_bitmask(graph.edge_count());
    group.bench_function("bitmask_encode", |b| {
        b.iter(|| black_box(dg.to_bitmask(graph.edge_count())))
    });
    group.bench_function("bitmask_decode", |b| {
        b.iter(|| {
            DisseminationGraph::from_bitmask(
                black_box(&graph),
                flow.source,
                flow.destination,
                &mask,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
