//! Throughput of the playback simulator's inner loop: one packet
//! propagated through each scheme's dissemination graph. This bounds
//! how much simulated traffic a table2-scale experiment can afford.

use criterion::{criterion_group, criterion_main, Criterion};
use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{Flow, ServiceRequirement};
use dg_sim::{simulate_packet, RecoveryModel};
use dg_topology::{presets, Micros};
use dg_trace::gen::{self, SyntheticWanConfig};
use dg_trace::TraceSet;
use std::hint::black_box;

fn bench_packet_sim(c: &mut Criterion) {
    let graph = presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let deadline = Micros::from_millis(65);
    let recovery = RecoveryModel::default();
    let clean = TraceSet::clean(graph.edge_count(), 6, Micros::from_secs(10)).unwrap();
    let mut wan = SyntheticWanConfig::calibrated(3);
    wan.duration = Micros::from_secs(60);
    wan.node_problems.events_per_hour = 30.0;
    let lossy = gen::generate(&graph, &wan);

    let mut group = c.benchmark_group("packet_sim");
    group.sample_size(60);
    for kind in [
        SchemeKind::StaticSinglePath,
        SchemeKind::StaticTwoDisjoint,
        SchemeKind::TargetedRedundancy,
        SchemeKind::TimeConstrainedFlooding,
    ] {
        let scheme = build_scheme(
            kind,
            &graph,
            flow,
            ServiceRequirement::default(),
            &SchemeParams::default(),
        )
        .unwrap();
        let dg = scheme.current().clone();
        group.bench_function(format!("clean/{}", kind.label()), |b| {
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                simulate_packet(
                    black_box(&graph),
                    black_box(&dg),
                    &clean,
                    Micros::from_secs(1),
                    deadline,
                    &recovery,
                    7,
                    seq,
                )
            })
        });
        group.bench_function(format!("lossy/{}", kind.label()), |b| {
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                simulate_packet(
                    black_box(&graph),
                    black_box(&dg),
                    &lossy,
                    Micros::from_secs(30),
                    deadline,
                    &recovery,
                    7,
                    seq,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packet_sim);
criterion_main!(benches);
