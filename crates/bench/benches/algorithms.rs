//! Micro-benchmarks of the routing algorithms on the evaluation
//! topology — the per-update work a deployed overlay performs.

use criterion::{criterion_group, criterion_main, Criterion};
use dg_topology::algo::disjoint::{disjoint_pair, k_disjoint_paths, Disjointness};
use dg_topology::algo::{dijkstra, maxflow, reach, yen};
use dg_topology::{presets, Micros};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let graph = presets::north_america_12();
    let s = graph.node_by_name("NYC").unwrap();
    let t = graph.node_by_name("SJC").unwrap();
    let deadline = Micros::from_millis(65);

    let mut group = c.benchmark_group("algorithms");
    group.sample_size(60);

    group.bench_function("dijkstra_shortest_path", |b| {
        b.iter(|| dijkstra::shortest_path(black_box(&graph), s, t).unwrap())
    });
    group.bench_function("dijkstra_all_distances", |b| {
        b.iter(|| dijkstra::distances_from(black_box(&graph), s, |_| true))
    });
    group.bench_function("bhandari_node_disjoint_pair", |b| {
        b.iter(|| disjoint_pair(black_box(&graph), s, t, Disjointness::Node).unwrap())
    });
    group.bench_function("bhandari_3_disjoint", |b| {
        b.iter(|| k_disjoint_paths(black_box(&graph), s, t, 3, Disjointness::Edge).unwrap())
    });
    group.bench_function("yen_4_shortest", |b| {
        b.iter(|| yen::k_shortest_paths(black_box(&graph), s, t, 4).unwrap())
    });
    group.bench_function("time_constrained_edges", |b| {
        b.iter(|| reach::time_constrained_edges(black_box(&graph), s, t, deadline).unwrap())
    });
    group.bench_function("maxflow_disjoint_capacity", |b| {
        b.iter(|| maxflow::max_disjoint_paths(black_box(&graph), s, t, Disjointness::Node))
    });
    group.finish();
}

/// The same algorithms on larger random overlays: the evaluation
/// topology has 12 sites, but a production deployment would not.
fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(30);
    for n in [25usize, 50, 100] {
        // Radius tuned to keep the graph connected but sparse-ish.
        let graph = presets::random_geometric(n, 4_000.0, 1_500.0, 42);
        let s = dg_topology::NodeId::new(0);
        let t = dg_topology::NodeId::new((n - 1) as u32);
        if dijkstra::shortest_path(&graph, s, t).is_err() {
            continue; // disconnected sample; skip rather than bench noise
        }
        group.bench_function(format!("dijkstra/{n}_nodes"), |b| {
            b.iter(|| dijkstra::shortest_path(black_box(&graph), s, t).unwrap())
        });
        if disjoint_pair(&graph, s, t, Disjointness::Node).is_ok() {
            group.bench_function(format!("bhandari_pair/{n}_nodes"), |b| {
                b.iter(|| disjoint_pair(black_box(&graph), s, t, Disjointness::Node).unwrap())
            });
        }
        group.bench_function(format!("flooding_edges/{n}_nodes"), |b| {
            b.iter(|| {
                reach::time_constrained_edges(black_box(&graph), s, t, Micros::from_millis(100))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_scaling);
criterion_main!(benches);
