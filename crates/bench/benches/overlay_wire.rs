//! Benchmarks of the overlay's per-packet wire work: envelope
//! encode/decode and dissemination-mask lookups. This is the forwarding
//! fast path every node pays per packet.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use dg_core::scheme::{build_scheme, SchemeKind, SchemeParams};
use dg_core::{Flow, ServiceRequirement, SlaClass};
use dg_overlay::wire::{DataPacket, Envelope, Message};
use dg_topology::{presets, Micros};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let graph = presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let scheme = build_scheme(
        SchemeKind::TargetedRedundancy,
        &graph,
        flow,
        ServiceRequirement::default(),
        &SchemeParams::default(),
    )
    .unwrap();
    let mask = Bytes::from(scheme.current().to_bitmask(graph.edge_count()));
    let packet = DataPacket {
        flow,
        flow_seq: 123_456,
        sent_at: Micros::from_secs(1),
        deadline: Micros::from_millis(65),
        link_seq: 789,
        retransmission: false,
        class: SlaClass::Surgical,
        mask,
        payload: Bytes::from(vec![0xAB; 512]),
    };
    let envelope = Envelope { from: flow.source, message: Message::Data(packet.clone()) };
    let encoded = envelope.encode();

    let mut group = c.benchmark_group("overlay_wire");
    group.sample_size(60);
    group.bench_function("encode_data_512b", |b| b.iter(|| black_box(&envelope).encode()));
    group.bench_function("decode_data_512b", |b| {
        b.iter(|| Envelope::decode(black_box(&encoded)).unwrap())
    });
    group.bench_function("mask_lookup_all_out_edges", |b| {
        let out = graph.out_edges(flow.source).to_vec();
        b.iter(|| out.iter().filter(|&&e| black_box(&packet).mask_contains(e)).count())
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
