//! End-to-end harness test: a real multi-process deployment.
//!
//! Spawns actual `dg-node` processes over real UDP sockets, drives a
//! kill + restart + partition-then-heal storm through them, and holds
//! the deployment to the convergence verdict — the full pipeline the
//! `dg-emu` binary runs, on a compact topology and a compressed
//! timeline so it stays test-suite friendly.

use dg_emu::schedule::{kill_heal_schedule, KillHealProfile};
use dg_emu::{resolve_node_bin, EmuOptions, EmuRun};
use dg_topology::generate::TopoSpec;
use std::path::PathBuf;

/// Locates (building if necessary) the dg-node binary. The emu crate
/// cannot use `CARGO_BIN_EXE_dg-node` — the binary belongs to
/// dg-overlay — so the test builds it through the same cargo that is
/// running the suite and picks it up next to the test executable's
/// parent directory.
fn node_bin() -> PathBuf {
    // Always build: a stale dg-node from an older checkout would be
    // silently picked up otherwise. This is a no-op when fresh.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let status = std::process::Command::new(cargo)
        .args(["build", "-p", "dg-overlay", "--bin", "dg-node"])
        .status()
        .expect("cargo is runnable");
    assert!(status.success(), "building dg-node failed");
    resolve_node_bin().expect("dg-node exists after building it")
}

#[test]
fn six_node_deployment_survives_kill_restart_and_partition() {
    let seed = 42;
    let spec = TopoSpec::parse("ring", 6, seed).expect("ring parses");
    let graph = spec.build();
    let flows = spec.default_flows(&graph, 1);
    assert!(!flows.is_empty(), "generated topology yields a flow");
    let deadline_ms = spec.default_deadline(&graph, &flows).as_millis();
    let protected: Vec<_> = flows.iter().flat_map(|&(s, t)| [s, t]).collect();

    // A compressed storm and timeline: the same five phases the full
    // soak runs, in about seven seconds of wall clock.
    let profile = KillHealProfile { window_ms: 1_600, kill_dwell_ms: 800, partition_dwell_ms: 700 };
    let schedule = kill_heal_schedule(&graph, &protected, seed, &profile);
    assert!(!schedule.events.is_empty(), "storm has events");

    let out = std::env::temp_dir().join(format!("dg-emu-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&out);
    let mut options = EmuOptions::new(node_bin(), out.clone(), seed);
    options.warmup_ms = 1_500;
    options.measure_ms = 1_800;
    options.quiesce_ms = 1_400;

    let report = EmuRun::new(graph.clone(), flows.clone(), deadline_ms, schedule, options)
        .execute()
        .expect("deployment runs");

    assert!(report.verdict.passed, "deployment failed verification: {:?}", report.verdict.failures);
    assert_eq!(report.survivors.len(), graph.node_count(), "everyone alive at the end");
    assert_eq!(report.hard_kills.len(), 1, "the storm hard-killed one relay");
    assert_eq!(report.restarts, report.hard_kills, "the kill was restarted");
    assert!(report.forced_teardown.is_empty(), "teardown was graceful");
    assert_eq!(report.verdict.digest_origins, graph.node_count());
    for flow in &report.verdict.flows {
        assert!(flow.sent > 0, "traffic flowed post-heal");
        assert!(flow.ratio >= 0.99, "post-heal delivery {} below 99%", flow.ratio);
    }

    // The artifacts a post-mortem needs all exist, and report.json
    // round-trips as JSON.
    for sub in ["topology.json", "sla.json", "report.json"] {
        assert!(out.join(sub).is_file(), "{sub} missing");
    }
    let raw = std::fs::read_to_string(out.join("report.json")).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&raw).expect("report parses");
    let passed = parsed.get("verdict").and_then(|v| v.get("passed"));
    assert!(
        matches!(passed, Some(serde_json::Value::Bool(true))),
        "report.json records the pass, got {passed:?}"
    );
    let _ = std::fs::remove_dir_all(&out);
}
