//! Deterministic localhost UDP port assignment.
//!
//! A deployment needs one distinct UDP port per overlay node, free at
//! spawn time, and stable across a node's kills and restarts (peers
//! address the node by `127.0.0.1:<port>`, so a respawn must re-bind
//! the same one — the kernel releases a UDP port the instant its owner
//! dies, so rebinding is safe). Candidates are derived from the run
//! seed so two concurrent CI runs with different seeds probe disjoint
//! ranges, and every candidate is verified free by actually binding it
//! before it is handed out.

use std::net::UdpSocket;

/// The low end of the probe space: above the well-known and registered
/// ranges most CI images care about.
const PORT_FLOOR: u32 = 21_000;
/// Size of the probe space: candidates wrap inside
/// `[PORT_FLOOR, PORT_FLOOR + PORT_SPAN)`, staying clear of the
/// ephemeral range (32768+ on Linux) that transient sockets churn
/// through.
const PORT_SPAN: u32 = 10_000;

/// SplitMix64 — the same tiny deterministic generator the chaos module
/// uses, re-derived here so the port walk is seed-stable without a
/// dependency on overlay internals.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Allocates `count` distinct, currently-free localhost UDP ports,
/// walking a seed-derived sequence and probing each candidate with a
/// real bind. Returns `None` only when the probe space is exhausted —
/// which on a sane machine means something else already holds
/// thousands of ports.
pub fn allocate(count: usize, seed: u64) -> Option<Vec<u16>> {
    let mut rng = seed ^ 0xE31A_7054_5EED_50A7;
    let mut ports = Vec::with_capacity(count);
    let mut attempts = 0u32;
    while ports.len() < count && attempts < PORT_SPAN {
        attempts += 1;
        let port = (PORT_FLOOR + (splitmix64(&mut rng) % u64::from(PORT_SPAN)) as u32) as u16;
        if ports.contains(&port) {
            continue;
        }
        // Bind-probe: the socket is dropped (and the port released)
        // before the caller spawns anything, so a race with an
        // unrelated process remains possible — but a deployment retries
        // from `spawn` failing, and in practice localhost CI runs own
        // their probe range.
        if UdpSocket::bind(("127.0.0.1", port)).is_ok() {
            ports.push(port);
        }
    }
    (ports.len() == count).then_some(ports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_free_ports() {
        let ports = allocate(12, 42).expect("12 free ports exist");
        assert_eq!(ports.len(), 12);
        let unique: std::collections::HashSet<_> = ports.iter().collect();
        assert_eq!(unique.len(), 12, "ports are distinct");
        for &port in &ports {
            assert!(u32::from(port) >= PORT_FLOOR);
            // Still free: nothing held them after probing.
            UdpSocket::bind(("127.0.0.1", port)).expect("probed port is released");
        }
    }

    #[test]
    fn same_seed_walks_the_same_candidates() {
        // With no contention, the seeded walk is reproducible.
        let a = allocate(6, 7).unwrap();
        let b = allocate(6, 7).unwrap();
        assert_eq!(a, b);
        let c = allocate(6, 8).unwrap();
        assert_ne!(a, c, "different seeds probe different ranges");
    }
}
