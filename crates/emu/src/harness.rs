//! The deployment harness: spawn, disrupt, collect.
//!
//! [`EmuRun`] owns the full lifecycle of a multi-process deployment on
//! one shared timeline (milliseconds since the first spawn wave):
//!
//! ```text
//! 0 ───── warmup ───── chaos window ── recover ┬─ measure ─┬ drain ┬ quiesce ┬ end
//! spawn + READY waits  kills/partitions        baseline    traffic  pause     final
//! traffic starts       restarts/heals          snapshots   stops    originat. dumps
//! ```
//!
//! Every daemon anchors this timeline to the same wall-clock instant
//! (`dg-node --epoch-us`, stamped once at deploy time), so a respawned
//! daemon receives flags *identical* to its first incarnation:
//! deadlines already past are honoured immediately — missed chaos
//! events replay instantly in order, a missed baseline is skipped —
//! and snapshots, traffic stop, and quiesce happen deployment-wide at
//! the same real moments no matter how many times a process died in
//! between.

use crate::ports;
use crate::verify::{verify, NodeReport, Verdict};
use dg_core::SlaClass;
use dg_overlay::chaos::{ChaosAction, ChaosSchedule};
use dg_overlay::{MetricsSnapshot, NodeFileConfig, SlaFlowSpec, SlaPlan};
use dg_topology::{Graph, NodeId};
use serde::Serialize;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Read;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Everything that can sink a deployment before the verifier even
/// runs.
#[derive(Debug)]
pub enum EmuError {
    /// Filesystem trouble preparing or collecting the deployment.
    Io(std::io::Error),
    /// The port allocator could not find enough free UDP ports.
    NoPorts,
    /// A daemon process could not be spawned.
    Spawn {
        /// The node whose daemon failed to start.
        node: String,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A daemon never printed its `READY` line (the log tail is
    /// included for the post-mortem).
    ReadyTimeout {
        /// The node that never became ready.
        node: String,
        /// The last portion of the daemon's log.
        log_tail: String,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Io(e) => write!(f, "deployment i/o failed: {e}"),
            EmuError::NoPorts => write!(f, "no free UDP ports for the deployment"),
            EmuError::Spawn { node, error } => {
                write!(f, "cannot spawn dg-node for {node}: {error}")
            }
            EmuError::ReadyTimeout { node, log_tail } => {
                write!(f, "{node} never reported READY; log tail:\n{log_tail}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

impl From<std::io::Error> for EmuError {
    fn from(e: std::io::Error) -> Self {
        EmuError::Io(e)
    }
}

/// Tuning for an [`EmuRun`]; `new` fills in soak-tested defaults.
#[derive(Debug, Clone)]
pub struct EmuOptions {
    /// The `dg-node` binary to deploy.
    pub node_bin: PathBuf,
    /// Where configs, logs, metrics, and the report land.
    pub out_dir: PathBuf,
    /// Seed for port assignment (and recorded in the report).
    pub seed: u64,
    /// Convergence head-room before the first chaos event.
    pub warmup_ms: u64,
    /// Margin between the last chaos event and the baseline snapshot,
    /// sized to cover link-down detection, flap hold-downs, and route
    /// recomputation.
    pub recover_ms: u64,
    /// Post-heal measurement window (baseline → traffic stop).
    pub measure_ms: u64,
    /// Drain after traffic stops, so in-flight packets and NACK
    /// repairs land before anything is judged.
    pub drain_ms: u64,
    /// Quiesce window: link-state origination pauses this long before
    /// the final snapshots, so digests settle to one fingerprint.
    pub quiesce_ms: u64,
    /// Fixed-rate control-stream load per flow (packets per second).
    pub traffic_pps: u64,
    /// Post-heal delivery ratio every surviving flow must clear.
    pub threshold: f64,
    /// `--runtime` descriptor passed to every daemon (None = daemon
    /// default).
    pub runtime: Option<String>,
    /// How long a daemon may take to print `READY`.
    pub ready_timeout_ms: u64,
    /// Grace past the nominal end before stragglers are force-killed.
    pub shutdown_grace_ms: u64,
}

impl EmuOptions {
    /// Defaults for a localhost soak: 2 s warm-up, 1.5 s recovery
    /// margin, 2.5 s measurement, 100 pps per flow, 99% threshold.
    pub fn new(node_bin: PathBuf, out_dir: PathBuf, seed: u64) -> EmuOptions {
        EmuOptions {
            node_bin,
            out_dir,
            seed,
            warmup_ms: 2_000,
            recover_ms: 1_500,
            measure_ms: 2_500,
            drain_ms: 400,
            quiesce_ms: 1_600,
            traffic_pps: 100,
            threshold: 0.99,
            runtime: None,
            ready_timeout_ms: 10_000,
            shutdown_grace_ms: 10_000,
        }
    }
}

/// What a finished run reports (also serialized to
/// `<out>/report.json`).
#[derive(Debug, Clone, Serialize)]
pub struct EmuReport {
    /// The verifier's judgement (collection failures are folded in).
    pub verdict: Verdict,
    /// Nodes alive at the nominal end of the run.
    pub survivors: Vec<String>,
    /// Hard process kills the harness executed, in schedule order.
    pub hard_kills: Vec<String>,
    /// Respawns the harness executed, in schedule order.
    pub restarts: Vec<String>,
    /// Nodes that ignored the graceful window and had to be
    /// force-killed at teardown (each is also a verdict failure).
    pub forced_teardown: Vec<String>,
    /// Total nominal run length on the shared timeline.
    pub run_ms: u64,
    /// The seed the deployment ran under.
    pub seed: u64,
}

/// The shared deployment timeline, all in ms since the first spawn.
#[derive(Debug, Clone, Copy)]
struct Timeline {
    baseline_at: u64,
    traffic_stop: u64,
    quiesce_at: u64,
    run_ms: u64,
}

/// One node's deployment state.
struct NodeSlot {
    name: String,
    config_path: PathBuf,
    chaos_dir: PathBuf,
    log_path: PathBuf,
    metrics_path: PathBuf,
    baseline_path: PathBuf,
    child: Option<Child>,
}

/// A fully-specified deployment, ready to execute.
pub struct EmuRun {
    graph: Graph,
    flows: Vec<(NodeId, NodeId)>,
    deadline_ms: u64,
    /// Relative to "chaos starts"; shifted by `warmup_ms` at execute.
    schedule: ChaosSchedule,
    options: EmuOptions,
}

impl EmuRun {
    /// A deployment of `graph` carrying `flows` (each opened as a
    /// Timely-class SLA flow with `deadline_ms`), disrupted by
    /// `schedule` (authored relative to the end of warm-up).
    pub fn new(
        graph: Graph,
        flows: Vec<(NodeId, NodeId)>,
        deadline_ms: u64,
        schedule: ChaosSchedule,
        options: EmuOptions,
    ) -> EmuRun {
        EmuRun { graph, flows, deadline_ms, schedule, options }
    }

    /// Runs the whole lifecycle: distribute, deploy, disrupt, collect,
    /// verify. Returns the report; `Err` means the deployment itself
    /// broke (spawn failure, readiness timeout, i/o), not that
    /// verification failed — check [`Verdict::passed`] for that.
    ///
    /// # Errors
    ///
    /// Returns an [`EmuError`] when the deployment cannot be prepared,
    /// a daemon cannot be spawned or never reports ready, or collected
    /// artifacts cannot be read.
    pub fn execute(mut self) -> Result<EmuReport, EmuError> {
        let absolute = self.schedule.shifted(self.options.warmup_ms);
        let timeline = {
            let baseline_at = absolute.end_ms() + self.options.recover_ms;
            let traffic_stop = baseline_at + self.options.measure_ms;
            let quiesce_at = traffic_stop + self.options.drain_ms;
            Timeline {
                baseline_at,
                traffic_stop,
                quiesce_at,
                run_ms: quiesce_at + self.options.quiesce_ms,
            }
        };

        let mut slots = self.distribute(&absolute, timeline)?;
        let started = Instant::now();
        // Every daemon anchors its deadlines to this one wall-clock
        // instant (--epoch-us): snapshots, quiesce, and traffic stop
        // happen deployment-wide at the same real moments no matter
        // when each process was spawned or respawned.
        let epoch_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64);
        // Deploy: spawn everyone, then wait for every READY line.
        for slot in &mut slots {
            self.spawn(slot, timeline, epoch_us)?;
        }
        for slot in &mut slots {
            self.wait_ready(slot)?;
        }

        // Disrupt: the harness owns process-level events; daemons
        // replay their sharded impairments themselves.
        let mut hard_kills = Vec::new();
        let mut restarts = Vec::new();
        for event in absolute.process_events() {
            let target = started + Duration::from_millis(event.at_ms);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
            match event.action {
                ChaosAction::CrashNode { node } => {
                    let slot = &mut slots[node.index()];
                    if let Some(mut child) = slot.child.take() {
                        // SIGKILL-equivalent: no chance to flush, no
                        // goodbye to peers — they learn from hello
                        // silence.
                        let _ = child.kill();
                        let _ = child.wait();
                        hard_kills.push(slot.name.clone());
                        println!("emu: hard-killed {} at {} ms", slot.name, event.at_ms);
                    }
                }
                ChaosAction::RestartNode { node } => {
                    let elapsed_ms = started.elapsed().as_millis() as u64;
                    let slot = &mut slots[node.index()];
                    if slot.child.is_none() {
                        self.spawn(slot, timeline, epoch_us)?;
                        self.wait_ready_from(slot, restarts.len() + 1)?;
                        restarts.push(slot.name.clone());
                        println!("emu: restarted {} at {} ms (same port)", slot.name, elapsed_ms);
                    }
                }
                _ => {}
            }
        }

        // Let the run play out, then tear down: graceful first (every
        // daemon has its own --run-ms and exits by itself), per-process
        // waits against a shared deadline, forced kill as last resort.
        let nominal_end = started + Duration::from_millis(timeline.run_ms);
        let now = Instant::now();
        if nominal_end > now {
            std::thread::sleep(nominal_end - now);
        }
        let survivors: Vec<String> =
            slots.iter().filter(|s| s.child.is_some()).map(|s| s.name.clone()).collect();
        let grace_deadline = nominal_end + Duration::from_millis(self.options.shutdown_grace_ms);
        let mut forced_teardown = Vec::new();
        for slot in &mut slots {
            let Some(child) = slot.child.as_mut() else { continue };
            let exited = loop {
                match child.try_wait()? {
                    Some(_) => break true,
                    None if Instant::now() >= grace_deadline => break false,
                    None => std::thread::sleep(Duration::from_millis(20)),
                }
            };
            if !exited {
                let _ = child.kill();
                let _ = child.wait();
                forced_teardown.push(slot.name.clone());
            }
            slot.child = None;
        }

        // Collect + verify.
        let mut collection_failures = Vec::new();
        let mut reports = Vec::new();
        for slot in &slots {
            if !survivors.contains(&slot.name) {
                continue;
            }
            match read_snapshot(&slot.metrics_path) {
                Ok(snapshot) => reports.push(NodeReport {
                    name: slot.name.clone(),
                    snapshot,
                    baseline: read_snapshot(&slot.baseline_path).ok(),
                }),
                Err(e) => collection_failures
                    .push(format!("{}: final metrics unreadable: {e}", slot.name)),
            }
        }
        let mut verdict = verify(&self.graph, &self.flows, self.options.threshold, &reports);
        for name in &forced_teardown {
            verdict.failures.push(format!("{name} had to be force-killed at teardown"));
        }
        verdict.failures.extend(collection_failures);
        verdict.passed = verdict.failures.is_empty();

        let report = EmuReport {
            verdict,
            survivors,
            hard_kills,
            restarts,
            forced_teardown,
            run_ms: timeline.run_ms,
            seed: self.options.seed,
        };
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        fs::write(self.options.out_dir.join("report.json"), json)?;
        Ok(report)
    }

    /// Distribute: ports, topology file, SLA plan, per-node configs
    /// and chaos shards.
    fn distribute(
        &mut self,
        absolute: &ChaosSchedule,
        timeline: Timeline,
    ) -> Result<Vec<NodeSlot>, EmuError> {
        let out = self.options.out_dir.clone();
        for sub in ["configs", "chaos", "logs", "metrics"] {
            fs::create_dir_all(out.join(sub))?;
        }
        let n = self.graph.node_count();
        let ports = ports::allocate(n, self.options.seed).ok_or(EmuError::NoPorts)?;
        let addrs: Vec<SocketAddr> =
            ports.iter().map(|&p| SocketAddr::from(([127, 0, 0, 1], p))).collect();

        let topo_path = out.join("topology.json");
        let topo_json = serde_json::to_string_pretty(&self.graph).expect("graph serializes");
        fs::write(&topo_path, topo_json)?;

        let plan = SlaPlan {
            flows: self
                .flows
                .iter()
                .map(|&(s, t)| SlaFlowSpec {
                    source: self.graph.node(s).name.clone(),
                    destination: self.graph.node(t).name.clone(),
                    class: SlaClass::Timely,
                    deadline_ms: Some(self.deadline_ms),
                })
                .collect(),
        };
        let sla_path = out.join("sla.json");
        fs::write(&sla_path, plan.to_json())?;

        let mut slots = Vec::with_capacity(n);
        for node in self.graph.nodes() {
            let name = self.graph.node(node).name.clone();
            let mut file = NodeFileConfig::new(
                topo_path.to_str().expect("utf-8 path"),
                &name,
                addrs[node.index()],
            );
            // Soak cadences: quick link-down detection and anti-entropy
            // (the resilience suite's settings), and an aging horizon
            // past the run so a dead origin's reports freeze
            // identically everywhere instead of expiring mid-compare.
            file.hello_interval_ms = 25;
            file.link_state_interval_ms = 100;
            file.digest_interval_ms = Some(300);
            file.link_state_max_age_ms = Some(timeline.run_ms + 30_000);
            file.fault_seed = Some(self.options.seed);
            for &edge in self.graph.out_edges(node) {
                let peer = self.graph.edge(edge).dst;
                file.peers.insert(self.graph.node(peer).name.clone(), addrs[peer.index()]);
            }
            let config_path = out.join("configs").join(format!("{name}.json"));
            fs::write(&config_path, file.to_json())?;

            let shard = absolute.shard_for_node(&self.graph, node);
            fs::write(out.join("chaos").join(format!("{name}.json")), shard.to_json())?;
            slots.push(NodeSlot {
                chaos_dir: out.join("chaos"),
                log_path: out.join("logs").join(format!("{name}.log")),
                metrics_path: out.join("metrics").join(format!("{name}.json")),
                baseline_path: out.join("metrics").join(format!("{name}.baseline.json")),
                config_path,
                name,
                child: None,
            });
        }
        Ok(slots)
    }

    /// Spawns (or respawns) one daemon. Every spawn gets the same
    /// flags: deadlines are absolute on the `--epoch-us` timeline, so a
    /// respawned daemon needs no rebasing — it honours past deadlines
    /// immediately (replaying missed chaos events in order, skipping a
    /// missed baseline) and keeps future ones at their shared instants.
    fn spawn(
        &self,
        slot: &mut NodeSlot,
        timeline: Timeline,
        epoch_us: u64,
    ) -> Result<(), EmuError> {
        let shard_path = slot.chaos_dir.join(format!("{}.json", slot.name));
        let log = fs::OpenOptions::new().create(true).append(true).open(&slot.log_path)?;
        let log_err = log.try_clone()?;
        let mut command = Command::new(&self.options.node_bin);
        command
            .arg("--config")
            .arg(&slot.config_path)
            .arg("--epoch-us")
            .arg(epoch_us.to_string())
            .arg("--run-ms")
            .arg(timeline.run_ms.to_string())
            .arg("--metrics-json")
            .arg(&slot.metrics_path)
            .arg("--chaos-json")
            .arg(&shard_path)
            .arg("--sla-json")
            .arg(self.options.out_dir.join("sla.json"))
            .arg("--quiesce-at-ms")
            .arg(timeline.quiesce_at.to_string())
            .arg("--baseline-json")
            .arg(&slot.baseline_path)
            .arg("--baseline-at-ms")
            .arg(timeline.baseline_at.to_string())
            .stdout(Stdio::from(log))
            .stderr(Stdio::from(log_err));
        if self.options.traffic_pps > 0 {
            command
                .arg("--traffic-pps")
                .arg(self.options.traffic_pps.to_string())
                .arg("--traffic-stop-ms")
                .arg(timeline.traffic_stop.to_string());
        }
        if let Some(runtime) = &self.options.runtime {
            command.arg("--runtime").arg(runtime);
        }
        let child =
            command.spawn().map_err(|error| EmuError::Spawn { node: slot.name.clone(), error })?;
        slot.child = Some(child);
        Ok(())
    }

    /// Waits for the daemon's first `READY` line.
    fn wait_ready(&self, slot: &mut NodeSlot) -> Result<(), EmuError> {
        self.wait_ready_from(slot, 1)
    }

    /// Waits until the daemon's log holds `occurrence` READY lines —
    /// a respawned daemon appends to the same log, so its readiness is
    /// the (restarts+1)-th occurrence. Bounded retry with exponential
    /// backoff: 5 ms doubling to a 320 ms cap, up to
    /// `ready_timeout_ms` total.
    fn wait_ready_from(&self, slot: &mut NodeSlot, occurrence: usize) -> Result<(), EmuError> {
        let marker = format!("READY {} ", slot.name);
        let deadline = Instant::now() + Duration::from_millis(self.options.ready_timeout_ms);
        let mut backoff = Duration::from_millis(5);
        loop {
            let log = fs::read_to_string(&slot.log_path).unwrap_or_default();
            if log.matches(&marker).count() >= occurrence {
                return Ok(());
            }
            // A daemon that already exited will never become ready;
            // surface its log instead of burning the whole timeout.
            let died =
                slot.child.as_mut().is_none_or(|child| child.try_wait().ok().flatten().is_some());
            if died || Instant::now() + backoff > deadline {
                let tail: String = log.chars().skip(log.len().saturating_sub(800)).collect();
                return Err(EmuError::ReadyTimeout { node: slot.name.clone(), log_tail: tail });
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(320));
        }
    }
}

/// Reads and parses one atomically-written snapshot.
fn read_snapshot(path: &Path) -> Result<MetricsSnapshot, String> {
    let mut raw = String::new();
    fs::File::open(path)
        .map_err(|e| format!("{}: {e}", path.display()))?
        .read_to_string(&mut raw)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&raw).map_err(|e| format!("{}: {e}", path.display()))
}

/// Per-node peer wiring sanity used by tests: every out-neighbour of
/// every node must appear in that node's generated peer table.
#[doc(hidden)]
pub fn peer_table(
    graph: &Graph,
    addrs: &[SocketAddr],
    node: NodeId,
) -> HashMap<String, SocketAddr> {
    graph
        .out_edges(node)
        .iter()
        .map(|&e| {
            let peer = graph.edge(e).dst;
            (graph.node(peer).name.clone(), addrs[peer.index()])
        })
        .collect()
}
