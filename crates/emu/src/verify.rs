//! The convergence verifier: did the deployment actually heal?
//!
//! A chaos soak that merely *finishes* proves nothing — the point of
//! the multi-process harness is the post-mortem. [`verify`] takes the
//! metrics snapshots collected from every surviving daemon and holds
//! the deployment to three promises:
//!
//! 1. **Database convergence.** Every surviving node's link-state
//!    digest — the per-origin `(epoch, seq)` fingerprint embedded in
//!    its snapshot — must be byte-identical across the deployment and
//!    must cover every origin in the topology. The daemons quiesce
//!    origination before their final snapshot, so a healthy overlay
//!    settles to one exact fingerprint; any daemon that missed a
//!    flooded report, or kept a dead epoch, stands out.
//! 2. **Post-heal delivery.** For every flow whose endpoints survived,
//!    the packets sent after the mid-run baseline (source counter
//!    delta) must have been delivered at the destination (delivery
//!    counter delta) at a ratio clearing the threshold — cumulative
//!    counters plus an atomic baseline snapshot give exact
//!    post-recovery figures without any cross-process clock agreement.
//! 3. **No lingering degradation.** No surviving daemon may still
//!    report itself degraded: supervised threads recovered, watchdogs
//!    stopped firing.
//!
//! The verifier is a pure function over plain data, so every rule is
//! unit-testable with synthetic snapshots — and the harness binary
//! simply exits nonzero when [`Verdict::passed`] is false.

use dg_core::Flow;
use dg_overlay::MetricsSnapshot;
use dg_topology::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// One surviving daemon's collected evidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// The node's site name.
    pub name: String,
    /// The final snapshot, written at daemon shutdown.
    pub snapshot: MetricsSnapshot,
    /// The mid-run baseline snapshot, when the run took one.
    pub baseline: Option<MetricsSnapshot>,
}

/// Post-heal delivery accounting for one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowDelivery {
    /// Source site name.
    pub source: String,
    /// Destination site name.
    pub destination: String,
    /// Packets the source injected after the baseline.
    pub sent: u64,
    /// Packets the destination delivered after the baseline.
    pub delivered: u64,
    /// `delivered / sent` (1.0 when nothing was sent — the separate
    /// no-traffic failure covers that case).
    pub ratio: f64,
}

/// The verifier's full judgement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Verdict {
    /// True when every rule held.
    pub passed: bool,
    /// Human-readable rule violations, empty on a pass.
    pub failures: Vec<String>,
    /// Origins covered by the (agreed) link-state digest.
    pub digest_origins: usize,
    /// Per-flow post-heal delivery, in flow order.
    pub flows: Vec<FlowDelivery>,
}

fn flow_metrics(
    snapshot: &MetricsSnapshot,
    flow: Flow,
) -> Option<&dg_overlay::metrics::FlowMetrics> {
    snapshot.flows.iter().find(|f| f.flow == flow)
}

fn sent_for(report: &NodeReport, flow: Flow) -> (u64, u64) {
    let total = flow_metrics(&report.snapshot, flow).map_or(0, |f| f.packets_sent);
    let base =
        report.baseline.as_ref().and_then(|s| flow_metrics(s, flow)).map_or(0, |f| f.packets_sent);
    (total, base)
}

fn delivered_for(report: &NodeReport, flow: Flow) -> (u64, u64) {
    let total = flow_metrics(&report.snapshot, flow).map_or(0, |f| f.packets_delivered());
    let base = report
        .baseline
        .as_ref()
        .and_then(|s| flow_metrics(s, flow))
        .map_or(0, |f| f.packets_delivered());
    (total, base)
}

/// Judges a deployment from its survivors' snapshots. `flows` names
/// the traffic-bearing flows by endpoint node id; flows whose source
/// or destination has no surviving report are skipped (they had no
/// surviving counters to judge).
pub fn verify(
    graph: &Graph,
    flows: &[(NodeId, NodeId)],
    threshold: f64,
    reports: &[NodeReport],
) -> Verdict {
    let mut failures = Vec::new();
    if reports.is_empty() {
        return Verdict {
            passed: false,
            failures: vec!["no surviving node reported metrics".to_string()],
            digest_origins: 0,
            flows: Vec::new(),
        };
    }

    // Rule 1: identical link-state digests covering every origin.
    let reference = &reports[0];
    for report in &reports[1..] {
        if report.snapshot.link_state != reference.snapshot.link_state {
            failures.push(format!(
                "link-state digests diverge: {} holds {:?}, {} holds {:?}",
                reference.name,
                reference.snapshot.link_state,
                report.name,
                report.snapshot.link_state
            ));
        }
    }
    let digest_origins = reference.snapshot.link_state.len();
    if digest_origins != graph.node_count() {
        failures.push(format!(
            "digest covers {digest_origins} of {} origins — some node's reports never arrived",
            graph.node_count()
        ));
    }

    // Rule 3 (cheap, so checked before the flow arithmetic): nobody
    // still degraded.
    for report in reports {
        if report.snapshot.degraded {
            failures.push(format!("{} is still degraded at shutdown", report.name));
        }
    }

    // Rule 2: post-heal delivery per surviving flow.
    let by_id = |id: NodeId| reports.iter().find(|r| graph.node_by_name(&r.name) == Some(id));
    let mut deliveries = Vec::new();
    for &(source, destination) in flows {
        let (Some(src_report), Some(dst_report)) = (by_id(source), by_id(destination)) else {
            continue;
        };
        let flow = Flow::new(source, destination);
        let (sent_total, sent_base) = sent_for(src_report, flow);
        let (delivered_total, delivered_base) = delivered_for(dst_report, flow);
        let sent = sent_total.saturating_sub(sent_base);
        let delivered = delivered_total.saturating_sub(delivered_base);
        let ratio = if sent == 0 { 1.0 } else { delivered as f64 / sent as f64 };
        let label = format!("{} -> {}", src_report.name, dst_report.name);
        if sent == 0 {
            failures.push(format!(
                "{label}: no post-heal traffic was sent — the driver or baseline timing is broken"
            ));
        } else if ratio < threshold {
            failures.push(format!(
                "{label}: post-heal delivery {delivered}/{sent} = {ratio:.4} below {threshold}"
            ));
        }
        deliveries.push(FlowDelivery {
            source: src_report.name.clone(),
            destination: dst_report.name.clone(),
            sent,
            delivered,
            ratio,
        });
    }

    Verdict { passed: failures.is_empty(), failures, digest_origins, flows: deliveries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_overlay::metrics::FlowMetrics;
    use dg_overlay::wire::DigestEntry;
    use dg_overlay::NodeCounters;
    use dg_topology::presets;

    fn digest(graph: &Graph) -> Vec<DigestEntry> {
        graph.nodes().map(|origin| DigestEntry { origin, epoch: 7, seq: 42 }).collect()
    }

    fn snapshot(graph: &Graph, name: &str, link_state: Vec<DigestEntry>) -> MetricsSnapshot {
        MetricsSnapshot {
            node: graph.node_by_name(name).unwrap(),
            counters: NodeCounters::default(),
            flows: Vec::new(),
            links: Vec::new(),
            events: Vec::new(),
            events_dropped: 0,
            degraded: false,
            link_state,
            graph_cache: Default::default(),
        }
    }

    fn flow_cell(flow: Flow, sent: u64, on_time: u64, late: u64) -> FlowMetrics {
        FlowMetrics {
            flow,
            packets_sent: sent,
            packets_on_time: on_time,
            packets_late: late,
            transmissions: 0,
            graph_changes: 0,
        }
    }

    /// A healthy two-endpoint deployment: NYC sent 100 then 300 total,
    /// SJC delivered 100 then 299 total — 199/200 post-heal.
    fn healthy(graph: &Graph) -> (Vec<(NodeId, NodeId)>, Vec<NodeReport>) {
        let nyc = graph.node_by_name("NYC").unwrap();
        let sjc = graph.node_by_name("SJC").unwrap();
        let flow = Flow::new(nyc, sjc);
        let mut src_final = snapshot(graph, "NYC", digest(graph));
        src_final.flows.push(flow_cell(flow, 300, 0, 0));
        let mut src_base = snapshot(graph, "NYC", Vec::new());
        src_base.flows.push(flow_cell(flow, 100, 0, 0));
        let mut dst_final = snapshot(graph, "SJC", digest(graph));
        dst_final.flows.push(flow_cell(flow, 0, 290, 9));
        let mut dst_base = snapshot(graph, "SJC", Vec::new());
        dst_base.flows.push(flow_cell(flow, 0, 99, 1));
        let reports = vec![
            NodeReport { name: "NYC".into(), snapshot: src_final, baseline: Some(src_base) },
            NodeReport { name: "SJC".into(), snapshot: dst_final, baseline: Some(dst_base) },
        ];
        (vec![(nyc, sjc)], reports)
    }

    #[test]
    fn a_healthy_deployment_passes() {
        let graph = presets::north_america_12();
        let (flows, reports) = healthy(&graph);
        let verdict = verify(&graph, &flows, 0.99, &reports);
        assert!(verdict.passed, "failures: {:?}", verdict.failures);
        assert_eq!(verdict.digest_origins, 12);
        assert_eq!(verdict.flows.len(), 1);
        assert_eq!(verdict.flows[0].sent, 200);
        assert_eq!(verdict.flows[0].delivered, 199);
        assert!(verdict.flows[0].ratio >= 0.99);
    }

    #[test]
    fn divergent_digests_fail() {
        let graph = presets::north_america_12();
        let (flows, mut reports) = healthy(&graph);
        reports[1].snapshot.link_state[3].seq += 1;
        let verdict = verify(&graph, &flows, 0.99, &reports);
        assert!(!verdict.passed);
        assert!(verdict.failures.iter().any(|f| f.contains("diverge")), "{:?}", verdict.failures);
    }

    #[test]
    fn missing_origins_fail() {
        let graph = presets::north_america_12();
        let (flows, mut reports) = healthy(&graph);
        for report in &mut reports {
            report.snapshot.link_state.pop();
        }
        let verdict = verify(&graph, &flows, 0.99, &reports);
        assert!(!verdict.passed);
        assert!(verdict.failures.iter().any(|f| f.contains("11 of 12")), "{:?}", verdict.failures);
    }

    #[test]
    fn low_delivery_and_silence_fail() {
        let graph = presets::north_america_12();
        let (flows, mut reports) = healthy(&graph);
        // Destination only delivered 150 of the 200 post-heal packets.
        reports[1].snapshot.flows[0].packets_on_time = 249;
        reports[1].snapshot.flows[0].packets_late = 1;
        let verdict = verify(&graph, &flows, 0.99, &reports);
        assert!(!verdict.passed);
        assert!(
            verdict.failures.iter().any(|f| f.contains("below 0.99")),
            "{:?}",
            verdict.failures
        );

        // A flow that sent nothing post-heal is a broken driver, not a
        // vacuous pass.
        reports[0].snapshot.flows[0].packets_sent = 100;
        let verdict = verify(&graph, &flows, 0.99, &reports);
        assert!(
            verdict.failures.iter().any(|f| f.contains("no post-heal traffic")),
            "{:?}",
            verdict.failures
        );
    }

    #[test]
    fn degraded_survivors_and_empty_reports_fail() {
        let graph = presets::north_america_12();
        let (flows, mut reports) = healthy(&graph);
        reports[0].snapshot.degraded = true;
        let verdict = verify(&graph, &flows, 0.99, &reports);
        assert!(!verdict.passed);
        assert!(verdict.failures.iter().any(|f| f.contains("degraded")), "{:?}", verdict.failures);

        let verdict = verify(&graph, &flows, 0.99, &[]);
        assert!(!verdict.passed);

        // Flows with a dead endpoint are skipped, not judged.
        let (flows, reports) = healthy(&graph);
        let lone = vec![reports[0].clone()];
        let verdict = verify(&graph, &flows, 0.99, &lone);
        assert!(verdict.flows.is_empty(), "flow with a dead endpoint was judged");
    }
}
