//! Multi-process emulation harness for the overlay transport.
//!
//! Everything multi-node in this workspace so far runs inside one
//! process (`dg_overlay::cluster::Cluster`) — convenient, but a whole
//! class of real failures is invisible there: process death, startup
//! races, partial config, partial metrics files, a restarted daemon
//! re-joining with a fresh link-state epoch. This crate closes the gap
//! the way the paper's own deployment did, at laptop scale: it turns a
//! topology into a **real multi-process deployment on localhost**, one
//! `dg-node` OS process per overlay node on real UDP sockets.
//!
//! The pipeline ([`harness::EmuRun`]):
//!
//! 1. **Distribute.** Auto-assign a UDP port per node ([`ports`]),
//!    cross-wire every node's peer table, and write per-node
//!    [`dg_overlay::NodeFileConfig`] JSON files plus the shared
//!    topology and SLA-plan files.
//! 2. **Deploy.** Spawn one `dg-node` process per node and wait for
//!    each one's machine-parseable `READY` line with bounded retry and
//!    exponential backoff.
//! 3. **Disrupt.** Drive a scripted chaos schedule: link impairments
//!    are sharded into per-node `--chaos-json` slices the daemons
//!    replay themselves ([`dg_overlay::chaos::ChaosSchedule::shard_for_node`]);
//!    crash/restart events are executed by the harness as hard process
//!    kills (SIGKILL-equivalent) and respawns on the same port, with
//!    the respawned daemon's deadlines rebased so the whole deployment
//!    stays on one absolute timeline.
//! 4. **Collect.** On teardown — graceful first, per-process timeouts,
//!    forced kill as a last resort — gather every surviving daemon's
//!    atomically-written metrics snapshots (a mid-run baseline and the
//!    final dump).
//! 5. **Verify.** Run the convergence verifier ([`verify`]): all
//!    surviving nodes must report byte-identical link-state digests,
//!    post-heal delivery on every surviving flow must clear a
//!    threshold, and no node may remain degraded.
//!
//! The harness is the scenario soak bed ROADMAP item 5 asks for: the
//! chaos machinery (PR 2) and the resilient control plane (PR 4)
//! finally get exercised across real process boundaries, driven by an
//! RTP-like fixed-rate control-stream workload (`--traffic-pps`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod ports;
pub mod schedule;
pub mod verify;

pub use harness::{EmuError, EmuOptions, EmuReport, EmuRun};
pub use schedule::kill_heal_schedule;
pub use verify::{verify, FlowDelivery, NodeReport, Verdict};

/// Locates the `dg-node` binary a deployment should spawn, in priority
/// order: the `DG_NODE_BIN` environment variable, then a `dg-node`
/// sibling of the current executable, then a `dg-node` next to the
/// executable's parent directory (the layout when the caller is a test
/// binary under `target/<profile>/deps/`).
pub fn resolve_node_bin() -> Option<std::path::PathBuf> {
    if let Ok(path) = std::env::var("DG_NODE_BIN") {
        let path = std::path::PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    [dir.join("dg-node"), dir.parent()?.join("dg-node")]
        .into_iter()
        .find(|candidate| candidate.is_file())
}
