//! `dg-emu` — deploy a topology as real `dg-node` processes on
//! localhost, disrupt it, and verify convergence.
//!
//! Usage:
//!   dg-emu --topology us --seed 42                 # generated storm
//!   dg-emu --topology us --schedule kill-heal.json --seed 42
//!   dg-emu --topology ring --nodes 6 --out /tmp/soak
//!   dg-emu --emit-schedule kill-heal.json          # write the storm, exit
//!   dg-emu --help
//!
//! The harness spawns one `dg-node` process per overlay node (ports
//! auto-assigned, peer tables cross-wired), waits for every daemon's
//! `READY` line, then drives the chaos schedule: hard process kills and
//! same-port restarts executed by the harness, link impairments sharded
//! into per-node `--chaos-json` slices the daemons replay themselves.
//! After a recovery margin it snapshots baselines, runs a fixed-rate
//! measurement window, quiesces link-state origination, collects every
//! survivor's metrics, and judges the deployment:
//!
//! * identical link-state digests across all survivors, covering every
//!   origin in the topology,
//! * post-heal delivery on every surviving flow at or above
//!   `--threshold` (default 99%),
//! * no daemon still degraded at shutdown.
//!
//! Exit status: 0 when the verdict passes, 1 when it fails (or the
//! deployment itself breaks), 2 on usage errors. Artifacts — per-node
//! configs, chaos shards, logs, metrics, and `report.json` — land under
//! `--out` (default `target/emu/<label>-seed<seed>`).

use dg_cli::Cli;
use dg_emu::schedule::KillHealProfile;
use dg_emu::{kill_heal_schedule, resolve_node_bin, EmuOptions, EmuRun};
use dg_overlay::chaos::ChaosSchedule;
use dg_topology::generate::TopoSpec;
use std::collections::BTreeSet;
use std::path::PathBuf;

fn cli() -> Cli {
    Cli::new("dg-emu", "multi-process deployment harness: chaos soak + convergence verdict")
        .flag_default("topology", "NAME", "topology family: us, global, ring, waxman", "us")
        .flag_default("nodes", "N", "node count for generated families", "12")
        .flag_default("seed", "N", "run seed: ports, storm shape, generated topologies", "42")
        .flag("schedule", "FILE", "chaos schedule JSON (default: a generated kill-heal storm)")
        .flag("emit-schedule", "FILE", "write the generated kill-heal storm and exit")
        .flag_default("flows", "N", "how many default flows carry traffic", "2")
        .flag_default("traffic-pps", "N", "fixed-rate load per flow, packets/second", "100")
        .flag_default(
            "threshold",
            "RATIO",
            "post-heal delivery ratio every flow must clear",
            "0.99",
        )
        .flag("out", "DIR", "artifact directory (default target/emu/<label>-seed<seed>)")
        .flag("node-bin", "PATH", "dg-node binary (default: $DG_NODE_BIN, then a sibling)")
        .flag("runtime", "MODE", "daemon runtime: 'threaded', 'reactor', or 'reactor:N'")
        .flag_default(
            "warmup-ms",
            "N",
            "convergence head-room before the first chaos event",
            "2000",
        )
        .flag_default(
            "recover-ms",
            "N",
            "margin between the last chaos event and the baseline",
            "1500",
        )
        .flag_default("measure-ms", "N", "post-heal measurement window", "2500")
}

fn main() {
    let cli = cli();
    let matches = cli.parse_env();
    let get_u64 = |name: &str| match matches.get::<u64>(name) {
        Ok(v) => v.expect("flag has a default"),
        Err(e) => cli.exit_with(&e),
    };
    let seed = get_u64("seed");
    let nodes = get_u64("nodes") as usize;
    let topology = matches.value("topology").expect("defaulted");
    let spec = match TopoSpec::parse(topology, nodes, seed) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("dg-emu: {e}");
            std::process::exit(2);
        }
    };
    let graph = spec.build();
    let flow_count = get_u64("flows") as usize;
    let flows = spec.default_flows(&graph, flow_count.max(1));
    if flows.is_empty() {
        eprintln!("dg-emu: topology {} yields no default flows", spec.label());
        std::process::exit(2);
    }
    let deadline_ms = spec.default_deadline(&graph, &flows).as_millis();

    // Flow endpoints are protected from process-level chaos: a
    // restarted source would replay sequence numbers its destination's
    // dedup window already suppressed, turning a transport property
    // into a false verdict.
    let protected: Vec<_> =
        BTreeSet::from_iter(flows.iter().flat_map(|&(s, t)| [s, t])).into_iter().collect();
    let schedule = match matches.value("schedule") {
        Some(path) => {
            let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("dg-emu: cannot read schedule {path}: {e}");
                std::process::exit(2);
            });
            ChaosSchedule::from_json(&raw).unwrap_or_else(|e| {
                eprintln!("dg-emu: schedule {path} is not a chaos schedule: {e}");
                std::process::exit(2);
            })
        }
        None => kill_heal_schedule(&graph, &protected, seed, &KillHealProfile::default()),
    };
    if let Some(path) = matches.value("emit-schedule") {
        std::fs::write(path, schedule.to_json()).unwrap_or_else(|e| {
            eprintln!("dg-emu: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {} chaos events to {path}", schedule.events.len());
        return;
    }

    let node_bin = match matches.value("node-bin").map(PathBuf::from).or_else(resolve_node_bin) {
        Some(path) if path.is_file() => path,
        Some(path) => {
            eprintln!("dg-emu: node binary {} does not exist", path.display());
            std::process::exit(2);
        }
        None => {
            eprintln!(
                "dg-emu: cannot locate dg-node — pass --node-bin or set DG_NODE_BIN \
                 (build it with: cargo build -p dg-overlay --bin dg-node)"
            );
            std::process::exit(2);
        }
    };
    let out_dir = matches
        .value("out")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(format!("target/emu/{}-seed{seed}", spec.label())));

    let mut options = EmuOptions::new(node_bin, out_dir.clone(), seed);
    options.warmup_ms = get_u64("warmup-ms");
    options.recover_ms = get_u64("recover-ms");
    options.measure_ms = get_u64("measure-ms");
    options.traffic_pps = get_u64("traffic-pps");
    options.threshold = match matches.get::<f64>("threshold") {
        Ok(v) => v.expect("flag has a default"),
        Err(e) => cli.exit_with(&e),
    };
    options.runtime = matches.value("runtime").map(str::to_string);

    println!(
        "dg-emu: deploying {} ({} nodes, {} flows, {} chaos events) under seed {seed}",
        spec.label(),
        graph.node_count(),
        flows.len(),
        schedule.events.len(),
    );
    let run = EmuRun::new(graph, flows, deadline_ms, schedule, options);
    let report = match run.execute() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("dg-emu: deployment failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "dg-emu: {} survivors, {} hard kills, {} restarts; digest covers {} origins",
        report.survivors.len(),
        report.hard_kills.len(),
        report.restarts.len(),
        report.verdict.digest_origins,
    );
    for flow in &report.verdict.flows {
        println!(
            "dg-emu: {} -> {}: post-heal {}/{} = {:.4}",
            flow.source, flow.destination, flow.delivered, flow.sent, flow.ratio
        );
    }
    if report.verdict.passed {
        println!("dg-emu: PASS (artifacts in {})", out_dir.display());
    } else {
        for failure in &report.verdict.failures {
            eprintln!("dg-emu: FAIL: {failure}");
        }
        eprintln!("dg-emu: artifacts in {}", out_dir.display());
        std::process::exit(1);
    }
}
