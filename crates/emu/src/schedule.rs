//! The canonical process-level chaos scenario: kill / restart /
//! partition-then-heal.
//!
//! [`kill_heal_schedule`] generates the storm the acceptance soak
//! replays: a relay node is hard-killed and later restarted on the same
//! port, while a *different* relay is partitioned from the overlay
//! (every incident link blackholed — the paper's "problem around a
//! node" taken to totality) and healed again. Flow endpoints are
//! protected: the flow-level dedup window means a restarted *source*
//! would replay sequence numbers its destination already suppressed, so
//! kills target relays — exactly the nodes whose death forces the
//! routing to react.
//!
//! Schedules are relative to "chaos starts" at t=0; the deployment
//! harness shifts them past its convergence warm-up
//! ([`dg_overlay::chaos::ChaosSchedule::shifted`]) and shards them into
//! per-node slices.

use dg_overlay::chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
use dg_overlay::fault::LinkFault;
use dg_topology::{Graph, NodeId};

/// SplitMix64, kept local so schedule generation is seed-stable
/// independent of overlay internals.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shape of a [`kill_heal_schedule`] storm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillHealProfile {
    /// Span of the active window; every restart and heal lands inside
    /// it, so the deployment can size its recovery margin off
    /// [`ChaosSchedule::end_ms`].
    pub window_ms: u64,
    /// How long the killed relay stays dead before its restart.
    pub kill_dwell_ms: u64,
    /// How long the partitioned relay stays isolated before its heal.
    pub partition_dwell_ms: u64,
}

impl Default for KillHealProfile {
    fn default() -> Self {
        KillHealProfile { window_ms: 3_000, kill_dwell_ms: 1_400, partition_dwell_ms: 1_200 }
    }
}

/// Generates the kill + restart + partition-then-heal storm for
/// `graph`, deterministically from `seed`. Nodes in `protected`
/// (flow endpoints) are neither killed nor partitioned; when fewer
/// than two relays remain, the kill and the partition collapse onto
/// the same victim rather than touching an endpoint.
pub fn kill_heal_schedule(
    graph: &Graph,
    protected: &[NodeId],
    seed: u64,
    profile: &KillHealProfile,
) -> ChaosSchedule {
    let relays: Vec<NodeId> = graph.nodes().filter(|n| !protected.contains(n)).collect();
    let mut rng = seed ^ 0x1CDC_5201_7BAB_A117;
    let mut events = Vec::new();
    if relays.is_empty() {
        return ChaosSchedule { seed, events };
    }
    let kill_victim = relays[(splitmix64(&mut rng) % relays.len() as u64) as usize];
    let partition_victim = if relays.len() > 1 {
        // Draw until the partition lands on a different relay: both
        // faults active at once is the storm's point.
        loop {
            let candidate = relays[(splitmix64(&mut rng) % relays.len() as u64) as usize];
            if candidate != kill_victim {
                break candidate;
            }
        }
    } else {
        kill_victim
    };

    // The kill fires early in the window; the restart must leave the
    // daemon time to re-join, so its dwell is clamped to the window.
    let latest_kill = profile.window_ms.saturating_sub(profile.kill_dwell_ms).max(1);
    let kill_at = splitmix64(&mut rng) % (latest_kill / 2).max(1);
    let restart_at = (kill_at + profile.kill_dwell_ms).min(profile.window_ms);
    events
        .push(ChaosEvent { at_ms: kill_at, action: ChaosAction::CrashNode { node: kill_victim } });
    events.push(ChaosEvent {
        at_ms: restart_at,
        action: ChaosAction::RestartNode { node: kill_victim },
    });

    // The partition: every link incident to the victim goes black in
    // both directions (the harness shards this into each neighbour's
    // slice), then heals inside the window.
    let latest_cut = profile.window_ms.saturating_sub(profile.partition_dwell_ms).max(1);
    let cut_at = splitmix64(&mut rng) % latest_cut;
    let heal_at = (cut_at + profile.partition_dwell_ms).min(profile.window_ms);
    let blackhole = LinkFault { blackhole: true, ..LinkFault::default() };
    events.push(ChaosEvent {
        at_ms: cut_at,
        action: ChaosAction::ImpairNode { node: partition_victim, fault: blackhole },
    });
    events.push(ChaosEvent {
        at_ms: heal_at,
        action: ChaosAction::HealNode { node: partition_victim },
    });

    events.sort_by_key(|e| e.at_ms);
    ChaosSchedule { seed, events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    fn endpoints(graph: &Graph) -> Vec<NodeId> {
        presets::transcontinental_flows(graph).iter().flat_map(|&(s, t)| [s, t]).collect()
    }

    #[test]
    fn storms_are_deterministic_and_protect_endpoints() {
        let graph = presets::north_america_12();
        let protected = endpoints(&graph);
        let profile = KillHealProfile::default();
        let a = kill_heal_schedule(&graph, &protected, 42, &profile);
        let b = kill_heal_schedule(&graph, &protected, 42, &profile);
        assert_eq!(a, b, "same seed, same storm");
        assert_ne!(
            a,
            kill_heal_schedule(&graph, &protected, 7, &profile),
            "different seeds differ"
        );

        for event in &a.events {
            let victim = match event.action {
                ChaosAction::CrashNode { node }
                | ChaosAction::RestartNode { node }
                | ChaosAction::ImpairNode { node, .. }
                | ChaosAction::HealNode { node } => node,
                ref other => panic!("unexpected action in kill-heal storm: {other:?}"),
            };
            assert!(!protected.contains(&victim), "storm touched a flow endpoint");
            assert!(event.at_ms <= profile.window_ms, "event past the active window");
        }
    }

    #[test]
    fn every_fault_is_undone_and_victims_differ() {
        let graph = presets::north_america_12();
        let protected = endpoints(&graph);
        for seed in [42, 7, 1337] {
            let schedule =
                kill_heal_schedule(&graph, &protected, seed, &KillHealProfile::default());
            let mut killed = None;
            let mut partitioned = None;
            let mut restarted = false;
            let mut healed = false;
            for event in &schedule.events {
                match event.action {
                    ChaosAction::CrashNode { node } => killed = Some(node),
                    ChaosAction::RestartNode { node } => {
                        assert_eq!(killed, Some(node), "restart matches the kill");
                        restarted = true;
                    }
                    ChaosAction::ImpairNode { node, fault } => {
                        assert!(fault.blackhole, "partition is a blackhole");
                        partitioned = Some(node);
                    }
                    ChaosAction::HealNode { node } => {
                        assert_eq!(partitioned, Some(node), "heal matches the cut");
                        healed = true;
                    }
                    ref other => panic!("unexpected action: {other:?}"),
                }
            }
            assert!(restarted && healed, "seed {seed}: storm left a fault open");
            assert_ne!(killed, partitioned, "seed {seed}: kill and partition share a victim");
            assert!(schedule.end_ms() <= KillHealProfile::default().window_ms);
        }
    }
}
