//! Property tests for the hop-by-hop recovery primitives under random
//! reorder, duplication, and loss.
//!
//! Invariants under test:
//! - **Single-retransmission discipline**: across any arrival pattern,
//!   [`GapTracker::observe`] NACKs each sequence at most once, and
//!   [`GapTracker::due_rerequests`] re-offers each at most once more —
//!   so no sequence is ever requested more than twice in total.
//! - **Bounded memory**: the tracker's bookkeeping stays bounded no
//!   matter how long or how lossy the stream is.
//! - **Buffer agreement**: [`SendBuffer::take`] (a binary search over
//!   the sequence-sorted ring) agrees exactly with a naive model, and
//!   never serves the same sequence twice.

use dg_overlay::recovery::{GapTracker, SendBuffer};
use dg_topology::Micros;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Turns a loss/dup/reorder plan into an arrival stream of link seqs.
fn arrivals(n: u64, lost: &HashSet<u64>, dup: &HashSet<u64>, swaps: &[(usize, usize)]) -> Vec<u64> {
    let mut stream: Vec<u64> = (0..n).filter(|s| !lost.contains(s)).collect();
    let dupped: Vec<u64> = stream.iter().copied().filter(|s| dup.contains(s)).collect();
    stream.extend(dupped);
    for &(a, b) in swaps {
        if !stream.is_empty() {
            let (a, b) = (a % stream.len(), b % stream.len());
            stream.swap(a, b);
        }
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No sequence is NACKed twice by `observe`, and a re-request adds
    /// at most one more, regardless of reordering and duplication.
    #[test]
    fn each_sequence_is_requested_at_most_twice(
        n in 1u64..300,
        lost in proptest::collection::vec(0u64..300, 0..40),
        dup in proptest::collection::vec(0u64..300, 0..20),
        swaps in proptest::collection::vec((0usize..300, 0usize..300), 0..30),
        rerequest_every in 1u64..20,
    ) {
        let lost: HashSet<u64> = lost.into_iter().collect();
        let dup: HashSet<u64> = dup.into_iter().collect();
        let stream = arrivals(n, &lost, &dup, &swaps);
        let mut tracker = GapTracker::new();
        let mut requests: HashMap<u64, u32> = HashMap::new();
        for (i, &seq) in stream.iter().enumerate() {
            let now = Micros::from_micros(i as u64 * 1_000);
            for s in tracker.observe(seq, now) {
                *requests.entry(s).or_default() += 1;
            }
            // Periodically fire the re-request timer with a silence
            // horizon short enough to actually re-offer something.
            if (i as u64).is_multiple_of(rerequest_every) {
                for s in tracker.due_rerequests(now, Micros::from_micros(2_000)) {
                    *requests.entry(s).or_default() += 1;
                }
            }
        }
        // Drain the timer once more, far in the future, then verify it
        // never offers anything a third time.
        let end = Micros::from_micros((stream.len() as u64 + 10) * 1_000);
        for s in tracker.due_rerequests(end, Micros::ZERO) {
            *requests.entry(s).or_default() += 1;
        }
        prop_assert!(tracker.due_rerequests(end, Micros::ZERO).is_empty());
        for (&seq, &count) in &requests {
            prop_assert!(
                count <= 2,
                "seq {seq} requested {count} times — single NACK plus one re-request is the cap"
            );
        }
        // The final zero-silence drain moved every pending entry to the
        // re-requested set, so nothing is left outstanding.
        prop_assert_eq!(tracker.outstanding(), 0);
    }

    /// Bookkeeping memory stays bounded even across an arbitrarily long
    /// and lossy stream (the tracker prunes below a sliding floor).
    #[test]
    fn tracker_memory_is_bounded(
        stride in 2u64..9,
        rounds in 100u64..2_000,
    ) {
        let mut tracker = GapTracker::new();
        // Deliver only every `stride`-th sequence: maximal sustained
        // gappiness without ever healing.
        for i in 0..rounds {
            let now = Micros::from_micros(i * 1_000);
            tracker.observe(i * stride, now);
        }
        // `requested` prunes at 4 * MAX_NACK (256); `pending` can only
        // be smaller. Allow one unpruned batch of slack.
        prop_assert!(
            tracker.outstanding() <= 320,
            "outstanding grew to {} — bookkeeping is unbounded",
            tracker.outstanding()
        );
    }

    /// Binary-search take agrees with a naive model and enforces the
    /// single-retransmission discipline, including across capacity
    /// eviction and sparse (gappy) sequence numbers.
    #[test]
    fn send_buffer_matches_model(
        capacity in 1usize..64,
        gaps in proptest::collection::vec(1u64..5, 1..200),
        takes in proptest::collection::vec((0usize..220, any::<bool>()), 0..300),
    ) {
        let mut buffer: SendBuffer<u64> = SendBuffer::new(capacity);
        let mut model: Vec<u64> = Vec::new();
        let mut seq = 0u64;
        let mut pushed: Vec<u64> = Vec::new();
        for &g in &gaps {
            seq += g;
            buffer.push(seq, seq);
            model.push(seq);
            if model.len() > capacity {
                model.remove(0);
            }
            pushed.push(seq);
        }
        for &(idx, second_take) in &takes {
            let target = pushed[idx % pushed.len()];
            let expected = model.iter().position(|&s| s == target).map(|i| model.remove(i));
            prop_assert_eq!(buffer.take(target), expected);
            if second_take {
                prop_assert_eq!(
                    buffer.take(target),
                    None,
                    "a taken sequence must not be served twice"
                );
            }
        }
        prop_assert_eq!(buffer.len(), model.len());
        prop_assert_eq!(buffer.is_empty(), model.is_empty());
    }
}
