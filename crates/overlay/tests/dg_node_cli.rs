//! Smoke tests of the standalone `dg-node` daemon binary.

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dg-node")
}

#[test]
fn emit_topology_writes_a_loadable_graph() {
    let dir = std::env::temp_dir().join("dg_node_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let topo = dir.join("topology.json");
    let status = Command::new(bin())
        .args(["--emit-topology", topo.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let raw = std::fs::read_to_string(&topo).unwrap();
    let graph: dg_topology::Graph = serde_json::from_str(&raw).unwrap();
    assert_eq!(graph.node_count(), 12);
    assert_eq!(graph.edge_count(), 60);
    std::fs::remove_file(&topo).unwrap();
}

#[test]
fn bad_usage_exits_nonzero() {
    let status = Command::new(bin()).status().expect("binary runs");
    assert!(!status.success());
}

#[test]
fn two_daemons_start_and_exchange_traffic() {
    let dir = std::env::temp_dir().join("dg_node_cli_pair");
    std::fs::create_dir_all(&dir).unwrap();
    let topo = dir.join("topology.json");
    assert!(Command::new(bin())
        .args(["--emit-topology", topo.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // Two fixed loopback ports for NYC and JHU (directly linked).
    let (port_a, port_b) = (47_311u16, 47_312u16);
    let config = |node: &str, me: u16, peer_name: &str, peer: u16| {
        let path = dir.join(format!("{node}.json"));
        std::fs::write(
            &path,
            format!(
                r#"{{"topology": "{}", "node": "{node}", "listen": "127.0.0.1:{me}",
                    "peers": {{"{peer_name}": "127.0.0.1:{peer}"}},
                    "hello_interval_ms": 20, "link_state_interval_ms": 60}}"#,
                topo.display()
            ),
        )
        .unwrap();
        path
    };
    let cfg_a = config("NYC", port_a, "JHU", port_b);
    let cfg_b = config("JHU", port_b, "NYC", port_a);

    let mut a = Command::new(bin())
        .args(["--config", cfg_a.to_str().unwrap()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("NYC daemon starts");
    let mut b = Command::new(bin())
        .args(["--config", cfg_b.to_str().unwrap()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("JHU daemon starts");

    // Let hellos flow for a moment, then stop both.
    std::thread::sleep(Duration::from_millis(800));
    a.kill().unwrap();
    b.kill().unwrap();
    let mut out_a = String::new();
    a.stdout.take().unwrap().read_to_string(&mut out_a).unwrap();
    let _ = a.wait();
    let _ = b.wait();
    assert!(out_a.contains("dg-node NYC listening on 127.0.0.1"), "unexpected banner: {out_a:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Grabs two free loopback UDP ports (released again before use; tests
/// in this file use high fixed ports or this helper, never both).
fn two_free_ports() -> (u16, u16) {
    let a = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    let b = std::net::UdpSocket::bind("127.0.0.1:0").unwrap();
    (a.local_addr().unwrap().port(), b.local_addr().unwrap().port())
}

/// The full deployment contract over real UDP: both daemons print a
/// machine-parseable `READY <node> <addr> <runtime>` line once their
/// sockets are bound, converge their hello/link-state protocols, exit
/// on their `--run-ms` deadline, and dump metrics snapshots that
/// deserialize back into [`dg_overlay::MetricsSnapshot`] with evidence
/// of the convergence (hello exchange, a two-origin link-state digest).
#[test]
fn real_udp_pair_reports_ready_converges_and_dumps_metrics() {
    let dir = std::env::temp_dir().join(format!("dg_node_cli_ready_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let topo = dir.join("topology.json");
    assert!(Command::new(bin())
        .args(["--emit-topology", topo.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let (port_a, port_b) = two_free_ports();
    let write_config = |node: &str, me: u16, peer_name: &str, peer: u16| {
        let path = dir.join(format!("{node}.json"));
        std::fs::write(
            &path,
            format!(
                r#"{{"topology": "{}", "node": "{node}", "listen": "127.0.0.1:{me}",
                    "peers": {{"{peer_name}": "127.0.0.1:{peer}"}},
                    "hello_interval_ms": 20, "link_state_interval_ms": 60}}"#,
                topo.display()
            ),
        )
        .unwrap();
        path
    };
    let cfg_a = write_config("NYC", port_a, "JHU", port_b);
    let cfg_b = write_config("JHU", port_b, "NYC", port_a);
    let metrics_a = dir.join("NYC.metrics.json");
    let metrics_b = dir.join("JHU.metrics.json");

    let spawn = |cfg: &std::path::Path, metrics: &std::path::Path| {
        Command::new(bin())
            .args(["--config", cfg.to_str().unwrap()])
            .args(["--run-ms", "1500"])
            .args(["--metrics-json", metrics.to_str().unwrap()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("daemon starts")
    };
    let mut a = spawn(&cfg_a, &metrics_a);
    let mut b = spawn(&cfg_b, &metrics_b);

    // Both exit on their own --run-ms deadline.
    let status_a = a.wait().expect("NYC daemon exits");
    let status_b = b.wait().expect("JHU daemon exits");
    assert!(status_a.success() && status_b.success(), "daemons exited cleanly");

    let mut out_a = String::new();
    a.stdout.take().unwrap().read_to_string(&mut out_a).unwrap();
    let ready = out_a.lines().next().expect("daemon printed output");
    let fields: Vec<&str> = ready.split_whitespace().collect();
    assert_eq!(fields.first(), Some(&"READY"), "first line is the readiness line: {ready:?}");
    assert_eq!(fields.get(1), Some(&"NYC"));
    assert_eq!(fields.get(2), Some(&format!("127.0.0.1:{port_a}").as_str()));
    assert_eq!(fields.get(3), Some(&"threaded"), "default runtime descriptor");

    for (name, path) in [("NYC", &metrics_a), ("JHU", &metrics_b)] {
        let raw =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{name} metrics missing: {e}"));
        let snap: dg_overlay::MetricsSnapshot =
            serde_json::from_str(&raw).unwrap_or_else(|e| panic!("{name} snapshot: {e}"));
        assert!(snap.counters.hellos_sent > 0, "{name} sent hellos");
        assert!(snap.counters.hello_acks_received > 0, "{name} heard its peer echo");
        assert_eq!(snap.link_state.len(), 2, "{name} digest covers both origins");
        assert!(!snap.degraded, "{name} healthy at shutdown");
        assert!(snap.links.iter().any(|l| l.datagrams > 0), "{name} shipped datagrams to its peer");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Operator-input failures exit with code 1 and a diagnostic naming
/// the offending file — never a panic, never a bare abort.
#[test]
fn bad_inputs_exit_one_with_file_naming_diagnostics() {
    let dir = std::env::temp_dir().join(format!("dg_node_cli_diag_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let topo = dir.join("topology.json");
    assert!(Command::new(bin())
        .args(["--emit-topology", topo.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    let run = |args: &[&str]| {
        let output =
            Command::new(bin()).args(args).stderr(Stdio::piped()).output().expect("binary runs");
        (output.status.code(), String::from_utf8_lossy(&output.stderr).into_owned())
    };
    let valid_config = dir.join("valid.json");
    std::fs::write(
        &valid_config,
        format!(r#"{{"topology": "{}", "node": "NYC", "listen": "127.0.0.1:0"}}"#, topo.display()),
    )
    .unwrap();

    // Missing config file.
    let (code, err) = run(&["--config", "/nonexistent/node.json"]);
    assert_eq!(code, Some(1), "stderr: {err}");
    assert!(err.contains("/nonexistent/node.json") && err.contains("cannot read"), "{err}");

    // Config that is not JSON.
    let broken = dir.join("broken.json");
    std::fs::write(&broken, "{not json").unwrap();
    let (code, err) = run(&["--config", broken.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {err}");
    assert!(err.contains("broken.json") && err.contains("bad config"), "{err}");

    // Config naming a node the topology does not contain.
    let ghost = dir.join("ghost.json");
    std::fs::write(
        &ghost,
        format!(
            r#"{{"topology": "{}", "node": "ATLANTIS", "listen": "127.0.0.1:0"}}"#,
            topo.display()
        ),
    )
    .unwrap();
    let (code, err) = run(&["--config", ghost.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {err}");
    assert!(err.contains("ATLANTIS"), "diagnostic names the offender: {err}");

    // Valid config, corrupt chaos schedule.
    let chaos = dir.join("chaos.json");
    std::fs::write(&chaos, "[]").unwrap();
    let (code, err) =
        run(&["--config", valid_config.to_str().unwrap(), "--chaos-json", chaos.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {err}");
    assert!(err.contains("chaos.json") && err.contains("bad chaos schedule"), "{err}");

    // Valid config, corrupt SLA plan.
    let sla = dir.join("sla.json");
    std::fs::write(&sla, "3").unwrap();
    let (code, err) =
        run(&["--config", valid_config.to_str().unwrap(), "--sla-json", sla.to_str().unwrap()]);
    assert_eq!(code, Some(1), "stderr: {err}");
    assert!(err.contains("sla.json") && err.contains("bad sla plan"), "{err}");

    // Usage errors stay distinct: unknown flags exit 2, not 1.
    let (code, _) = run(&["--no-such-flag"]);
    assert_eq!(code, Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}
