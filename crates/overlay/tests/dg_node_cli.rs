//! Smoke tests of the standalone `dg-node` daemon binary.

use std::io::Read;
use std::process::{Command, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dg-node")
}

#[test]
fn emit_topology_writes_a_loadable_graph() {
    let dir = std::env::temp_dir().join("dg_node_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let topo = dir.join("topology.json");
    let status = Command::new(bin())
        .args(["--emit-topology", topo.to_str().unwrap()])
        .status()
        .expect("binary runs");
    assert!(status.success());
    let raw = std::fs::read_to_string(&topo).unwrap();
    let graph: dg_topology::Graph = serde_json::from_str(&raw).unwrap();
    assert_eq!(graph.node_count(), 12);
    assert_eq!(graph.edge_count(), 60);
    std::fs::remove_file(&topo).unwrap();
}

#[test]
fn bad_usage_exits_nonzero() {
    let status = Command::new(bin()).status().expect("binary runs");
    assert!(!status.success());
}

#[test]
fn two_daemons_start_and_exchange_traffic() {
    let dir = std::env::temp_dir().join("dg_node_cli_pair");
    std::fs::create_dir_all(&dir).unwrap();
    let topo = dir.join("topology.json");
    assert!(Command::new(bin())
        .args(["--emit-topology", topo.to_str().unwrap()])
        .status()
        .unwrap()
        .success());

    // Two fixed loopback ports for NYC and JHU (directly linked).
    let (port_a, port_b) = (47_311u16, 47_312u16);
    let config = |node: &str, me: u16, peer_name: &str, peer: u16| {
        let path = dir.join(format!("{node}.json"));
        std::fs::write(
            &path,
            format!(
                r#"{{"topology": "{}", "node": "{node}", "listen": "127.0.0.1:{me}",
                    "peers": {{"{peer_name}": "127.0.0.1:{peer}"}},
                    "hello_interval_ms": 20, "link_state_interval_ms": 60}}"#,
                topo.display()
            ),
        )
        .unwrap();
        path
    };
    let cfg_a = config("NYC", port_a, "JHU", port_b);
    let cfg_b = config("JHU", port_b, "NYC", port_a);

    let mut a = Command::new(bin())
        .args(["--config", cfg_a.to_str().unwrap()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("NYC daemon starts");
    let mut b = Command::new(bin())
        .args(["--config", cfg_b.to_str().unwrap()])
        .stdout(Stdio::piped())
        .spawn()
        .expect("JHU daemon starts");

    // Let hellos flow for a moment, then stop both.
    std::thread::sleep(Duration::from_millis(800));
    a.kill().unwrap();
    b.kill().unwrap();
    let mut out_a = String::new();
    a.stdout.take().unwrap().read_to_string(&mut out_a).unwrap();
    let _ = a.wait();
    let _ = b.wait();
    assert!(out_a.contains("dg-node NYC listening on 127.0.0.1"), "unexpected banner: {out_a:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
