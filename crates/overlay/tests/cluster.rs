//! End-to-end tests of the overlay transport service on localhost.
//!
//! These launch real multi-node overlays (UDP sockets, protocol
//! threads, emulated link latency) and verify the behaviours the paper
//! depends on: timely delivery, hop-by-hop recovery, disjoint-path
//! survival, link-state convergence, and targeted-redundancy switching.

use dg_core::scheme::SchemeKind;
use dg_core::{Flow, ServiceRequirement};
use dg_overlay::cluster::{Cluster, ClusterConfig};
use dg_topology::{presets, Micros};
use std::time::Duration;

fn na_cluster() -> Cluster {
    let graph = presets::north_america_12();
    let config = ClusterConfig {
        hello_interval: Duration::from_millis(20),
        link_state_interval: Duration::from_millis(80),
        ..ClusterConfig::default()
    };
    Cluster::launch(&graph, config).expect("cluster launches")
}

fn nyc_sjc(cluster: &Cluster) -> Flow {
    Flow::new(
        cluster.graph().node_by_name("NYC").unwrap(),
        cluster.graph().node_by_name("SJC").unwrap(),
    )
}

#[test]
fn clean_network_delivers_on_time() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    for i in 0..20u64 {
        let seq = tx.send(format!("packet {i}").as_bytes()).unwrap();
        assert_eq!(seq, i);
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut got = Vec::new();
    while got.len() < 20 {
        match rx.recv_timeout(Duration::from_millis(500)) {
            Some(d) => got.push(d),
            None => break,
        }
    }
    assert_eq!(got.len(), 20, "all packets delivered");
    for d in &got {
        assert!(d.on_time, "seq {} late: {}", d.flow_seq, d.latency());
        // Cross-country one-way should sit in the tens of milliseconds.
        assert!(d.latency() > Micros::from_millis(20), "latency {}", d.latency());
        assert!(d.latency() < Micros::from_millis(65), "latency {}", d.latency());
    }
    assert_eq!(got[0].payload.as_ref(), b"packet 0");
    cluster.shutdown();
}

#[test]
fn recovery_rescues_moderate_loss() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    // 30% loss on the path's first hop.
    let graph = cluster.graph().clone();
    let first_hop = tx
        .current_graph()
        .forwarding_edges(&graph, flow.source)
        .next()
        .expect("single path has a first hop");
    cluster.set_link_fault(first_hop, 0.3, Micros::ZERO);

    let total = 150u64;
    for i in 0..total {
        tx.send(format!("m{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(4));
    }
    std::thread::sleep(Duration::from_millis(300));
    let got = rx.drain();
    // Without recovery ~30% would vanish; with one retransmission the
    // expected residual loss is ~9%.
    assert!(got.len() as u64 >= total * 80 / 100, "only {}/{total} delivered", got.len());
    let nyc = cluster.node(flow.source).metrics_snapshot().counters;
    assert!(nyc.retransmissions_served > 0, "recovery never fired");
    let chi_like = cluster.node(graph.edge(first_hop).dst).metrics_snapshot().counters;
    assert!(chi_like.nack_messages_sent > 0, "receiver never detected gaps");
    cluster.shutdown();
}

#[test]
fn disjoint_pair_survives_a_dead_path() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticTwoDisjoint, ServiceRequirement::default())
        .unwrap();
    // Kill the primary path's first hop completely.
    let graph = cluster.graph().clone();
    let first_hop = tx
        .current_graph()
        .forwarding_edges(&graph, flow.source)
        .next()
        .expect("pair has a first hop");
    cluster.set_link_fault(first_hop, 1.0, Micros::ZERO);

    for i in 0..30u64 {
        tx.send(format!("m{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(300));
    let got = rx.drain();
    assert_eq!(got.len(), 30, "the second disjoint path must deliver everything");
    assert!(got.iter().all(|d| d.on_time));
    cluster.shutdown();
}

#[test]
fn link_state_converges_and_reports_loss() {
    let cluster = na_cluster();
    assert!(
        cluster.wait_for_link_state(Duration::from_secs(5)),
        "link state flooding never converged"
    );
    // Inject heavy loss on one edge and wait for a remote node to see it.
    let graph = cluster.graph().clone();
    let chi = graph.node_by_name("CHI").unwrap();
    let den = graph.node_by_name("DEN").unwrap();
    let edge = graph.edge_between(chi, den).unwrap();
    cluster.set_link_fault(edge, 0.8, Micros::ZERO);

    let observer = graph.node_by_name("MIA").unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(6);
    loop {
        let state = cluster.node(observer).network_state();
        if state.condition(edge).loss_rate > 0.3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "MIA never learned about the CHI->DEN problem (sees loss {})",
            state.condition(edge).loss_rate
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

#[test]
fn targeted_redundancy_escalates_and_releases() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let graph = cluster.graph().clone();
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::TargetedRedundancy, ServiceRequirement::default())
        .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));

    let normal_out = tx.current_graph().forwarding_edges(&graph, flow.source).count();
    assert_eq!(normal_out, 2, "starts on the disjoint pair");

    // A problem around the source: 40% loss on every NYC link.
    cluster.impair_node(flow.source, 0.4, Micros::ZERO);
    let full_degree = graph.out_edges(flow.source).len();
    let deadline = std::time::Instant::now() + Duration::from_secs(8);
    loop {
        let out = tx.current_graph().forwarding_edges(&graph, flow.source).count();
        if out == full_degree {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never escalated to the source-problem graph (out-degree {out})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Traffic still gets through during the problem.
    for i in 0..40u64 {
        tx.send(format!("m{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(4));
    }
    std::thread::sleep(Duration::from_millis(300));
    let got = rx.drain();
    assert!(
        got.len() >= 38,
        "source-problem graph should mask a 40% source-area loss, got {}/40",
        got.len()
    );

    // Heal and verify de-escalation back to the pair.
    cluster.heal_node(flow.source);
    let deadline = std::time::Instant::now() + Duration::from_secs(8);
    loop {
        let out = tx.current_graph().forwarding_edges(&graph, flow.source).count();
        if out == 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never de-escalated after healing (out-degree {out})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
}

#[test]
fn expired_packets_are_not_delivered() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let rx = cluster.open_receiver(flow).unwrap();
    // A 5ms deadline cannot cross the country (~30ms).
    let tx = cluster
        .open_sender(
            flow,
            SchemeKind::StaticSinglePath,
            ServiceRequirement::new(Micros::from_millis(5)),
        )
        .unwrap();
    for _ in 0..10 {
        tx.send(b"too slow").unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    assert!(rx.recv_timeout(Duration::from_millis(500)).is_none());
    // Some node along the path dropped them as expired.
    let total_expired: u64 =
        cluster.graph().nodes().map(|n| cluster.node(n).metrics_snapshot().counters.expired).sum();
    assert!(total_expired > 0);
    cluster.shutdown();
}

#[test]
fn flooding_reaches_most_of_the_network() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::TimeConstrainedFlooding, ServiceRequirement::default())
        .unwrap();
    let graph_size = tx.current_graph().len() as u64;
    assert!(graph_size > 20, "flooding graph should span the mesh");
    for i in 0..10u64 {
        tx.send(format!("f{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut got = Vec::new();
    while got.len() < 10 {
        match rx.recv_timeout(Duration::from_millis(500)) {
            Some(d) => got.push(d),
            None => break,
        }
    }
    assert_eq!(got.len(), 10);
    assert!(got.iter().all(|d| d.on_time));
    // Network-wide transmissions reflect flooding's cost; duplicates
    // were suppressed at joins.
    let graph = cluster.graph().clone();
    let total_sent: u64 =
        graph.nodes().map(|n| cluster.node(n).metrics_snapshot().counters.data_sent).sum();
    let total_dups: u64 =
        graph.nodes().map(|n| cluster.node(n).metrics_snapshot().counters.duplicates).sum();
    assert!(total_sent >= 10 * (graph_size / 2), "sent {total_sent}");
    assert!(total_dups > 0, "flooding must produce suppressed duplicates");
    cluster.shutdown();
}

#[test]
fn sessions_validate_their_endpoints() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    // Receiver must live at the destination, sender at the source.
    assert!(cluster.node(flow.source).open_receiver(flow).is_err());
    let scheme = dg_core::scheme::build_scheme(
        SchemeKind::StaticSinglePath,
        cluster.graph(),
        flow,
        ServiceRequirement::default(),
        &Default::default(),
    )
    .unwrap();
    assert!(cluster
        .node(flow.destination)
        .open_sender(scheme, ServiceRequirement::default())
        .is_err());
    // Oversized payloads are rejected.
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    assert!(tx.send(&[0u8; 5_000]).is_err());
    cluster.shutdown();
}

#[test]
fn dynamic_routing_survives_a_node_death() {
    let mut cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let graph = cluster.graph().clone();
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::DynamicTwoDisjoint, ServiceRequirement::default())
        .unwrap();
    assert!(cluster.wait_for_link_state(Duration::from_secs(5)));

    // Find a transit node the current pair routes through and kill it.
    let victim = tx
        .current_graph()
        .edges()
        .iter()
        .map(|&e| graph.edge(e).dst)
        .find(|&n| n != flow.destination && n != flow.source)
        .expect("pair has a transit node");
    cluster.kill_node(victim);
    assert!(!cluster.is_alive(victim));

    // Hello silence pushes the dead node's links toward full loss; the
    // dynamic scheme must re-route around it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let avoided = tx
            .current_graph()
            .edges()
            .iter()
            .all(|&e| graph.edge(e).dst != victim && graph.edge(e).src != victim);
        if avoided {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "never rerouted around the dead node {}",
            graph.node(victim).name
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // Traffic flows normally on the new pair.
    for i in 0..30u64 {
        tx.send(format!("m{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(300));
    let got = rx.drain();
    assert!(got.len() >= 29, "only {}/30 delivered after reroute", got.len());
    cluster.shutdown();
}

#[test]
fn reordering_from_unequal_delays_is_tolerated() {
    // A small ring where we give the two hops of the primary route very
    // different injected delays, so retransmissions and hellos arrive
    // interleaved and out of order relative to data.
    let graph = presets::ring(4, Micros::from_millis(5));
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(15),
            link_state_interval: Duration::from_millis(60),
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    let flow = Flow::new(graph.node_by_name("R0").unwrap(), graph.node_by_name("R2").unwrap());
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(
            flow,
            SchemeKind::StaticTwoDisjoint,
            ServiceRequirement::new(Micros::from_millis(80)),
        )
        .unwrap();
    // Wildly different delays + moderate loss on both directions of the
    // ring: packets race each other and recovery interleaves.
    let g = cluster.graph().clone();
    for e in g.edges() {
        let jitter = Micros::from_millis(u64::from(e.index() as u32 % 7) * 3);
        cluster.set_link_fault(e, 0.15, jitter);
    }
    let total = 120u64;
    for i in 0..total {
        tx.send(format!("r{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }
    std::thread::sleep(Duration::from_millis(500));
    let got = rx.drain();
    // Two disjoint paths at 15% loss each, with recovery: residual loss
    // per path ~2%, joint ~0.05% — essentially everything arrives.
    assert!(got.len() as u64 >= total * 95 / 100, "got {}/{total}", got.len());
    // No duplicate deliveries despite retransmissions and dual paths.
    let mut seqs: Vec<u64> = got.iter().map(|d| d.flow_seq).collect();
    let before = seqs.len();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), before, "duplicate deliveries leaked through");
    cluster.shutdown();
}

#[test]
fn latency_scale_shrinks_observed_latency() {
    let graph = presets::north_america_12();
    let flow = Flow::new(graph.node_by_name("NYC").unwrap(), graph.node_by_name("SJC").unwrap());
    let run_with_scale = |scale: f64| {
        let cluster = Cluster::launch(
            &graph,
            ClusterConfig { latency_scale: scale, ..ClusterConfig::default() },
        )
        .unwrap();
        let rx = cluster.open_receiver(flow).unwrap();
        let tx = cluster
            .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
            .unwrap();
        for _ in 0..10 {
            tx.send(b"ping").unwrap();
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(300));
        let got = rx.drain();
        assert_eq!(got.len(), 10);
        let stats = dg_overlay::session::DeliveryStats::from_deliveries(&got);
        cluster.shutdown();
        stats.mean_latency()
    };
    let full = run_with_scale(1.0);
    let tenth = run_with_scale(0.1);
    assert!(full > Micros::from_millis(20), "full-scale latency {full}");
    // A tenth of the propagation delay plus scheduling overhead.
    assert!(tenth < Micros::from_millis(15), "scaled latency {tenth}");
}

#[test]
fn four_concurrent_flows_share_the_overlay() {
    let cluster = na_cluster();
    let graph = cluster.graph().clone();
    let flows: Vec<Flow> = [("NYC", "SJC"), ("WAS", "SEA"), ("BOS", "LAX"), ("JHU", "DEN")]
        .iter()
        .map(|(s, t)| Flow::new(graph.node_by_name(s).unwrap(), graph.node_by_name(t).unwrap()))
        .collect();
    let sessions: Vec<_> = flows
        .iter()
        .map(|&f| {
            let rx = cluster.open_receiver(f).unwrap();
            let tx = cluster
                .open_sender(f, SchemeKind::TargetedRedundancy, ServiceRequirement::default())
                .unwrap();
            (f, tx, rx)
        })
        .collect();
    let per_flow = 60u64;
    for i in 0..per_flow {
        for (_, tx, _) in &sessions {
            tx.send(format!("m{i}").as_bytes()).unwrap();
        }
        std::thread::sleep(Duration::from_millis(4));
    }
    std::thread::sleep(Duration::from_millis(400));
    for (f, _, rx) in &sessions {
        let got = rx.drain();
        assert_eq!(
            got.len() as u64,
            per_flow,
            "{} delivered {}/{}",
            f.label(&graph),
            got.len(),
            per_flow
        );
        assert!(got.iter().all(|d| d.on_time), "{} had late packets", f.label(&graph));
        // Deliveries belong to the right flow.
        assert!(got.iter().all(|d| d.flow == *f));
    }
    cluster.shutdown();
}

#[test]
fn global_overlay_delivers_intercontinentally() {
    let graph = presets::global_16();
    let cluster = Cluster::launch(
        &graph,
        ClusterConfig {
            hello_interval: Duration::from_millis(25),
            link_state_interval: Duration::from_millis(100),
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    let flow = Flow::new(graph.node_by_name("LON").unwrap(), graph.node_by_name("SJC").unwrap());
    let req = ServiceRequirement::new(Micros::from_millis(110));
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster.open_sender(flow, SchemeKind::TargetedRedundancy, req).unwrap();
    for i in 0..20u64 {
        tx.send(format!("g{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(400));
    let got = rx.drain();
    assert_eq!(got.len(), 20);
    for d in &got {
        assert!(d.on_time, "seq {} took {}", d.flow_seq, d.latency());
        // Trans-Atlantic plus cross-country: 60-110 ms one way.
        assert!(d.latency() > Micros::from_millis(55), "latency {}", d.latency());
    }
    cluster.shutdown();
}

#[test]
fn tail_probe_repairs_a_silently_lost_stream_tail() {
    let cluster = na_cluster();
    let flow = nyc_sjc(&cluster);
    let rx = cluster.open_receiver(flow).unwrap();
    let tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    // A probe before anything was sent is a no-op.
    assert!(!tx.tail_probe(b"nothing yet").unwrap(), "probe with no history sent something");

    // Establish the stream, then lose its final packet completely:
    // hop-by-hop recovery is gap-triggered, so with nothing sent behind
    // it the loss is silent and permanent.
    for i in 0..3u64 {
        tx.send(format!("m{i}").as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let graph = cluster.graph().clone();
    let first_hop = tx
        .current_graph()
        .forwarding_edges(&graph, flow.source)
        .next()
        .expect("single path has a first hop");
    cluster.set_link_fault(first_hop, 1.0, Micros::ZERO);
    let tail_seq = tx.send(b"the tail").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    cluster.set_link_fault(first_hop, 0.0, Micros::ZERO);
    std::thread::sleep(Duration::from_millis(200));
    let before = rx.drain();
    assert_eq!(before.len(), 3, "the tail was lost with no gap to expose it");
    assert!(before.iter().all(|d| d.flow_seq != tail_seq));

    // The probe re-offers the same flow sequence over the healed path.
    assert!(tx.tail_probe(b"the tail").unwrap());
    let recovered = rx.recv_timeout(Duration::from_millis(500)).expect("probe delivered the tail");
    assert_eq!(recovered.flow_seq, tail_seq);
    assert_eq!(recovered.payload.as_ref(), b"the tail");

    // Probing an already-delivered tail is suppressed as a duplicate,
    // and probes never mint sequence numbers or inflate packets_sent.
    assert!(tx.tail_probe(b"the tail").unwrap());
    std::thread::sleep(Duration::from_millis(200));
    assert!(rx.drain().is_empty(), "duplicate probe was delivered twice");
    let cells = cluster.node(flow.source).metrics_snapshot();
    let flow_cell = cells.flows.iter().find(|f| f.flow == flow).expect("flow has metrics");
    assert_eq!(flow_cell.packets_sent, 4, "probes do not inflate packets_sent");
    assert_eq!(tx.send(b"next").unwrap(), tail_seq + 1, "probes do not consume sequences");
    cluster.shutdown();
}

#[test]
fn group_sender_reaches_every_receiver() {
    use dg_core::{MulticastKind, SlaClass};

    let cluster = na_cluster();
    let g = cluster.graph();
    let src = g.node_by_name("NYC").unwrap();
    let receivers: Vec<_> =
        ["SJC", "LAX", "MIA"].iter().map(|n| g.node_by_name(n).unwrap()).collect();
    let (tx, sessions) = cluster
        .open_group_sender(
            src,
            &receivers,
            7,
            MulticastKind::Targeted,
            ServiceRequirement::default(),
            SlaClass::Timely,
        )
        .unwrap();
    assert_eq!(sessions.len(), receivers.len());
    assert!(tx.flow().is_group());
    assert_eq!(tx.flow().group_id(), Some(7));

    // One send per packet reaches the whole receiver set.
    for i in 0..10u64 {
        let seq = tx.send(format!("group {i}").as_bytes()).unwrap();
        assert_eq!(seq, i);
        std::thread::sleep(Duration::from_millis(5));
    }
    // And one encoded batch fans out the same way.
    let first = tx.send_batch(&[b"batch a".as_ref(), b"batch b".as_ref()]).unwrap();
    assert_eq!(first, 10);

    for (node, rx) in &sessions {
        let mut got = Vec::new();
        while got.len() < 12 {
            match rx.recv_timeout(Duration::from_millis(500)) {
                Some(d) => got.push(d),
                None => break,
            }
        }
        assert_eq!(got.len(), 12, "receiver {node:?} missed packets");
        got.sort_by_key(|d| d.flow_seq);
        assert_eq!(got[0].payload.as_ref(), b"group 0");
        assert_eq!(got[11].payload.as_ref(), b"batch b");
        for d in &got {
            assert!(d.on_time, "receiver {node:?} seq {} late: {}", d.flow_seq, d.latency());
        }
    }

    // The multicast tier interned the group graph, and the counters
    // surface through the node's metrics snapshot.
    let stats = cluster.node(src).metrics_snapshot().graph_cache;
    assert!(stats.multicast.misses >= 1, "group graph was constructed");
    cluster.shutdown();
}

#[test]
fn group_and_unicast_flows_do_not_collide() {
    use dg_core::{MulticastKind, SlaClass};

    let cluster = na_cluster();
    let g = cluster.graph();
    let src = g.node_by_name("NYC").unwrap();
    let dst = g.node_by_name("SJC").unwrap();
    let flow = Flow::new(src, dst);
    let uni_rx = cluster.open_receiver(flow).unwrap();
    let uni_tx = cluster
        .open_sender(flow, SchemeKind::StaticSinglePath, ServiceRequirement::default())
        .unwrap();
    let (grp_tx, grp_sessions) = cluster
        .open_group_sender(
            src,
            &[dst],
            1,
            MulticastKind::Tree,
            ServiceRequirement::default(),
            SlaClass::Timely,
        )
        .unwrap();

    uni_tx.send(b"unicast").unwrap();
    grp_tx.send(b"grouped").unwrap();

    let uni = uni_rx.recv_timeout(Duration::from_millis(500)).expect("unicast delivered");
    assert_eq!(uni.payload.as_ref(), b"unicast");
    let grp = grp_sessions[0].1.recv_timeout(Duration::from_millis(500)).expect("group delivered");
    assert_eq!(grp.payload.as_ref(), b"grouped");

    // Each session saw exactly its own stream.
    std::thread::sleep(Duration::from_millis(100));
    assert!(uni_rx.drain().is_empty(), "group packet leaked into the unicast session");
    assert!(grp_sessions[0].1.drain().is_empty(), "unicast packet leaked into the group session");
    cluster.shutdown();
}
