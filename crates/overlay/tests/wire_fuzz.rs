//! Property tests of the wire codec: decoding must be total (no panics,
//! no unbounded allocation) on arbitrary input, and encode/decode must
//! round-trip arbitrary well-formed messages.

use bytes::{Bytes, BytesMut};
use dg_core::{Flow, SlaClass};
use dg_overlay::pool::BufferPool;
use dg_overlay::wire::{
    DataPacket, DigestEntry, Envelope, LinkStateEntry, LinkStateUpdate, Message,
};
use dg_topology::{EdgeId, Micros, NodeId};
use proptest::prelude::*;

fn arb_packet() -> impl Strategy<Value = DataPacket> {
    (
        0u32..64,
        0u32..64,
        any::<u64>(),
        any::<u64>(),
        0u64..1_000_000_000,
        any::<u64>(),
        any::<bool>(),
        0u8..3,
        proptest::collection::vec(any::<u8>(), 0..16),
        proptest::collection::vec(any::<u8>(), 0..64),
    )
        .prop_map(|(s, d, seq, sent, dl, lseq, retx, class, mask, payload)| DataPacket {
            flow: Flow::new(NodeId::new(s), NodeId::new(d)),
            flow_seq: seq,
            sent_at: Micros::from_micros(sent),
            deadline: Micros::from_micros(dl),
            link_seq: lseq,
            retransmission: retx,
            class: SlaClass::from_bits(class).expect("0..3 are the assigned class patterns"),
            mask: Bytes::from(mask),
            payload: Bytes::from(payload),
        })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_packet().prop_map(Message::Data),
        proptest::collection::vec(arb_packet(), 1..8).prop_map(Message::DataBatch),
        proptest::collection::vec(any::<u64>(), 0..64)
            .prop_map(|missing| Message::Nack { missing }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, t)| Message::Hello { seq, sent_at: Micros::from_micros(t) }),
        (any::<u64>(), any::<u64>()).prop_map(|(seq, t)| Message::HelloAck {
            echo_seq: seq,
            echo_sent_at: Micros::from_micros(t),
        }),
        (
            0u32..64,
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((0u32..256, 0.0f32..1.0, any::<u32>(), any::<bool>()), 0..32),
        )
            .prop_map(|(origin, epoch, seq, entries)| {
                Message::LinkState(LinkStateUpdate {
                    origin: NodeId::new(origin),
                    epoch,
                    seq,
                    entries: entries
                        .into_iter()
                        .map(|(e, loss, extra, down)| LinkStateEntry {
                            edge: EdgeId::new(e),
                            loss,
                            extra_latency_us: extra,
                            down,
                        })
                        .collect(),
                })
            }),
        (0u32..64, any::<u64>(), any::<u64>()).prop_map(|(origin, epoch, seq)| Message::LsaAck {
            origin: NodeId::new(origin),
            epoch,
            seq,
        }),
        proptest::collection::vec((0u32..64, any::<u64>(), any::<u64>()), 0..32).prop_map(
            |entries| Message::Digest {
                entries: entries
                    .into_iter()
                    .map(|(origin, epoch, seq)| DigestEntry {
                        origin: NodeId::new(origin),
                        epoch,
                        seq,
                    })
                    .collect(),
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Envelope::decode(&bytes);
    }

    /// Every well-formed envelope round-trips exactly.
    #[test]
    fn encode_decode_round_trips(from in 0u32..64, message in arb_message()) {
        let env = Envelope { from: NodeId::new(from), message };
        let encoded = env.encode();
        let decoded = Envelope::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(env, decoded);
    }

    /// Encoding into a pooled (reused, dirty) buffer produces bytes
    /// identical to a fresh allocating encode, and both zero-copy and
    /// copying decodes of either reproduce the original envelope.
    #[test]
    fn pooled_encode_is_byte_identical_to_allocating(
        from in 0u32..64,
        message in arb_message(),
        garbage in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let env = Envelope { from: NodeId::new(from), message };
        let allocating = env.encode();

        // Dirty a pooled buffer first so stale contents would show up.
        let mut pool = BufferPool::new(4);
        let mut buf = pool.get();
        buf.extend_from_slice(&garbage);
        pool.put(buf);
        let mut pooled = pool.get();
        env.encode_into_vec(&mut pooled);
        prop_assert_eq!(&allocating[..], &pooled[..]);

        let mut via_bytes_mut = BytesMut::with_capacity(env.encoded_len());
        env.encode_into(&mut via_bytes_mut);
        prop_assert_eq!(&allocating[..], &via_bytes_mut[..]);

        let shared = Bytes::from(pooled);
        prop_assert_eq!(&env, &Envelope::decode(&shared).expect("pooled encoding decodes"));
        prop_assert_eq!(
            &env,
            &Envelope::decode_shared(&shared).expect("pooled encoding decodes zero-copy")
        );
    }

    /// Truncating a valid datagram at any point yields an error, never
    /// a panic, a bogus success, or a read past the buffer — the
    /// checksum covers the whole datagram, so no proper prefix decodes.
    #[test]
    fn truncation_is_rejected(from in 0u32..64, message in arb_message(), cut_frac in 0.0f64..1.0) {
        let env = Envelope { from: NodeId::new(from), message };
        let encoded = env.encode();
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        if cut < encoded.len() {
            prop_assert!(Envelope::decode(&encoded[..cut]).is_err());
        }
    }

    /// Flipping one byte never panics the decoder, and the checksum
    /// catches the flip (a fold collision has 2^-32 odds, far below
    /// what 256 cases could hit) — corruption yields malformed, never
    /// a silently altered message.
    #[test]
    fn corruption_is_detected(
        from in 0u32..64,
        message in arb_message(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let env = Envelope { from: NodeId::new(from), message };
        let mut bytes = env.encode().to_vec();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len().max(1);
        if !bytes.is_empty() {
            bytes[pos] ^= xor;
            prop_assert!(Envelope::decode(&bytes).is_err());
        }
    }
}
