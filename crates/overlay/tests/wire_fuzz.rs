//! Property tests of the wire codec: decoding must be total (no panics,
//! no unbounded allocation) on arbitrary input, and encode/decode must
//! round-trip arbitrary well-formed messages.

use bytes::Bytes;
use dg_core::Flow;
use dg_overlay::wire::{DataPacket, Envelope, LinkStateEntry, LinkStateUpdate, Message};
use dg_topology::{EdgeId, Micros, NodeId};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            0u32..64,
            0u32..64,
            any::<u64>(),
            any::<u64>(),
            0u64..1_000_000_000,
            any::<u64>(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..16),
            proptest::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(s, d, seq, sent, dl, lseq, retx, mask, payload)| {
                Message::Data(DataPacket {
                    flow: Flow::new(NodeId::new(s), NodeId::new(d)),
                    flow_seq: seq,
                    sent_at: Micros::from_micros(sent),
                    deadline: Micros::from_micros(dl),
                    link_seq: lseq,
                    retransmission: retx,
                    mask: Bytes::from(mask),
                    payload: Bytes::from(payload),
                })
            }),
        proptest::collection::vec(any::<u64>(), 0..64)
            .prop_map(|missing| Message::Nack { missing }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(seq, t)| Message::Hello { seq, sent_at: Micros::from_micros(t) }),
        (any::<u64>(), any::<u64>()).prop_map(|(seq, t)| Message::HelloAck {
            echo_seq: seq,
            echo_sent_at: Micros::from_micros(t),
        }),
        (
            0u32..64,
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec((0u32..256, 0.0f32..1.0, any::<u32>(), any::<bool>()), 0..32),
        )
            .prop_map(|(origin, epoch, seq, entries)| {
                Message::LinkState(LinkStateUpdate {
                    origin: NodeId::new(origin),
                    epoch,
                    seq,
                    entries: entries
                        .into_iter()
                        .map(|(e, loss, extra, down)| LinkStateEntry {
                            edge: EdgeId::new(e),
                            loss,
                            extra_latency_us: extra,
                            down,
                        })
                        .collect(),
                })
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Envelope::decode(&bytes);
    }

    /// Every well-formed envelope round-trips exactly.
    #[test]
    fn encode_decode_round_trips(from in 0u32..64, message in arb_message()) {
        let env = Envelope { from: NodeId::new(from), message };
        let encoded = env.encode();
        let decoded = Envelope::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(env, decoded);
    }

    /// Truncating a valid datagram at any point yields an error, never
    /// a panic, a bogus success, or a read past the buffer — the
    /// checksum covers the whole datagram, so no proper prefix decodes.
    #[test]
    fn truncation_is_rejected(from in 0u32..64, message in arb_message(), cut_frac in 0.0f64..1.0) {
        let env = Envelope { from: NodeId::new(from), message };
        let encoded = env.encode();
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        if cut < encoded.len() {
            prop_assert!(Envelope::decode(&encoded[..cut]).is_err());
        }
    }

    /// Flipping one byte never panics the decoder, and the checksum
    /// catches every single-byte flip — corruption yields malformed,
    /// never a silently altered message.
    #[test]
    fn corruption_is_detected(
        from in 0u32..64,
        message in arb_message(),
        pos_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let env = Envelope { from: NodeId::new(from), message };
        let mut bytes = env.encode().to_vec();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len().max(1);
        if !bytes.is_empty() {
            bytes[pos] ^= xor;
            prop_assert!(Envelope::decode(&bytes).is_err());
        }
    }
}
