//! Wall-clock microseconds shared by all in-process nodes.

use dg_topology::Micros;
use std::time::{SystemTime, UNIX_EPOCH};

/// Current wall-clock time in microseconds since the Unix epoch.
///
/// All overlay nodes of a localhost cluster share the host clock, so
/// packet timestamps are directly comparable across nodes; a multi-host
/// deployment would substitute a synchronized clock here.
pub fn now_us() -> Micros {
    Micros::from_micros(
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock after unix epoch")
            .as_micros() as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_enough() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
        // Sanity: we are past 2020.
        assert!(a.as_secs() > 1_577_836_800);
    }
}
