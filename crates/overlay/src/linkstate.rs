//! The flooded link-state database.
//!
//! Every node periodically reports the condition of its in-links; the
//! reports are flooded with per-origin (epoch, sequence) stamps — newer
//! replaces older, duplicates are not re-flooded. Each node's database
//! thus converges to a network-wide [`NetworkState`] — the input the
//! routing schemes consume.
//!
//! Two robustness mechanisms keep the database honest under node
//! failures:
//!
//! - **Epochs.** A node mints a fresh epoch at process start. A
//!   restarted node's sequence numbers reset to zero, but its higher
//!   epoch makes its reports strictly newer than anything from the
//!   previous incarnation, so they are not discarded as stale.
//! - **Aging.** An origin that stops refreshing (crashed, partitioned)
//!   would otherwise freeze its last — possibly clean — report in every
//!   database forever. Reports older than `max_age` expire: the edges
//!   that origin reported revert to a pessimistic fully-lossy default
//!   and the origin is forgotten, so even a zero-epoch report from a
//!   replacement process is accepted.

use crate::wire::{DigestEntry, LinkStateUpdate};
use dg_topology::{EdgeId, Graph, Micros};
use dg_trace::{LinkCondition, NetworkState};

/// The condition assumed for edges whose reporter has gone silent:
/// fully lossy, so routing schemes steer clear until fresh evidence.
fn pessimistic() -> LinkCondition {
    LinkCondition::new(1.0, Micros::ZERO)
}

#[derive(Debug)]
struct OriginRecord {
    epoch: u64,
    seq: u64,
    /// When this origin's latest report was applied (local clock).
    refreshed_at: Micros,
    /// Every edge this origin has ever reported, so expiry knows what
    /// to reset.
    edges: Vec<EdgeId>,
    /// The latest report itself, kept verbatim so anti-entropy repair
    /// (§ digest exchange) can re-send it to a neighbour that missed it.
    latest: LinkStateUpdate,
}

/// Per-node view of every link's reported condition.
#[derive(Debug)]
pub struct LinkStateDb {
    /// Latest (epoch, seq) and coverage per origin node.
    origins: Vec<Option<OriginRecord>>,
    /// Latest reported condition per edge.
    conditions: Vec<LinkCondition>,
    /// Reports older than this expire back to [`pessimistic`]; `MAX`
    /// disables aging.
    max_age: Micros,
}

impl LinkStateDb {
    /// An empty database for `graph` (all links presumed clean), aging
    /// out origins silent for longer than `max_age`.
    pub fn new(graph: &Graph, max_age: Micros) -> Self {
        LinkStateDb {
            origins: (0..graph.node_count()).map(|_| None).collect(),
            conditions: vec![LinkCondition::CLEAN; graph.edge_count()],
            max_age,
        }
    }

    /// Applies an update received at local time `now`. Returns `true`
    /// when the update was new (and should therefore be re-flooded to
    /// neighbours).
    ///
    /// Acceptance is by `(epoch, seq)` lexicographic order: a higher
    /// epoch always wins (restarted origin), within an epoch a higher
    /// sequence wins. Stale or duplicate updates are ignored. Entries
    /// referencing unknown edges are skipped rather than erroring: a
    /// malformed report from one node must not poison the database.
    pub fn apply(&mut self, update: &LinkStateUpdate, now: Micros) -> bool {
        let Some(slot) = self.origins.get_mut(update.origin.index()) else {
            return false;
        };
        if let Some(record) = slot {
            if (update.epoch, update.seq) <= (record.epoch, record.seq) {
                return false;
            }
        }
        let mut edges: Vec<EdgeId> = slot.take().map(|r| r.edges).unwrap_or_default();
        for entry in &update.entries {
            if let Some(c) = self.conditions.get_mut(entry.edge.index()) {
                *c = if entry.down {
                    pessimistic()
                } else {
                    LinkCondition::new(
                        f64::from(entry.loss),
                        Micros::from_micros(u64::from(entry.extra_latency_us)),
                    )
                };
                if !edges.contains(&entry.edge) {
                    edges.push(entry.edge);
                }
            }
        }
        *slot = Some(OriginRecord {
            epoch: update.epoch,
            seq: update.seq,
            refreshed_at: now,
            edges,
            latest: update.clone(),
        });
        true
    }

    /// Expires origins that have not refreshed within `max_age` as of
    /// `now`: their reported edges revert to the pessimistic default
    /// and the origin is forgotten (any future report is accepted).
    pub fn expire(&mut self, now: Micros) {
        if self.max_age.is_unreachable() {
            return;
        }
        for slot in &mut self.origins {
            let stale =
                slot.as_ref().is_some_and(|r| now.saturating_sub(r.refreshed_at) > self.max_age);
            if stale {
                let record = slot.take().expect("checked above");
                for edge in record.edges {
                    if let Some(c) = self.conditions.get_mut(edge.index()) {
                        *c = pessimistic();
                    }
                }
            }
        }
    }

    /// Snapshot of the database as a [`NetworkState`] stamped `now`,
    /// after expiring silent origins.
    pub fn network_state(&mut self, now: Micros) -> NetworkState {
        self.expire(now);
        NetworkState::from_conditions(now, self.conditions.clone())
    }

    /// How many origins have a live (unexpired) report.
    pub fn origins_heard(&self) -> usize {
        self.origins.iter().filter(|s| s.is_some()).count()
    }

    /// Anti-entropy summary of the database: the latest `(epoch, seq)`
    /// stamp per live origin, in ascending origin order (so two equal
    /// databases produce byte-identical digests).
    pub fn digest(&self) -> Vec<DigestEntry> {
        self.origins
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.as_ref().map(|r| DigestEntry {
                    origin: dg_topology::NodeId::new(i as u32),
                    epoch: r.epoch,
                    seq: r.seq,
                })
            })
            .collect()
    }

    /// The stored reports a peer advertising `remote` is missing: every
    /// origin whose local stamp is strictly newer than the peer's, or
    /// that the peer does not know at all. Pushing these back closes the
    /// gap a healed partition left, without waiting for each origin's
    /// next periodic refresh to happen to traverse the healed cut.
    pub fn updates_newer_than(&self, remote: &[DigestEntry]) -> Vec<LinkStateUpdate> {
        self.origins
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let r = slot.as_ref()?;
                let theirs =
                    remote.iter().find(|e| e.origin.index() == i).map(|e| (e.epoch, e.seq));
                match theirs {
                    Some(stamp) if (r.epoch, r.seq) <= stamp => None,
                    _ => Some(r.latest.clone()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::LinkStateEntry;
    use dg_topology::{presets, NodeId};

    fn update(origin: u32, epoch: u64, seq: u64, edge: u32, loss: f32) -> LinkStateUpdate {
        LinkStateUpdate {
            origin: NodeId::new(origin),
            epoch,
            seq,
            entries: vec![LinkStateEntry {
                edge: EdgeId::new(edge),
                loss,
                extra_latency_us: 500,
                down: false,
            }],
        }
    }

    fn db() -> LinkStateDb {
        LinkStateDb::new(&presets::north_america_12(), Micros::from_secs(10))
    }

    #[test]
    fn applies_new_and_rejects_stale() {
        let mut db = db();
        assert_eq!(db.origins_heard(), 0);
        assert!(db.apply(&update(0, 1, 1, 3, 0.5), Micros::ZERO));
        assert_eq!(db.origins_heard(), 1);
        assert!(!db.apply(&update(0, 1, 1, 3, 0.9), Micros::ZERO), "duplicate seq is ignored");
        assert!(!db.apply(&update(0, 1, 0, 3, 0.9), Micros::ZERO), "older seq is ignored");
        let st = db.network_state(Micros::ZERO);
        assert!((st.condition(EdgeId::new(3)).loss_rate - 0.5).abs() < 1e-6);
        assert_eq!(st.condition(EdgeId::new(3)).extra_latency, Micros::from_micros(500));
        // Newer seq replaces.
        assert!(db.apply(&update(0, 1, 2, 3, 0.0), Micros::ZERO));
        let st = db.network_state(Micros::ZERO);
        assert_eq!(st.condition(EdgeId::new(3)).loss_rate, 0.0);
    }

    #[test]
    fn restarted_origin_with_reset_seq_is_accepted_via_epoch() {
        let mut db = db();
        // First life: epoch 100, sequence climbed to 50.
        assert!(db.apply(&update(2, 100, 50, 5, 0.4), Micros::ZERO));
        // Restart resets the sequence to 1 — the old code dropped this
        // as stale; the higher epoch must win.
        assert!(db.apply(&update(2, 200, 1, 5, 0.0), Micros::ZERO), "post-restart report rejected");
        let st = db.network_state(Micros::ZERO);
        assert_eq!(st.condition(EdgeId::new(5)).loss_rate, 0.0);
        // But the old life's leftovers are now stale.
        assert!(!db.apply(&update(2, 100, 60, 5, 0.9), Micros::ZERO));
    }

    #[test]
    fn down_entries_read_as_fully_lossy() {
        let mut db = db();
        let mut u = update(1, 1, 1, 4, 0.02);
        u.entries[0].down = true;
        assert!(db.apply(&u, Micros::ZERO));
        let st = db.network_state(Micros::ZERO);
        assert_eq!(st.condition(EdgeId::new(4)).loss_rate, 1.0);
    }

    #[test]
    fn silent_origin_expires_to_pessimistic_default() {
        let mut db = db();
        assert!(db.apply(&update(0, 1, 1, 3, 0.0), Micros::from_secs(1)));
        // Still fresh at +5s.
        let st = db.network_state(Micros::from_secs(6));
        assert_eq!(st.condition(EdgeId::new(3)).loss_rate, 0.0);
        assert_eq!(db.origins_heard(), 1);
        // Silent past max_age: the reported edge turns pessimistic and
        // the origin is forgotten.
        let st = db.network_state(Micros::from_secs(12));
        assert_eq!(st.condition(EdgeId::new(3)).loss_rate, 1.0);
        assert_eq!(db.origins_heard(), 0);
        // Any fresh report — even epoch 0, seq 0 — is accepted again.
        assert!(db.apply(&update(0, 0, 0, 3, 0.1), Micros::from_secs(13)));
    }

    #[test]
    fn unknown_origin_or_edge_is_harmless() {
        let mut db = db();
        assert!(!db.apply(&update(99, 1, 1, 3, 0.5), Micros::ZERO));
        // Known origin, bogus edge id: accepted but entry skipped.
        assert!(db.apply(&update(1, 1, 1, 9_999, 0.5), Micros::ZERO));
        let st = db.network_state(Micros::ZERO);
        assert!(st.problematic_edges(0.01).is_empty());
    }

    #[test]
    fn state_time_is_stamped() {
        let mut db = db();
        assert_eq!(db.network_state(Micros::from_secs(9)).time(), Micros::from_secs(9));
    }

    #[test]
    fn digest_summarizes_live_origins_in_order() {
        let mut db = db();
        assert!(db.digest().is_empty());
        assert!(db.apply(&update(3, 10, 2, 4, 0.1), Micros::ZERO));
        assert!(db.apply(&update(1, 7, 9, 2, 0.2), Micros::ZERO));
        let d = db.digest();
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].origin, d[0].epoch, d[0].seq), (NodeId::new(1), 7, 9));
        assert_eq!((d[1].origin, d[1].epoch, d[1].seq), (NodeId::new(3), 10, 2));
    }

    #[test]
    fn expired_origins_leave_the_digest() {
        let mut db = db();
        assert!(db.apply(&update(0, 1, 1, 3, 0.0), Micros::ZERO));
        db.expire(Micros::from_secs(20));
        assert!(db.digest().is_empty());
    }

    #[test]
    fn repair_covers_missing_and_stale_origins_only() {
        let mut a = db();
        let mut b = db();
        // a knows origins 0 (newer than b) and 2 (unknown to b); both
        // know origin 5 at the same stamp.
        assert!(a.apply(&update(0, 1, 4, 3, 0.1), Micros::ZERO));
        assert!(a.apply(&update(2, 3, 1, 5, 0.2), Micros::ZERO));
        assert!(a.apply(&update(5, 2, 2, 7, 0.3), Micros::ZERO));
        assert!(b.apply(&update(0, 1, 2, 3, 0.9), Micros::ZERO));
        assert!(b.apply(&update(5, 2, 2, 7, 0.3), Micros::ZERO));
        let repairs = a.updates_newer_than(&b.digest());
        let mut origins: Vec<u32> = repairs.iter().map(|u| u.origin.index() as u32).collect();
        origins.sort_unstable();
        assert_eq!(origins, vec![0, 2]);
        // Applying the repairs converges b's digest to a's.
        for u in &repairs {
            assert!(b.apply(u, Micros::ZERO));
        }
        assert_eq!(a.digest(), b.digest());
        // Nothing further to repair, in either direction.
        assert!(a.updates_newer_than(&b.digest()).is_empty());
        assert!(b.updates_newer_than(&a.digest()).is_empty());
    }

    #[test]
    fn repair_ignores_origins_where_peer_is_newer() {
        let mut a = db();
        let mut b = db();
        assert!(a.apply(&update(4, 1, 1, 6, 0.1), Micros::ZERO));
        assert!(b.apply(&update(4, 2, 0, 6, 0.0), Micros::ZERO), "higher epoch wins");
        assert!(a.updates_newer_than(&b.digest()).is_empty());
        assert_eq!(b.updates_newer_than(&a.digest()).len(), 1);
    }
}
