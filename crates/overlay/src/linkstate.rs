//! The flooded link-state database.
//!
//! Every node periodically reports the condition of its out-links; the
//! reports are flooded with per-origin sequence numbers (newer replaces
//! older, duplicates are not re-flooded). Each node's database thus
//! converges to a network-wide [`NetworkState`] — the input the routing
//! schemes consume.

use crate::wire::LinkStateUpdate;
use dg_topology::{Graph, Micros};
use dg_trace::{LinkCondition, NetworkState};

/// Per-node view of every link's reported condition.
#[derive(Debug)]
pub struct LinkStateDb {
    /// Latest sequence seen per origin node.
    origin_seq: Vec<Option<u64>>,
    /// Latest reported condition per edge.
    conditions: Vec<LinkCondition>,
}

impl LinkStateDb {
    /// An empty database for `graph` (all links presumed clean).
    pub fn new(graph: &Graph) -> Self {
        LinkStateDb {
            origin_seq: vec![None; graph.node_count()],
            conditions: vec![LinkCondition::CLEAN; graph.edge_count()],
        }
    }

    /// Applies an update. Returns `true` when the update was new (and
    /// should therefore be re-flooded to neighbours).
    ///
    /// Stale or duplicate updates (sequence not newer than what is
    /// stored for the origin) are ignored. Entries referencing unknown
    /// edges are skipped rather than erroring: a malformed report from
    /// one node must not poison the database.
    pub fn apply(&mut self, update: &LinkStateUpdate) -> bool {
        let Some(slot) = self.origin_seq.get_mut(update.origin.index()) else {
            return false;
        };
        if slot.is_some_and(|have| update.seq <= have) {
            return false;
        }
        *slot = Some(update.seq);
        for entry in &update.entries {
            if let Some(c) = self.conditions.get_mut(entry.edge.index()) {
                *c = LinkCondition::new(
                    f64::from(entry.loss),
                    Micros::from_micros(u64::from(entry.extra_latency_us)),
                );
            }
        }
        true
    }

    /// Snapshot of the database as a [`NetworkState`] stamped `now`.
    pub fn network_state(&self, now: Micros) -> NetworkState {
        NetworkState::from_conditions(now, self.conditions.clone())
    }

    /// How many origins have reported at least once.
    pub fn origins_heard(&self) -> usize {
        self.origin_seq.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::LinkStateEntry;
    use dg_topology::{presets, EdgeId, NodeId};

    fn update(origin: u32, seq: u64, edge: u32, loss: f32) -> LinkStateUpdate {
        LinkStateUpdate {
            origin: NodeId::new(origin),
            seq,
            entries: vec![LinkStateEntry { edge: EdgeId::new(edge), loss, extra_latency_us: 500 }],
        }
    }

    #[test]
    fn applies_new_and_rejects_stale() {
        let g = presets::north_america_12();
        let mut db = LinkStateDb::new(&g);
        assert_eq!(db.origins_heard(), 0);
        assert!(db.apply(&update(0, 1, 3, 0.5)));
        assert_eq!(db.origins_heard(), 1);
        assert!(!db.apply(&update(0, 1, 3, 0.9)), "duplicate seq is ignored");
        assert!(!db.apply(&update(0, 0, 3, 0.9)), "older seq is ignored");
        let st = db.network_state(Micros::ZERO);
        assert!((st.condition(EdgeId::new(3)).loss_rate - 0.5).abs() < 1e-6);
        assert_eq!(st.condition(EdgeId::new(3)).extra_latency, Micros::from_micros(500));
        // Newer seq replaces.
        assert!(db.apply(&update(0, 2, 3, 0.0)));
        let st = db.network_state(Micros::ZERO);
        assert_eq!(st.condition(EdgeId::new(3)).loss_rate, 0.0);
    }

    #[test]
    fn unknown_origin_or_edge_is_harmless() {
        let g = presets::north_america_12();
        let mut db = LinkStateDb::new(&g);
        assert!(!db.apply(&update(99, 1, 3, 0.5)));
        // Known origin, bogus edge id: accepted but entry skipped.
        assert!(db.apply(&update(1, 1, 9_999, 0.5)));
        let st = db.network_state(Micros::ZERO);
        assert!(st.problematic_edges(0.01).is_empty());
    }

    #[test]
    fn state_time_is_stamped() {
        let g = presets::north_america_12();
        let db = LinkStateDb::new(&g);
        assert_eq!(db.network_state(Micros::from_secs(9)).time(), Micros::from_secs(9));
    }
}
