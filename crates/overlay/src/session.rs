//! Application-facing sending and receiving sessions.

use crate::clock::now_us;
use crate::node::Shared;
use crate::wire::{DataPacket, MAX_PAYLOAD};
use crate::OverlayError;
use bytes::Bytes;
use crossbeam::channel::Receiver;
use dg_core::scheme::RoutingScheme;
use dg_core::{
    DisseminationGraph, Flow, MulticastGraph, MulticastKind, ServiceRequirement, SlaClass,
};
use dg_topology::{Micros, NodeId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A packet handed to a receiving application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The flow it belongs to.
    pub flow: Flow,
    /// End-to-end sequence number.
    pub flow_seq: u64,
    /// Application bytes.
    pub payload: Bytes,
    /// When the source sent it.
    pub sent_at: Micros,
    /// When this node delivered it.
    pub delivered_at: Micros,
    /// Whether it arrived within the flow's deadline.
    pub on_time: bool,
}

impl Delivery {
    /// One-way latency experienced by this packet.
    pub fn latency(&self) -> Micros {
        self.delivered_at.saturating_sub(self.sent_at)
    }
}

/// Summary of a batch of deliveries (e.g. one drained receive queue).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Packets delivered.
    pub delivered: u64,
    /// Packets delivered within their deadline.
    pub on_time: u64,
    /// Worst one-way latency observed.
    pub max_latency: Micros,
    /// Sum of latencies (for the mean).
    total_latency: Micros,
}

impl DeliveryStats {
    /// Summarizes a batch of deliveries.
    pub fn from_deliveries<'a, I: IntoIterator<Item = &'a Delivery>>(batch: I) -> Self {
        let mut stats = DeliveryStats::default();
        for d in batch {
            stats.delivered += 1;
            if d.on_time {
                stats.on_time += 1;
            }
            let l = d.latency();
            stats.max_latency = stats.max_latency.max(l);
            stats.total_latency = stats.total_latency.saturating_add(l);
        }
        stats
    }

    /// Fraction of delivered packets that met their deadline, or
    /// `None` for an empty batch. A batch with no deliveries carries
    /// no timeliness evidence — a total blackhole must not read as a
    /// perfect on-time rate.
    pub fn on_time_fraction(&self) -> Option<f64> {
        if self.delivered == 0 {
            None
        } else {
            Some(self.on_time as f64 / self.delivered as f64)
        }
    }

    /// Mean one-way latency, or zero for an empty batch.
    pub fn mean_latency(&self) -> Micros {
        match self.total_latency.as_micros().checked_div(self.delivered) {
            Some(mean) => Micros::from_micros(mean),
            None => Micros::ZERO,
        }
    }
}

/// The per-sender routing state: the live scheme plus its current
/// dissemination graph pre-encoded as a wire bitmask, and — under
/// overload — a cheaper override mask that temporarily replaces it.
pub(crate) struct SchemeSlot {
    pub(crate) scheme: Box<dyn RoutingScheme>,
    pub(crate) flow: Flow,
    pub(crate) class: SlaClass,
    mask: Bytes,
    /// Downgraded dissemination mask applied while the node is
    /// overloaded; `None` means the scheme's full graph is in force.
    downgrade: Option<Bytes>,
    /// The overload level the current downgrade was computed at (0
    /// when no downgrade is active), so re-applying the same level is
    /// a no-op.
    pub(crate) downgrade_level: u8,
}

impl SchemeSlot {
    pub(crate) fn new(
        scheme: Box<dyn RoutingScheme>,
        flow: Flow,
        class: SlaClass,
        edge_count: usize,
    ) -> Self {
        let mask = Bytes::from(scheme.current().to_bitmask(edge_count));
        SchemeSlot { scheme, flow, class, mask, downgrade: None, downgrade_level: 0 }
    }

    pub(crate) fn refresh_mask(&mut self, edge_count: usize) {
        self.mask = Bytes::from(self.scheme.current().to_bitmask(edge_count));
    }

    /// Replaces the stamped mask with a downgraded graph (overload).
    pub(crate) fn set_downgrade(&mut self, mask: Bytes, level: u8) {
        self.downgrade = Some(mask);
        self.downgrade_level = level;
    }

    /// Restores the scheme's full graph.
    pub(crate) fn clear_downgrade(&mut self) {
        self.downgrade = None;
        self.downgrade_level = 0;
    }

    pub(crate) fn is_downgraded(&self) -> bool {
        self.downgrade.is_some()
    }

    fn mask(&self) -> Bytes {
        match &self.downgrade {
            Some(mask) => mask.clone(),
            None => self.mask.clone(),
        }
    }
}

impl std::fmt::Debug for SchemeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchemeSlot")
            .field("scheme", &self.scheme.kind())
            .field("class", &self.class)
            .field("downgraded", &self.downgrade.is_some())
            .finish()
    }
}

/// A sending session: stamps packets with the flow's current
/// dissemination graph and injects them at the source node.
pub struct FlowSender {
    shared: Arc<Shared>,
    slot: Arc<Mutex<SchemeSlot>>,
    flow: Flow,
    deadline: Micros,
    class: SlaClass,
    next_seq: AtomicU64,
    /// This flow's metrics cells, resolved once so the hot send path
    /// skips the registry lookup.
    cells: Arc<crate::metrics::FlowCells>,
}

impl std::fmt::Debug for FlowSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowSender")
            .field("flow", &self.flow)
            .field("deadline", &self.deadline)
            .field("class", &self.class)
            .finish()
    }
}

impl FlowSender {
    pub(crate) fn new(
        shared: Arc<Shared>,
        slot: Arc<Mutex<SchemeSlot>>,
        flow: Flow,
        deadline: Micros,
        class: SlaClass,
    ) -> Self {
        let cells = shared.metrics.flow(flow);
        FlowSender { shared, slot, flow, deadline, class, next_seq: AtomicU64::new(0), cells }
    }

    /// The flow this session sends on.
    pub fn flow(&self) -> Flow {
        self.flow
    }

    /// The SLA class stamped onto this session's packets.
    pub fn class(&self) -> SlaClass {
        self.class
    }

    /// True while the node has replaced this flow's dissemination graph
    /// with a cheaper one under overload (see `docs/RESILIENCE.md`).
    pub fn is_downgraded(&self) -> bool {
        self.slot.lock().is_downgraded()
    }

    /// Sends one application packet; returns its flow sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::PayloadTooLarge`] for payloads over
    /// [`MAX_PAYLOAD`] bytes.
    pub fn send(&self, payload: &[u8]) -> Result<u64, OverlayError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(OverlayError::PayloadTooLarge { got: payload.len(), max: MAX_PAYLOAD });
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.cells.packets_sent.fetch_add(1, Ordering::Relaxed);
        let packet = DataPacket {
            flow: self.flow,
            flow_seq: seq,
            sent_at: now_us(),
            deadline: self.deadline,
            link_seq: 0, // assigned per link at transmission
            retransmission: false,
            class: self.class,
            mask: self.slot.lock().mask(),
            payload: Bytes::copy_from_slice(payload),
        };
        self.shared.disseminate(&packet);
        Ok(seq)
    }

    /// Re-disseminates the most recently sent packet under its original
    /// flow sequence number — a tail-loss probe, in the spirit of TCP
    /// TLP. Hop-by-hop recovery is gap-triggered: a packet lost on a
    /// link is only NACKed when a *later* packet on that link exposes
    /// the gap, so the last packets of a paused or finished stream can
    /// be lost silently. The probe travels the flow's current
    /// dissemination graph with fresh per-link sequences, which (a)
    /// exposes any tail gaps for normal NACK recovery and (b) delivers
    /// the packet itself if the original copies died — while flow-level
    /// duplicate suppression keeps an already-delivered tail from being
    /// delivered twice. The probe mints no new flow sequence and does
    /// not count in `packets_sent`; it is the same logical packet,
    /// offered again.
    ///
    /// Returns `false` without sending when the session has not sent
    /// anything yet.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::PayloadTooLarge`] for payloads over
    /// [`MAX_PAYLOAD`] bytes (the payload must be the one passed to the
    /// matching [`FlowSender::send`] for the probe to be a faithful
    /// re-offer).
    pub fn tail_probe(&self, payload: &[u8]) -> Result<bool, OverlayError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(OverlayError::PayloadTooLarge { got: payload.len(), max: MAX_PAYLOAD });
        }
        let next = self.next_seq.load(Ordering::Relaxed);
        if next == 0 {
            return Ok(false);
        }
        let packet = DataPacket {
            flow: self.flow,
            flow_seq: next - 1,
            sent_at: now_us(),
            deadline: self.deadline,
            link_seq: 0, // assigned per link at transmission
            retransmission: false,
            class: self.class,
            mask: self.slot.lock().mask(),
            payload: Bytes::copy_from_slice(payload),
        };
        self.shared.disseminate(&packet);
        Ok(true)
    }

    /// Sends a run of application packets as one batch: they receive
    /// consecutive flow sequence numbers, share one timestamp and
    /// dissemination mask, and are coalesced into as few wire datagrams
    /// per link as the node's batch budget allows. Returns the first
    /// sequence number of the run.
    ///
    /// This is the high-throughput path: one syscall, checksum, and
    /// fault verdict covers many packets instead of one each.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::PayloadTooLarge`] if any payload exceeds
    /// [`MAX_PAYLOAD`]; nothing is sent in that case.
    pub fn send_batch(&self, payloads: &[&[u8]]) -> Result<u64, OverlayError> {
        for p in payloads {
            if p.len() > MAX_PAYLOAD {
                return Err(OverlayError::PayloadTooLarge { got: p.len(), max: MAX_PAYLOAD });
            }
        }
        let n = payloads.len() as u64;
        let first = self.next_seq.fetch_add(n, Ordering::Relaxed);
        if n == 0 {
            return Ok(first);
        }
        self.cells.packets_sent.fetch_add(n, Ordering::Relaxed);
        let mask = self.slot.lock().mask();
        let sent_at = now_us();
        // Pooled scratch: the batch path otherwise allocates (and
        // frees) one `Vec<DataPacket>` per call.
        let mut packets = self.shared.take_packet_scratch();
        packets.extend(payloads.iter().enumerate().map(|(i, p)| DataPacket {
            flow: self.flow,
            flow_seq: first + i as u64,
            sent_at,
            deadline: self.deadline,
            link_seq: 0, // assigned per link at transmission
            retransmission: false,
            class: self.class,
            mask: mask.clone(),
            payload: Bytes::copy_from_slice(p),
        }));
        self.shared.disseminate_batch(&packets);
        self.shared.put_packet_scratch(packets);
        Ok(first)
    }

    /// The dissemination graph currently stamped onto packets.
    pub fn current_graph(&self) -> DisseminationGraph {
        self.slot.lock().scheme.current().clone()
    }
}

/// The per-group routing state: the interned multicast graph plus its
/// current wire bitmask. Refreshed by the node's scheme-update tick
/// when link-state flips evict the cached graph.
pub(crate) struct GroupSlot {
    pub(crate) graph: Arc<MulticastGraph>,
    pub(crate) flow: Flow,
    pub(crate) kind: MulticastKind,
    pub(crate) requirement: ServiceRequirement,
    mask: Bytes,
}

impl GroupSlot {
    pub(crate) fn new(
        graph: Arc<MulticastGraph>,
        flow: Flow,
        kind: MulticastKind,
        requirement: ServiceRequirement,
        edge_count: usize,
    ) -> Self {
        let mask = Bytes::from(graph.to_bitmask(edge_count));
        GroupSlot { graph, flow, kind, requirement, mask }
    }

    /// Installs a fresh graph and re-stamps the wire mask.
    pub(crate) fn refresh(&mut self, graph: Arc<MulticastGraph>, edge_count: usize) {
        self.mask = Bytes::from(graph.to_bitmask(edge_count));
        self.graph = graph;
    }

    fn mask(&self) -> Bytes {
        self.mask.clone()
    }
}

impl std::fmt::Debug for GroupSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupSlot")
            .field("flow", &self.flow)
            .field("kind", &self.kind)
            .field("receivers", &self.graph.receivers().len())
            .finish()
    }
}

/// A multicast sending session: one encode + dissemination per packet
/// covers every receiver of the group, instead of N unicast sends.
///
/// The group's dissemination graph is a single-source tree (or, for
/// [`MulticastKind::Targeted`]/[`MulticastKind::Robust`], a DAG with
/// redundancy branches grafted at receivers) interned in the node's
/// graph cache, so thousands of groups over the same topology share
/// one precomputed graph per distinct `(source, receiver set, kind,
/// deadline)`. See `docs/MULTICAST.md`.
pub struct FlowGroup {
    shared: Arc<Shared>,
    slot: Arc<Mutex<GroupSlot>>,
    flow: Flow,
    deadline: Micros,
    class: SlaClass,
    next_seq: AtomicU64,
    cells: Arc<crate::metrics::FlowCells>,
}

impl std::fmt::Debug for FlowGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowGroup")
            .field("flow", &self.flow)
            .field("deadline", &self.deadline)
            .field("class", &self.class)
            .finish()
    }
}

impl FlowGroup {
    pub(crate) fn new(
        shared: Arc<Shared>,
        slot: Arc<Mutex<GroupSlot>>,
        flow: Flow,
        deadline: Micros,
        class: SlaClass,
    ) -> Self {
        let cells = shared.metrics.flow(flow);
        FlowGroup { shared, slot, flow, deadline, class, next_seq: AtomicU64::new(0), cells }
    }

    /// The group flow this session sends on (a tagged group id in the
    /// destination field; see [`Flow::group`]).
    pub fn flow(&self) -> Flow {
        self.flow
    }

    /// The SLA class stamped onto this session's packets.
    pub fn class(&self) -> SlaClass {
        self.class
    }

    /// The canonical receiver set of the group.
    pub fn receivers(&self) -> Vec<NodeId> {
        self.slot.lock().graph.receivers().to_vec()
    }

    /// Sends one application packet to every receiver of the group;
    /// returns its flow sequence number.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::PayloadTooLarge`] for payloads over
    /// [`MAX_PAYLOAD`] bytes.
    pub fn send(&self, payload: &[u8]) -> Result<u64, OverlayError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(OverlayError::PayloadTooLarge { got: payload.len(), max: MAX_PAYLOAD });
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        self.cells.packets_sent.fetch_add(1, Ordering::Relaxed);
        let packet = DataPacket {
            flow: self.flow,
            flow_seq: seq,
            sent_at: now_us(),
            deadline: self.deadline,
            link_seq: 0, // assigned per link at transmission
            retransmission: false,
            class: self.class,
            mask: self.slot.lock().mask(),
            payload: Bytes::copy_from_slice(payload),
        };
        self.shared.disseminate(&packet);
        Ok(seq)
    }

    /// Sends a run of packets to every receiver as one batch — the
    /// many-flow fast path: consecutive sequence numbers, one shared
    /// timestamp and mask, coalesced wire datagrams per out-link, and
    /// one dissemination covering all receivers. Returns the first
    /// sequence number of the run.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::PayloadTooLarge`] if any payload exceeds
    /// [`MAX_PAYLOAD`]; nothing is sent in that case.
    pub fn send_batch(&self, payloads: &[&[u8]]) -> Result<u64, OverlayError> {
        for p in payloads {
            if p.len() > MAX_PAYLOAD {
                return Err(OverlayError::PayloadTooLarge { got: p.len(), max: MAX_PAYLOAD });
            }
        }
        let n = payloads.len() as u64;
        let first = self.next_seq.fetch_add(n, Ordering::Relaxed);
        if n == 0 {
            return Ok(first);
        }
        self.cells.packets_sent.fetch_add(n, Ordering::Relaxed);
        let mask = self.slot.lock().mask();
        let sent_at = now_us();
        let mut packets = self.shared.take_packet_scratch();
        packets.extend(payloads.iter().enumerate().map(|(i, p)| DataPacket {
            flow: self.flow,
            flow_seq: first + i as u64,
            sent_at,
            deadline: self.deadline,
            link_seq: 0, // assigned per link at transmission
            retransmission: false,
            class: self.class,
            mask: mask.clone(),
            payload: Bytes::copy_from_slice(p),
        }));
        self.shared.disseminate_batch(&packets);
        self.shared.put_packet_scratch(packets);
        Ok(first)
    }

    /// The multicast graph currently stamped onto packets.
    pub fn current_graph(&self) -> Arc<MulticastGraph> {
        Arc::clone(&self.slot.lock().graph)
    }
}

/// A receiving session: yields [`Delivery`] records for one flow.
#[derive(Debug)]
pub struct FlowReceiver {
    rx: Receiver<Delivery>,
}

impl FlowReceiver {
    pub(crate) fn new(rx: Receiver<Delivery>) -> Self {
        FlowReceiver { rx }
    }

    /// Blocks up to `timeout` for the next delivery.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Delivery> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Returns a delivery if one is already queued.
    pub fn try_recv(&self) -> Option<Delivery> {
        self.rx.try_recv().ok()
    }

    /// Drains everything currently queued.
    pub fn drain(&self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(d) = self.try_recv() {
            out.push(d);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::NodeId;

    #[test]
    fn delivery_latency() {
        let d = Delivery {
            flow: Flow::new(NodeId::new(0), NodeId::new(1)),
            flow_seq: 0,
            payload: Bytes::new(),
            sent_at: Micros::from_micros(100),
            delivered_at: Micros::from_micros(350),
            on_time: true,
        };
        assert_eq!(d.latency(), Micros::from_micros(250));
    }

    #[test]
    fn delivery_stats_summarize() {
        let mk = |sent: u64, arrived: u64, on_time: bool| Delivery {
            flow: Flow::new(NodeId::new(0), NodeId::new(1)),
            flow_seq: 0,
            payload: Bytes::new(),
            sent_at: Micros::from_micros(sent),
            delivered_at: Micros::from_micros(arrived),
            on_time,
        };
        let batch = [mk(0, 100, true), mk(0, 300, true), mk(0, 800, false)];
        let stats = DeliveryStats::from_deliveries(&batch);
        assert_eq!(stats.delivered, 3);
        assert_eq!(stats.on_time, 2);
        assert_eq!(stats.max_latency, Micros::from_micros(800));
        assert_eq!(stats.mean_latency(), Micros::from_micros(400));
        let fraction = stats.on_time_fraction().expect("non-empty batch has a fraction");
        assert!((fraction - 2.0 / 3.0).abs() < 1e-12);

        let empty = DeliveryStats::from_deliveries([]);
        assert_eq!(empty.on_time_fraction(), None, "no deliveries is not evidence of timeliness");
        assert_eq!(empty.mean_latency(), Micros::ZERO);
    }
}
