//! Per-node configuration.

use dg_topology::NodeId;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Configuration for one overlay node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's identity in the topology.
    pub node: NodeId,
    /// Address to bind the UDP socket on (use port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Socket addresses of every overlay neighbour, by node id.
    pub peers: HashMap<NodeId, SocketAddr>,
    /// How often hellos probe each out-link.
    pub hello_interval: Duration,
    /// Hellos per loss-estimation window.
    pub monitor_window: usize,
    /// How often this node originates a link-state update.
    pub link_state_interval: Duration,
    /// Per-neighbour retransmission buffer capacity (packets).
    pub retransmit_buffer: usize,
    /// Flow-level duplicate-suppression window (packets).
    pub dedup_window: usize,
    /// Capacity of the node's structured event journal (events); zero
    /// disables journalling while still counting refused events.
    pub journal_capacity: usize,
    /// Incoming-link loss estimate at which the problem detector
    /// triggers (clears at half this value).
    pub detector_loss_threshold: f64,
    /// Hello silence longer than this many hello intervals declares the
    /// incoming link down (flooded via link state).
    pub link_down_intervals: u64,
    /// Link-state reports older than this expire back to a pessimistic
    /// default (a crashed origin must not freeze the database).
    pub link_state_max_age: Duration,
    /// Bound on the outgoing-shipment queue (datagrams); overflow is
    /// dropped and counted in `queue_drops`.
    pub shipper_queue: usize,
    /// Bound on each receiver session's delivery queue (packets);
    /// overflow is dropped and counted in `queue_drops`.
    pub delivery_queue: usize,
    /// Seed for the node's deterministic fault-injection RNG.
    pub fault_seed: u64,
}

impl NodeConfig {
    /// A configuration with the defaults used by localhost clusters:
    /// 50 ms hellos, 20-hello loss windows, 200 ms link-state refresh.
    pub fn new(node: NodeId, listen: SocketAddr) -> Self {
        NodeConfig {
            node,
            listen,
            peers: HashMap::new(),
            hello_interval: Duration::from_millis(50),
            monitor_window: 20,
            link_state_interval: Duration::from_millis(200),
            retransmit_buffer: 2_048,
            dedup_window: 16_384,
            journal_capacity: 1_024,
            detector_loss_threshold: 0.05,
            link_down_intervals: 5,
            link_state_max_age: Duration::from_secs(3),
            shipper_queue: 16_384,
            delivery_queue: 16_384,
            fault_seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = NodeConfig::new(NodeId::new(1), "127.0.0.1:0".parse().unwrap());
        assert_eq!(cfg.node, NodeId::new(1));
        assert!(cfg.peers.is_empty());
        assert!(cfg.hello_interval < cfg.link_state_interval * 10);
        assert!(cfg.retransmit_buffer > 0 && cfg.dedup_window > 0);
        assert!(cfg.journal_capacity > 0);
        assert!(cfg.detector_loss_threshold > 0.0 && cfg.detector_loss_threshold < 1.0);
        assert!(cfg.link_down_intervals > 0);
        assert!(cfg.link_state_max_age > cfg.link_state_interval * 2, "aging must outlast refresh");
        assert!(cfg.shipper_queue > 0 && cfg.delivery_queue > 0);
    }
}
