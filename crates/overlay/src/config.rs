//! Per-node configuration.

use crate::OverlayError;
use dg_topology::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Configuration for one overlay node.
///
/// Construct with [`NodeConfig::builder`], which validates the knobs
/// against each other before the node spawns.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// This node's identity in the topology.
    pub node: NodeId,
    /// Address to bind the UDP socket on (use port 0 for ephemeral).
    pub listen: SocketAddr,
    /// Socket addresses of every overlay neighbour, by node id.
    pub peers: HashMap<NodeId, SocketAddr>,
    /// How often hellos probe each out-link.
    pub hello_interval: Duration,
    /// Hellos per loss-estimation window.
    pub monitor_window: usize,
    /// How often this node originates a link-state update.
    pub link_state_interval: Duration,
    /// Per-neighbour retransmission buffer capacity (packets).
    pub retransmit_buffer: usize,
    /// Flow-level duplicate-suppression window (packets).
    pub dedup_window: usize,
    /// Capacity of the node's structured event journal (events); zero
    /// disables journalling while still counting refused events.
    pub journal_capacity: usize,
    /// Incoming-link loss estimate at which the problem detector
    /// triggers (clears at half this value).
    pub detector_loss_threshold: f64,
    /// Hello silence longer than this many hello intervals declares the
    /// incoming link down (flooded via link state).
    pub link_down_intervals: u64,
    /// Link-state reports older than this expire back to a pessimistic
    /// default (a crashed origin must not freeze the database).
    pub link_state_max_age: Duration,
    /// Bound on the outgoing-shipment queue (datagrams); overflow is
    /// dropped and counted in `shipper_drops` (plus the per-class
    /// `shed_*` counter of the shed packet).
    pub shipper_queue: usize,
    /// Bound on each receiver session's delivery queue (packets);
    /// overflow is dropped and counted in `delivery_drops`.
    pub delivery_queue: usize,
    /// Seed for the node's deterministic fault-injection RNG.
    pub fault_seed: u64,
    /// Budget for coalescing batched sends into one wire datagram
    /// (bytes of packet bodies). The WAN-safe default stays near a
    /// common 1500-byte MTU; loopback benchmarks raise it to pack more
    /// packets per syscall.
    pub max_batch_bytes: usize,
    /// How long to wait for a neighbour's link-state ack before
    /// retransmitting the report (doubles per retry).
    pub lsa_retransmit_timeout: Duration,
    /// Retransmission budget per (neighbour, origin) link-state report;
    /// an exhausted report is abandoned and left to anti-entropy.
    pub lsa_max_retransmits: u32,
    /// How often anti-entropy digests summarize the link-state database
    /// to each neighbour.
    pub digest_interval: Duration,
    /// Minimum spacing between admitted link-state transitions for one
    /// neighbour (route-flap damping hold-down); zero disables the
    /// hold-down.
    pub flap_hold_down: Duration,
    /// Half-life of the route-flap damper's instability penalty.
    pub flap_penalty_half_life: Duration,
    /// Penalty above which a link is considered flapping and its
    /// transitions stay suppressed until the penalty decays.
    pub flap_suppress_threshold: f64,
    /// How long a NACKed sequence may stay silent before the NACK is
    /// re-issued (once).
    pub nack_rerequest_after: Duration,
    /// A supervised thread whose heartbeat is older than this marks the
    /// node degraded; it is also how long the degraded flag lingers
    /// after a thread restart.
    pub watchdog_stale_after: Duration,
    /// Maximum sender sessions this node admits; further `open_sender`
    /// calls fail with [`OverlayError::AdmissionDenied`].
    pub sender_capacity: usize,
    /// Fraction of `shipper_queue` at which the smoothed queue depth
    /// declares the node overloaded (redundancy downgrades begin).
    pub overload_enter_depth: f64,
    /// Fraction of `shipper_queue` the smoothed depth must fall below —
    /// with no shedding — before overload can clear (hysteresis; must
    /// be below `overload_enter_depth`).
    pub overload_exit_depth: f64,
    /// Minimum dwell between overload transitions (enter, escalate,
    /// exit), and the sustained-quiet horizon required before exit —
    /// the same hold-down idea as route-flap damping.
    pub overload_hold_down: Duration,
}

impl NodeConfig {
    /// Starts a validated builder from the localhost-cluster defaults:
    /// 50 ms hellos, 20-hello loss windows, 200 ms link-state refresh.
    pub fn builder(node: NodeId, listen: SocketAddr) -> NodeConfigBuilder {
        NodeConfigBuilder { config: NodeConfigBuilder::defaults(node, listen) }
    }
}

/// Builder for [`NodeConfig`]; see [`NodeConfig::builder`].
///
/// Every setter overrides one default; [`NodeConfigBuilder::build`]
/// checks the result for internal consistency so a bad knob fails fast
/// instead of spawning a node that can never converge.
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    config: NodeConfig,
}

impl NodeConfigBuilder {
    fn defaults(node: NodeId, listen: SocketAddr) -> NodeConfig {
        NodeConfig {
            node,
            listen,
            peers: HashMap::new(),
            hello_interval: Duration::from_millis(50),
            monitor_window: 20,
            link_state_interval: Duration::from_millis(200),
            retransmit_buffer: 2_048,
            dedup_window: 16_384,
            journal_capacity: 1_024,
            detector_loss_threshold: 0.05,
            link_down_intervals: 5,
            link_state_max_age: Duration::from_secs(3),
            shipper_queue: 16_384,
            delivery_queue: 16_384,
            fault_seed: 0,
            max_batch_bytes: 1_400,
            lsa_retransmit_timeout: Duration::from_millis(100),
            lsa_max_retransmits: 4,
            digest_interval: Duration::from_secs(1),
            flap_hold_down: Duration::from_millis(500),
            flap_penalty_half_life: Duration::from_secs(2),
            flap_suppress_threshold: 3.0,
            nack_rerequest_after: Duration::from_millis(250),
            watchdog_stale_after: Duration::from_secs(1),
            sender_capacity: 1_024,
            overload_enter_depth: 0.5,
            overload_exit_depth: 0.125,
            overload_hold_down: Duration::from_millis(500),
        }
    }

    /// Socket addresses of every overlay neighbour, by node id.
    pub fn peers(mut self, peers: HashMap<NodeId, SocketAddr>) -> Self {
        self.config.peers = peers;
        self
    }

    /// How often hellos probe each out-link.
    pub fn hello_interval(mut self, interval: Duration) -> Self {
        self.config.hello_interval = interval;
        self
    }

    /// Hellos per loss-estimation window.
    pub fn monitor_window(mut self, window: usize) -> Self {
        self.config.monitor_window = window;
        self
    }

    /// How often this node originates a link-state update.
    pub fn link_state_interval(mut self, interval: Duration) -> Self {
        self.config.link_state_interval = interval;
        self
    }

    /// Per-neighbour retransmission buffer capacity (packets).
    pub fn retransmit_buffer(mut self, packets: usize) -> Self {
        self.config.retransmit_buffer = packets;
        self
    }

    /// Flow-level duplicate-suppression window (packets).
    pub fn dedup_window(mut self, packets: usize) -> Self {
        self.config.dedup_window = packets;
        self
    }

    /// Capacity of the node's structured event journal (events).
    pub fn journal_capacity(mut self, events: usize) -> Self {
        self.config.journal_capacity = events;
        self
    }

    /// Incoming-link loss estimate that triggers the problem detector.
    pub fn detector_loss_threshold(mut self, threshold: f64) -> Self {
        self.config.detector_loss_threshold = threshold;
        self
    }

    /// Hello-silence horizon, in hello intervals, for declaring a link
    /// down.
    pub fn link_down_intervals(mut self, intervals: u64) -> Self {
        self.config.link_down_intervals = intervals;
        self
    }

    /// Expiry age for remote link-state reports.
    pub fn link_state_max_age(mut self, age: Duration) -> Self {
        self.config.link_state_max_age = age;
        self
    }

    /// Bound on the outgoing-shipment queue (datagrams).
    pub fn shipper_queue(mut self, datagrams: usize) -> Self {
        self.config.shipper_queue = datagrams;
        self
    }

    /// Bound on each receiver session's delivery queue (packets).
    pub fn delivery_queue(mut self, packets: usize) -> Self {
        self.config.delivery_queue = packets;
        self
    }

    /// Seed for the node's deterministic fault-injection RNG.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.config.fault_seed = seed;
        self
    }

    /// Byte budget for coalescing batched sends into one datagram.
    pub fn max_batch_bytes(mut self, bytes: usize) -> Self {
        self.config.max_batch_bytes = bytes;
        self
    }

    /// Ack-timeout before a link-state report is retransmitted.
    pub fn lsa_retransmit_timeout(mut self, timeout: Duration) -> Self {
        self.config.lsa_retransmit_timeout = timeout;
        self
    }

    /// Retransmission budget per (neighbour, origin) link-state report.
    pub fn lsa_max_retransmits(mut self, retries: u32) -> Self {
        self.config.lsa_max_retransmits = retries;
        self
    }

    /// How often anti-entropy digests are exchanged.
    pub fn digest_interval(mut self, interval: Duration) -> Self {
        self.config.digest_interval = interval;
        self
    }

    /// Route-flap damping hold-down window (zero disables it).
    pub fn flap_hold_down(mut self, hold_down: Duration) -> Self {
        self.config.flap_hold_down = hold_down;
        self
    }

    /// Half-life of the flap damper's instability penalty.
    pub fn flap_penalty_half_life(mut self, half_life: Duration) -> Self {
        self.config.flap_penalty_half_life = half_life;
        self
    }

    /// Penalty above which a flapping link stays suppressed.
    pub fn flap_suppress_threshold(mut self, threshold: f64) -> Self {
        self.config.flap_suppress_threshold = threshold;
        self
    }

    /// Silence horizon after which a NACK is re-issued once.
    pub fn nack_rerequest_after(mut self, silence: Duration) -> Self {
        self.config.nack_rerequest_after = silence;
        self
    }

    /// Heartbeat staleness horizon for the thread watchdog.
    pub fn watchdog_stale_after(mut self, horizon: Duration) -> Self {
        self.config.watchdog_stale_after = horizon;
        self
    }

    /// Maximum sender sessions the node admits.
    pub fn sender_capacity(mut self, sessions: usize) -> Self {
        self.config.sender_capacity = sessions;
        self
    }

    /// Queue-depth fraction at which overload is entered.
    pub fn overload_enter_depth(mut self, fraction: f64) -> Self {
        self.config.overload_enter_depth = fraction;
        self
    }

    /// Queue-depth fraction below which overload may clear.
    pub fn overload_exit_depth(mut self, fraction: f64) -> Self {
        self.config.overload_exit_depth = fraction;
        self
    }

    /// Minimum dwell between overload transitions.
    pub fn overload_hold_down(mut self, hold_down: Duration) -> Self {
        self.config.overload_hold_down = hold_down;
        self
    }

    /// Validates the configuration and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::InvalidConfig`] naming the first rule the
    /// configuration violates.
    pub fn build(self) -> Result<NodeConfig, OverlayError> {
        let c = &self.config;
        if c.hello_interval.is_zero() {
            return Err(OverlayError::InvalidConfig("hello_interval must be positive"));
        }
        if c.link_state_interval.is_zero() {
            return Err(OverlayError::InvalidConfig("link_state_interval must be positive"));
        }
        if c.hello_interval >= c.link_state_interval * 10 {
            return Err(OverlayError::InvalidConfig(
                "hello_interval must be well under 10x link_state_interval",
            ));
        }
        if c.link_state_max_age <= c.link_state_interval * 2 {
            return Err(OverlayError::InvalidConfig(
                "link_state_max_age must outlast at least two link-state refreshes",
            ));
        }
        if c.monitor_window == 0 {
            return Err(OverlayError::InvalidConfig("monitor_window must be positive"));
        }
        if c.retransmit_buffer == 0 {
            return Err(OverlayError::InvalidConfig("retransmit_buffer must be positive"));
        }
        if c.dedup_window == 0 {
            return Err(OverlayError::InvalidConfig("dedup_window must be positive"));
        }
        if !(c.detector_loss_threshold > 0.0 && c.detector_loss_threshold < 1.0) {
            return Err(OverlayError::InvalidConfig(
                "detector_loss_threshold must be strictly between 0 and 1",
            ));
        }
        if c.link_down_intervals == 0 {
            return Err(OverlayError::InvalidConfig("link_down_intervals must be positive"));
        }
        if c.shipper_queue == 0 || c.delivery_queue == 0 {
            return Err(OverlayError::InvalidConfig(
                "shipper_queue and delivery_queue must be positive",
            ));
        }
        if c.max_batch_bytes == 0 {
            return Err(OverlayError::InvalidConfig("max_batch_bytes must be positive"));
        }
        if c.lsa_retransmit_timeout.is_zero() {
            return Err(OverlayError::InvalidConfig("lsa_retransmit_timeout must be positive"));
        }
        if c.digest_interval.is_zero() {
            return Err(OverlayError::InvalidConfig("digest_interval must be positive"));
        }
        if c.flap_penalty_half_life.is_zero() {
            return Err(OverlayError::InvalidConfig("flap_penalty_half_life must be positive"));
        }
        if c.flap_suppress_threshold <= 1.0 {
            return Err(OverlayError::InvalidConfig(
                "flap_suppress_threshold must exceed 1 so a first transition is admissible",
            ));
        }
        if c.nack_rerequest_after.is_zero() {
            return Err(OverlayError::InvalidConfig("nack_rerequest_after must be positive"));
        }
        if c.watchdog_stale_after <= c.hello_interval * 2 {
            return Err(OverlayError::InvalidConfig(
                "watchdog_stale_after must comfortably outlast the hello interval \
                 (heartbeats are stamped at most once per tick)",
            ));
        }
        if c.sender_capacity == 0 {
            return Err(OverlayError::InvalidConfig("sender_capacity must be positive"));
        }
        if !(c.overload_enter_depth > 0.0 && c.overload_enter_depth < 1.0) {
            return Err(OverlayError::InvalidConfig(
                "overload_enter_depth must be strictly between 0 and 1",
            ));
        }
        if !(c.overload_exit_depth > 0.0 && c.overload_exit_depth < c.overload_enter_depth) {
            return Err(OverlayError::InvalidConfig(
                "overload_exit_depth must be positive and below overload_enter_depth \
                 (hysteresis needs a gap)",
            ));
        }
        if c.overload_hold_down.is_zero() {
            return Err(OverlayError::InvalidConfig("overload_hold_down must be positive"));
        }
        Ok(self.config)
    }
}

fn default_hello_ms() -> u64 {
    50
}

fn default_ls_ms() -> u64 {
    200
}

/// The on-disk JSON configuration of a standalone `dg-node` daemon —
/// shared between the daemon (which parses it) and deployment tooling
/// like `dg-emu` (which generates one per node), so the two can never
/// drift apart on field names.
///
/// Only the identity fields are mandatory; every `*_ms` tuning knob is
/// optional and falls back to the [`NodeConfig`] default when omitted,
/// which keeps hand-written configs short:
///
/// ```json
/// {
///   "topology": "topology.json",
///   "node": "NYC",
///   "listen": "0.0.0.0:7100",
///   "peers": { "CHI": "192.0.2.10:7100", "WAS": "192.0.2.11:7100" }
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFileConfig {
    /// Path to the topology JSON (a serialized [`Graph`]), relative to
    /// the daemon's working directory.
    pub topology: String,
    /// This node's site name in that topology.
    pub node: String,
    /// Address to bind the daemon's UDP socket on.
    pub listen: SocketAddr,
    /// Socket addresses of every overlay neighbour, by site name.
    #[serde(default)]
    pub peers: HashMap<String, SocketAddr>,
    /// How often hellos probe each out-link.
    #[serde(default = "default_hello_ms")]
    pub hello_interval_ms: u64,
    /// How often this node originates a link-state update.
    #[serde(default = "default_ls_ms")]
    pub link_state_interval_ms: u64,
    /// Anti-entropy digest cadence override.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub digest_interval_ms: Option<u64>,
    /// Route-flap damping hold-down override (zero disables damping's
    /// window).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub flap_hold_down_ms: Option<u64>,
    /// Link-state aging horizon override. Deployment harnesses that
    /// compare database digests across daemons raise this past the run
    /// length so a dead origin's reports freeze identically everywhere
    /// instead of expiring at slightly different instants.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub link_state_max_age_ms: Option<u64>,
    /// Watchdog staleness horizon override (also the degraded-flag
    /// linger after a thread restart).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub watchdog_stale_after_ms: Option<u64>,
    /// Hello-silence intervals before an incoming link is declared
    /// down.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub link_down_intervals: Option<u64>,
    /// Seed for the daemon's deterministic fault-injection RNG.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault_seed: Option<u64>,
}

impl NodeFileConfig {
    /// A config with the mandatory identity fields and every tuning
    /// knob at its default.
    pub fn new(topology: &str, node: &str, listen: SocketAddr) -> NodeFileConfig {
        NodeFileConfig {
            topology: topology.to_string(),
            node: node.to_string(),
            listen,
            peers: HashMap::new(),
            hello_interval_ms: default_hello_ms(),
            link_state_interval_ms: default_ls_ms(),
            digest_interval_ms: None,
            flap_hold_down_ms: None,
            link_state_max_age_ms: None,
            watchdog_stale_after_ms: None,
            link_down_intervals: None,
            fault_seed: None,
        }
    }

    /// Parses a config from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<NodeFileConfig, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the config to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Resolves the file config against its topology into a validated
    /// [`NodeConfig`]: site names become node ids and the tuning
    /// overrides flow through the builder's consistency checks.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the unknown site or the
    /// violated builder rule.
    pub fn resolve(&self, graph: &Graph) -> Result<NodeConfig, String> {
        let me = graph
            .node_by_name(&self.node)
            .ok_or_else(|| format!("node {:?} not in topology", self.node))?;
        let mut peers = HashMap::new();
        for (name, addr) in &self.peers {
            let peer =
                graph.node_by_name(name).ok_or_else(|| format!("peer {name:?} not in topology"))?;
            peers.insert(peer, *addr);
        }
        let mut builder = NodeConfig::builder(me, self.listen)
            .hello_interval(Duration::from_millis(self.hello_interval_ms))
            .link_state_interval(Duration::from_millis(self.link_state_interval_ms))
            .peers(peers);
        if let Some(ms) = self.digest_interval_ms {
            builder = builder.digest_interval(Duration::from_millis(ms));
        }
        if let Some(ms) = self.flap_hold_down_ms {
            builder = builder.flap_hold_down(Duration::from_millis(ms));
        }
        if let Some(ms) = self.link_state_max_age_ms {
            builder = builder.link_state_max_age(Duration::from_millis(ms));
        }
        if let Some(ms) = self.watchdog_stale_after_ms {
            builder = builder.watchdog_stale_after(Duration::from_millis(ms));
        }
        if let Some(n) = self.link_down_intervals {
            builder = builder.link_down_intervals(n);
        }
        if let Some(seed) = self.fault_seed {
            builder = builder.fault_seed(seed);
        }
        builder.build().map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = NodeConfig::builder(NodeId::new(1), "127.0.0.1:0".parse().unwrap())
            .build()
            .expect("defaults validate");
        assert_eq!(cfg.node, NodeId::new(1));
        assert!(cfg.peers.is_empty());
        assert!(cfg.hello_interval < cfg.link_state_interval * 10);
        assert!(cfg.retransmit_buffer > 0 && cfg.dedup_window > 0);
        assert!(cfg.journal_capacity > 0);
        assert!(cfg.detector_loss_threshold > 0.0 && cfg.detector_loss_threshold < 1.0);
        assert!(cfg.link_down_intervals > 0);
        assert!(cfg.link_state_max_age > cfg.link_state_interval * 2, "aging must outlast refresh");
        assert!(cfg.shipper_queue > 0 && cfg.delivery_queue > 0);
        assert!(cfg.max_batch_bytes > 0);
    }

    #[test]
    fn builder_rejects_inconsistent_knobs() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let bad = NodeConfig::builder(NodeId::new(3), listen)
            .link_state_max_age(Duration::from_millis(100))
            .build();
        assert!(matches!(bad, Err(OverlayError::InvalidConfig(_))), "max age must outlast refresh");
        let bad = NodeConfig::builder(NodeId::new(3), listen).dedup_window(0).build();
        assert!(matches!(bad, Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(3), listen).detector_loss_threshold(1.5).build();
        assert!(matches!(bad, Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(3), listen).max_batch_bytes(0).build();
        assert!(matches!(bad, Err(OverlayError::InvalidConfig(_))));
    }

    #[test]
    fn builder_rejects_bad_resilience_knobs() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let bad =
            NodeConfig::builder(NodeId::new(5), listen).lsa_retransmit_timeout(Duration::ZERO);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(5), listen).digest_interval(Duration::ZERO);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(5), listen).flap_suppress_threshold(1.0);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad =
            NodeConfig::builder(NodeId::new(5), listen).flap_penalty_half_life(Duration::ZERO);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(5), listen).nack_rerequest_after(Duration::ZERO);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(5), listen)
            .watchdog_stale_after(Duration::from_millis(60));
        assert!(
            matches!(bad.build(), Err(OverlayError::InvalidConfig(_))),
            "watchdog horizon must outlast hello ticks"
        );
        // A hold-down of zero is legal: it disables damping's window.
        let ok = NodeConfig::builder(NodeId::new(5), listen).flap_hold_down(Duration::ZERO).build();
        assert!(ok.is_ok());
    }

    #[test]
    fn builder_rejects_bad_overload_knobs() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let bad = NodeConfig::builder(NodeId::new(7), listen).sender_capacity(0);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(7), listen).overload_enter_depth(1.0);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let bad = NodeConfig::builder(NodeId::new(7), listen)
            .overload_enter_depth(0.3)
            .overload_exit_depth(0.3);
        assert!(
            matches!(bad.build(), Err(OverlayError::InvalidConfig(_))),
            "exit depth must sit strictly below enter depth"
        );
        let bad = NodeConfig::builder(NodeId::new(7), listen).overload_hold_down(Duration::ZERO);
        assert!(matches!(bad.build(), Err(OverlayError::InvalidConfig(_))));
        let ok = NodeConfig::builder(NodeId::new(7), listen)
            .sender_capacity(2)
            .overload_enter_depth(0.6)
            .overload_exit_depth(0.1)
            .overload_hold_down(Duration::from_millis(300))
            .build()
            .unwrap();
        assert_eq!(ok.sender_capacity, 2);
        assert_eq!(ok.overload_hold_down, Duration::from_millis(300));
    }

    #[test]
    fn resilience_defaults_validate_and_apply() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let cfg = NodeConfig::builder(NodeId::new(6), listen)
            .lsa_max_retransmits(7)
            .digest_interval(Duration::from_millis(400))
            .flap_hold_down(Duration::from_millis(900))
            .build()
            .unwrap();
        assert_eq!(cfg.lsa_max_retransmits, 7);
        assert_eq!(cfg.digest_interval, Duration::from_millis(400));
        assert_eq!(cfg.flap_hold_down, Duration::from_millis(900));
        assert!(cfg.lsa_retransmit_timeout > Duration::ZERO);
        assert!(cfg.flap_suppress_threshold > 1.0);
        assert!(cfg.watchdog_stale_after > cfg.hello_interval * 2);
    }

    #[test]
    fn file_configs_round_trip_and_resolve() {
        let graph = dg_topology::presets::north_america_12();
        let mut file = NodeFileConfig::new("topo.json", "NYC", "127.0.0.1:7100".parse().unwrap());
        file.peers.insert("CHI".into(), "127.0.0.1:7101".parse().unwrap());
        file.link_state_max_age_ms = Some(15_000);
        file.flap_hold_down_ms = Some(600);
        let parsed = NodeFileConfig::from_json(&file.to_json()).unwrap();
        assert_eq!(parsed, file);

        let cfg = parsed.resolve(&graph).expect("resolves against the preset");
        assert_eq!(cfg.node, graph.node_by_name("NYC").unwrap());
        assert_eq!(cfg.peers[&graph.node_by_name("CHI").unwrap()], file.peers["CHI"]);
        assert_eq!(cfg.link_state_max_age, Duration::from_secs(15));
        assert_eq!(cfg.flap_hold_down, Duration::from_millis(600));
        assert_eq!(cfg.hello_interval, Duration::from_millis(50), "defaults survive");
    }

    #[test]
    fn file_config_resolution_names_the_offender() {
        let graph = dg_topology::presets::north_america_12();
        let file = NodeFileConfig::new("topo.json", "ATLANTIS", "127.0.0.1:0".parse().unwrap());
        assert!(file.resolve(&graph).unwrap_err().contains("ATLANTIS"));

        let mut file = NodeFileConfig::new("topo.json", "NYC", "127.0.0.1:0".parse().unwrap());
        file.peers.insert("MORDOR".into(), "127.0.0.1:1".parse().unwrap());
        assert!(file.resolve(&graph).unwrap_err().contains("MORDOR"));

        // Tuning overrides flow through the builder's validation.
        let mut file = NodeFileConfig::new("topo.json", "NYC", "127.0.0.1:0".parse().unwrap());
        file.link_state_max_age_ms = Some(100);
        assert!(file.resolve(&graph).unwrap_err().contains("link_state_max_age"));

        // Sparse JSON parses: only identity fields are mandatory.
        let sparse = r#"{"topology": "t.json", "node": "NYC", "listen": "127.0.0.1:0"}"#;
        let parsed = NodeFileConfig::from_json(sparse).unwrap();
        assert!(parsed.peers.is_empty());
        assert_eq!(parsed.hello_interval_ms, 50);
        assert!(parsed.link_state_max_age_ms.is_none());
    }

    #[test]
    fn builder_setters_apply() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let cfg = NodeConfig::builder(NodeId::new(4), listen)
            .hello_interval(Duration::from_millis(25))
            .retransmit_buffer(512)
            .fault_seed(42)
            .max_batch_bytes(60_000)
            .build()
            .unwrap();
        assert_eq!(cfg.hello_interval, Duration::from_millis(25));
        assert_eq!(cfg.retransmit_buffer, 512);
        assert_eq!(cfg.fault_seed, 42);
        assert_eq!(cfg.max_batch_bytes, 60_000);
    }
}
