//! Programmable link impairment for localhost deployments.
//!
//! A real overlay link has propagation delay and (sometimes) loss; on
//! localhost both must be synthesized. Every outgoing datagram passes
//! through the sending node's [`FaultPlan`], which decides the
//! datagram's fate: dropped (uniform or Gilbert–Elliott bursty loss, or
//! a full blackhole), delayed (baseline latency plus uniform jitter),
//! reordered (held back long enough to land behind its successors),
//! duplicated, or corrupted (one byte flipped in flight). All knobs are
//! adjustable at runtime, which is how tests, the chaos harness
//! ([`crate::chaos`]), and examples inject the paper's "problems around
//! a node".
//!
//! Decisions are drawn from a per-link deterministic RNG seeded from
//! the plan's seed, so two plans with the same seed facing the same
//! per-link decision sequence produce identical impairment streams —
//! the foundation of the seeded chaos soak tests.

use dg_topology::{Micros, NodeId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How long a reordered datagram is held beyond its normal delay —
/// enough for several successors on the same link to overtake it.
const REORDER_HOLD: Micros = Micros::from_millis(2);

/// Two-state Gilbert–Elliott bursty-loss model.
///
/// The link alternates between a *good* and a *bad* state; each
/// datagram first advances the state machine, then is dropped with the
/// current state's loss probability. Bursts arise because the bad
/// state persists for a geometrically distributed run of datagrams.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstLoss {
    /// Probability of entering the bad state, per datagram.
    pub p_enter: f64,
    /// Probability of leaving the bad state, per datagram.
    pub p_exit: f64,
    /// Drop probability while in the good state.
    pub good_loss: f64,
    /// Drop probability while in the bad state.
    pub bad_loss: f64,
}

impl BurstLoss {
    /// Average loss rate of the stationary chain (sanity aid for tests).
    pub fn stationary_loss(&self) -> f64 {
        let denom = self.p_enter + self.p_exit;
        if denom <= 0.0 {
            return self.good_loss;
        }
        let bad_frac = self.p_enter / denom;
        self.good_loss * (1.0 - bad_frac) + self.bad_loss * bad_frac
    }
}

/// Impairment applied to one directed link (this node → neighbour).
///
/// Every field defaults when absent, so a JSON fault can name only the
/// impairments it wants (the vendored serde derive supports field-level
/// `default`, not the container-level form).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LinkFault {
    /// Uniform drop probability per datagram.
    #[serde(default)]
    pub loss: f64,
    /// Added delay per datagram (emulated propagation + injected).
    #[serde(default)]
    pub delay: Micros,
    /// Uniform extra delay in `[0, jitter]` per datagram.
    #[serde(default)]
    pub jitter: Micros,
    /// Probability a datagram is held back long enough to be overtaken.
    #[serde(default)]
    pub reorder: f64,
    /// Probability a datagram is transmitted twice.
    #[serde(default)]
    pub duplicate: f64,
    /// Probability one byte of the datagram is flipped in flight.
    #[serde(default)]
    pub corrupt: f64,
    /// Drop everything: a full link blackhole / partition.
    #[serde(default)]
    pub blackhole: bool,
    /// Bursty (Gilbert–Elliott) loss, layered on top of `loss`.
    #[serde(default)]
    pub burst: Option<BurstLoss>,
}

impl LinkFault {
    /// The classic two-knob impairment: uniform loss plus fixed delay.
    pub fn lossy(loss: f64, delay: Micros) -> Self {
        LinkFault { loss, delay, ..LinkFault::default() }
    }

    /// Pure emulated propagation delay, no loss.
    pub fn delayed(delay: Micros) -> Self {
        LinkFault { delay, ..LinkFault::default() }
    }
}

/// The fate [`FaultPlan::decide`] assigns one outgoing datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultVerdict {
    /// The datagram is dropped (loss, burst loss, or blackhole).
    pub drop: bool,
    /// Total injected delay (baseline + jitter + any reorder hold).
    pub delay: Micros,
    /// A second copy must be transmitted.
    pub duplicate: bool,
    /// One byte must be flipped; position/value derive from
    /// [`FaultVerdict::corrupt_seed`].
    pub corrupt: bool,
    /// Entropy for choosing the corrupted byte and its flip pattern.
    pub corrupt_seed: u64,
}

impl FaultVerdict {
    /// A clean pass-through with only the given delay.
    fn clean(delay: Micros) -> Self {
        FaultVerdict { drop: false, delay, duplicate: false, corrupt: false, corrupt_seed: 0 }
    }
}

/// SplitMix64 step: advances the state and returns a 64-bit draw.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
pub(crate) fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Debug)]
struct LinkEntry {
    fault: LinkFault,
    /// Per-link RNG state, preserved across `set` calls so healing and
    /// re-injecting impairments stays on the same deterministic stream.
    rng: u64,
    /// Gilbert–Elliott state: currently in the bad (bursty) state.
    burst_bad: bool,
}

/// Runtime-adjustable impairments for a node's out-links.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    links: Mutex<HashMap<NodeId, LinkEntry>>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::with_seed(0)
    }
}

impl FaultPlan {
    /// A plan with no impairments and seed zero.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with no impairments whose per-link decision streams are
    /// determined by `seed`.
    pub fn with_seed(seed: u64) -> Self {
        FaultPlan { seed, links: Mutex::new(HashMap::new()) }
    }

    fn entry_rng_seed(&self, neighbor: NodeId) -> u64 {
        // Decorrelate per-link streams from the plan seed.
        let mut s = self.seed ^ (neighbor.index() as u64).wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut s);
        s
    }

    /// Sets the impairment toward `neighbor`, replacing any previous one
    /// (the link's RNG stream continues where it left off).
    pub fn set(&self, neighbor: NodeId, fault: LinkFault) {
        let mut links = self.links.lock();
        match links.get_mut(&neighbor) {
            Some(entry) => {
                entry.fault = fault;
                if fault.burst.is_none() {
                    entry.burst_bad = false;
                }
            }
            None => {
                let rng = self.entry_rng_seed(neighbor);
                links.insert(neighbor, LinkEntry { fault, rng, burst_bad: false });
            }
        }
    }

    /// Removes the impairment toward `neighbor`.
    pub fn clear(&self, neighbor: NodeId) {
        self.links.lock().remove(&neighbor);
    }

    /// Current impairment toward `neighbor` (default: none).
    pub fn get(&self, neighbor: NodeId) -> LinkFault {
        self.links.lock().get(&neighbor).map(|e| e.fault).unwrap_or_default()
    }

    /// Decides the fate of one datagram toward `neighbor`, advancing
    /// the link's deterministic RNG and burst state.
    pub fn decide(&self, neighbor: NodeId) -> FaultVerdict {
        let mut links = self.links.lock();
        let Some(entry) = links.get_mut(&neighbor) else {
            return FaultVerdict::clean(Micros::ZERO);
        };
        let fault = entry.fault;
        if fault.blackhole {
            return FaultVerdict {
                drop: true,
                delay: Micros::ZERO,
                duplicate: false,
                corrupt: false,
                corrupt_seed: 0,
            };
        }
        // Work on local copies of the mutable state so the borrow of
        // `entry` stays simple; write back before returning.
        let mut rng = entry.rng;
        let mut burst_bad = entry.burst_bad;
        // Advance the Gilbert–Elliott chain first, then sample loss in
        // the (possibly new) state.
        let mut drop = false;
        if let Some(burst) = fault.burst {
            let flip = unit(&mut rng);
            if burst_bad {
                if flip < burst.p_exit {
                    burst_bad = false;
                }
            } else if flip < burst.p_enter {
                burst_bad = true;
            }
            let state_loss = if burst_bad { burst.bad_loss } else { burst.good_loss };
            if state_loss > 0.0 && unit(&mut rng) < state_loss {
                drop = true;
            }
        }
        if !drop && fault.loss > 0.0 && unit(&mut rng) < fault.loss.clamp(0.0, 1.0) {
            drop = true;
        }
        let verdict = if drop {
            FaultVerdict {
                drop: true,
                delay: Micros::ZERO,
                duplicate: false,
                corrupt: false,
                corrupt_seed: 0,
            }
        } else {
            let mut delay = fault.delay;
            if fault.jitter > Micros::ZERO {
                let extra = splitmix64(&mut rng) % (fault.jitter.as_micros() + 1);
                delay = delay.saturating_add(Micros::from_micros(extra));
            }
            if fault.reorder > 0.0 && unit(&mut rng) < fault.reorder {
                delay = delay.saturating_add(REORDER_HOLD);
            }
            let duplicate = fault.duplicate > 0.0 && unit(&mut rng) < fault.duplicate;
            let mut corrupt = false;
            let mut corrupt_seed = 0;
            if fault.corrupt > 0.0 && unit(&mut rng) < fault.corrupt {
                corrupt = true;
                corrupt_seed = splitmix64(&mut rng);
            }
            FaultVerdict { drop: false, delay, duplicate, corrupt, corrupt_seed }
        };
        entry.rng = rng;
        entry.burst_bad = burst_bad;
        verdict
    }
}

/// Flips one byte of `datagram` according to `corrupt_seed` (never the
/// identity: the XOR pattern is forced nonzero).
pub fn corrupt_in_place(datagram: &mut [u8], corrupt_seed: u64) {
    if datagram.is_empty() {
        return;
    }
    let pos = (corrupt_seed as usize) % datagram.len();
    let xor = ((corrupt_seed >> 32) as u8) | 1;
    datagram[pos] ^= xor;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_json_fault_fills_defaults() {
        let fault: LinkFault = serde_json::from_str(r#"{"loss": 0.3, "corrupt": 0.1}"#).unwrap();
        assert_eq!(fault.loss, 0.3);
        assert_eq!(fault.corrupt, 0.1);
        assert_eq!(fault.delay, Micros::ZERO);
        assert!(!fault.blackhole);
        assert!(fault.burst.is_none());
    }

    #[test]
    fn set_get_clear() {
        let plan = FaultPlan::new();
        let n = NodeId::new(4);
        assert_eq!(plan.get(n), LinkFault::default());
        let f = LinkFault::lossy(0.25, Micros::from_millis(9));
        plan.set(n, f);
        assert_eq!(plan.get(n), f);
        // Other neighbours are untouched.
        assert_eq!(plan.get(NodeId::new(5)), LinkFault::default());
        plan.clear(n);
        assert_eq!(plan.get(n), LinkFault::default());
    }

    #[test]
    fn unimpaired_link_passes_everything_clean() {
        let plan = FaultPlan::with_seed(1);
        let n = NodeId::new(0);
        for _ in 0..100 {
            let v = plan.decide(n);
            assert!(!v.drop && !v.duplicate && !v.corrupt);
            assert_eq!(v.delay, Micros::ZERO);
        }
    }

    #[test]
    fn blackhole_drops_everything() {
        let plan = FaultPlan::with_seed(1);
        let n = NodeId::new(0);
        plan.set(n, LinkFault { blackhole: true, ..LinkFault::default() });
        for _ in 0..50 {
            assert!(plan.decide(n).drop);
        }
    }

    #[test]
    fn loss_frequency_tracks_probability() {
        let plan = FaultPlan::with_seed(42);
        let n = NodeId::new(3);
        plan.set(n, LinkFault::lossy(0.3, Micros::ZERO));
        let drops = (0..20_000).filter(|_| plan.decide(n).drop).count();
        let freq = drops as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn burst_loss_is_bursty_but_matches_stationary_rate() {
        let burst = BurstLoss { p_enter: 0.02, p_exit: 0.2, good_loss: 0.001, bad_loss: 0.9 };
        let plan = FaultPlan::with_seed(7);
        let n = NodeId::new(1);
        plan.set(n, LinkFault { burst: Some(burst), ..LinkFault::default() });
        let n_draws = 50_000;
        let outcomes: Vec<bool> = (0..n_draws).map(|_| plan.decide(n).drop).collect();
        let rate = outcomes.iter().filter(|&&d| d).count() as f64 / n_draws as f64;
        let expect = burst.stationary_loss();
        assert!((rate - expect).abs() < 0.05, "rate {rate} vs stationary {expect}");
        // Bursts: the probability a drop is followed by another drop
        // must far exceed the marginal rate.
        let mut after_drop = 0usize;
        let mut drop_pairs = 0usize;
        for w in outcomes.windows(2) {
            if w[0] {
                after_drop += 1;
                if w[1] {
                    drop_pairs += 1;
                }
            }
        }
        let cond = drop_pairs as f64 / after_drop.max(1) as f64;
        assert!(cond > 2.0 * rate, "conditional drop rate {cond} vs marginal {rate}");
    }

    #[test]
    fn jitter_bounds_delay_and_reorder_holds() {
        let plan = FaultPlan::with_seed(5);
        let n = NodeId::new(2);
        let base = Micros::from_millis(3);
        let jitter = Micros::from_millis(2);
        plan.set(n, LinkFault { delay: base, jitter, reorder: 0.5, ..LinkFault::default() });
        let mut held = 0;
        for _ in 0..1_000 {
            let v = plan.decide(n);
            assert!(v.delay >= base);
            if v.delay > base.saturating_add(jitter) {
                held += 1;
                assert!(v.delay <= base.saturating_add(jitter).saturating_add(REORDER_HOLD));
            }
        }
        assert!(held > 300, "reorder held only {held}/1000");
    }

    #[test]
    fn same_seed_same_stream_different_seed_diverges() {
        let replay = |seed: u64| -> Vec<FaultVerdict> {
            let plan = FaultPlan::with_seed(seed);
            let n = NodeId::new(6);
            plan.set(
                n,
                LinkFault {
                    loss: 0.2,
                    jitter: Micros::from_millis(1),
                    duplicate: 0.1,
                    corrupt: 0.1,
                    burst: Some(BurstLoss {
                        p_enter: 0.05,
                        p_exit: 0.3,
                        good_loss: 0.0,
                        bad_loss: 0.8,
                    }),
                    ..LinkFault::default()
                },
            );
            (0..2_000).map(|_| plan.decide(n)).collect()
        };
        assert_eq!(replay(11), replay(11), "same seed must replay identically");
        assert_ne!(replay(11), replay(12), "different seeds must diverge");
    }

    #[test]
    fn reinjecting_preserves_the_stream() {
        // set → clear-to-clean → set again must continue the same RNG
        // stream as set-once, because chaos schedules heal and re-inject.
        let run = |interrupt: bool| -> Vec<FaultVerdict> {
            let plan = FaultPlan::with_seed(99);
            let n = NodeId::new(4);
            let f = LinkFault { loss: 0.5, ..LinkFault::default() };
            plan.set(n, f);
            let mut out: Vec<FaultVerdict> = (0..100).map(|_| plan.decide(n)).collect();
            if interrupt {
                plan.set(n, LinkFault::default());
                plan.set(n, f);
            }
            out.extend((0..100).map(|_| plan.decide(n)));
            out
        };
        let (a, b) = (run(false), run(true));
        // The interrupted run's clean interlude draws nothing from the
        // stream, so both runs see identical drop decisions.
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.iter().map(|v| v.drop).collect::<Vec<_>>(),
            b.iter().map(|v| v.drop).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corruption_always_changes_a_byte() {
        for seed in 0..500u64 {
            let mut data = vec![0xAB; 32];
            corrupt_in_place(&mut data, seed);
            assert_eq!(data.iter().filter(|&&b| b != 0xAB).count(), 1);
        }
        let mut empty: Vec<u8> = Vec::new();
        corrupt_in_place(&mut empty, 1); // must not panic
    }
}
