//! Programmable link impairment for localhost deployments.
//!
//! A real overlay link has propagation delay and (sometimes) loss; on
//! localhost both must be synthesized. Every outgoing datagram passes
//! through the sending node's [`FaultPlan`], which drops it with the
//! link's loss probability and otherwise delays it by the link's
//! configured latency. Both components are adjustable at runtime, which
//! is how tests and examples inject the paper's "problems around a
//! node".

use dg_topology::{Micros, NodeId};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Impairment applied to one directed link (this node → neighbour).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFault {
    /// Drop probability per datagram.
    pub loss: f64,
    /// Added delay per datagram (emulated propagation + injected).
    pub delay: Micros,
}

/// Runtime-adjustable impairments for a node's out-links.
#[derive(Debug, Default)]
pub struct FaultPlan {
    links: RwLock<HashMap<NodeId, LinkFault>>,
}

impl FaultPlan {
    /// A plan with no impairments.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Sets the impairment toward `neighbor`, replacing any previous one.
    pub fn set(&self, neighbor: NodeId, fault: LinkFault) {
        self.links.write().insert(neighbor, fault);
    }

    /// Removes the impairment toward `neighbor`.
    pub fn clear(&self, neighbor: NodeId) {
        self.links.write().remove(&neighbor);
    }

    /// Current impairment toward `neighbor` (default: none).
    pub fn get(&self, neighbor: NodeId) -> LinkFault {
        self.links.read().get(&neighbor).copied().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let plan = FaultPlan::new();
        let n = NodeId::new(4);
        assert_eq!(plan.get(n), LinkFault::default());
        let f = LinkFault { loss: 0.25, delay: Micros::from_millis(9) };
        plan.set(n, f);
        assert_eq!(plan.get(n), f);
        // Other neighbours are untouched.
        assert_eq!(plan.get(NodeId::new(5)), LinkFault::default());
        plan.clear(n);
        assert_eq!(plan.get(n), LinkFault::default());
    }
}
