//! Overload detection with hysteresis and hold-down.
//!
//! An overloaded dissemination-graph node that keeps duplicating
//! packets amplifies its own congestion collapse: every admitted packet
//! fans out onto several out-links, so pressure feeds redundancy feeds
//! pressure. The [`OverloadDetector`] watches two signals — a smoothed
//! (EWMA) depth of the outbound data queue and the node's shed counters
//! — and drives a small, damped state machine of degradation *levels*:
//!
//! ```text
//!              pressure ≥ hold-down          pressure ≥ hold-down
//!   level 0  ─────────────────────▶ level 1 ─────────────────────▶ level 2
//!   (full)  ◀───────────────────── (bulk    ◀───────────────────  (bulk +
//!            quiet for a hold-down  single-   exit only from any    timely
//!            (depth low, no sheds)  path)     level, to level 0    degraded)
//! ```
//!
//! Every transition — enter, escalate, exit — is separated from the
//! previous one by at least the configured hold-down, exactly like the
//! route-flap damper's admission window: a load spike shorter than the
//! hold-down cannot flap routes, and recovery must be *sustained*
//! (depth below the exit threshold **and** zero new sheds for a full
//! hold-down) before full redundancy is restored. The exit threshold
//! sits below the enter threshold, so depth hovering at the boundary
//! cannot oscillate the detector.
//!
//! The mapping from level to per-class redundancy lives in the node
//! (see `OverlayNode`): surgical keeps its targeted graph at every
//! level, timely falls back to its two disjoint paths at level 2, and
//! bulk drops to a single path at level 1.

use dg_topology::Micros;
use std::time::Duration;

/// The deepest degradation level ([`OverloadDetector::level`] range is
/// `0..=MAX_LEVEL`).
pub const MAX_LEVEL: u8 = 2;

/// EWMA smoothing factor for the queue-depth signal. One constant for
/// every node: the hold-down, not the smoothing, is the tuning knob.
const DEPTH_ALPHA: f64 = 0.3;

/// Tunables of the [`OverloadDetector`] (derived from `NodeConfig`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadConfig {
    /// Capacity of the outbound data queue the depth signal is measured
    /// against.
    pub queue_bound: u64,
    /// Smoothed-depth fraction of `queue_bound` at which pressure is
    /// declared.
    pub enter_depth: f64,
    /// Smoothed-depth fraction below which (with zero sheds) the node
    /// counts as quiet.
    pub exit_depth: f64,
    /// Minimum dwell between transitions, and the sustained-quiet
    /// horizon required before exit.
    pub hold_down: Duration,
}

impl OverloadConfig {
    /// A small-queue test configuration.
    pub fn new(queue_bound: u64, hold_down: Duration) -> Self {
        OverloadConfig { queue_bound, enter_depth: 0.5, exit_depth: 0.125, hold_down }
    }
}

/// A state change reported by [`OverloadDetector::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadTransition {
    /// Pressure first crossed the enter threshold: level 0 → 1.
    Enter {
        /// The level entered (always 1).
        level: u8,
    },
    /// Pressure persisted for another hold-down: the level deepened.
    Escalate {
        /// The new, deeper level.
        level: u8,
    },
    /// Sustained quiet: the node returned to level 0.
    Exit {
        /// The level the detector was at before exiting.
        from_level: u8,
    },
}

/// Damped, hysteretic overload state machine (see the module docs).
#[derive(Debug, Clone)]
pub struct OverloadDetector {
    config: OverloadConfig,
    level: u8,
    /// Smoothed queue depth (EWMA over `observe` calls).
    depth_ewma: f64,
    /// Shed-counter total at the previous observation.
    last_shed_total: u64,
    /// When the last admitted transition happened (`None` before any).
    last_transition: Option<Micros>,
    /// Start of the current uninterrupted quiet streak (`None` while
    /// pressured).
    quiet_since: Option<Micros>,
}

impl OverloadDetector {
    /// A detector at level 0 with no history.
    pub fn new(config: OverloadConfig) -> Self {
        OverloadDetector {
            config,
            level: 0,
            depth_ewma: 0.0,
            last_shed_total: 0,
            last_transition: None,
            quiet_since: None,
        }
    }

    /// The current degradation level (0 = full redundancy).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The smoothed queue-depth estimate.
    pub fn depth_ewma(&self) -> f64 {
        self.depth_ewma
    }

    /// Feeds one observation of the outbound data-queue depth and the
    /// monotone total of shed packets, returning the admitted
    /// transition, if any.
    ///
    /// Call this periodically (the node does so once per hello tick);
    /// `now` must be monotone across calls.
    pub fn observe(
        &mut self,
        now: Micros,
        queue_depth: u64,
        shed_total: u64,
    ) -> Option<OverloadTransition> {
        self.depth_ewma = DEPTH_ALPHA * queue_depth as f64 + (1.0 - DEPTH_ALPHA) * self.depth_ewma;
        let shed_delta = shed_total.saturating_sub(self.last_shed_total);
        self.last_shed_total = shed_total;

        let bound = self.config.queue_bound as f64;
        let pressured = shed_delta > 0 || self.depth_ewma >= self.config.enter_depth * bound;
        let quiet = shed_delta == 0 && self.depth_ewma <= self.config.exit_depth * bound;

        // Track the quiet streak regardless of the hold-down: exit
        // requires quiet to have *persisted*, not merely to coincide
        // with the hold-down expiring.
        if quiet {
            self.quiet_since.get_or_insert(now);
        } else {
            self.quiet_since = None;
        }

        let hold = Micros::from_micros(self.config.hold_down.as_micros() as u64);
        let held = self.last_transition.is_none_or(|at| now.saturating_sub(at) >= hold);
        if !held {
            return None;
        }

        if pressured && self.level < MAX_LEVEL {
            self.level += 1;
            self.last_transition = Some(now);
            return Some(if self.level == 1 {
                OverloadTransition::Enter { level: 1 }
            } else {
                OverloadTransition::Escalate { level: self.level }
            });
        }
        if self.level > 0 {
            let quiet_long_enough =
                self.quiet_since.is_some_and(|since| now.saturating_sub(since) >= hold);
            if quiet_long_enough {
                let from_level = self.level;
                self.level = 0;
                self.last_transition = Some(now);
                return Some(OverloadTransition::Exit { from_level });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Micros {
        Micros::from_millis(v)
    }

    fn detector() -> OverloadDetector {
        OverloadDetector::new(OverloadConfig::new(100, Duration::from_millis(100)))
    }

    #[test]
    fn idle_node_never_transitions() {
        let mut d = detector();
        for t in 0..50 {
            assert_eq!(d.observe(ms(t * 10), 2, 0), None);
        }
        assert_eq!(d.level(), 0);
    }

    #[test]
    fn pressure_enters_then_escalates_after_hold_down() {
        let mut d = detector();
        // Shedding alone is enough pressure, even at low depth.
        assert_eq!(d.observe(ms(0), 0, 5), Some(OverloadTransition::Enter { level: 1 }));
        // Still pressured, but inside the hold-down: no transition.
        assert_eq!(d.observe(ms(50), 90, 10), None);
        assert_eq!(d.level(), 1);
        // Hold-down over and still pressured: escalate.
        assert_eq!(d.observe(ms(100), 90, 15), Some(OverloadTransition::Escalate { level: 2 }));
        // Level 2 is the floor; continued pressure changes nothing.
        assert_eq!(d.observe(ms(300), 95, 20), None);
        assert_eq!(d.level(), MAX_LEVEL);
    }

    #[test]
    fn exit_requires_sustained_quiet() {
        let mut d = detector();
        d.observe(ms(0), 0, 5);
        assert_eq!(d.level(), 1);
        // Quiet begins at t=200; a shed blip at t=250 re-pressures
        // (past the hold-down, so it also escalates) and resets the
        // quiet streak.
        assert_eq!(d.observe(ms(200), 0, 5), None);
        assert_eq!(d.observe(ms(250), 0, 6), Some(OverloadTransition::Escalate { level: 2 }));
        // Quiet again from t=300; the streak completes a hold-down at
        // t=400.
        assert_eq!(d.observe(ms(300), 0, 6), None);
        assert_eq!(d.observe(ms(380), 0, 6), None, "quiet streak not yet a hold-down long");
        assert_eq!(d.observe(ms(400), 0, 6), Some(OverloadTransition::Exit { from_level: 2 }));
        assert_eq!(d.level(), 0);
    }

    #[test]
    fn depth_hysteresis_gap_prevents_flapping() {
        let mut d = detector();
        // Drive the EWMA well above the enter threshold.
        for t in 0..10 {
            d.observe(ms(t), 100, 0);
        }
        assert_eq!(d.level(), 1);
        // Let the EWMA decay into the hysteresis band while the
        // hold-down still suppresses transitions.
        for t in 1..10 {
            assert_eq!(d.observe(ms(t * 10), 30, 0), None);
        }
        // Depth hovering between the exit (12.5) and enter (50)
        // thresholds: neither pressured nor quiet, so the level holds
        // forever.
        for t in 0..50 {
            assert_eq!(d.observe(ms(1_000 + t * 100), 30, 0), None);
        }
        assert_eq!(d.level(), 1);
    }

    #[test]
    fn transitions_never_closer_than_hold_down() {
        let mut d = detector();
        let mut last: Option<Micros> = None;
        let mut shed = 0;
        for t in 0..200u64 {
            // Alternate bursts of pressure and quiet every 30 ms — much
            // faster than the 100 ms hold-down.
            if (t / 3) % 2 == 0 {
                shed += 1;
            }
            if let Some(tr) = d.observe(ms(t * 10), 0, shed) {
                let now = ms(t * 10);
                if let Some(prev) = last {
                    assert!(
                        now.saturating_sub(prev) >= ms(100),
                        "transition {tr:?} at {now:?} only {:?} after previous",
                        now.saturating_sub(prev)
                    );
                }
                last = Some(now);
            }
        }
    }
}
