//! `dg-node` — a standalone overlay transport daemon.
//!
//! Runs one overlay node from a JSON config: it joins the overlay,
//! monitors its links, floods link state, and forwards dissemination-
//! graph traffic for any flow crossing it. Applications attach through
//! the in-process session API (see `dg_overlay::cluster` for the
//! single-machine variant); a production deployment would front this
//! daemon with an IPC shim.
//!
//! Usage:
//!   dg-node --emit-topology topology.json        # write the preset
//!   dg-node --config node.json                   # run a node
//!   dg-node --config node.json --run-secs 30 --metrics-json out.json
//!   dg-node --help                               # full flag reference
//!
//! `--run-secs N` exits after N seconds instead of running forever, and
//! `--metrics-json PATH` dumps the node's full metrics snapshot
//! (counters, per-flow/per-link cells, event journal) as JSON on
//! shutdown; `-` writes it to stdout.
//!
//! `--chaos-json PATH` replays a [`dg_overlay::chaos::ChaosSchedule`]
//! against this node's own out-links: edge impairments whose source is
//! this node (and node-wide impairments naming it) are applied at their
//! scheduled offsets; events aimed at other nodes are skipped, and
//! crash/restart events are warned about and ignored — killing a
//! standalone daemon is the operator's job, not its own.
//!
//! `--sla-json PATH` loads an [`dg_overlay::SlaPlan`] and opens a
//! sending session for every flow in it that originates at this node,
//! in the flow's SLA service class (bulk/timely/surgical) with the
//! class's scheme preference and deadline budget. The sessions are held
//! for the daemon's lifetime, so admission control, class shed bands,
//! and overload downgrades all apply to them.
//!
//! Config format:
//! ```json
//! {
//!   "topology": "topology.json",
//!   "node": "NYC",
//!   "listen": "0.0.0.0:7100",
//!   "peers": { "CHI": "192.0.2.10:7100", "WAS": "192.0.2.11:7100" },
//!   "hello_interval_ms": 50,
//!   "link_state_interval_ms": 200
//! }
//! ```

use dg_cli::Cli;
use dg_overlay::chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
use dg_overlay::session::FlowSender;
use dg_overlay::{NodeConfig, OverlayHandle, OverlayNode, Runtime, SlaPlan};
use dg_topology::{Graph, NodeId};
use serde::Deserialize;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Deserialize)]
struct FileConfig {
    topology: String,
    node: String,
    listen: SocketAddr,
    peers: HashMap<String, SocketAddr>,
    #[serde(default = "default_hello_ms")]
    hello_interval_ms: u64,
    #[serde(default = "default_ls_ms")]
    link_state_interval_ms: u64,
}

fn default_hello_ms() -> u64 {
    50
}

fn default_ls_ms() -> u64 {
    200
}

fn cli() -> Cli {
    Cli::new("dg-node", "standalone overlay transport daemon")
        .flag("config", "FILE", "JSON node configuration to run")
        .flag("emit-topology", "FILE", "write the 12-node preset topology and exit")
        .flag("run-secs", "N", "exit after N seconds instead of running forever")
        .flag("metrics-json", "PATH", "dump the metrics snapshot on shutdown ('-' for stdout)")
        .flag("chaos-json", "PATH", "replay a chaos schedule against this node's out-links")
        .flag("sla-json", "PATH", "open per-flow SLA-class sending sessions sourced at this node")
        .flag(
            "runtime",
            "MODE",
            "node runtime: 'threaded' (default), 'reactor', or 'reactor:N' with N workers",
        )
}

fn main() {
    let cli = cli();
    let matches = cli.parse_env();
    if let Some(path) = matches.value("emit-topology") {
        let graph = dg_topology::presets::north_america_12();
        let json = serde_json::to_string_pretty(&graph).expect("graph serializes");
        std::fs::write(path, json).expect("topology file is writable");
        println!("wrote {path}");
        return;
    }
    let Some(config_path) = matches.value("config") else {
        eprintln!("dg-node: either --config or --emit-topology is required\n\n{}", cli.usage());
        std::process::exit(2);
    };
    let run_secs = match matches.get::<u64>("run-secs") {
        Ok(v) => v,
        Err(e) => cli.exit_with(&e),
    };
    let metrics_json = matches.value("metrics-json").map(str::to_string);
    let chaos_json = matches.value("chaos-json").map(str::to_string);
    let sla_json = matches.value("sla-json").map(str::to_string);
    let runtime = matches.value("runtime").map(str::to_string);
    run(config_path, run_secs, metrics_json, chaos_json, sla_json, runtime);
}

fn run(
    config_path: &str,
    run_secs: Option<u64>,
    metrics_json: Option<String>,
    chaos_json: Option<String>,
    sla_json: Option<String>,
    runtime_descriptor: Option<String>,
) {
    let raw = std::fs::read_to_string(config_path)
        .unwrap_or_else(|e| panic!("cannot read {config_path}: {e}"));
    let file: FileConfig = serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad config: {e}"));
    let topo_raw = std::fs::read_to_string(&file.topology)
        .unwrap_or_else(|e| panic!("cannot read topology {}: {e}", file.topology));
    let graph: Graph =
        serde_json::from_str(&topo_raw).unwrap_or_else(|e| panic!("bad topology: {e}"));

    let me = graph
        .node_by_name(&file.node)
        .unwrap_or_else(|| panic!("node {:?} not in topology", file.node));
    let mut peers = HashMap::new();
    for (name, addr) in &file.peers {
        let peer =
            graph.node_by_name(name).unwrap_or_else(|| panic!("peer {name:?} not in topology"));
        peers.insert(peer, *addr);
    }
    let config = NodeConfig::builder(me, file.listen)
        .hello_interval(Duration::from_millis(file.hello_interval_ms))
        .link_state_interval(Duration::from_millis(file.link_state_interval_ms))
        .peers(peers)
        .build()
        .unwrap_or_else(|e| panic!("bad config: {e}"));

    let mut chaos: Vec<ChaosEvent> = chaos_json
        .map(|path| {
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read chaos schedule {path}: {e}"));
            let schedule = ChaosSchedule::from_json(&raw)
                .unwrap_or_else(|e| panic!("bad chaos schedule: {e}"));
            let mut events = schedule.events;
            events.sort_by_key(|e| e.at_ms);
            events
        })
        .unwrap_or_default();

    let graph = Arc::new(graph);
    // --runtime beats DG_RUNTIME beats the threaded default.
    let descriptor = runtime_descriptor
        .or_else(|| std::env::var("DG_RUNTIME").ok())
        .unwrap_or_else(|| "threaded".to_string());
    let runtime = Runtime::from_descriptor(&descriptor);
    let handle = OverlayNode::spawn_on(&runtime, config, Arc::clone(&graph)).expect("node starts");
    println!(
        "dg-node {} listening on {} with {} peers ({:?} runtime)",
        file.node,
        handle.local_addr(),
        file.peers.len(),
        runtime.mode()
    );
    // SLA plan: open (and hold) a class-appropriate sending session for
    // every flow sourced here, so admission, shed bands, and overload
    // downgrades apply for the daemon's lifetime.
    let _sla_senders: Vec<FlowSender> = sla_json
        .map(|path| {
            let raw = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read sla plan {path}: {e}"));
            let plan = SlaPlan::from_json(&raw).unwrap_or_else(|e| panic!("bad sla plan: {e}"));
            open_sla_senders(&handle, &graph, me, &plan)
        })
        .unwrap_or_default();
    // Report stats periodically until killed (or the run limit passes);
    // tick finely while chaos events are still pending.
    let started = std::time::Instant::now();
    let mut next_stats = Duration::from_secs(10);
    loop {
        let stats_due = {
            let nap = next_stats.saturating_sub(started.elapsed());
            let nap = match chaos.first() {
                Some(event) => nap
                    .min(Duration::from_millis(event.at_ms).saturating_sub(started.elapsed()))
                    .max(Duration::from_millis(1)),
                None => nap,
            };
            match run_secs {
                Some(secs) => {
                    let left = Duration::from_secs(secs).saturating_sub(started.elapsed());
                    if left.is_zero() {
                        break;
                    }
                    std::thread::sleep(left.min(nap));
                }
                None => std::thread::sleep(nap),
            }
            let elapsed = started.elapsed();
            let due = chaos.iter().take_while(|e| e.at_ms as u128 <= elapsed.as_millis()).count();
            for event in chaos.drain(..due) {
                apply_chaos_to_self(&handle, &graph, me, &event.action);
            }
            elapsed >= next_stats
        };
        if !stats_due {
            continue;
        }
        next_stats += Duration::from_secs(10);
        let c = handle.metrics_snapshot().counters;
        println!(
            "stats: rx {} tx {} delivered {} dup {} expired {} nack {} retx {}",
            c.data_received,
            c.data_sent,
            c.delivered_on_time + c.delivered_late,
            c.duplicates,
            c.expired,
            c.nack_messages_sent,
            c.retransmissions_served
        );
    }
    let snapshot = handle.metrics_snapshot();
    handle.shutdown();
    runtime.shutdown();
    if let Some(path) = metrics_json {
        let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(&path, json).expect("metrics file is writable");
            println!("wrote metrics to {path}");
        }
    }
}

/// Opens the slice of an SLA plan this daemon owns: one sending session
/// per flow sourced here, in the flow's class. Unknown sites and
/// admission refusals are warned about and skipped — a partial plan
/// still serves the flows it can.
fn open_sla_senders(
    handle: &OverlayHandle,
    graph: &Graph,
    me: NodeId,
    plan: &SlaPlan,
) -> Vec<FlowSender> {
    let params = dg_core::scheme::SchemeParams::default();
    let mut senders = Vec::new();
    for spec in plan.sourced_at(graph, me) {
        let (flow, class, requirement) = match spec.resolve(graph) {
            Ok(resolved) => resolved,
            Err(site) => {
                eprintln!(
                    "sla: skipping {}->{}: unknown site {site:?}",
                    spec.source, spec.destination
                );
                continue;
            }
        };
        let scheme = match dg_core::scheme::build_scheme(
            class.preferred_scheme(),
            graph,
            flow,
            requirement,
            &params,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sla: skipping {flow}: {e}");
                continue;
            }
        };
        match handle.open_sender_with_class(scheme, requirement, class) {
            Ok(sender) => {
                println!(
                    "sla: opened {} -> {} as {class} (deadline {} ms)",
                    spec.source,
                    spec.destination,
                    requirement.deadline.as_millis()
                );
                senders.push(sender);
            }
            Err(e) => eprintln!("sla: skipping {flow}: {e}"),
        }
    }
    senders
}

/// Applies the slice of a chaos action this daemon can enact: faults on
/// its own out-links. Everything else is another node's business (or,
/// for crash/restart, the operator's) and is skipped with a warning
/// where that could surprise.
fn apply_chaos_to_self(handle: &OverlayHandle, graph: &Graph, me: NodeId, action: &ChaosAction) {
    match *action {
        ChaosAction::InjectEdge { edge, fault } => {
            let info = graph.edge(edge);
            if info.src == me {
                println!("chaos: impairing link to {}", graph.node(info.dst).name);
                handle.faults().set(info.dst, fault);
            }
        }
        ChaosAction::HealEdge { edge } => {
            let info = graph.edge(edge);
            if info.src == me {
                println!("chaos: healing link to {}", graph.node(info.dst).name);
                handle.faults().clear(info.dst);
            }
        }
        ChaosAction::ImpairNode { node, fault } => {
            if node == me {
                println!("chaos: impairing all out-links");
                for &e in graph.out_edges(me) {
                    handle.faults().set(graph.edge(e).dst, fault);
                }
            }
        }
        ChaosAction::HealNode { node } => {
            if node == me {
                println!("chaos: healing all out-links");
                for &e in graph.out_edges(me) {
                    handle.faults().clear(graph.edge(e).dst);
                }
            }
        }
        ChaosAction::CrashNode { node } | ChaosAction::RestartNode { node } => {
            if node == me {
                eprintln!(
                    "chaos: ignoring crash/restart for this node — \
                     kill or relaunch the daemon process instead"
                );
            }
        }
        ChaosAction::PanicThread { node, thread } => {
            if node == me {
                println!("chaos: injecting panic into {thread:?} thread");
                handle.inject_thread_panic(thread);
            }
        }
        ChaosAction::Overload { node, shipments, dwell_ms } => {
            if node == me {
                println!("chaos: flooding outbound queue with {shipments} shipments");
                handle.inject_overload(shipments, Duration::from_millis(dwell_ms));
            }
        }
    }
}
