//! `dg-node` — a standalone overlay transport daemon.
//!
//! Runs one overlay node from a JSON config: it joins the overlay,
//! monitors its links, floods link state, and forwards dissemination-
//! graph traffic for any flow crossing it. Applications attach through
//! the in-process session API (see `dg_overlay::cluster` for the
//! single-machine variant); a production deployment would front this
//! daemon with an IPC shim.
//!
//! Usage:
//!   dg-node --emit-topology topology.json        # write the preset
//!   dg-node --config node.json                   # run a node
//!   dg-node --config node.json --run-secs 30 --metrics-json out.json
//!   dg-node --help                               # full flag reference
//!
//! Once the UDP socket is bound and the protocol threads are running,
//! the daemon prints a machine-parseable readiness line to stdout:
//!
//! ```text
//! READY <node> <addr> <runtime>
//! ```
//!
//! Deployment harnesses (`dg-emu`) wait for this line instead of
//! guessing at startup latency. All failures to load or validate the
//! config, topology, chaos, or SLA files exit with code 1 and a
//! diagnostic naming the file and the parse error — a daemon never
//! panics over operator input.
//!
//! `--run-secs N` / `--run-ms N` exit after the given span instead of
//! running forever, and `--metrics-json PATH` dumps the node's full
//! metrics snapshot (counters, per-flow/per-link cells, event journal,
//! link-state digest) as JSON on shutdown; `-` writes it to stdout.
//! File dumps are atomic (temp file + rename) so an out-of-process
//! collector never observes partial JSON — even if the daemon is
//! SIGKILLed mid-dump, the destination holds either nothing or a
//! complete document. `--baseline-at-ms N --baseline-json PATH` writes
//! a second, mid-run snapshot the same way, so collectors can compute
//! post-heal deltas from cumulative counters.
//!
//! `--chaos-json PATH` replays a [`dg_overlay::chaos::ChaosSchedule`]
//! against this node's own out-links: edge impairments whose source is
//! this node (and node-wide impairments naming it) are applied at their
//! scheduled offsets; events aimed at other nodes are skipped, and
//! crash/restart events are warned about and ignored — killing a
//! standalone daemon is the operator's job, not its own (`dg-emu` uses
//! `ChaosSchedule::shard_for_node` to pre-slice schedules so daemons
//! only ever see their own events).
//!
//! `--sla-json PATH` loads an [`dg_overlay::SlaPlan`] and opens a
//! sending session for every flow in it that originates at this node,
//! in the flow's SLA service class (bulk/timely/surgical) with the
//! class's scheme preference and deadline budget. The sessions are held
//! for the daemon's lifetime, so admission control, class shed bands,
//! and overload downgrades all apply to them. `--traffic-pps N` drives
//! an RTP-like fixed-rate control stream (64-byte frames) through every
//! opened sender — the application workload for deployment soaks —
//! optionally stopping at `--traffic-stop-ms` so in-flight traffic can
//! drain before the final snapshot.
//!
//! `--quiesce-at-ms N` pauses link-state *origination* N ms into the
//! run (hellos, digests, and flooding keep running): databases settle
//! to a fixed per-origin fingerprint, so snapshots taken across many
//! daemons at slightly different instants remain comparable.
//!
//! Config format: see [`dg_overlay::NodeFileConfig`] — identity fields
//! plus optional tuning overrides:
//! ```json
//! {
//!   "topology": "topology.json",
//!   "node": "NYC",
//!   "listen": "0.0.0.0:7100",
//!   "peers": { "CHI": "192.0.2.10:7100", "WAS": "192.0.2.11:7100" },
//!   "hello_interval_ms": 50,
//!   "link_state_interval_ms": 200
//! }
//! ```

use dg_cli::Cli;
use dg_overlay::chaos::{ChaosAction, ChaosEvent, ChaosSchedule};
use dg_overlay::session::FlowSender;
use dg_overlay::{MetricsSnapshot, NodeFileConfig, OverlayHandle, OverlayNode, Runtime, SlaPlan};
use dg_topology::{Graph, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn cli() -> Cli {
    Cli::new("dg-node", "standalone overlay transport daemon")
        .flag("config", "FILE", "JSON node configuration to run")
        .flag("emit-topology", "FILE", "write the 12-node preset topology and exit")
        .flag("run-secs", "N", "exit after N seconds instead of running forever")
        .flag("run-ms", "N", "exit after N milliseconds (finer-grained --run-secs)")
        .flag("metrics-json", "PATH", "dump the metrics snapshot on shutdown ('-' for stdout)")
        .flag("baseline-json", "PATH", "dump a mid-run snapshot at --baseline-at-ms")
        .flag("baseline-at-ms", "N", "when to take the baseline snapshot, in ms into the run")
        .flag("quiesce-at-ms", "N", "pause link-state origination N ms into the run")
        .flag("chaos-json", "PATH", "replay a chaos schedule against this node's out-links")
        .flag("sla-json", "PATH", "open per-flow SLA-class sending sessions sourced at this node")
        .flag("traffic-pps", "N", "drive N packets/s through every SLA sender opened here")
        .flag("traffic-stop-ms", "N", "stop the traffic driver N ms into the run")
        .flag(
            "epoch-us",
            "T",
            "anchor all time flags to this wall-clock instant (us since the UNIX epoch) \
             instead of process start; deadlines already past are honoured immediately",
        )
        .flag(
            "runtime",
            "MODE",
            "node runtime: 'threaded' (default), 'reactor', or 'reactor:N' with N workers",
        )
}

/// Exits with code 1 and a diagnostic on stderr — the non-panicking
/// path for every operator-input failure.
fn fail(message: std::fmt::Arguments<'_>) -> ! {
    eprintln!("dg-node: {message}");
    std::process::exit(1);
}

macro_rules! fail {
    ($($arg:tt)*) => { fail(format_args!($($arg)*)) };
}

/// Reads a file, exiting with a diagnostic naming it on failure.
fn read_file(what: &str, path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(e) => fail!("cannot read {what} {path}: {e}"),
    }
}

/// Writes JSON atomically: temp file in the destination's directory,
/// then rename. A collector racing the writer sees the old content or
/// the new content, never a torn prefix.
fn write_json_atomic(path: &str, json: &str) -> std::io::Result<()> {
    let dest = std::path::Path::new(path);
    let tmp = dest.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, dest)
}

/// The daemon's parsed runtime options.
struct Options {
    run_limit: Option<Duration>,
    metrics_json: Option<String>,
    baseline_json: Option<String>,
    baseline_at: Option<Duration>,
    quiesce_at: Option<Duration>,
    chaos_json: Option<String>,
    sla_json: Option<String>,
    traffic_pps: Option<u64>,
    traffic_stop: Option<Duration>,
    runtime_descriptor: Option<String>,
    epoch_us: Option<u64>,
}

fn main() {
    let cli = cli();
    let matches = cli.parse_env();
    if let Some(path) = matches.value("emit-topology") {
        let graph = dg_topology::presets::north_america_12();
        let json = serde_json::to_string_pretty(&graph).expect("graph serializes");
        if let Err(e) = std::fs::write(path, json) {
            fail!("cannot write topology {path}: {e}");
        }
        println!("wrote {path}");
        return;
    }
    let Some(config_path) = matches.value("config") else {
        eprintln!("dg-node: either --config or --emit-topology is required\n\n{}", cli.usage());
        std::process::exit(2);
    };
    let get_u64 = |name: &str| match matches.get::<u64>(name) {
        Ok(v) => v,
        Err(e) => cli.exit_with(&e),
    };
    let options = Options {
        run_limit: get_u64("run-ms")
            .map(Duration::from_millis)
            .or_else(|| get_u64("run-secs").map(Duration::from_secs)),
        metrics_json: matches.value("metrics-json").map(str::to_string),
        baseline_json: matches.value("baseline-json").map(str::to_string),
        baseline_at: get_u64("baseline-at-ms").map(Duration::from_millis),
        quiesce_at: get_u64("quiesce-at-ms").map(Duration::from_millis),
        chaos_json: matches.value("chaos-json").map(str::to_string),
        sla_json: matches.value("sla-json").map(str::to_string),
        traffic_pps: get_u64("traffic-pps"),
        traffic_stop: get_u64("traffic-stop-ms").map(Duration::from_millis),
        runtime_descriptor: matches.value("runtime").map(str::to_string),
        epoch_us: get_u64("epoch-us"),
    };
    run(config_path, options);
}

fn run(config_path: &str, options: Options) {
    let raw = read_file("config", config_path);
    let file = match NodeFileConfig::from_json(&raw) {
        Ok(file) => file,
        Err(e) => fail!("bad config {config_path}: {e}"),
    };
    let topo_raw = read_file("topology", &file.topology);
    let graph: Graph = match serde_json::from_str(&topo_raw) {
        Ok(graph) => graph,
        Err(e) => fail!("bad topology {}: {e}", file.topology),
    };
    let config = match file.resolve(&graph) {
        Ok(config) => config,
        Err(e) => fail!("{config_path}: {e}"),
    };
    let me = config.node;

    let mut chaos: Vec<ChaosEvent> = match &options.chaos_json {
        Some(path) => {
            let raw = read_file("chaos schedule", path);
            match ChaosSchedule::from_json(&raw) {
                Ok(schedule) => {
                    let mut events = schedule.events;
                    events.sort_by_key(|e| e.at_ms);
                    events
                }
                Err(e) => fail!("bad chaos schedule {path}: {e}"),
            }
        }
        None => Vec::new(),
    };
    let sla_plan: Option<SlaPlan> = match &options.sla_json {
        Some(path) => {
            let raw = read_file("sla plan", path);
            match SlaPlan::from_json(&raw) {
                Ok(plan) => Some(plan),
                Err(e) => fail!("bad sla plan {path}: {e}"),
            }
        }
        None => None,
    };

    let graph = Arc::new(graph);
    // --runtime beats DG_RUNTIME beats the threaded default.
    let descriptor = options
        .runtime_descriptor
        .clone()
        .or_else(|| std::env::var("DG_RUNTIME").ok())
        .unwrap_or_else(|| "threaded".to_string());
    let runtime = Runtime::from_descriptor(&descriptor);
    let handle = match OverlayNode::spawn_on(&runtime, config, Arc::clone(&graph)) {
        Ok(handle) => handle,
        Err(e) => fail!("cannot start node {}: {e}", file.node),
    };
    // The machine-parseable readiness line harnesses wait for: printed
    // only after the socket is bound and the protocol threads (or the
    // reactor slot) are running. Rust's stdout is line-buffered even
    // into a pipe, so the line is visible immediately.
    println!("READY {} {} {descriptor}", file.node, handle.local_addr());
    println!(
        "dg-node {} listening on {} with {} peers ({:?} runtime)",
        file.node,
        handle.local_addr(),
        file.peers.len(),
        runtime.mode()
    );
    // SLA plan: open (and hold) a class-appropriate sending session for
    // every flow sourced here, so admission, shed bands, and overload
    // downgrades apply for the daemon's lifetime.
    let sla_senders: Vec<FlowSender> = sla_plan
        .as_ref()
        .map(|plan| open_sla_senders(&handle, &graph, me, plan))
        .unwrap_or_default();

    // With --epoch-us every time flag measures from a wall-clock
    // instant the whole deployment shares, not from this process's
    // start: daemons spawned (or respawned) at different moments still
    // snapshot, quiesce, and stop traffic at the same real instants,
    // and a respawned daemon replays already-past chaos events
    // immediately in order, restoring the deployment's intended state.
    let started = Instant::now();
    let start_offset = options.epoch_us.map_or(Duration::ZERO, |epoch| {
        let now_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64);
        Duration::from_micros(now_us.saturating_sub(epoch))
    });

    // The RTP-like fixed-rate control stream: one paced 64-byte frame
    // per sender per tick, from a dedicated thread so protocol pacing
    // and chaos replay never skew the send cadence.
    let traffic_running = Arc::new(AtomicBool::new(true));
    let traffic_thread = options.traffic_pps.filter(|_| !sla_senders.is_empty()).map(|pps| {
        let running = Arc::clone(&traffic_running);
        let stop_at = options.traffic_stop;
        let senders = sla_senders;
        std::thread::spawn(move || {
            let interval = Duration::from_micros(1_000_000 / pps.max(1));
            let payload = [0x5Au8; 64];
            let mut next = Instant::now();
            while running.load(Ordering::Relaxed) {
                if stop_at.is_some_and(|stop| start_offset + started.elapsed() >= stop) {
                    break;
                }
                for sender in &senders {
                    // Shed or refused sends are the overload machinery
                    // working as designed, not a driver error.
                    let _ = sender.send(&payload);
                }
                next += interval;
                let now = Instant::now();
                if next > now {
                    std::thread::sleep(next - now);
                } else {
                    // Fell behind (scheduler stall): realign instead of
                    // bursting to catch up.
                    next = now;
                }
            }
            // Tail-loss probes: hop-by-hop recovery is gap-triggered,
            // so the last packets of the stream can be lost with
            // nothing behind them to expose the gap. Re-offer the final
            // packet a few times (same flow sequence — duplicates are
            // suppressed, losses are repaired) so the tail survives
            // into the final snapshots.
            for _ in 0..3 {
                if !running.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(120));
                for sender in &senders {
                    let _ = sender.tail_probe(&payload);
                }
            }
        })
    });

    // Report stats periodically until killed (or the run limit passes);
    // tick finely while chaos events or snapshot deadlines are pending.
    let mut next_stats = start_offset + Duration::from_secs(10);
    // A baseline deadline already past at (re)spawn is skipped, not
    // fired late: this incarnation's counters started from zero, and a
    // stale overwrite would corrupt the deployment's delta arithmetic.
    let mut baseline_due = options.baseline_at.filter(|&at| {
        let due = at > start_offset;
        if !due {
            println!("baseline: deadline already past at startup, skipping");
        }
        due
    });
    let mut quiesce_due = options.quiesce_at;
    loop {
        let elapsed = start_offset + started.elapsed();
        if options.run_limit.is_some_and(|limit| elapsed >= limit) {
            break;
        }
        // Fire everything due at this instant.
        let due = chaos.iter().take_while(|e| e.at_ms as u128 <= elapsed.as_millis()).count();
        for event in chaos.drain(..due) {
            apply_chaos_to_self(&handle, &graph, me, &event.action);
        }
        if baseline_due.is_some_and(|at| elapsed >= at) {
            baseline_due = None;
            if let Some(path) = &options.baseline_json {
                dump_snapshot(&handle.metrics_snapshot(), path, "baseline");
            }
        }
        if quiesce_due.is_some_and(|at| elapsed >= at) {
            quiesce_due = None;
            println!("quiesce: pausing link-state origination");
            handle.set_origination_paused(true);
        }
        if elapsed >= next_stats {
            next_stats += Duration::from_secs(10);
            let c = handle.metrics_snapshot().counters;
            println!(
                "stats: rx {} tx {} delivered {} dup {} expired {} nack {} retx {}",
                c.data_received,
                c.data_sent,
                c.delivered_on_time + c.delivered_late,
                c.duplicates,
                c.expired,
                c.nack_messages_sent,
                c.retransmissions_served
            );
        }
        // Sleep until the nearest future deadline.
        let mut nap = next_stats.saturating_sub(elapsed);
        if let Some(event) = chaos.first() {
            nap = nap.min(Duration::from_millis(event.at_ms).saturating_sub(elapsed));
        }
        for at in [baseline_due, quiesce_due, options.run_limit].into_iter().flatten() {
            nap = nap.min(at.saturating_sub(elapsed));
        }
        std::thread::sleep(nap.max(Duration::from_millis(1)));
    }
    traffic_running.store(false, Ordering::Relaxed);
    if let Some(thread) = traffic_thread {
        let _ = thread.join();
    }
    let snapshot = handle.metrics_snapshot();
    handle.shutdown();
    runtime.shutdown();
    if let Some(path) = &options.metrics_json {
        dump_snapshot(&snapshot, path, "metrics");
    }
}

/// Serializes a snapshot to `path` ('-' for stdout) atomically; exits
/// with a diagnostic when the destination is unwritable.
fn dump_snapshot(snapshot: &MetricsSnapshot, path: &str, what: &str) {
    let json = serde_json::to_string_pretty(snapshot).expect("snapshot serializes");
    if path == "-" {
        println!("{json}");
    } else if let Err(e) = write_json_atomic(path, &json) {
        fail!("cannot write {what} {path}: {e}");
    } else {
        println!("wrote {what} to {path}");
    }
}

/// Opens the slice of an SLA plan this daemon owns: one sending session
/// per flow sourced here, in the flow's class. Unknown sites and
/// admission refusals are warned about and skipped — a partial plan
/// still serves the flows it can.
fn open_sla_senders(
    handle: &OverlayHandle,
    graph: &Graph,
    me: NodeId,
    plan: &SlaPlan,
) -> Vec<FlowSender> {
    let params = dg_core::scheme::SchemeParams::default();
    let mut senders = Vec::new();
    for spec in plan.sourced_at(graph, me) {
        let (flow, class, requirement) = match spec.resolve(graph) {
            Ok(resolved) => resolved,
            Err(site) => {
                eprintln!(
                    "sla: skipping {}->{}: unknown site {site:?}",
                    spec.source, spec.destination
                );
                continue;
            }
        };
        let scheme = match dg_core::scheme::build_scheme(
            class.preferred_scheme(),
            graph,
            flow,
            requirement,
            &params,
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("sla: skipping {flow}: {e}");
                continue;
            }
        };
        match handle.open_sender_with_class(scheme, requirement, class) {
            Ok(sender) => {
                println!(
                    "sla: opened {} -> {} as {class} (deadline {} ms)",
                    spec.source,
                    spec.destination,
                    requirement.deadline.as_millis()
                );
                senders.push(sender);
            }
            Err(e) => eprintln!("sla: skipping {flow}: {e}"),
        }
    }
    senders
}

/// Applies the slice of a chaos action this daemon can enact: faults on
/// its own out-links. Everything else is another node's business (or,
/// for crash/restart, the operator's) and is skipped with a warning
/// where that could surprise.
fn apply_chaos_to_self(handle: &OverlayHandle, graph: &Graph, me: NodeId, action: &ChaosAction) {
    match *action {
        ChaosAction::InjectEdge { edge, fault } => {
            if edge.index() >= graph.edge_count() {
                eprintln!("chaos: ignoring impairment of unknown edge {edge:?}");
                return;
            }
            let info = graph.edge(edge);
            if info.src == me {
                println!("chaos: impairing link to {}", graph.node(info.dst).name);
                handle.faults().set(info.dst, fault);
            }
        }
        ChaosAction::HealEdge { edge } => {
            if edge.index() >= graph.edge_count() {
                eprintln!("chaos: ignoring heal of unknown edge {edge:?}");
                return;
            }
            let info = graph.edge(edge);
            if info.src == me {
                println!("chaos: healing link to {}", graph.node(info.dst).name);
                handle.faults().clear(info.dst);
            }
        }
        ChaosAction::ImpairNode { node, fault } => {
            if node == me {
                println!("chaos: impairing all out-links");
                for &e in graph.out_edges(me) {
                    handle.faults().set(graph.edge(e).dst, fault);
                }
            }
        }
        ChaosAction::HealNode { node } => {
            if node == me {
                println!("chaos: healing all out-links");
                for &e in graph.out_edges(me) {
                    handle.faults().clear(graph.edge(e).dst);
                }
            }
        }
        ChaosAction::CrashNode { node } | ChaosAction::RestartNode { node } => {
            if node == me {
                eprintln!(
                    "chaos: ignoring crash/restart for this node — \
                     kill or relaunch the daemon process instead"
                );
            }
        }
        ChaosAction::PanicThread { node, thread } => {
            if node == me {
                println!("chaos: injecting panic into {thread:?} thread");
                handle.inject_thread_panic(thread);
            }
        }
        ChaosAction::Overload { node, shipments, dwell_ms } => {
            if node == me {
                println!("chaos: flooding outbound queue with {shipments} shipments");
                handle.inject_overload(shipments, Duration::from_millis(dwell_ms));
            }
        }
    }
}
