//! `dg-node` — a standalone overlay transport daemon.
//!
//! Runs one overlay node from a JSON config: it joins the overlay,
//! monitors its links, floods link state, and forwards dissemination-
//! graph traffic for any flow crossing it. Applications attach through
//! the in-process session API (see `dg_overlay::cluster` for the
//! single-machine variant); a production deployment would front this
//! daemon with an IPC shim.
//!
//! Usage:
//!   dg-node --emit-topology topology.json        # write the preset
//!   dg-node --config node.json                   # run a node
//!
//! Config format:
//! ```json
//! {
//!   "topology": "topology.json",
//!   "node": "NYC",
//!   "listen": "0.0.0.0:7100",
//!   "peers": { "CHI": "192.0.2.10:7100", "WAS": "192.0.2.11:7100" },
//!   "hello_interval_ms": 50,
//!   "link_state_interval_ms": 200
//! }
//! ```

use dg_overlay::{NodeConfig, OverlayNode};
use dg_topology::Graph;
use serde::Deserialize;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Deserialize)]
struct FileConfig {
    topology: String,
    node: String,
    listen: SocketAddr,
    peers: HashMap<String, SocketAddr>,
    #[serde(default = "default_hello_ms")]
    hello_interval_ms: u64,
    #[serde(default = "default_ls_ms")]
    link_state_interval_ms: u64,
}

fn default_hello_ms() -> u64 {
    50
}

fn default_ls_ms() -> u64 {
    200
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--emit-topology") => {
            let path = args.get(2).map(String::as_str).unwrap_or("topology.json");
            let graph = dg_topology::presets::north_america_12();
            let json = serde_json::to_string_pretty(&graph).expect("graph serializes");
            std::fs::write(path, json).expect("topology file is writable");
            println!("wrote {path}");
        }
        Some("--config") => {
            let path = args.get(2).expect("usage: dg-node --config <file>");
            run(path);
        }
        _ => {
            eprintln!("usage: dg-node --config <file> | dg-node --emit-topology [file]");
            std::process::exit(2);
        }
    }
}

fn run(config_path: &str) {
    let raw = std::fs::read_to_string(config_path)
        .unwrap_or_else(|e| panic!("cannot read {config_path}: {e}"));
    let file: FileConfig =
        serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad config: {e}"));
    let topo_raw = std::fs::read_to_string(&file.topology)
        .unwrap_or_else(|e| panic!("cannot read topology {}: {e}", file.topology));
    let graph: Graph =
        serde_json::from_str(&topo_raw).unwrap_or_else(|e| panic!("bad topology: {e}"));

    let me = graph
        .node_by_name(&file.node)
        .unwrap_or_else(|| panic!("node {:?} not in topology", file.node));
    let mut config = NodeConfig::new(me, file.listen);
    config.hello_interval = Duration::from_millis(file.hello_interval_ms);
    config.link_state_interval = Duration::from_millis(file.link_state_interval_ms);
    for (name, addr) in &file.peers {
        let peer = graph
            .node_by_name(name)
            .unwrap_or_else(|| panic!("peer {name:?} not in topology"));
        config.peers.insert(peer, *addr);
    }

    let handle = OverlayNode::spawn(config, Arc::new(graph)).expect("node starts");
    println!(
        "dg-node {} listening on {} with {} peers",
        file.node,
        handle.local_addr(),
        file.peers.len()
    );
    // Report stats periodically until killed.
    loop {
        std::thread::sleep(Duration::from_secs(10));
        let s = handle.stats();
        println!(
            "stats: rx {} tx {} delivered {} dup {} expired {} nack {} retx {}",
            s.data_received,
            s.data_sent,
            s.delivered,
            s.duplicates,
            s.expired,
            s.nacks_sent,
            s.retransmissions
        );
    }
}
