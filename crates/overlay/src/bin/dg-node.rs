//! `dg-node` — a standalone overlay transport daemon.
//!
//! Runs one overlay node from a JSON config: it joins the overlay,
//! monitors its links, floods link state, and forwards dissemination-
//! graph traffic for any flow crossing it. Applications attach through
//! the in-process session API (see `dg_overlay::cluster` for the
//! single-machine variant); a production deployment would front this
//! daemon with an IPC shim.
//!
//! Usage:
//!   dg-node --emit-topology topology.json        # write the preset
//!   dg-node --config node.json                   # run a node
//!   dg-node --config node.json --run-secs 30 --metrics-json out.json
//!
//! `--run-secs N` exits after N seconds instead of running forever, and
//! `--metrics-json PATH` dumps the node's full metrics snapshot
//! (counters, per-flow/per-link cells, event journal) as JSON on
//! shutdown; `-` writes it to stdout.
//!
//! Config format:
//! ```json
//! {
//!   "topology": "topology.json",
//!   "node": "NYC",
//!   "listen": "0.0.0.0:7100",
//!   "peers": { "CHI": "192.0.2.10:7100", "WAS": "192.0.2.11:7100" },
//!   "hello_interval_ms": 50,
//!   "link_state_interval_ms": 200
//! }
//! ```

use dg_overlay::{NodeConfig, OverlayNode};
use dg_topology::Graph;
use serde::Deserialize;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Deserialize)]
struct FileConfig {
    topology: String,
    node: String,
    listen: SocketAddr,
    peers: HashMap<String, SocketAddr>,
    #[serde(default = "default_hello_ms")]
    hello_interval_ms: u64,
    #[serde(default = "default_ls_ms")]
    link_state_interval_ms: u64,
}

fn default_hello_ms() -> u64 {
    50
}

fn default_ls_ms() -> u64 {
    200
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--emit-topology") => {
            let path = args.get(2).map(String::as_str).unwrap_or("topology.json");
            let graph = dg_topology::presets::north_america_12();
            let json = serde_json::to_string_pretty(&graph).expect("graph serializes");
            std::fs::write(path, json).expect("topology file is writable");
            println!("wrote {path}");
        }
        Some("--config") => {
            let path = args.get(2).expect("usage: dg-node --config <file>");
            let mut run_secs: Option<u64> = None;
            let mut metrics_json: Option<String> = None;
            let mut rest = args[3..].iter();
            while let Some(flag) = rest.next() {
                match flag.as_str() {
                    "--run-secs" => {
                        let v = rest.next().expect("--run-secs needs a value");
                        run_secs = Some(v.parse().expect("--run-secs takes whole seconds"));
                    }
                    "--metrics-json" => {
                        metrics_json =
                            Some(rest.next().expect("--metrics-json needs a path").clone());
                    }
                    other => {
                        eprintln!("unknown flag {other:?}");
                        std::process::exit(2);
                    }
                }
            }
            run(path, run_secs, metrics_json);
        }
        _ => {
            eprintln!(
                "usage: dg-node --config <file> [--run-secs N] [--metrics-json PATH] \
                 | dg-node --emit-topology [file]"
            );
            std::process::exit(2);
        }
    }
}

fn run(config_path: &str, run_secs: Option<u64>, metrics_json: Option<String>) {
    let raw = std::fs::read_to_string(config_path)
        .unwrap_or_else(|e| panic!("cannot read {config_path}: {e}"));
    let file: FileConfig = serde_json::from_str(&raw).unwrap_or_else(|e| panic!("bad config: {e}"));
    let topo_raw = std::fs::read_to_string(&file.topology)
        .unwrap_or_else(|e| panic!("cannot read topology {}: {e}", file.topology));
    let graph: Graph =
        serde_json::from_str(&topo_raw).unwrap_or_else(|e| panic!("bad topology: {e}"));

    let me = graph
        .node_by_name(&file.node)
        .unwrap_or_else(|| panic!("node {:?} not in topology", file.node));
    let mut config = NodeConfig::new(me, file.listen);
    config.hello_interval = Duration::from_millis(file.hello_interval_ms);
    config.link_state_interval = Duration::from_millis(file.link_state_interval_ms);
    for (name, addr) in &file.peers {
        let peer =
            graph.node_by_name(name).unwrap_or_else(|| panic!("peer {name:?} not in topology"));
        config.peers.insert(peer, *addr);
    }

    let handle = OverlayNode::spawn(config, Arc::new(graph)).expect("node starts");
    println!(
        "dg-node {} listening on {} with {} peers",
        file.node,
        handle.local_addr(),
        file.peers.len()
    );
    // Report stats periodically until killed (or the run limit passes).
    let started = std::time::Instant::now();
    loop {
        let tick = Duration::from_secs(10);
        match run_secs {
            Some(secs) => {
                let left = Duration::from_secs(secs).saturating_sub(started.elapsed());
                if left.is_zero() {
                    break;
                }
                std::thread::sleep(left.min(tick));
            }
            None => std::thread::sleep(tick),
        }
        let s = handle.stats();
        println!(
            "stats: rx {} tx {} delivered {} dup {} expired {} nack {} retx {}",
            s.data_received,
            s.data_sent,
            s.delivered,
            s.duplicates,
            s.expired,
            s.nacks_sent,
            s.retransmissions
        );
    }
    let snapshot = handle.metrics_snapshot();
    handle.shutdown();
    if let Some(path) = metrics_json {
        let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
        if path == "-" {
            println!("{json}");
        } else {
            std::fs::write(&path, json).expect("metrics file is writable");
            println!("wrote metrics to {path}");
        }
    }
}
