//! Overlay observability: lock-cheap counters and a bounded event
//! journal.
//!
//! Every node owns a [`MetricsRegistry`]: a block of node-wide atomic
//! counters, per-flow and per-link counter cells, and a ring-buffer
//! [`EventJournal`] of structured, clock-stamped events (route changes,
//! detector transitions, recovery outcomes). The forwarding hot path
//! only touches relaxed atomics — the registry's maps are locked
//! briefly to look up a cell, never while counting.
//!
//! Snapshots ([`MetricsSnapshot`], [`ClusterMetricsReport`]) are plain
//! serde-serializable data, with per-flow fields named after
//! `dg-sim`'s `FlowRunStats` so simulator and overlay reports can be
//! compared field-for-field.

use crate::clock::now_us;
use crate::shard::ShardedMap;
use dg_core::scheme::SchemeKind;
use dg_core::{Flow, GraphCacheStats, SlaClass};
use dg_topology::{Micros, NodeId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Declares the node counter block in two sections: `live` fields are
/// backed by one atomic each and counted on the hot paths; `derived`
/// fields have no atomic — they are computed from the live fields at
/// snapshot time, but still appear in [`NodeCounters`] (and its serde
/// form), so removing a counter's atomic does not break readers of
/// serialized snapshots.
macro_rules! declare_counters {
    (
        live { $($(#[$doc:meta])* $field:ident),+ $(,)? }
        derived { $($(#[$ddoc:meta])* $dfield:ident = $dexpr:expr),+ $(,)? }
    ) => {
        /// The node-wide atomic counter block.
        #[derive(Debug, Default)]
        pub(crate) struct AtomicCounters {
            $(pub(crate) $field: AtomicU64,)+
        }

        impl AtomicCounters {
            pub(crate) fn snapshot(&self) -> NodeCounters {
                let mut snap = NodeCounters {
                    $($field: self.$field.load(Ordering::Relaxed),)+
                    $($dfield: 0,)+
                };
                $(snap.$dfield = ($dexpr)(&snap);)+
                snap
            }
        }

        /// A consistent-enough copy of one node's counters.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
        #[serde(default)]
        pub struct NodeCounters {
            $($(#[$doc])* pub $field: u64,)+
            $($(#[$ddoc])* pub $dfield: u64,)+
        }

        impl NodeCounters {
            /// Field-wise sum; associative and commutative, so merging
            /// any number of snapshots in any order or grouping yields
            /// the same totals. Derived fields merge field-wise too — a
            /// sum of per-node derivations equals the derivation of the
            /// summed live fields, because every derivation is linear.
            pub fn merge(&mut self, other: &NodeCounters) {
                $(self.$field = self.$field.wrapping_add(other.$field);)+
                $(self.$dfield = self.$dfield.wrapping_add(other.$dfield);)+
            }
        }
    };
}

declare_counters! {
    live {
    /// UDP datagrams handed to the shipper (after fault filtering).
    datagrams_sent,
    /// UDP datagrams received on the socket.
    datagrams_received,
    /// Bytes across all datagrams handed to the shipper.
    bytes_sent,
    /// Bytes across all datagrams received.
    bytes_received,
    /// Data transmissions onto links (originals, not retransmissions).
    data_sent,
    /// Data packets received from links.
    data_received,
    /// Packets delivered to local receivers within their deadline.
    delivered_on_time,
    /// Packets delivered to local receivers after their deadline.
    delivered_late,
    /// Flow-level duplicates suppressed.
    duplicates,
    /// Packets dropped (not re-forwarded) because their deadline passed.
    expired,
    /// Datagrams that failed to parse (truncated, corrupted, bad
    /// magic/version/checksum).
    malformed,
    /// Datagrams dropped by injected link faults.
    fault_drops,
    /// Extra copies transmitted by injected duplication faults.
    fault_duplicates,
    /// Datagrams corrupted in flight by injected faults.
    fault_corruptions,
    /// Data shipments refused because the outbound shipper queue was at
    /// (or past) the class's admission band.
    shipper_drops,
    /// Decoded packets dropped because a local receiver's bounded
    /// delivery queue was full.
    delivery_drops,
    /// Bulk-class packets shed under queue pressure (shed first).
    shed_bulk,
    /// Timely-class packets shed under queue pressure.
    shed_timely,
    /// Surgical-class packets shed under queue pressure (shed last —
    /// nonzero only when the queue is truly exhausted).
    shed_surgical,
    /// Incoming links this node has declared down on hello timeout
    /// (counts declarations, not currently-down links).
    links_declared_down,
    /// Missing link sequences this node has NACKed upstream.
    retransmit_requests_issued,
    /// Missing link sequences neighbours have NACKed to this node.
    retransmit_requests_received,
    /// Retransmissions performed in response to NACKs.
    retransmissions_served,
    /// NACKed sequences no longer in the retransmission buffer.
    retransmit_misses,
    /// NACK messages sent upstream (each may carry several sequences).
    nack_messages_sent,
    /// Hello probes sent.
    hellos_sent,
    /// Hello probes echoed back to neighbours.
    hellos_echoed,
    /// Hello echoes received for this node's own probes.
    hello_acks_received,
    /// Link-state updates this node originated.
    link_state_originated,
    /// Link-state transmissions flooded to neighbours (own and relayed).
    link_state_flooded,
    /// Dissemination-graph changes across local sender sessions.
    graph_changes,
    /// Link-state transmissions retransmitted because a neighbour's ack
    /// did not arrive in time.
    lsa_retransmits,
    /// Per-neighbour acknowledgements sent for received link-state
    /// reports.
    lsa_acks_sent,
    /// Acknowledgements received for link-state reports this node sent.
    lsa_acks_received,
    /// Link-state reports dropped after exhausting their retransmit
    /// budget toward some neighbour (anti-entropy repairs them later).
    lsa_retransmits_abandoned,
    /// Anti-entropy digests sent to neighbours.
    digests_sent,
    /// Anti-entropy digests received from neighbours.
    digests_received,
    /// Link-state reports pushed to a neighbour whose digest showed it
    /// was missing or stale.
    lsa_repairs_sent,
    /// Link-state transitions (detector or down declarations) withheld
    /// by the route-flap damper.
    flap_suppressions,
    /// NACKed retransmissions skipped because they could no longer
    /// arrive within the packet's deadline.
    retransmits_suppressed,
    /// NACKs re-issued after the first request stayed silent.
    nack_rerequests,
    /// Supervised node threads restarted after a panic.
    thread_crashes,
    }
    derived {
    /// Datagrams dropped because a bounded internal queue was full —
    /// always exactly `shipper_drops + delivery_drops`. The 0.2.0
    /// aggregate atomic was removed in 0.3.0; the field is derived at
    /// snapshot time so serialized snapshots stay readable by older
    /// consumers.
    queue_drops = |c: &NodeCounters| c.shipper_drops.wrapping_add(c.delivery_drops),
    }
}

/// Per-flow atomic cells; field names mirror `dg-sim`'s `FlowRunStats`.
#[derive(Debug, Default)]
pub(crate) struct FlowCells {
    pub(crate) packets_sent: AtomicU64,
    pub(crate) packets_on_time: AtomicU64,
    pub(crate) packets_late: AtomicU64,
    pub(crate) transmissions: AtomicU64,
    pub(crate) graph_changes: AtomicU64,
}

/// Per-out-link atomic cells for cost accounting.
#[derive(Debug, Default)]
pub(crate) struct LinkCells {
    pub(crate) datagrams: AtomicU64,
    pub(crate) bytes: AtomicU64,
}

/// One flow's counters as observed by a single node.
///
/// `packets_sent` counts only at the flow's source node and
/// `packets_on_time`/`packets_late` only at its destination, while
/// `transmissions` accrues at every node that forwards the flow — so
/// cluster-level aggregation (field-wise sum) yields end-to-end
/// figures directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowMetrics {
    /// The flow these counters describe.
    pub flow: Flow,
    /// Application packets injected at the source.
    pub packets_sent: u64,
    /// Packets delivered at the destination within the deadline.
    pub packets_on_time: u64,
    /// Packets delivered at the destination after the deadline.
    pub packets_late: u64,
    /// Link transmissions of this flow's packets (the cost numerator).
    pub transmissions: u64,
    /// Times a sender session changed its dissemination graph.
    pub graph_changes: u64,
}

impl FlowMetrics {
    /// Packets delivered at all (on time or late).
    pub fn packets_delivered(&self) -> u64 {
        self.packets_on_time + self.packets_late
    }

    /// Field-wise sum (the flow identities must match).
    pub fn merge(&mut self, other: &FlowMetrics) {
        debug_assert_eq!(self.flow, other.flow, "merging different flows");
        self.packets_sent += other.packets_sent;
        self.packets_on_time += other.packets_on_time;
        self.packets_late += other.packets_late;
        self.transmissions += other.transmissions;
        self.graph_changes += other.graph_changes;
    }
}

/// Traffic this node pushed onto the link toward one neighbour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkMetrics {
    /// The link's far end.
    pub neighbor: NodeId,
    /// Datagrams shipped (data and control).
    pub datagrams: u64,
    /// Total bytes shipped.
    pub bytes: u64,
}

/// Something notable that happened on a node, stamped with the shared
/// overlay clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Monotone per-node event number (counts events ever recorded, so
    /// gaps reveal ring-buffer evictions).
    pub seq: u64,
    /// When it happened ([`crate::now_us`]).
    pub at: Micros,
    /// What happened.
    pub kind: EventKind,
}

/// The event vocabulary of the journal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A sender session switched its dissemination graph.
    RouteChange {
        /// The flow whose routing changed.
        flow: Flow,
        /// The scheme that made the change.
        scheme: SchemeKind,
        /// Edge count of the new graph.
        edges: u64,
    },
    /// A monitored incoming link crossed the loss threshold.
    DetectorTriggered {
        /// The neighbour at the far end of the lossy link.
        neighbor: NodeId,
        /// The loss estimate that tripped the detector.
        loss: f32,
    },
    /// A previously triggered link dropped back below the threshold.
    DetectorCleared {
        /// The neighbour whose link recovered.
        neighbor: NodeId,
        /// The loss estimate at clearing time.
        loss: f32,
    },
    /// This node NACKed a gap on an incoming link.
    RecoveryRequested {
        /// The upstream neighbour the NACK went to.
        neighbor: NodeId,
        /// How many sequences the NACK asked for.
        packets: u64,
    },
    /// This node retransmitted buffered datagrams for a neighbour.
    RecoveryServed {
        /// The neighbour that asked.
        neighbor: NodeId,
        /// How many datagrams were retransmitted.
        packets: u64,
    },
    /// A NACK asked for sequences already evicted from the buffer.
    RecoveryMissed {
        /// The neighbour that asked.
        neighbor: NodeId,
        /// How many sequences could not be served.
        packets: u64,
    },
    /// Hello silence exceeded the timeout: the incoming link from
    /// `neighbor` is declared down and flooded as such.
    LinkDown {
        /// The neighbour at the far end of the silent link.
        neighbor: NodeId,
    },
    /// Hellos resumed on a link previously declared down.
    LinkUp {
        /// The neighbour whose link recovered.
        neighbor: NodeId,
    },
    /// The route-flap damper withheld a link-state transition for
    /// `neighbor` (hold-down still active or penalty above threshold).
    /// The transition is re-attempted on every origination until
    /// admitted.
    FlapSuppressed {
        /// The neighbour whose transition was withheld.
        neighbor: NodeId,
        /// The damper's penalty at suppression time.
        penalty: f32,
    },
    /// A supervised node thread panicked and was restarted by its
    /// supervisor; the node runs degraded until heartbeats look
    /// healthy again.
    ThreadCrash {
        /// Which loop crashed.
        thread: NodeThread,
    },
    /// The overload detector crossed its enter threshold (or escalated
    /// to a deeper level): per-class redundancy downgrades apply until
    /// [`EventKind::OverloadExit`].
    OverloadEnter {
        /// The degradation level entered (1 = bulk downgraded, 2 =
        /// bulk and timely downgraded).
        level: u8,
    },
    /// Sustained recovery: queue depth stayed below the exit threshold
    /// with no shedding for a full hold-down, and every class's full
    /// redundancy was restored.
    OverloadExit {
        /// The level the node was at before exiting.
        level: u8,
    },
    /// An overloaded node replaced one sender session's dissemination
    /// graph with a cheaper one (surgical keeps its targeted graph,
    /// timely falls to two disjoint paths, bulk to a single path).
    ClassDowngraded {
        /// The flow whose redundancy was reduced.
        flow: Flow,
        /// The flow's SLA class.
        class: SlaClass,
        /// Edge count of the downgraded graph.
        edges: u64,
    },
}

/// The supervised long-running loops of one overlay node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeThread {
    /// The socket receive/dispatch loop.
    Receive,
    /// The delayed-shipment scheduler loop.
    Shipper,
    /// The hello/link-state/housekeeping ticker loop.
    Ticker,
}

/// Bounded ring buffer of [`Event`]s.
#[derive(Debug)]
pub(crate) struct EventJournal {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

impl EventJournal {
    pub(crate) fn new(capacity: usize) -> Self {
        EventJournal {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1_024))),
            capacity,
            next_seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, at: Micros, kind: EventKind) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(Event { seq, at, kind });
    }

    fn snapshot(&self) -> (Vec<Event>, u64) {
        let events = self.ring.lock().iter().copied().collect();
        (events, self.dropped.load(Ordering::Relaxed))
    }
}

/// One node's full observability state.
///
/// The flow and link tables are sharded ([`crate::shard::ShardedMap`])
/// because the data path resolves cells per packet; unrelated flows
/// must not serialize on one registry lock.
#[derive(Debug)]
pub(crate) struct MetricsRegistry {
    pub(crate) counters: AtomicCounters,
    flows: ShardedMap<Flow, Arc<FlowCells>>,
    links: ShardedMap<NodeId, Arc<LinkCells>>,
    journal: EventJournal,
}

impl MetricsRegistry {
    pub(crate) fn new(journal_capacity: usize) -> Self {
        MetricsRegistry {
            counters: AtomicCounters::default(),
            flows: ShardedMap::new(),
            links: ShardedMap::new(),
            journal: EventJournal::new(journal_capacity),
        }
    }

    /// The counter cell for `flow` (created on first use). Only the
    /// flow's shard locks for the lookup; increments happen on the
    /// returned cell without any lock.
    pub(crate) fn flow(&self, flow: Flow) -> Arc<FlowCells> {
        self.flows.get_or_insert_with(&flow, Arc::default)
    }

    /// The counter cell for the out-link toward `neighbor`.
    pub(crate) fn link(&self, neighbor: NodeId) -> Arc<LinkCells> {
        self.links.get_or_insert_with(&neighbor, Arc::default)
    }

    /// Records a journal event stamped with the current overlay clock.
    pub(crate) fn record(&self, kind: EventKind) {
        self.journal.record(now_us(), kind);
    }

    /// A serializable copy of everything, with flows and links sorted
    /// for deterministic output.
    pub(crate) fn snapshot(&self, node: NodeId) -> MetricsSnapshot {
        let mut flows: Vec<FlowMetrics> = self
            .flows
            .entries()
            .into_iter()
            .map(|(flow, cells)| FlowMetrics {
                flow,
                packets_sent: cells.packets_sent.load(Ordering::Relaxed),
                packets_on_time: cells.packets_on_time.load(Ordering::Relaxed),
                packets_late: cells.packets_late.load(Ordering::Relaxed),
                transmissions: cells.transmissions.load(Ordering::Relaxed),
                graph_changes: cells.graph_changes.load(Ordering::Relaxed),
            })
            .collect();
        flows.sort_by_key(|f| (f.flow.source.index(), f.flow.destination.index()));
        let mut links: Vec<LinkMetrics> = self
            .links
            .entries()
            .into_iter()
            .map(|(neighbor, cells)| LinkMetrics {
                neighbor,
                datagrams: cells.datagrams.load(Ordering::Relaxed),
                bytes: cells.bytes.load(Ordering::Relaxed),
            })
            .collect();
        links.sort_by_key(|l| l.neighbor.index());
        let (events, events_dropped) = self.journal.snapshot();
        MetricsSnapshot {
            node,
            counters: self.counters.snapshot(),
            flows,
            links,
            events,
            events_dropped,
            degraded: false,
            link_state: Vec::new(),
            graph_cache: GraphCacheStats::default(),
        }
    }
}

/// Everything one node can report about itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// The node reporting.
    pub node: NodeId,
    /// Node-wide counters.
    pub counters: NodeCounters,
    /// Per-flow counters, sorted by (source, destination).
    pub flows: Vec<FlowMetrics>,
    /// Per-out-link traffic, sorted by neighbour.
    pub links: Vec<LinkMetrics>,
    /// The journal's surviving events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from (or refused by) the bounded journal.
    pub events_dropped: u64,
    /// True while the node runs in degraded mode: a supervised thread
    /// recently crashed and was restarted, or a thread's heartbeat is
    /// stale past the watchdog horizon. Forwarding continues, but
    /// operators should treat the node's estimates with suspicion.
    #[serde(default)]
    pub degraded: bool,
    /// Per-origin `(epoch, seq)` digest of the node's link-state
    /// database at snapshot time — the same summary the anti-entropy
    /// exchange advertises, embedded so out-of-process collectors (the
    /// `dg-emu` harness, say) can check database convergence across
    /// daemons from their metrics dumps alone. Empty in snapshots
    /// produced before this field existed.
    #[serde(default)]
    pub link_state: Vec<crate::wire::DigestEntry>,
    /// Counters of the node's precomputed-graph cache (baseline, live,
    /// and multicast interning tiers), so cache effectiveness is
    /// observable alongside traffic counters. Zero in snapshots
    /// produced before this field existed.
    #[serde(default)]
    pub graph_cache: GraphCacheStats,
}

/// A cluster-wide flow summary aggregated across every live node.
///
/// Field names match `dg-sim`'s `FlowRunStats` so the two pipelines'
/// reports line up; `packets_lost` closes the conservation identity
/// `packets_sent == packets_delivered + packets_lost` at snapshot time
/// (in-flight packets count as lost until they land).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowReport {
    /// The flow summarized.
    pub flow: Flow,
    /// Application packets injected at the source.
    pub packets_sent: u64,
    /// Packets delivered within the deadline.
    pub packets_on_time: u64,
    /// Packets delivered after the deadline.
    pub packets_late: u64,
    /// Packets delivered at all.
    pub packets_delivered: u64,
    /// Packets sent but never delivered (includes any still in flight).
    pub packets_lost: u64,
    /// Network-wide link transmissions for this flow.
    pub transmissions: u64,
    /// Dissemination-graph changes at the flow's sender.
    pub graph_changes: u64,
}

impl FlowReport {
    /// Fraction of sent packets delivered on time.
    pub fn on_time_fraction(&self) -> f64 {
        if self.packets_sent == 0 {
            return 1.0;
        }
        self.packets_on_time as f64 / self.packets_sent as f64
    }

    /// Average link transmissions per sent packet — the paper's cost.
    pub fn average_cost(&self) -> f64 {
        if self.packets_sent == 0 {
            return 0.0;
        }
        self.transmissions as f64 / self.packets_sent as f64
    }
}

/// The whole overlay's observability state at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterMetricsReport {
    /// Per-node snapshots, sorted by node id (live nodes only — a
    /// killed node's counters die with it).
    pub nodes: Vec<MetricsSnapshot>,
    /// Field-wise sum of every live node's counters.
    pub totals: NodeCounters,
    /// Cluster-wide per-flow summaries, sorted by (source, destination).
    pub flows: Vec<FlowReport>,
}

impl ClusterMetricsReport {
    /// Builds the cluster view from per-node snapshots: sums counters
    /// and folds each flow's per-node cells into one [`FlowReport`].
    pub fn aggregate(mut nodes: Vec<MetricsSnapshot>) -> Self {
        nodes.sort_by_key(|s| s.node.index());
        let mut totals = NodeCounters::default();
        let mut by_flow: HashMap<Flow, FlowMetrics> = HashMap::new();
        for snap in &nodes {
            totals.merge(&snap.counters);
            for fm in &snap.flows {
                by_flow.entry(fm.flow).and_modify(|acc| acc.merge(fm)).or_insert(*fm);
            }
        }
        let mut flows: Vec<FlowReport> = by_flow
            .into_values()
            .map(|fm| {
                let delivered = fm.packets_delivered();
                FlowReport {
                    flow: fm.flow,
                    packets_sent: fm.packets_sent,
                    packets_on_time: fm.packets_on_time,
                    packets_late: fm.packets_late,
                    packets_delivered: delivered,
                    packets_lost: fm.packets_sent.saturating_sub(delivered),
                    transmissions: fm.transmissions,
                    graph_changes: fm.graph_changes,
                }
            })
            .collect();
        flows.sort_by_key(|f| (f.flow.source.index(), f.flow.destination.index()));
        ClusterMetricsReport { nodes, totals, flows }
    }

    /// The summary for one flow, if any node saw it.
    pub fn flow(&self, flow: Flow) -> Option<&FlowReport> {
        self.flows.iter().find(|f| f.flow == flow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(s: u32, d: u32) -> Flow {
        Flow::new(NodeId::new(s), NodeId::new(d))
    }

    #[test]
    fn journal_ring_evicts_oldest_and_counts_drops() {
        let journal = EventJournal::new(2);
        for i in 0..5u64 {
            journal.record(
                Micros::from_micros(i),
                EventKind::RecoveryServed { neighbor: NodeId::new(1), packets: i },
            );
        }
        let (events, dropped) = journal.snapshot();
        assert_eq!(dropped, 3);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(events[1].seq, 4);
        assert!(events[0].at <= events[1].at);
    }

    #[test]
    fn zero_capacity_journal_refuses_everything() {
        let journal = EventJournal::new(0);
        journal.record(
            Micros::ZERO,
            EventKind::DetectorTriggered { neighbor: NodeId::new(0), loss: 0.5 },
        );
        let (events, dropped) = journal.snapshot();
        assert!(events.is_empty());
        assert_eq!(dropped, 1);
    }

    #[test]
    fn registry_snapshot_sorts_flows_and_links() {
        let registry = MetricsRegistry::new(8);
        registry.flow(flow(5, 1)).packets_sent.fetch_add(2, Ordering::Relaxed);
        registry.flow(flow(0, 3)).packets_sent.fetch_add(7, Ordering::Relaxed);
        registry.link(NodeId::new(9)).bytes.fetch_add(100, Ordering::Relaxed);
        registry.link(NodeId::new(2)).bytes.fetch_add(50, Ordering::Relaxed);
        let snap = registry.snapshot(NodeId::new(0));
        assert_eq!(snap.flows[0].flow, flow(0, 3));
        assert_eq!(snap.flows[0].packets_sent, 7);
        assert_eq!(snap.flows[1].flow, flow(5, 1));
        assert_eq!(snap.links[0].neighbor, NodeId::new(2));
        assert_eq!(snap.links[1].bytes, 100);
    }

    #[test]
    fn aggregate_folds_flows_across_nodes() {
        let registry_a = MetricsRegistry::new(4);
        let registry_b = MetricsRegistry::new(4);
        let f = flow(0, 2);
        // Source node: sent + its own transmissions.
        let cells = registry_a.flow(f);
        cells.packets_sent.fetch_add(10, Ordering::Relaxed);
        cells.transmissions.fetch_add(10, Ordering::Relaxed);
        // Destination node: deliveries + relay transmissions.
        let cells = registry_b.flow(f);
        cells.packets_on_time.fetch_add(8, Ordering::Relaxed);
        cells.packets_late.fetch_add(1, Ordering::Relaxed);
        cells.transmissions.fetch_add(5, Ordering::Relaxed);
        registry_a.counters.data_sent.fetch_add(10, Ordering::Relaxed);
        registry_b.counters.data_sent.fetch_add(5, Ordering::Relaxed);

        let report = ClusterMetricsReport::aggregate(vec![
            registry_b.snapshot(NodeId::new(2)),
            registry_a.snapshot(NodeId::new(0)),
        ]);
        assert_eq!(report.nodes[0].node, NodeId::new(0), "sorted by node id");
        assert_eq!(report.totals.data_sent, 15);
        let fr = report.flow(f).expect("flow aggregated");
        assert_eq!(fr.packets_sent, 10);
        assert_eq!(fr.packets_delivered, 9);
        assert_eq!(fr.packets_lost, 1);
        assert_eq!(fr.transmissions, 15);
        assert!((fr.on_time_fraction() - 0.8).abs() < 1e-12);
        assert!((fr.average_cost() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn counters_merge_is_field_wise() {
        let mut a = NodeCounters { data_sent: 3, hellos_sent: 1, ..NodeCounters::default() };
        let b = NodeCounters { data_sent: 4, expired: 2, ..NodeCounters::default() };
        a.merge(&b);
        assert_eq!(a.data_sent, 7);
        assert_eq!(a.hellos_sent, 1);
        assert_eq!(a.expired, 2);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = MetricsRegistry::new(4);
        registry.record(EventKind::RouteChange {
            flow: flow(1, 2),
            scheme: SchemeKind::TargetedRedundancy,
            edges: 7,
        });
        registry.record(EventKind::DetectorTriggered { neighbor: NodeId::new(3), loss: 0.25 });
        registry.flow(flow(1, 2)).transmissions.fetch_add(4, Ordering::Relaxed);
        let snap = registry.snapshot(NodeId::new(1));
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(snap, back);
    }
}
