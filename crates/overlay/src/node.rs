//! The overlay node: socket, forwarding engine, and protocol threads.

use crate::clock::now_us;
use crate::config::NodeConfig;
use crate::fault::FaultPlan;
use crate::linkstate::LinkStateDb;
use crate::monitor::LinkMonitor;
use crate::recovery::{GapTracker, SendBuffer};
use crate::session::{Delivery, FlowReceiver, FlowSender, SchemeSlot};
use crate::wire::{DataPacket, Envelope, LinkStateEntry, LinkStateUpdate, Message};
use crate::OverlayError;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError};
use dg_core::scheme::RoutingScheme;
use dg_core::{Flow, ServiceRequirement};
use dg_topology::{Graph, Micros, NodeId};
use dg_trace::NetworkState;
use parking_lot::Mutex;
use rand::Rng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Constructor namespace for overlay nodes; see [`OverlayNode::spawn`].
#[derive(Debug)]
pub struct OverlayNode;

/// Counters exposed by a running node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Data transmissions onto links (originals, not retransmissions).
    pub data_sent: u64,
    /// Data packets received from links.
    pub data_received: u64,
    /// Packets delivered to local receiver sessions.
    pub delivered: u64,
    /// Flow-level duplicates suppressed.
    pub duplicates: u64,
    /// Packets dropped because their deadline had passed.
    pub expired: u64,
    /// NACKs sent upstream.
    pub nacks_sent: u64,
    /// Retransmissions performed in response to NACKs.
    pub retransmissions: u64,
    /// Datagrams dropped by injected link faults.
    pub fault_drops: u64,
    /// Hello probes sent.
    pub hellos_sent: u64,
    /// Link-state updates originated or re-flooded.
    pub link_state_sent: u64,
    /// Dissemination-graph changes across local sender sessions.
    pub graph_changes: u64,
    /// Datagrams that failed to parse.
    pub malformed: u64,
}

#[derive(Debug, Default)]
struct AtomicStats {
    data_sent: AtomicU64,
    data_received: AtomicU64,
    delivered: AtomicU64,
    duplicates: AtomicU64,
    expired: AtomicU64,
    nacks_sent: AtomicU64,
    retransmissions: AtomicU64,
    fault_drops: AtomicU64,
    hellos_sent: AtomicU64,
    link_state_sent: AtomicU64,
    graph_changes: AtomicU64,
    malformed: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> NodeStats {
        NodeStats {
            data_sent: self.data_sent.load(Ordering::Relaxed),
            data_received: self.data_received.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            duplicates: self.duplicates.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            nacks_sent: self.nacks_sent.load(Ordering::Relaxed),
            retransmissions: self.retransmissions.load(Ordering::Relaxed),
            fault_drops: self.fault_drops.load(Ordering::Relaxed),
            hellos_sent: self.hellos_sent.load(Ordering::Relaxed),
            link_state_sent: self.link_state_sent.load(Ordering::Relaxed),
            graph_changes: self.graph_changes.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
        }
    }
}

struct DedupCache {
    seen: HashSet<(Flow, u64)>,
    order: VecDeque<(Flow, u64)>,
    capacity: usize,
}

impl DedupCache {
    fn new(capacity: usize) -> Self {
        DedupCache {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Returns `true` when the key is new.
    fn insert(&mut self, key: (Flow, u64)) -> bool {
        if !self.seen.insert(key) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(key);
        true
    }
}

struct SendLink {
    next_seq: u64,
    buffer: SendBuffer,
}

struct Shipment {
    to: NodeId,
    datagram: Bytes,
    depart_at: Micros,
    order: u64,
}

pub(crate) struct Shared {
    pub(crate) config: NodeConfig,
    pub(crate) graph: Arc<Graph>,
    socket: UdpSocket,
    running: AtomicBool,
    pub(crate) faults: FaultPlan,
    monitor: Mutex<LinkMonitor>,
    linkstate: Mutex<LinkStateDb>,
    dedup: Mutex<DedupCache>,
    send_links: Mutex<HashMap<NodeId, SendLink>>,
    recv_links: Mutex<HashMap<NodeId, GapTracker>>,
    receivers: Mutex<HashMap<Flow, Sender<Delivery>>>,
    pub(crate) senders: Mutex<Vec<Arc<Mutex<SchemeSlot>>>>,
    shipper_tx: Sender<Shipment>,
    shipment_order: AtomicU64,
    stats: AtomicStats,
    hello_seq: AtomicU64,
    ls_seq: AtomicU64,
}

impl Shared {
    fn me(&self) -> NodeId {
        self.config.node
    }

    /// Applies link faults and hands the datagram to the shipper.
    fn transmit(&self, to: NodeId, datagram: Bytes) {
        let fault = self.faults.get(to);
        if fault.loss > 0.0 && rand::thread_rng().gen_bool(fault.loss.clamp(0.0, 1.0)) {
            self.stats.fault_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let shipment = Shipment {
            to,
            datagram,
            depart_at: now_us().saturating_add(fault.delay),
            order: self.shipment_order.fetch_add(1, Ordering::Relaxed),
        };
        // A send on a closed channel only happens during shutdown.
        let _ = self.shipper_tx.send(shipment);
    }

    /// Assigns a per-link sequence, buffers for recovery, and transmits
    /// a data packet toward `neighbor`.
    pub(crate) fn send_data(&self, neighbor: NodeId, packet: &DataPacket) {
        let bytes = {
            let mut links = self.send_links.lock();
            let link = links.entry(neighbor).or_insert_with(|| SendLink {
                next_seq: 0,
                buffer: SendBuffer::new(self.config.retransmit_buffer),
            });
            let mut own = packet.clone();
            own.link_seq = link.next_seq;
            link.next_seq += 1;
            let bytes = Envelope { from: self.me(), message: Message::Data(own) }.encode();
            link.buffer.push(link.next_seq - 1, bytes.clone());
            bytes
        };
        self.stats.data_sent.fetch_add(1, Ordering::Relaxed);
        self.transmit(neighbor, bytes);
    }

    /// Disseminates a packet from this node along its mask's out-edges.
    pub(crate) fn disseminate(&self, packet: &DataPacket) {
        for &e in self.graph.out_edges(self.me()) {
            if packet.mask_contains(e) {
                self.send_data(self.graph.edge(e).dst, packet);
            }
        }
    }

    fn handle_datagram(&self, datagram: &[u8]) {
        let envelope = match Envelope::decode(datagram) {
            Ok(e) => e,
            Err(_) => {
                self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let from = envelope.from;
        match envelope.message {
            Message::Hello { seq, sent_at } => {
                let now = now_us();
                self.monitor.lock().record_hello(from, seq, now.saturating_sub(sent_at), now);
                let ack = Envelope {
                    from: self.me(),
                    message: Message::HelloAck { echo_seq: seq, echo_sent_at: sent_at },
                };
                self.transmit(from, ack.encode());
            }
            Message::HelloAck { echo_sent_at, .. } => {
                let rtt = now_us().saturating_sub(echo_sent_at);
                self.monitor.lock().record_rtt(from, rtt);
            }
            Message::LinkState(update) => {
                if self.linkstate.lock().apply(&update) {
                    self.flood_link_state(&update, Some(from));
                }
            }
            Message::Nack { missing } => {
                let mut resends = Vec::new();
                {
                    let mut links = self.send_links.lock();
                    if let Some(link) = links.get_mut(&from) {
                        for seq in missing {
                            if let Some(bytes) = link.buffer.take(seq) {
                                resends.push(bytes);
                            }
                        }
                    }
                }
                for bytes in resends {
                    self.stats.retransmissions.fetch_add(1, Ordering::Relaxed);
                    self.transmit(from, bytes);
                }
            }
            Message::Data(packet) => self.handle_data(from, packet),
        }
    }

    fn handle_data(&self, from: NodeId, packet: DataPacket) {
        self.stats.data_received.fetch_add(1, Ordering::Relaxed);
        // Hop-by-hop recovery: detect gaps on this incoming link.
        let missing = self.recv_links.lock().entry(from).or_default().observe(packet.link_seq);
        if !missing.is_empty() {
            self.stats.nacks_sent.fetch_add(1, Ordering::Relaxed);
            let nack = Envelope { from: self.me(), message: Message::Nack { missing } };
            self.transmit(from, nack.encode());
        }
        // Flow-level duplicate suppression.
        if !self.dedup.lock().insert((packet.flow, packet.flow_seq)) {
            self.stats.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let now = now_us();
        if packet.flow.destination == self.me() {
            self.stats.delivered.fetch_add(1, Ordering::Relaxed);
            if let Some(tx) = self.receivers.lock().get(&packet.flow) {
                let _ = tx.send(Delivery {
                    flow: packet.flow,
                    flow_seq: packet.flow_seq,
                    payload: packet.payload.clone(),
                    sent_at: packet.sent_at,
                    delivered_at: now,
                    on_time: !packet.expired(now),
                });
            }
        }
        if packet.expired(now) {
            self.stats.expired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.disseminate(&packet);
    }

    fn flood_link_state(&self, update: &LinkStateUpdate, except: Option<NodeId>) {
        let bytes =
            Envelope { from: self.me(), message: Message::LinkState(update.clone()) }.encode();
        for &e in self.graph.out_edges(self.me()) {
            let neighbor = self.graph.edge(e).dst;
            if Some(neighbor) != except {
                self.stats.link_state_sent.fetch_add(1, Ordering::Relaxed);
                self.transmit(neighbor, bytes.clone());
            }
        }
    }

    /// Originates this node's own link-state report: the loss observed
    /// *from* each neighbour (our in-edges) and the latency above
    /// baseline.
    fn originate_link_state(&self) {
        let me = self.me();
        let now = now_us();
        let entries: Vec<LinkStateEntry> = {
            let monitor = self.monitor.lock();
            self.graph
                .in_edges(me)
                .iter()
                .map(|&e| {
                    let neighbor = self.graph.edge(e).src;
                    let baseline = self.graph.edge(e).latency;
                    let extra = monitor
                        .one_way_from(neighbor)
                        .map_or(Micros::ZERO, |d| d.saturating_sub(baseline));
                    LinkStateEntry {
                        edge: e,
                        loss: monitor.loss_from(neighbor, now) as f32,
                        extra_latency_us: extra.as_micros().min(u64::from(u32::MAX)) as u32,
                    }
                })
                .collect()
        };
        let update = LinkStateUpdate {
            origin: me,
            seq: self.ls_seq.fetch_add(1, Ordering::Relaxed) + 1,
            entries,
        };
        self.linkstate.lock().apply(&update);
        self.flood_link_state(&update, None);
    }

    fn update_schemes(&self) {
        let state = self.linkstate.lock().network_state(now_us());
        let slots: Vec<_> = self.senders.lock().clone();
        for slot in slots {
            let mut slot = slot.lock();
            if slot.scheme.update(&self.graph, &state) {
                slot.refresh_mask(self.graph.edge_count());
                self.stats.graph_changes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn send_hellos(&self) {
        let me = self.me();
        let seq = self.hello_seq.fetch_add(1, Ordering::Relaxed);
        for &e in self.graph.out_edges(me) {
            let hello = Envelope {
                from: me,
                message: Message::Hello { seq, sent_at: now_us() },
            };
            self.stats.hellos_sent.fetch_add(1, Ordering::Relaxed);
            self.transmit(self.graph.edge(e).dst, hello.encode());
        }
    }
}

/// A running overlay node.
///
/// Dropping the handle without calling [`OverlayHandle::shutdown`]
/// leaves the daemon threads running until process exit; call
/// `shutdown` for an orderly stop.
pub struct OverlayHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for OverlayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayHandle")
            .field("node", &self.shared.config.node)
            .field("addr", &self.local_addr())
            .finish()
    }
}

impl OverlayNode {
    /// Binds the configured address and starts the node's threads.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when the socket cannot be bound.
    pub fn spawn(config: NodeConfig, graph: Arc<Graph>) -> Result<OverlayHandle, OverlayError> {
        let socket = UdpSocket::bind(config.listen)?;
        OverlayNode::spawn_with_socket(config, graph, socket)
    }

    /// Starts a node over an already-bound socket (used by clusters,
    /// which must learn every port before wiring up peer tables).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when socket options cannot be set.
    pub fn spawn_with_socket(
        config: NodeConfig,
        graph: Arc<Graph>,
        socket: UdpSocket,
    ) -> Result<OverlayHandle, OverlayError> {
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let (shipper_tx, shipper_rx) = channel::unbounded();
        let monitor_window = config.monitor_window;
        let dedup_window = config.dedup_window;
        let hello_interval = config.hello_interval;
        let shared = Arc::new(Shared {
            config,
            graph: Arc::clone(&graph),
            socket,
            running: AtomicBool::new(true),
            faults: FaultPlan::new(),
            monitor: Mutex::new(LinkMonitor::new(
                monitor_window,
                Micros::from_micros(hello_interval.as_micros() as u64),
            )),
            linkstate: Mutex::new(LinkStateDb::new(&graph)),
            dedup: Mutex::new(DedupCache::new(dedup_window)),
            send_links: Mutex::new(HashMap::new()),
            recv_links: Mutex::new(HashMap::new()),
            receivers: Mutex::new(HashMap::new()),
            senders: Mutex::new(Vec::new()),
            shipper_tx,
            shipment_order: AtomicU64::new(0),
            stats: AtomicStats::default(),
            hello_seq: AtomicU64::new(0),
            ls_seq: AtomicU64::new(0),
        });

        let rx_shared = Arc::clone(&shared);
        let rx_thread = std::thread::Builder::new()
            .name(format!("dg-rx-{}", rx_shared.config.node))
            .spawn(move || receive_loop(&rx_shared))?;

        let ship_shared = Arc::clone(&shared);
        let ship_thread = std::thread::Builder::new()
            .name(format!("dg-ship-{}", ship_shared.config.node))
            .spawn(move || shipper_loop(&ship_shared, &shipper_rx))?;

        let tick_shared = Arc::clone(&shared);
        let tick_thread = std::thread::Builder::new()
            .name(format!("dg-tick-{}", tick_shared.config.node))
            .spawn(move || ticker_loop(&tick_shared))?;

        Ok(OverlayHandle { shared, threads: vec![rx_thread, ship_thread, tick_thread] })
    }
}

impl OverlayHandle {
    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.shared.config.node
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.shared.socket.local_addr().expect("bound socket has an address")
    }

    /// Opens a sending session at this node for the scheme's flow.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] when the scheme's flow does
    /// not originate here.
    pub fn open_sender(
        &self,
        scheme: Box<dyn RoutingScheme>,
        requirement: ServiceRequirement,
    ) -> Result<FlowSender, OverlayError> {
        if scheme.flow().source != self.node_id() {
            return Err(OverlayError::UnknownNode(scheme.flow().source));
        }
        let flow = scheme.flow();
        let slot = Arc::new(Mutex::new(SchemeSlot::new(
            scheme,
            self.shared.graph.edge_count(),
        )));
        self.shared.senders.lock().push(Arc::clone(&slot));
        Ok(FlowSender::new(Arc::clone(&self.shared), slot, flow, requirement.deadline))
    }

    /// Opens a receiving session for `flow`, which must terminate here.
    ///
    /// A later receiver for the same flow replaces the earlier one.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] when the flow does not
    /// terminate at this node.
    pub fn open_receiver(&self, flow: Flow) -> Result<FlowReceiver, OverlayError> {
        if flow.destination != self.node_id() {
            return Err(OverlayError::UnknownNode(flow.destination));
        }
        let (tx, rx) = channel::unbounded();
        self.shared.receivers.lock().insert(flow, tx);
        Ok(FlowReceiver::new(rx))
    }

    /// The runtime-adjustable fault plan for this node's out-links.
    pub fn faults(&self) -> &FaultPlan {
        &self.shared.faults
    }

    /// This node's current view of network-wide link conditions.
    pub fn network_state(&self) -> NetworkState {
        self.shared.linkstate.lock().network_state(now_us())
    }

    /// How many origins have reported link state so far.
    pub fn link_state_origins(&self) -> usize {
        self.shared.linkstate.lock().origins_heard()
    }

    /// Snapshot of this node's counters.
    pub fn stats(&self) -> NodeStats {
        self.shared.stats.snapshot()
    }

    /// This node's direct measurements of the link *from* `neighbor`:
    /// `(estimated loss, smoothed RTT if an echo returned)`.
    pub fn link_quality(&self, neighbor: NodeId) -> (f64, Option<Micros>) {
        let monitor = self.shared.monitor.lock();
        (monitor.loss_from(neighbor, now_us()), monitor.rtt_to(neighbor))
    }

    /// Total datagrams currently held for possible retransmission
    /// across all out-links.
    pub fn retransmit_backlog(&self) -> usize {
        self.shared.send_links.lock().values().map(|l| l.buffer.len()).sum()
    }

    /// Stops the node's threads and joins them.
    pub fn shutdown(mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn receive_loop(shared: &Shared) {
    let mut buf = vec![0u8; 65_536];
    while shared.running.load(Ordering::SeqCst) {
        match shared.socket.recv_from(&mut buf) {
            Ok((len, _addr)) => shared.handle_datagram(&buf[..len]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

fn shipper_loop(shared: &Shared, rx: &Receiver<Shipment>) {
    use std::cmp::Reverse;
    let mut heap: std::collections::BinaryHeap<Reverse<(Micros, u64)>> =
        std::collections::BinaryHeap::new();
    let mut pending: HashMap<u64, Shipment> = HashMap::new();
    loop {
        // Drain whatever has been queued.
        loop {
            match rx.try_recv() {
                Ok(s) => {
                    heap.push(Reverse((s.depart_at, s.order)));
                    pending.insert(s.order, s);
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => break,
            }
        }
        // Send everything due.
        let now = now_us();
        while heap.peek().is_some_and(|Reverse((due, _))| *due <= now) {
            let Reverse((_, order)) = heap.pop().expect("peeked");
            if let Some(s) = pending.remove(&order) {
                if let Some(addr) = shared.config.peers.get(&s.to) {
                    let _ = shared.socket.send_to(&s.datagram, addr);
                }
            }
        }
        if !shared.running.load(Ordering::SeqCst) && heap.is_empty() {
            return;
        }
        // Sleep until the next due shipment or a short poll.
        let nap = heap
            .peek()
            .map(|Reverse((due, _))| {
                Duration::from_micros(due.saturating_sub(now_us()).as_micros().min(5_000))
            })
            .unwrap_or(Duration::from_millis(2));
        if let Ok(s) = rx.recv_timeout(nap) {
            heap.push(Reverse((s.depart_at, s.order)));
            pending.insert(s.order, s);
        }
    }
}

fn ticker_loop(shared: &Shared) {
    let hello_every = shared.config.hello_interval;
    let ls_every = shared.config.link_state_interval;
    let mut last_ls = std::time::Instant::now();
    while shared.running.load(Ordering::SeqCst) {
        shared.send_hellos();
        if last_ls.elapsed() >= ls_every {
            last_ls = std::time::Instant::now();
            shared.originate_link_state();
            shared.update_schemes();
        }
        std::thread::sleep(hello_every);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_cache_evicts_in_order() {
        let f = Flow::new(NodeId::new(0), NodeId::new(1));
        let mut cache = DedupCache::new(2);
        assert!(cache.insert((f, 1)));
        assert!(!cache.insert((f, 1)));
        assert!(cache.insert((f, 2)));
        assert!(cache.insert((f, 3))); // evicts seq 1
        assert!(cache.insert((f, 1)), "evicted key is fresh again");
    }

    #[test]
    fn stats_snapshot_reads_counters() {
        let stats = AtomicStats::default();
        stats.data_sent.fetch_add(3, Ordering::Relaxed);
        stats.duplicates.fetch_add(1, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.data_sent, 3);
        assert_eq!(snap.duplicates, 1);
        assert_eq!(snap.delivered, 0);
    }
}
