//! The overlay node: socket, forwarding engine, and protocol threads.

use crate::clock::now_us;
use crate::config::NodeConfig;
use crate::fault::{corrupt_in_place, FaultPlan};
use crate::linkstate::LinkStateDb;
use crate::metrics::{EventKind, MetricsRegistry, MetricsSnapshot, NodeThread};
use crate::monitor::{FlapDamper, LinkMonitor};
use crate::overload::{OverloadConfig, OverloadDetector, OverloadTransition};
use crate::pool::{BufferPool, ScratchVecPool};
use crate::recovery::{retransmit_worthwhile, GapTracker, SendBuffer};
use crate::runtime::{Runtime, SpawnMode};
use crate::session::{Delivery, FlowGroup, FlowReceiver, FlowSender, GroupSlot, SchemeSlot};
use crate::shard::ShardedMap;
use crate::wire::{
    self, DataPacket, DigestEntry, Envelope, LinkStateEntry, LinkStateUpdate, Message,
};
use crate::OverlayError;
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, Sender, TryRecvError, TrySendError};
use dg_core::scheme::{build_scheme, RoutingScheme, SchemeKind, SchemeParams};
use dg_core::{
    CachedGraphKind, Flow, GraphCache, GraphCacheStats, MulticastKind, ServiceRequirement, SlaClass,
};
use dg_topology::{Graph, Micros, NodeId};
use dg_trace::NetworkState;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::UdpSocket;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Constructor namespace for overlay nodes; see [`OverlayNode::spawn`].
#[derive(Debug)]
pub struct OverlayNode;

struct DedupCache {
    seen: HashSet<(Flow, u64)>,
    order: VecDeque<(Flow, u64)>,
    capacity: usize,
}

impl DedupCache {
    fn new(capacity: usize) -> Self {
        DedupCache {
            seen: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Returns `true` when the key is new.
    fn insert(&mut self, key: (Flow, u64)) -> bool {
        if !self.seen.insert(key) {
            return false;
        }
        if self.order.len() == self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.seen.remove(&old);
            }
        }
        self.order.push_back(key);
        true
    }
}

struct SendLink {
    next_seq: u64,
    /// Recently sent packets, kept decoded: clones are cheap
    /// (reference-counted mask/payload) and the NACK path re-encodes on
    /// demand, so the hot path never clones an encoded frame just for
    /// the buffer.
    buffer: SendBuffer<DataPacket>,
}

pub(crate) struct Shipment {
    to: NodeId,
    datagram: Bytes,
    depart_at: Micros,
    order: u64,
    /// `Some` for data traffic (the SLA class it carries), `None` for
    /// control frames — hellos, link state, acks, digests, NACKs —
    /// which ride a reserved unbounded lane and are never shed.
    class: Option<SlaClass>,
}

// Ordered so a max-heap pops the *earliest* shipment first, FIFO within
// one departure instant.
impl Ord for Shipment {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.depart_at.cmp(&self.depart_at).then(other.order.cmp(&self.order))
    }
}

impl PartialOrd for Shipment {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Shipment {
    fn eq(&self, other: &Self) -> bool {
        self.depart_at == other.depart_at && self.order == other.order
    }
}

impl Eq for Shipment {}

/// A link-state update one neighbour has not yet acknowledged.
struct PendingLsa {
    update: LinkStateUpdate,
    next_retry: Micros,
    backoff: Micros,
    retries_left: u32,
}

/// The last link state actually advertised for one in-edge, held
/// across flap-damped suppressions so an oscillating link keeps
/// advertising its previous stable state.
#[derive(Clone, Copy, Default)]
struct AdvertisedLink {
    down: bool,
    triggered: bool,
    loss: f32,
    extra_latency_us: u32,
}

/// Thread supervision state: per-thread heartbeats, pending panic
/// injections (for tests and chaos), and the degradation horizon set
/// by the most recent crash.
struct Supervision {
    /// Last heartbeat per supervised thread, in microseconds on the
    /// [`now_us`] clock; zero means the thread has not started.
    heartbeats: [AtomicU64; 3],
    /// Set to make the matching thread panic at its next checkpoint.
    panic_requests: [AtomicBool; 3],
    /// The node reports itself degraded until this instant after a
    /// thread crash, giving operators a visible window even when the
    /// restart is instant.
    degraded_until: AtomicU64,
}

fn thread_index(thread: NodeThread) -> usize {
    match thread {
        NodeThread::Receive => 0,
        NodeThread::Shipper => 1,
        NodeThread::Ticker => 2,
    }
}

impl Supervision {
    fn new(now: Micros) -> Self {
        let t = now.as_micros();
        Supervision {
            heartbeats: [AtomicU64::new(t), AtomicU64::new(t), AtomicU64::new(t)],
            panic_requests: [
                AtomicBool::new(false),
                AtomicBool::new(false),
                AtomicBool::new(false),
            ],
            degraded_until: AtomicU64::new(0),
        }
    }
}

pub(crate) struct Shared {
    pub(crate) config: NodeConfig,
    pub(crate) graph: Arc<Graph>,
    socket: UdpSocket,
    running: AtomicBool,
    pub(crate) faults: FaultPlan,
    monitor: Mutex<LinkMonitor>,
    linkstate: Mutex<LinkStateDb>,
    /// Precomputed dissemination graphs for this node's flows, fed by
    /// link-state reports: entries are invalidated only when a report
    /// flips a link they depend on across the usability threshold.
    graph_cache: GraphCache,
    /// Link-state updates awaiting per-neighbour acknowledgement,
    /// keyed by neighbour then origin (only the newest stamp per
    /// origin is worth retransmitting).
    pending_lsa: Mutex<HashMap<NodeId, HashMap<NodeId, PendingLsa>>>,
    /// Route-flap damper for this node's own advertisements.
    damper: Mutex<FlapDamper>,
    /// What each in-edge currently advertises (held across damped
    /// suppressions).
    advertised: Mutex<HashMap<NodeId, AdvertisedLink>>,
    supervision: Supervision,
    dedup: Mutex<DedupCache>,
    send_links: Mutex<HashMap<NodeId, SendLink>>,
    recv_links: Mutex<HashMap<NodeId, GapTracker>>,
    /// Sharded so concurrent deliveries for unrelated flows don't
    /// serialize on one lock.
    receivers: ShardedMap<Flow, Sender<Delivery>>,
    pub(crate) senders: Mutex<Vec<Arc<Mutex<SchemeSlot>>>>,
    /// Multicast group sessions originated here, refreshed alongside
    /// the unicast sender slots on every scheme-update tick.
    pub(crate) groups: Mutex<Vec<Arc<Mutex<GroupSlot>>>>,
    /// Reusable encode buffers for the transmit path.
    frame_pool: Mutex<BufferPool>,
    /// Reusable packet scratch for the batch send path.
    packet_scratch: Mutex<ScratchVecPool<DataPacket>>,
    /// Reusable link-sequence scratch for the batch send path.
    seq_scratch: Mutex<ScratchVecPool<u64>>,
    /// Bounded lane for data shipments; overflow is shed by class.
    shipper_tx: Sender<Shipment>,
    /// Reserved unbounded lane for control frames, so saturating data
    /// traffic can never starve hellos or link state into a spurious
    /// link-down declaration.
    control_tx: Sender<Shipment>,
    /// Data shipments currently in flight toward the wire (bounded
    /// channel plus the shipper's heap) — the depth signal both the
    /// class shed bands and the overload detector read.
    queued_data: AtomicU64,
    /// Damped overload state machine driving per-class redundancy
    /// downgrades (observed from the ticker thread).
    overload: Mutex<OverloadDetector>,
    scheme_params: SchemeParams,
    shipment_order: AtomicU64,
    pub(crate) metrics: MetricsRegistry,
    hello_seq: AtomicU64,
    ls_seq: AtomicU64,
    /// This node's link-state incarnation, minted from the clock at
    /// spawn so a restarted node outranks its previous life.
    ls_epoch: u64,
    /// While set, the ticker skips link-state origination (hellos,
    /// digests, acks, and retransmits keep running). Out-of-process
    /// collectors quiesce origination briefly before snapshotting so
    /// every daemon's final digest refers to the same frozen stamps
    /// instead of racing the 200 ms refresh cadence.
    originations_paused: AtomicBool,
}

impl Shared {
    fn me(&self) -> NodeId {
        self.config.node
    }

    /// Stamps the calling supervised duty's heartbeat.
    pub(crate) fn beat(&self, thread: NodeThread) {
        self.supervision.heartbeats[thread_index(thread)]
            .store(now_us().as_micros(), Ordering::Relaxed);
    }

    /// Panics if a panic was injected for `thread` (fault injection for
    /// supervision tests); consumes the request either way.
    pub(crate) fn maybe_injected_panic(&self, thread: NodeThread) {
        if self.supervision.panic_requests[thread_index(thread)].swap(false, Ordering::Relaxed) {
            panic!("injected panic in {thread:?} thread");
        }
    }

    /// True until shutdown has been requested.
    pub(crate) fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    /// Accounts one supervised-duty panic: counts it, journals it, and
    /// opens the degradation window. The crash instant counts as a
    /// heartbeat — the restart is immediate, so the duty is degraded,
    /// not dead. Shared by the per-thread supervisor and the reactor.
    pub(crate) fn note_thread_crash(&self, thread: NodeThread) {
        self.metrics.counters.thread_crashes.fetch_add(1, Ordering::Relaxed);
        self.metrics.record(EventKind::ThreadCrash { thread });
        let until = now_us()
            .as_micros()
            .saturating_add(self.config.watchdog_stale_after.as_micros() as u64);
        self.supervision.degraded_until.fetch_max(until, Ordering::Relaxed);
        self.beat(thread);
    }

    /// True while the node is running without a full complement of
    /// healthy threads: either a crash happened recently (within the
    /// watchdog horizon) or some supervised thread has stopped
    /// heartbeating entirely.
    pub(crate) fn degraded(&self) -> bool {
        let now = now_us().as_micros();
        if now < self.supervision.degraded_until.load(Ordering::Relaxed) {
            return true;
        }
        if !self.running.load(Ordering::SeqCst) {
            return false;
        }
        let stale = self.config.watchdog_stale_after.as_micros() as u64;
        self.supervision.heartbeats.iter().any(|h| {
            let t = h.load(Ordering::Relaxed);
            t != 0 && now.saturating_sub(t) > stale
        })
    }

    /// Applies link faults and sends the datagram: immediately on the
    /// calling thread when the verdict carries no delay (the hot path —
    /// no queue, no context switch), or via the shipper when the fault
    /// plan wants it held back.
    fn transmit(&self, to: NodeId, datagram: Bytes, class: Option<SlaClass>) {
        let verdict = self.faults.decide(to);
        if verdict.drop {
            self.metrics.counters.fault_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let payload = if verdict.corrupt {
            self.metrics.counters.fault_corruptions.fetch_add(1, Ordering::Relaxed);
            let mut bytes = datagram.to_vec();
            corrupt_in_place(&mut bytes, verdict.corrupt_seed);
            Bytes::from(bytes)
        } else {
            datagram
        };
        if verdict.delay == Micros::ZERO && !verdict.duplicate {
            self.account_send(to, payload.len());
            if let Some(addr) = self.config.peers.get(&to) {
                let _ = self.socket.send_to(&payload, addr);
            }
            // The frame is usually uniquely owned by now; recover its
            // allocation for the next encode.
            self.frame_pool.lock().recycle(payload);
            return;
        }
        let depart_at = now_us().saturating_add(verdict.delay);
        self.ship(to, payload.clone(), depart_at, class);
        if verdict.duplicate {
            self.metrics.counters.fault_duplicates.fetch_add(1, Ordering::Relaxed);
            self.ship(to, payload, depart_at, class);
        }
    }

    /// Accounts one wire transmission in the node and per-link counters.
    fn account_send(&self, to: NodeId, len: usize) {
        let bytes = len as u64;
        self.metrics.counters.datagrams_sent.fetch_add(1, Ordering::Relaxed);
        self.metrics.counters.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        let link = self.metrics.link(to);
        link.datagrams.fetch_add(1, Ordering::Relaxed);
        link.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Accounts one wire transmission and queues it on the shipper.
    /// Control frames (`class == None`) take the reserved unbounded
    /// lane; data frames take the bounded lane and are shed (and
    /// counted against their class) on overflow instead of growing
    /// without bound.
    fn ship(&self, to: NodeId, datagram: Bytes, depart_at: Micros, class: Option<SlaClass>) {
        self.account_send(to, datagram.len());
        let shipment = Shipment {
            to,
            datagram,
            depart_at,
            order: self.shipment_order.fetch_add(1, Ordering::Relaxed),
            class,
        };
        let Some(class) = class else {
            // Closed channels only happen during shutdown.
            let _ = self.control_tx.send(shipment);
            return;
        };
        self.queued_data.fetch_add(1, Ordering::Relaxed);
        match self.shipper_tx.try_send(shipment) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                self.queued_data.fetch_sub(1, Ordering::Relaxed);
                self.shed(class, 1);
            }
            // A closed channel only happens during shutdown.
            Err(TrySendError::Disconnected(_)) => {
                self.queued_data.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    /// Records `count` shed data packets of `class`: the per-class shed
    /// counter plus the shipper-side drop cause. (The snapshot-level
    /// `queue_drops` aggregate is derived from the per-cause counters
    /// at read time; nothing counts into it here.)
    fn shed(&self, class: SlaClass, count: u64) {
        let cell = match class {
            SlaClass::Bulk => &self.metrics.counters.shed_bulk,
            SlaClass::Timely => &self.metrics.counters.shed_timely,
            SlaClass::Surgical => &self.metrics.counters.shed_surgical,
        };
        cell.fetch_add(count, Ordering::Relaxed);
        self.metrics.counters.shipper_drops.fetch_add(count, Ordering::Relaxed);
    }

    /// Priority admission of a run of data packets against the class
    /// shed bands: bulk is admitted only into the bottom half of the
    /// outbound data queue, timely into the bottom three quarters, and
    /// surgical up to the full bound — so under pressure bulk sheds
    /// first, then timely, and surgical last. Returns `false` (and
    /// counts the shed) when the run must be dropped.
    fn admit_data(&self, class: SlaClass, count: u64) -> bool {
        let bound = self.config.shipper_queue as u64;
        let band = match class {
            SlaClass::Bulk => bound / 2,
            SlaClass::Timely => bound - bound / 4,
            SlaClass::Surgical => bound,
        };
        if self.queued_data.load(Ordering::Relaxed) < band {
            return true;
        }
        self.shed(class, count);
        false
    }

    /// Draws a pooled buffer, encodes with `fill`, and transmits the
    /// resulting frame toward `neighbor`.
    fn transmit_pooled(
        &self,
        neighbor: NodeId,
        class: Option<SlaClass>,
        fill: impl FnOnce(&mut Vec<u8>),
    ) {
        let mut buf = self.frame_pool.lock().get();
        fill(&mut buf);
        self.transmit(neighbor, Bytes::from(buf), class);
    }

    /// Assigns a per-link sequence, buffers for recovery, and transmits
    /// a data packet toward `neighbor`.
    pub(crate) fn send_data(&self, neighbor: NodeId, packet: &DataPacket) {
        // Shed before touching the link sequence or the retransmit
        // buffer: a shed packet must not open a gap the neighbour
        // would NACK for.
        if !self.admit_data(packet.class, 1) {
            return;
        }
        let link_seq = {
            let mut links = self.send_links.lock();
            let link = links.entry(neighbor).or_insert_with(|| SendLink {
                next_seq: 0,
                buffer: SendBuffer::new(self.config.retransmit_buffer),
            });
            let seq = link.next_seq;
            link.next_seq += 1;
            link.buffer.push(seq, packet.clone());
            seq
        };
        self.metrics.counters.data_sent.fetch_add(1, Ordering::Relaxed);
        self.metrics.flow(packet.flow).transmissions.fetch_add(1, Ordering::Relaxed);
        self.transmit_pooled(neighbor, Some(packet.class), |buf| {
            wire::encode_data(self.me(), packet, link_seq, buf);
        });
    }

    /// Like [`Shared::send_data`] for a run of packets: assigns them
    /// consecutive per-link sequences and coalesces them into as few
    /// datagrams as [`NodeConfig::max_batch_bytes`] allows — one
    /// syscall, one checksum, one fault verdict per wire datagram
    /// instead of per packet.
    ///
    /// All packets must belong to the same flow (callers batch within
    /// one sending session).
    pub(crate) fn send_data_batch(&self, neighbor: NodeId, packets: &[DataPacket]) {
        if packets.is_empty() {
            return;
        }
        // Same pre-sequence shedding as `send_data`: the whole run is
        // admitted or shed as one unit.
        if !self.admit_data(packets[0].class, packets.len() as u64) {
            return;
        }
        let first_seq = {
            let mut links = self.send_links.lock();
            let link = links.entry(neighbor).or_insert_with(|| SendLink {
                next_seq: 0,
                buffer: SendBuffer::new(self.config.retransmit_buffer),
            });
            let first = link.next_seq;
            link.next_seq += packets.len() as u64;
            for (i, p) in packets.iter().enumerate() {
                link.buffer.push(first + i as u64, p.clone());
            }
            first
        };
        let n = packets.len() as u64;
        self.metrics.counters.data_sent.fetch_add(n, Ordering::Relaxed);
        self.metrics.flow(packets[0].flow).transmissions.fetch_add(n, Ordering::Relaxed);
        let mut seqs = self.seq_scratch.lock().get();
        seqs.extend(first_seq..first_seq + n);
        // Chunk so no datagram exceeds the configured batch budget
        // (always at least one packet per datagram).
        let budget = self.config.max_batch_bytes;
        let mut start = 0;
        while start < packets.len() {
            let mut end = start + 1;
            let mut size = wire::data_body_len(&packets[start]);
            while end < packets.len() {
                let next = wire::data_body_len(&packets[end]);
                if size + next > budget {
                    break;
                }
                size += next;
                end += 1;
            }
            self.transmit_pooled(neighbor, Some(packets[0].class), |buf| {
                wire::encode_data_batch(self.me(), &packets[start..end], &seqs[start..end], buf);
            });
            start = end;
        }
        self.seq_scratch.lock().put(seqs);
    }

    /// Takes a pooled scratch vector for assembling a packet batch.
    pub(crate) fn take_packet_scratch(&self) -> Vec<DataPacket> {
        self.packet_scratch.lock().get()
    }

    /// Returns a batch scratch vector to the pool.
    pub(crate) fn put_packet_scratch(&self, v: Vec<DataPacket>) {
        self.packet_scratch.lock().put(v);
    }

    /// Disseminates a packet from this node along its mask's out-edges.
    pub(crate) fn disseminate(&self, packet: &DataPacket) {
        for &e in self.graph.out_edges(self.me()) {
            if packet.mask_contains(e) {
                self.send_data(self.graph.edge(e).dst, packet);
            }
        }
    }

    /// Disseminates a run of same-flow packets sharing one mask,
    /// batching the per-neighbor sends.
    pub(crate) fn disseminate_batch(&self, packets: &[DataPacket]) {
        let Some(first) = packets.first() else { return };
        for &e in self.graph.out_edges(self.me()) {
            if first.mask_contains(e) {
                self.send_data_batch(self.graph.edge(e).dst, packets);
            }
        }
    }

    fn handle_datagram(&self, datagram: &[u8]) {
        self.metrics.counters.datagrams_received.fetch_add(1, Ordering::Relaxed);
        self.metrics.counters.bytes_received.fetch_add(datagram.len() as u64, Ordering::Relaxed);
        // Data frames are copied once out of the receive scratch buffer
        // into a shared frame, and their masks/payloads decode as
        // zero-copy slices of it; control frames decode straight off the
        // scratch buffer with no allocation at all.
        let decoded = if wire::is_data_frame(datagram) {
            Envelope::decode_shared(&Bytes::copy_from_slice(datagram))
        } else {
            Envelope::decode(datagram)
        };
        let envelope = match decoded {
            Ok(e) => e,
            Err(_) => {
                self.metrics.counters.malformed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let from = envelope.from;
        match envelope.message {
            Message::Hello { seq, sent_at } => {
                let now = now_us();
                self.monitor.lock().record_hello(from, seq, now.saturating_sub(sent_at), now);
                self.metrics.counters.hellos_echoed.fetch_add(1, Ordering::Relaxed);
                let ack = Envelope {
                    from: self.me(),
                    message: Message::HelloAck { echo_seq: seq, echo_sent_at: sent_at },
                };
                self.transmit(from, ack.encode(), None);
            }
            Message::HelloAck { echo_sent_at, .. } => {
                let rtt = now_us().saturating_sub(echo_sent_at);
                self.metrics.counters.hello_acks_received.fetch_add(1, Ordering::Relaxed);
                self.monitor.lock().record_rtt(from, rtt);
            }
            Message::LinkState(update) => {
                // Ack unconditionally — even a stale or duplicate update
                // must stop the sender's retransmissions.
                let ack = Envelope {
                    from: self.me(),
                    message: Message::LsaAck {
                        origin: update.origin,
                        epoch: update.epoch,
                        seq: update.seq,
                    },
                };
                self.metrics.counters.lsa_acks_sent.fetch_add(1, Ordering::Relaxed);
                self.transmit(from, ack.encode(), None);
                if self.linkstate.lock().apply(&update, now_us()) {
                    self.note_link_state(&update);
                    self.flood_link_state(&update, Some(from));
                }
            }
            Message::LsaAck { origin, epoch, seq } => {
                self.metrics.counters.lsa_acks_received.fetch_add(1, Ordering::Relaxed);
                let mut pending = self.pending_lsa.lock();
                if let Some(per_origin) = pending.get_mut(&from) {
                    // An ack for a newer stamp covers the pending one;
                    // an ack for an older stamp does not.
                    if per_origin
                        .get(&origin)
                        .is_some_and(|p| (p.update.epoch, p.update.seq) <= (epoch, seq))
                    {
                        per_origin.remove(&origin);
                    }
                    if per_origin.is_empty() {
                        pending.remove(&from);
                    }
                }
            }
            Message::Digest { entries } => {
                self.metrics.counters.digests_received.fetch_add(1, Ordering::Relaxed);
                // Anti-entropy push repair: send back every origin we
                // know more about than the digesting neighbour.
                let repairs = self.linkstate.lock().updates_newer_than(&entries);
                if !repairs.is_empty() {
                    let now = now_us();
                    self.metrics
                        .counters
                        .lsa_repairs_sent
                        .fetch_add(repairs.len() as u64, Ordering::Relaxed);
                    for update in &repairs {
                        self.send_link_state_to(from, update, now);
                    }
                }
            }
            Message::Nack { missing } => {
                let requested = missing.len() as u64;
                self.metrics
                    .counters
                    .retransmit_requests_received
                    .fetch_add(requested, Ordering::Relaxed);
                let mut resends: Vec<(u64, DataPacket)> = Vec::new();
                {
                    let mut links = self.send_links.lock();
                    if let Some(link) = links.get_mut(&from) {
                        for seq in missing {
                            if let Some(packet) = link.buffer.take(seq) {
                                resends.push((seq, packet));
                            }
                        }
                    }
                }
                // Deadline-aware recovery: a retransmission that cannot
                // reach the neighbour before the packet's deadline only
                // burns bandwidth. Suppressed packets stay consumed from
                // the buffer — the NACK was their one recovery chance.
                let rtt = self.monitor.lock().rtt_to(from);
                let now = now_us();
                let mut suppressed = 0u64;
                resends.retain(|(_, packet)| {
                    if retransmit_worthwhile(packet.sent_at, packet.deadline, now, rtt) {
                        true
                    } else {
                        suppressed += 1;
                        false
                    }
                });
                if suppressed > 0 {
                    self.metrics
                        .counters
                        .retransmits_suppressed
                        .fetch_add(suppressed, Ordering::Relaxed);
                }
                let served = resends.len() as u64;
                let missed = requested - served - suppressed;
                if served > 0 {
                    self.metrics
                        .counters
                        .retransmissions_served
                        .fetch_add(served, Ordering::Relaxed);
                    self.metrics
                        .record(EventKind::RecoveryServed { neighbor: from, packets: served });
                }
                if missed > 0 {
                    self.metrics.counters.retransmit_misses.fetch_add(missed, Ordering::Relaxed);
                    self.metrics
                        .record(EventKind::RecoveryMissed { neighbor: from, packets: missed });
                }
                for (seq, packet) in resends {
                    // Attribute the retransmission to its flow so cost
                    // accounting matches the simulator (originals +
                    // retransmissions). This path only runs on loss, so
                    // re-encoding here keeps the hot path free of frame
                    // clones.
                    self.metrics.flow(packet.flow).transmissions.fetch_add(1, Ordering::Relaxed);
                    self.transmit_pooled(from, Some(packet.class), |buf| {
                        wire::encode_data(self.me(), &packet, seq, buf);
                    });
                }
            }
            Message::Data(packet) => self.handle_data(from, packet),
            Message::DataBatch(packets) => {
                // Un-batch: every packet runs the exact per-packet path
                // (gap tracking, dedup, delivery, forwarding).
                for packet in packets {
                    self.handle_data(from, packet);
                }
            }
        }
    }

    fn handle_data(&self, from: NodeId, packet: DataPacket) {
        self.metrics.counters.data_received.fetch_add(1, Ordering::Relaxed);
        let now = now_us();
        // Hop-by-hop recovery: detect gaps on this incoming link.
        let missing = self.recv_links.lock().entry(from).or_default().observe(packet.link_seq, now);
        if !missing.is_empty() {
            self.metrics.counters.nack_messages_sent.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .counters
                .retransmit_requests_issued
                .fetch_add(missing.len() as u64, Ordering::Relaxed);
            self.metrics.record(EventKind::RecoveryRequested {
                neighbor: from,
                packets: missing.len() as u64,
            });
            let nack = Envelope { from: self.me(), message: Message::Nack { missing } };
            self.transmit(from, nack.encode(), None);
        }
        // Flow-level duplicate suppression.
        if !self.dedup.lock().insert((packet.flow, packet.flow_seq)) {
            self.metrics.counters.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let on_time = !packet.expired(now);
        // Unicast delivers at the flow's destination; a group flow
        // delivers at every node with an open receiver session for it
        // (group membership is not wire-visible — the mask is).
        let deliver_here = packet.flow.destination == self.me()
            || (packet.flow.is_group() && self.receivers.with(&packet.flow, |_| ()).is_some());
        if deliver_here {
            let flow_cells = self.metrics.flow(packet.flow);
            if on_time {
                self.metrics.counters.delivered_on_time.fetch_add(1, Ordering::Relaxed);
                flow_cells.packets_on_time.fetch_add(1, Ordering::Relaxed);
            } else {
                self.metrics.counters.delivered_late.fetch_add(1, Ordering::Relaxed);
                flow_cells.packets_late.fetch_add(1, Ordering::Relaxed);
            }
            let delivery = Delivery {
                flow: packet.flow,
                flow_seq: packet.flow_seq,
                payload: packet.payload.clone(),
                sent_at: packet.sent_at,
                delivered_at: now,
                on_time,
            };
            {
                // The delivery queue is bounded: an application that
                // stops draining sheds load instead of wedging the node.
                let sent = self.receivers.with(&packet.flow, |tx| tx.try_send(delivery));
                if let Some(Err(TrySendError::Full(_))) = sent {
                    let shed_cell = match packet.class {
                        SlaClass::Bulk => &self.metrics.counters.shed_bulk,
                        SlaClass::Timely => &self.metrics.counters.shed_timely,
                        SlaClass::Surgical => &self.metrics.counters.shed_surgical,
                    };
                    shed_cell.fetch_add(1, Ordering::Relaxed);
                    self.metrics.counters.delivery_drops.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if !on_time {
            self.metrics.counters.expired.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.disseminate(&packet);
    }

    fn flood_link_state(&self, update: &LinkStateUpdate, except: Option<NodeId>) {
        let bytes =
            Envelope { from: self.me(), message: Message::LinkState(update.clone()) }.encode();
        let now = now_us();
        for &e in self.graph.out_edges(self.me()) {
            let neighbor = self.graph.edge(e).dst;
            if Some(neighbor) != except {
                self.register_pending(neighbor, update, now);
                self.metrics.counters.link_state_flooded.fetch_add(1, Ordering::Relaxed);
                self.transmit(neighbor, bytes.clone(), None);
            }
        }
    }

    /// Records that `neighbor` owes an ack for `update`, superseding
    /// any older pending advertisement from the same origin.
    fn register_pending(&self, neighbor: NodeId, update: &LinkStateUpdate, now: Micros) {
        let timeout = Micros::from_micros(self.config.lsa_retransmit_timeout.as_micros() as u64);
        let mut pending = self.pending_lsa.lock();
        let per_origin = pending.entry(neighbor).or_default();
        if per_origin
            .get(&update.origin)
            .is_some_and(|p| (p.update.epoch, p.update.seq) >= (update.epoch, update.seq))
        {
            return;
        }
        per_origin.insert(
            update.origin,
            PendingLsa {
                update: update.clone(),
                next_retry: now.saturating_add(timeout),
                backoff: timeout,
                retries_left: self.config.lsa_max_retransmits,
            },
        );
    }

    /// Sends one link-state update to a single neighbour (the digest
    /// repair path), tracked for acknowledgement like a flood.
    fn send_link_state_to(&self, neighbor: NodeId, update: &LinkStateUpdate, now: Micros) {
        self.register_pending(neighbor, update, now);
        let bytes =
            Envelope { from: self.me(), message: Message::LinkState(update.clone()) }.encode();
        self.transmit(neighbor, bytes, None);
    }

    /// Retransmits every pending link-state update whose ack timer has
    /// expired, with exponential backoff; updates out of retries are
    /// abandoned (the periodic digest exchange repairs whatever was
    /// lost for good).
    fn retransmit_pending_lsas(&self, now: Micros) {
        let mut resends: Vec<(NodeId, LinkStateUpdate)> = Vec::new();
        let mut abandoned = 0u64;
        {
            let mut pending = self.pending_lsa.lock();
            for (&neighbor, per_origin) in pending.iter_mut() {
                per_origin.retain(|_, p| {
                    if p.next_retry > now {
                        return true;
                    }
                    if p.retries_left == 0 {
                        abandoned += 1;
                        return false;
                    }
                    p.retries_left -= 1;
                    p.backoff = p.backoff.saturating_add(p.backoff);
                    p.next_retry = now.saturating_add(p.backoff);
                    resends.push((neighbor, p.update.clone()));
                    true
                });
            }
            pending.retain(|_, per_origin| !per_origin.is_empty());
        }
        if abandoned > 0 {
            self.metrics.counters.lsa_retransmits_abandoned.fetch_add(abandoned, Ordering::Relaxed);
        }
        for (neighbor, update) in resends {
            self.metrics.counters.lsa_retransmits.fetch_add(1, Ordering::Relaxed);
            let bytes = Envelope { from: self.me(), message: Message::LinkState(update) }.encode();
            self.transmit(neighbor, bytes, None);
        }
    }

    /// Advertises this node's per-origin link-state summary to every
    /// neighbour. Sent even when the database is empty: a fresh node's
    /// empty digest makes every neighbour push its full database back.
    fn send_digests(&self) {
        let entries = self.linkstate.lock().digest();
        let bytes = Envelope { from: self.me(), message: Message::Digest { entries } }.encode();
        for &e in self.graph.out_edges(self.me()) {
            self.metrics.counters.digests_sent.fetch_add(1, Ordering::Relaxed);
            self.transmit(self.graph.edge(e).dst, bytes.clone(), None);
        }
    }

    /// Re-requests gaps whose NACK has gone unanswered: exactly one
    /// extra chance per gap, covering the case where the NACK itself
    /// was lost while the neighbour's buffer still holds the packet.
    fn rerequest_nacks(&self, now: Micros) {
        let silence = Micros::from_micros(self.config.nack_rerequest_after.as_micros() as u64);
        let due: Vec<(NodeId, Vec<u64>)> = {
            let mut links = self.recv_links.lock();
            links
                .iter_mut()
                .filter_map(|(&neighbor, tracker)| {
                    let due = tracker.due_rerequests(now, silence);
                    if due.is_empty() {
                        None
                    } else {
                        Some((neighbor, due))
                    }
                })
                .collect()
        };
        for (neighbor, missing) in due {
            self.metrics
                .counters
                .nack_rerequests
                .fetch_add(missing.len() as u64, Ordering::Relaxed);
            self.metrics.counters.nack_messages_sent.fetch_add(1, Ordering::Relaxed);
            let nack = Envelope { from: self.me(), message: Message::Nack { missing } };
            self.transmit(neighbor, nack.encode(), None);
        }
    }

    /// Originates this node's own link-state report: the loss observed
    /// *from* each neighbour (our in-edges) and the latency above
    /// baseline.
    fn originate_link_state(&self) {
        let me = self.me();
        let now = now_us();
        let entries: Vec<LinkStateEntry> = {
            let mut monitor = self.monitor.lock();
            let mut damper = self.damper.lock();
            let mut advertised = self.advertised.lock();
            let mut entries = Vec::with_capacity(self.graph.in_edges(me).len());
            for &e in self.graph.in_edges(me) {
                let neighbor = self.graph.edge(e).src;
                let baseline = self.graph.edge(e).latency;
                let extra = monitor
                    .one_way_from(neighbor)
                    .map_or(Micros::ZERO, |d| d.saturating_sub(baseline));
                let loss = monitor.loss_from(neighbor, now);
                // The problem detector stays quiet until a link has
                // delivered at least one hello; a never-heard link reads
                // as 100% loss and would trigger spuriously at startup.
                if monitor.heard_from(neighbor) {
                    let _ = monitor.detect(neighbor, loss, self.config.detector_loss_threshold);
                }
                // Hello silence past the configured horizon declares the
                // link down outright — flooded so every scheme routes
                // around it rather than waiting for loss estimates to
                // decay.
                let _ = monitor.down_transition(neighbor, now);
                let raw = AdvertisedLink {
                    down: monitor.is_down(neighbor, now),
                    triggered: monitor.is_triggered(neighbor),
                    loss: loss as f32,
                    extra_latency_us: extra.as_micros().min(u64::from(u32::MAX)) as u32,
                };
                let adv = advertised.entry(neighbor).or_default();
                if raw.down != adv.down || raw.triggered != adv.triggered {
                    // A down declaration is fail-fast: it bypasses the
                    // damper (but still charges it, so the up side of a
                    // flapping link stays held). Everything else asks.
                    let admitted = if raw.down && !adv.down {
                        damper.record_forced(neighbor, now);
                        true
                    } else {
                        damper.admit(neighbor, now)
                    };
                    if admitted {
                        if raw.down != adv.down {
                            if raw.down {
                                self.metrics
                                    .counters
                                    .links_declared_down
                                    .fetch_add(1, Ordering::Relaxed);
                                self.metrics.record(EventKind::LinkDown { neighbor });
                            } else {
                                self.metrics.record(EventKind::LinkUp { neighbor });
                            }
                        }
                        if raw.triggered != adv.triggered {
                            if raw.triggered {
                                self.metrics.record(EventKind::DetectorTriggered {
                                    neighbor,
                                    loss: raw.loss,
                                });
                            } else {
                                self.metrics.record(EventKind::DetectorCleared {
                                    neighbor,
                                    loss: raw.loss,
                                });
                            }
                        }
                        *adv = raw;
                    } else {
                        // Suppressed: keep the previous advertisement
                        // wholesale — flags *and* measurements — so an
                        // oscillating link cannot thrash every scheme
                        // in the network.
                        self.metrics.counters.flap_suppressions.fetch_add(1, Ordering::Relaxed);
                        self.metrics.record(EventKind::FlapSuppressed {
                            neighbor,
                            penalty: damper.penalty(neighbor, now) as f32,
                        });
                    }
                } else {
                    // Flags are steady: measured loss and latency drift
                    // through untouched.
                    adv.loss = raw.loss;
                    adv.extra_latency_us = raw.extra_latency_us;
                }
                entries.push(LinkStateEntry {
                    edge: e,
                    loss: adv.loss,
                    extra_latency_us: adv.extra_latency_us,
                    down: adv.down,
                });
            }
            entries
        };
        self.metrics.counters.link_state_originated.fetch_add(1, Ordering::Relaxed);
        let update = LinkStateUpdate {
            origin: me,
            epoch: self.ls_epoch,
            seq: self.ls_seq.fetch_add(1, Ordering::Relaxed) + 1,
            entries,
        };
        self.linkstate.lock().apply(&update, now);
        self.note_link_state(&update);
        self.flood_link_state(&update, None);
    }

    /// Feeds an accepted link-state report into the graph cache, so
    /// precomputed routes depending on a link that crossed the
    /// usability threshold are evicted before the next scheme refresh.
    fn note_link_state(&self, update: &LinkStateUpdate) {
        for entry in &update.entries {
            let loss = if entry.down { 1.0 } else { f64::from(entry.loss) };
            self.graph_cache.note_loss(entry.edge, loss);
        }
    }

    fn update_schemes(&self) {
        let state = self.linkstate.lock().network_state(now_us());
        let slots: Vec<_> = self.senders.lock().clone();
        for slot in slots {
            let mut slot = slot.lock();
            if slot.scheme.update(&self.graph, &state) {
                slot.refresh_mask(self.graph.edge_count());
                self.metrics.counters.graph_changes.fetch_add(1, Ordering::Relaxed);
                let flow = slot.scheme.flow();
                self.metrics.flow(flow).graph_changes.fetch_add(1, Ordering::Relaxed);
                self.metrics.record(EventKind::RouteChange {
                    flow,
                    scheme: slot.scheme.kind(),
                    edges: slot.scheme.current().len() as u64,
                });
            }
            // Keep a usable disjoint-pair fallback warm for the flow.
            // Hits are free; a recompute only happens after a report
            // flipped one of the routes' links across the usability
            // threshold (the pair itself is deadline-independent).
            let _ = self.graph_cache.live(
                slot.scheme.flow(),
                CachedGraphKind::TwoDisjoint,
                ServiceRequirement::default(),
            );
        }
        // Group slots ride the same tick: a lookup against the
        // interned multicast tier is free while the cached graph is
        // valid, and recomputes exactly when a link-state report
        // flipped an edge the graph depends on.
        let groups: Vec<_> = self.groups.lock().clone();
        for slot in groups {
            let mut slot = slot.lock();
            let fresh = self.graph_cache.multicast(
                slot.flow.source,
                slot.graph.receivers(),
                slot.kind,
                slot.requirement,
            );
            if let Ok(graph) = fresh {
                if !Arc::ptr_eq(&graph, &slot.graph) {
                    // A recompute can land on the same edge set (the
                    // flip was on a redundant branch's alternative);
                    // only a real edge-set change counts as a reroute.
                    let changed = *graph != *slot.graph;
                    slot.refresh(graph, self.graph.edge_count());
                    if changed {
                        self.metrics.counters.graph_changes.fetch_add(1, Ordering::Relaxed);
                        self.metrics.flow(slot.flow).graph_changes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        // An ongoing overload episode keeps its downgrade masks in step
        // with the topology: recompute them (silently — the level did
        // not change) after the scheme refresh.
        let level = self.overload.lock().level();
        if level > 0 {
            self.apply_overload(level);
        }
    }

    /// Feeds the overload detector one observation (called once per
    /// hello tick) and, when a damped transition is admitted, journals
    /// the episode and adjusts per-class redundancy.
    fn observe_overload(&self, now: Micros) {
        let depth = self.queued_data.load(Ordering::Relaxed);
        let c = &self.metrics.counters;
        let shed_total = c.shed_bulk.load(Ordering::Relaxed)
            + c.shed_timely.load(Ordering::Relaxed)
            + c.shed_surgical.load(Ordering::Relaxed);
        match self.overload.lock().observe(now, depth, shed_total) {
            Some(OverloadTransition::Enter { level })
            | Some(OverloadTransition::Escalate { level }) => {
                self.metrics.record(EventKind::OverloadEnter { level });
                self.apply_overload(level);
            }
            Some(OverloadTransition::Exit { from_level }) => {
                self.metrics.record(EventKind::OverloadExit { level: from_level });
                self.apply_overload(0);
            }
            None => {}
        }
    }

    /// (Re)applies the downgrade policy for overload `level` to every
    /// sender slot: surgical keeps its full graph at every level,
    /// timely falls back to its precomputed disjoint pair at level 2,
    /// and bulk drops to a single path from level 1. `ClassDowngraded`
    /// is journaled only when a slot's effective level changes; a mask
    /// recomputed at an unchanged level (link state moved mid-episode)
    /// is silent.
    fn apply_overload(&self, level: u8) {
        let slots: Vec<_> = self.senders.lock().clone();
        if slots.is_empty() {
            return;
        }
        let state = self.linkstate.lock().network_state(now_us());
        for slot in slots {
            let mut slot = slot.lock();
            let (flow, class) = (slot.flow, slot.class);
            let effective = match class {
                SlaClass::Surgical => 0,
                SlaClass::Timely => {
                    if level >= 2 {
                        2
                    } else {
                        0
                    }
                }
                SlaClass::Bulk => u8::from(level >= 1),
            };
            if effective == 0 {
                if slot.is_downgraded() {
                    slot.clear_downgrade();
                }
                continue;
            }
            let graph = match class {
                SlaClass::Timely => self
                    .graph_cache
                    .live(flow, CachedGraphKind::TwoDisjoint, ServiceRequirement::default())
                    .ok()
                    .map(|g| (*g).clone()),
                SlaClass::Bulk => self.single_path_graph(flow, &state),
                SlaClass::Surgical => None,
            };
            // A flow whose cheaper graph cannot be computed right now
            // (e.g. the topology is partitioned) keeps whatever it has.
            let Some(graph) = graph else { continue };
            let edges = graph.len() as u64;
            let mask = Bytes::from(graph.to_bitmask(self.graph.edge_count()));
            let changed = slot.downgrade_level != effective;
            slot.set_downgrade(mask, effective);
            if changed {
                self.metrics.record(EventKind::ClassDowngraded { flow, class, edges });
            }
        }
    }

    /// The cheapest dissemination graph for `flow` under the current
    /// network state: one loss-aware path (the bulk downgrade target).
    fn single_path_graph(
        &self,
        flow: Flow,
        state: &NetworkState,
    ) -> Option<dg_core::DisseminationGraph> {
        let mut scheme = build_scheme(
            SchemeKind::DynamicSinglePath,
            &self.graph,
            flow,
            SlaClass::Bulk.requirement(),
            &self.scheme_params,
        )
        .ok()?;
        let _ = scheme.update(&self.graph, state);
        Some(scheme.current().clone())
    }

    /// Floods the outbound data queue with synthetic bulk-class
    /// shipments addressed to no peer (they evaporate at departure):
    /// deterministic queue pressure for chaos and soak tests, injected
    /// through the reserved lane so the injection itself is never shed.
    pub(crate) fn inject_overload(&self, shipments: usize, dwell: Duration) {
        let depart_at = now_us().saturating_add(Micros::from_micros(dwell.as_micros() as u64));
        for _ in 0..shipments {
            self.queued_data.fetch_add(1, Ordering::Relaxed);
            let shipment = Shipment {
                to: NodeId::new(u32::MAX),
                datagram: Bytes::new(),
                depart_at,
                order: self.shipment_order.fetch_add(1, Ordering::Relaxed),
                class: Some(SlaClass::Bulk),
            };
            if self.control_tx.send(shipment).is_err() {
                self.queued_data.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }

    fn send_hellos(&self) {
        let me = self.me();
        let seq = self.hello_seq.fetch_add(1, Ordering::Relaxed);
        for &e in self.graph.out_edges(me) {
            let hello = Envelope { from: me, message: Message::Hello { seq, sent_at: now_us() } };
            self.metrics.counters.hellos_sent.fetch_add(1, Ordering::Relaxed);
            self.transmit(self.graph.edge(e).dst, hello.encode(), None);
        }
    }
}

/// Per-node state the shipper duty keeps across service passes: the
/// departure heap plus the receive ends of the two shipment lanes.
pub(crate) struct ShipperState {
    heap: std::collections::BinaryHeap<Shipment>,
    data_rx: Receiver<Shipment>,
    control_rx: Receiver<Shipment>,
}

impl ShipperState {
    pub(crate) fn new(data_rx: Receiver<Shipment>, control_rx: Receiver<Shipment>) -> Self {
        ShipperState { heap: std::collections::BinaryHeap::new(), data_rx, control_rx }
    }
}

/// Deadline state for one node's periodic duties — the node's slots in
/// the reactor's timer wheel. The threaded ticker drives the same
/// state, so both modes fire the same duties on the same cadence.
pub(crate) struct TickerState {
    next_hello: std::time::Instant,
    next_ls: std::time::Instant,
    next_digest: std::time::Instant,
}

impl TickerState {
    /// Hello duties fire immediately (a fresh node introduces itself
    /// right away, as the threaded ticker always has); link-state and
    /// digest origination wait one full interval.
    pub(crate) fn new(config: &NodeConfig) -> Self {
        let now = std::time::Instant::now();
        TickerState {
            next_hello: now,
            next_ls: now + config.link_state_interval,
            next_digest: now + config.digest_interval,
        }
    }

    /// The earliest pending deadline.
    pub(crate) fn next_deadline(&self) -> std::time::Instant {
        self.next_hello.min(self.next_ls).min(self.next_digest)
    }
}

impl Shared {
    /// Drains up to [`RX_BATCH`] datagrams from the socket without
    /// blocking (the socket must be in non-blocking mode, or mid-drain
    /// in the threaded receive loop). Returns how many were handled.
    pub(crate) fn service_receive(&self, buf: &mut [u8]) -> usize {
        let mut handled = 0;
        while handled < RX_BATCH {
            match self.socket.recv_from(buf) {
                Ok((len, _addr)) => {
                    self.handle_datagram(&buf[..len]);
                    handled += 1;
                }
                Err(_) => break,
            }
        }
        handled
    }

    /// One shipper pass: drains both lanes into the departure heap and
    /// sends everything due. Returns how many shipments went onto the
    /// wire and the earliest still-parked departure, if any.
    pub(crate) fn service_shipper(&self, state: &mut ShipperState) -> (usize, Option<Micros>) {
        // The reserved control lane drains first, then data. Both land
        // in the same departure heap; the lanes exist so saturating
        // data can never *drop* control, not to reorder departures.
        for rx in [&state.control_rx, &state.data_rx] {
            loop {
                match rx.try_recv() {
                    Ok(s) => state.heap.push(s),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break,
                }
            }
        }
        let now = now_us();
        let mut sent = 0;
        while state.heap.peek().is_some_and(|s| s.depart_at <= now) {
            let s = state.heap.pop().expect("peeked");
            if s.class.is_some() {
                self.queued_data.fetch_sub(1, Ordering::Relaxed);
            }
            if let Some(addr) = self.config.peers.get(&s.to) {
                let _ = self.socket.send_to(&s.datagram, addr);
            }
            self.frame_pool.lock().recycle(s.datagram);
            sent += 1;
        }
        (sent, state.heap.peek().map(|s| s.depart_at))
    }

    /// Fires whichever periodic duties are due: hello probes plus the
    /// per-tick housekeeping (overload observation, LSA retransmits,
    /// NACK re-requests) on the hello cadence, link-state origination
    /// and scheme refresh on the link-state cadence, anti-entropy
    /// digests on theirs. Returns whether anything fired.
    pub(crate) fn service_ticker(&self, state: &mut TickerState) -> bool {
        let tick = std::time::Instant::now();
        let mut fired = false;
        if tick >= state.next_hello {
            state.next_hello = tick + self.config.hello_interval;
            self.send_hellos();
            let now = now_us();
            self.observe_overload(now);
            self.retransmit_pending_lsas(now);
            self.rerequest_nacks(now);
            fired = true;
        }
        if tick >= state.next_ls {
            state.next_ls = tick + self.config.link_state_interval;
            if !self.originations_paused.load(Ordering::Relaxed) {
                self.originate_link_state();
            }
            self.update_schemes();
            fired = true;
        }
        if tick >= state.next_digest {
            state.next_digest = tick + self.config.digest_interval;
            self.send_digests();
            fired = true;
        }
        fired
    }
}

/// A running overlay node.
///
/// Dropping the handle without calling [`OverlayHandle::shutdown`]
/// leaves the daemon threads (or reactor registration) running until
/// process exit; call `shutdown` for an orderly stop.
pub struct OverlayHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// Set by the reactor worker once this node's slot has flushed its
    /// parked shipments and been dropped; `None` in threaded mode.
    retired: Option<Arc<AtomicBool>>,
}

impl std::fmt::Debug for OverlayHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OverlayHandle")
            .field("node", &self.shared.config.node)
            .field("addr", &self.local_addr())
            .finish()
    }
}

impl OverlayNode {
    /// Binds the configured address and starts the node on dedicated
    /// threads (the [`SpawnMode::Threaded`] compatibility mode; see
    /// [`OverlayNode::spawn_on`] for the runtime-aware entry point).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when the socket cannot be bound.
    pub fn spawn(config: NodeConfig, graph: Arc<Graph>) -> Result<OverlayHandle, OverlayError> {
        OverlayNode::spawn_on(&Runtime::threaded(), config, graph)
    }

    /// Binds the configured address and starts the node on `runtime`:
    /// three dedicated threads under a [`SpawnMode::Threaded`] runtime,
    /// or a slot on the shared reactor worker pool under
    /// [`SpawnMode::Reactor`].
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when the socket cannot be bound and
    /// [`OverlayError::RuntimeShutDown`] when the runtime has stopped.
    pub fn spawn_on(
        runtime: &Runtime,
        config: NodeConfig,
        graph: Arc<Graph>,
    ) -> Result<OverlayHandle, OverlayError> {
        let socket = UdpSocket::bind(config.listen)?;
        OverlayNode::spawn_with_socket_on(runtime, config, graph, socket)
    }

    /// Starts a node over an already-bound socket (used by clusters,
    /// which must learn every port before wiring up peer tables) on
    /// dedicated threads.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when socket options cannot be set.
    pub fn spawn_with_socket(
        config: NodeConfig,
        graph: Arc<Graph>,
        socket: UdpSocket,
    ) -> Result<OverlayHandle, OverlayError> {
        OverlayNode::spawn_with_socket_on(&Runtime::threaded(), config, graph, socket)
    }

    /// Starts a node over an already-bound socket on `runtime`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when socket options cannot be set
    /// and [`OverlayError::RuntimeShutDown`] when the runtime has
    /// stopped accepting nodes.
    pub fn spawn_with_socket_on(
        runtime: &Runtime,
        config: NodeConfig,
        graph: Arc<Graph>,
        socket: UdpSocket,
    ) -> Result<OverlayHandle, OverlayError> {
        match runtime.mode() {
            SpawnMode::Threaded => {
                socket.set_read_timeout(Some(Duration::from_millis(10)))?;
                let (shared, data_rx, control_rx) = build_shared(config, graph, socket);
                spawn_threaded(shared, data_rx, control_rx)
            }
            SpawnMode::Reactor => {
                // The reactor never blocks on any one node's socket; it
                // polls every registered socket in non-blocking mode.
                socket.set_nonblocking(true)?;
                let (shared, data_rx, control_rx) = build_shared(config, graph, socket);
                let retired = runtime.register(Arc::clone(&shared), data_rx, control_rx)?;
                Ok(OverlayHandle { shared, threads: Vec::new(), retired: Some(retired) })
            }
        }
    }
}

/// Builds the node's shared state and its two shipment lanes.
fn build_shared(
    config: NodeConfig,
    graph: Arc<Graph>,
    socket: UdpSocket,
) -> (Arc<Shared>, Receiver<Shipment>, Receiver<Shipment>) {
    let (shipper_tx, shipper_rx) = channel::bounded(config.shipper_queue);
    let (control_tx, control_rx) = channel::unbounded();
    let overload = OverloadDetector::new(OverloadConfig {
        queue_bound: config.shipper_queue as u64,
        enter_depth: config.overload_enter_depth,
        exit_depth: config.overload_exit_depth,
        hold_down: config.overload_hold_down,
    });
    let monitor_window = config.monitor_window;
    let dedup_window = config.dedup_window;
    let hello_interval = config.hello_interval;
    let journal_capacity = config.journal_capacity;
    let link_down_intervals = config.link_down_intervals;
    let max_age = Micros::from_micros(config.link_state_max_age.as_micros() as u64);
    let fault_seed = config.fault_seed;
    let flap_hold_down = Micros::from_micros(config.flap_hold_down.as_micros() as u64);
    let flap_half_life = Micros::from_micros(config.flap_penalty_half_life.as_micros() as u64);
    let flap_threshold = config.flap_suppress_threshold;
    let scheme_params = SchemeParams {
        problem_loss_threshold: config.detector_loss_threshold,
        ..SchemeParams::default()
    };
    let shared = Arc::new(Shared {
        config,
        graph: Arc::clone(&graph),
        socket,
        running: AtomicBool::new(true),
        faults: FaultPlan::with_seed(fault_seed),
        monitor: Mutex::new(LinkMonitor::new(
            monitor_window,
            Micros::from_micros(hello_interval.as_micros() as u64),
            link_down_intervals,
        )),
        linkstate: Mutex::new(LinkStateDb::new(&graph, max_age)),
        graph_cache: GraphCache::new(Arc::clone(&graph), scheme_params),
        pending_lsa: Mutex::new(HashMap::new()),
        damper: Mutex::new(FlapDamper::new(flap_hold_down, flap_half_life, flap_threshold)),
        advertised: Mutex::new(HashMap::new()),
        supervision: Supervision::new(now_us()),
        dedup: Mutex::new(DedupCache::new(dedup_window)),
        send_links: Mutex::new(HashMap::new()),
        recv_links: Mutex::new(HashMap::new()),
        receivers: ShardedMap::new(),
        senders: Mutex::new(Vec::new()),
        groups: Mutex::new(Vec::new()),
        frame_pool: Mutex::new(BufferPool::default()),
        packet_scratch: Mutex::new(ScratchVecPool::default()),
        seq_scratch: Mutex::new(ScratchVecPool::default()),
        shipper_tx,
        control_tx,
        queued_data: AtomicU64::new(0),
        overload: Mutex::new(overload),
        scheme_params,
        shipment_order: AtomicU64::new(0),
        metrics: MetricsRegistry::new(journal_capacity),
        hello_seq: AtomicU64::new(0),
        ls_seq: AtomicU64::new(0),
        ls_epoch: now_us().as_micros(),
        originations_paused: AtomicBool::new(false),
    });
    (shared, shipper_rx, control_rx)
}

/// Starts the three dedicated per-node threads of the compatibility
/// [`SpawnMode::Threaded`] mode.
fn spawn_threaded(
    shared: Arc<Shared>,
    data_rx: Receiver<Shipment>,
    control_rx: Receiver<Shipment>,
) -> Result<OverlayHandle, OverlayError> {
    let rx_shared = Arc::clone(&shared);
    let rx_thread = std::thread::Builder::new()
        .name(format!("dg-rx-{}", rx_shared.config.node))
        .spawn(move || {
            run_supervised(&rx_shared, NodeThread::Receive, || receive_loop(&rx_shared));
        })?;

    let ship_shared = Arc::clone(&shared);
    let ship_thread = std::thread::Builder::new()
        .name(format!("dg-ship-{}", ship_shared.config.node))
        .spawn(move || {
            run_supervised(&ship_shared, NodeThread::Shipper, || {
                // A fresh heap per restart: a panic forfeits whatever
                // was parked, exactly as a crashed thread always has.
                let mut state = ShipperState::new(data_rx.clone(), control_rx.clone());
                shipper_loop(&ship_shared, &mut state);
            });
        })?;

    let tick_shared = Arc::clone(&shared);
    let tick_thread = std::thread::Builder::new()
        .name(format!("dg-tick-{}", tick_shared.config.node))
        .spawn(move || {
            run_supervised(&tick_shared, NodeThread::Ticker, || {
                let mut state = TickerState::new(&tick_shared.config);
                ticker_loop(&tick_shared, &mut state);
            });
        })?;

    Ok(OverlayHandle { shared, threads: vec![rx_thread, ship_thread, tick_thread], retired: None })
}

impl OverlayHandle {
    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.shared.config.node
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.shared.socket.local_addr().expect("bound socket has an address")
    }

    /// Opens a sending session at this node for the scheme's flow, in
    /// the default [`SlaClass::Timely`] service class.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] when the scheme's flow does
    /// not originate here, and [`OverlayError::AdmissionDenied`] when
    /// the node is at its configured sender capacity.
    pub fn open_sender(
        &self,
        scheme: Box<dyn RoutingScheme>,
        requirement: ServiceRequirement,
    ) -> Result<FlowSender, OverlayError> {
        self.open_sender_with_class(scheme, requirement, SlaClass::default())
    }

    /// Opens a sending session in an explicit SLA service class. The
    /// class is stamped into every packet's wire prelude, decides the
    /// shed band the flow's traffic is admitted against, and selects
    /// the redundancy the node may downgrade to under overload (see
    /// `docs/RESILIENCE.md`).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] when the scheme's flow does
    /// not originate here, and [`OverlayError::AdmissionDenied`] when
    /// the node is at its configured sender capacity
    /// ([`crate::NodeConfigBuilder::sender_capacity`]).
    pub fn open_sender_with_class(
        &self,
        scheme: Box<dyn RoutingScheme>,
        requirement: ServiceRequirement,
        class: SlaClass,
    ) -> Result<FlowSender, OverlayError> {
        if scheme.flow().source != self.node_id() {
            return Err(OverlayError::UnknownNode(scheme.flow().source));
        }
        let flow = scheme.flow();
        let mut senders = self.shared.senders.lock();
        // Admission control: refuse work beyond the configured
        // capacity instead of absorbing it and failing every class.
        let capacity = self.shared.config.sender_capacity;
        if senders.len() >= capacity {
            return Err(OverlayError::AdmissionDenied { active: senders.len(), capacity });
        }
        let slot = Arc::new(Mutex::new(SchemeSlot::new(
            scheme,
            flow,
            class,
            self.shared.graph.edge_count(),
        )));
        senders.push(Arc::clone(&slot));
        drop(senders);
        Ok(FlowSender::new(Arc::clone(&self.shared), slot, flow, requirement.deadline, class))
    }

    /// Opens a multicast sending session from this node to `receivers`:
    /// one send covers every receiver, over an interned single-source
    /// dissemination graph shared by all groups with the same
    /// `(source, receiver set, kind, deadline)`. The `group_id` is the
    /// rendezvous: receivers subscribe with
    /// [`OverlayHandle::open_group_receiver`] on
    /// `Flow::group(source, group_id)`.
    ///
    /// Group sessions count against the same sender admission capacity
    /// as unicast sessions.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Core`] when no multicast graph exists
    /// (e.g. a receiver is unreachable or the set is empty), and
    /// [`OverlayError::AdmissionDenied`] at sender capacity.
    pub fn open_group_sender(
        &self,
        receivers: &[NodeId],
        group_id: u32,
        kind: MulticastKind,
        requirement: ServiceRequirement,
        class: SlaClass,
    ) -> Result<FlowGroup, OverlayError> {
        let flow = Flow::group(self.node_id(), group_id);
        let graph =
            self.shared.graph_cache.multicast(self.node_id(), receivers, kind, requirement)?;
        let mut groups = self.shared.groups.lock();
        let capacity = self.shared.config.sender_capacity;
        let active = self.shared.senders.lock().len() + groups.len();
        if active >= capacity {
            return Err(OverlayError::AdmissionDenied { active, capacity });
        }
        let slot = Arc::new(Mutex::new(GroupSlot::new(
            graph,
            flow,
            kind,
            requirement,
            self.shared.graph.edge_count(),
        )));
        groups.push(Arc::clone(&slot));
        drop(groups);
        Ok(FlowGroup::new(Arc::clone(&self.shared), slot, flow, requirement.deadline, class))
    }

    /// Opens a receiving session for the multicast group flow
    /// `Flow::group(source, group_id)`. Any node may subscribe; only
    /// nodes in the sender's receiver set are reached by the group's
    /// dissemination graph.
    ///
    /// A later receiver for the same group flow replaces the earlier
    /// one at this node.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] when `source` does not
    /// exist in the topology.
    pub fn open_group_receiver(
        &self,
        source: NodeId,
        group_id: u32,
    ) -> Result<FlowReceiver, OverlayError> {
        if source.index() >= self.shared.graph.node_count() {
            return Err(OverlayError::UnknownNode(source));
        }
        let flow = Flow::group(source, group_id);
        let (tx, rx) = channel::bounded(self.shared.config.delivery_queue);
        self.shared.receivers.insert(flow, tx);
        Ok(FlowReceiver::new(rx))
    }

    /// Opens a receiving session for `flow`, which must terminate here.
    ///
    /// A later receiver for the same flow replaces the earlier one.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] when the flow does not
    /// terminate at this node.
    pub fn open_receiver(&self, flow: Flow) -> Result<FlowReceiver, OverlayError> {
        if flow.destination != self.node_id() {
            return Err(OverlayError::UnknownNode(flow.destination));
        }
        let (tx, rx) = channel::bounded(self.shared.config.delivery_queue);
        self.shared.receivers.insert(flow, tx);
        Ok(FlowReceiver::new(rx))
    }

    /// The runtime-adjustable fault plan for this node's out-links.
    pub fn faults(&self) -> &FaultPlan {
        &self.shared.faults
    }

    /// This node's current view of network-wide link conditions.
    pub fn network_state(&self) -> NetworkState {
        self.shared.linkstate.lock().network_state(now_us())
    }

    /// Counters of this node's precomputed-graph cache (hits, misses,
    /// link-state invalidations).
    pub fn graph_cache_stats(&self) -> GraphCacheStats {
        self.shared.graph_cache.stats()
    }

    /// How many origins have reported link state so far.
    pub fn link_state_origins(&self) -> usize {
        self.shared.linkstate.lock().origins_heard()
    }

    /// Full observability snapshot: node-wide counters, per-flow and
    /// per-link counters, the event journal, and the degradation flag.
    /// Serde-serializable.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot(self.node_id());
        snap.degraded = self.shared.degraded();
        snap.link_state = self.shared.linkstate.lock().digest();
        snap.graph_cache = self.shared.graph_cache.stats();
        snap
    }

    /// True while the node runs without a full complement of healthy
    /// protocol threads — a supervised thread recently crashed or has
    /// stopped heartbeating.
    pub fn is_degraded(&self) -> bool {
        self.shared.degraded()
    }

    /// Makes the named protocol thread panic at its next checkpoint
    /// (fault injection for supervision tests; the supervisor catches
    /// the panic, journals it, and restarts the thread).
    pub fn inject_thread_panic(&self, thread: NodeThread) {
        self.shared.supervision.panic_requests[thread_index(thread)].store(true, Ordering::Relaxed);
    }

    /// Per-origin `(epoch, seq)` summary of this node's link-state
    /// database — the same digest the anti-entropy exchange advertises.
    pub fn link_state_digest(&self) -> Vec<DigestEntry> {
        self.shared.linkstate.lock().digest()
    }

    /// Pauses (or resumes) this node's link-state origination. While
    /// paused the node stops minting new `(epoch, seq)` stamps but
    /// keeps probing hellos, answering digests, and flooding other
    /// origins' reports — so databases settle to a fixed fingerprint
    /// instead of chasing the refresh cadence. Collectors use this as
    /// a quiesce window right before taking comparable snapshots
    /// across nodes; forwarding is unaffected.
    pub fn set_origination_paused(&self, paused: bool) {
        self.shared.originations_paused.store(paused, Ordering::Relaxed);
    }

    /// This node's direct measurements of the link *from* `neighbor`:
    /// `(estimated loss, smoothed RTT if an echo returned)`.
    pub fn link_quality(&self, neighbor: NodeId) -> (f64, Option<Micros>) {
        let monitor = self.shared.monitor.lock();
        (monitor.loss_from(neighbor, now_us()), monitor.rtt_to(neighbor))
    }

    /// Total datagrams currently held for possible retransmission
    /// across all out-links.
    pub fn retransmit_backlog(&self) -> usize {
        self.shared.send_links.lock().values().map(|l| l.buffer.len()).sum()
    }

    /// The node's current overload degradation level (0 = full
    /// redundancy on every class; see `docs/RESILIENCE.md`).
    pub fn overload_level(&self) -> u8 {
        self.shared.overload.lock().level()
    }

    /// Data shipments currently queued toward the wire — the depth
    /// signal the shed bands and the overload detector read.
    pub fn outbound_queue_depth(&self) -> u64 {
        self.shared.queued_data.load(Ordering::Relaxed)
    }

    /// Floods this node's outbound data queue with `shipments`
    /// synthetic bulk-class shipments that evaporate (addressed to no
    /// peer) after `dwell`: deterministic overload pressure for chaos
    /// and soak tests, without touching the wire.
    pub fn inject_overload(&self, shipments: usize, dwell: Duration) {
        self.shared.inject_overload(shipments, dwell);
    }

    /// Stops the node and waits for its outbound queue to flush: joins
    /// the dedicated threads in threaded mode, or waits for the reactor
    /// worker to retire this node's slot in reactor mode.
    pub fn shutdown(mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(retired) = self.retired.take() {
            // The worker flushes parked shipments before retiring the
            // slot, mirroring the threaded shipper's drain-then-exit.
            // The cap only guards against a runtime that was torn down
            // out from under the node.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while !retired.load(Ordering::Acquire) && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Most datagrams the receive thread drains per socket wakeup before
/// re-arming the blocking wait, so a burst costs one timeout cycle.
const RX_BATCH: usize = 32;

/// Runs `body` under panic supervision: a panic is caught, counted,
/// journaled, flagged as degradation, and the body restarted; a clean
/// return is a shutdown.
fn run_supervised(shared: &Shared, thread: NodeThread, body: impl Fn()) {
    loop {
        if catch_unwind(AssertUnwindSafe(&body)).is_ok() {
            return;
        }
        if !shared.running.load(Ordering::SeqCst) {
            return;
        }
        shared.note_thread_crash(thread);
    }
}

fn receive_loop(shared: &Shared) {
    let mut buf = vec![0u8; 65_536];
    // A panic mid-drain can leave the socket non-blocking; restore
    // blocking mode so a restarted loop does not spin.
    let _ = shared.socket.set_nonblocking(false);
    while shared.running.load(Ordering::SeqCst) {
        shared.beat(NodeThread::Receive);
        shared.maybe_injected_panic(NodeThread::Receive);
        // Block (bounded by the socket read timeout) for the first
        // datagram of a burst...
        match shared.socket.recv_from(&mut buf) {
            Ok((len, _addr)) => shared.handle_datagram(&buf[..len]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
        // ...then opportunistically drain the rest of it without
        // blocking. The read timeout only applies in blocking mode, so
        // toggling non-blocking on and off preserves it.
        if shared.socket.set_nonblocking(true).is_err() {
            continue;
        }
        for _ in 1..RX_BATCH {
            match shared.socket.recv_from(&mut buf) {
                Ok((len, _addr)) => shared.handle_datagram(&buf[..len]),
                Err(_) => break,
            }
        }
        if shared.socket.set_nonblocking(false).is_err() {
            break;
        }
    }
}

fn shipper_loop(shared: &Shared, state: &mut ShipperState) {
    loop {
        shared.beat(NodeThread::Shipper);
        shared.maybe_injected_panic(NodeThread::Shipper);
        let (_, next_departure) = shared.service_shipper(state);
        // `None` means the heap is empty: a stopping node may exit.
        if !shared.running.load(Ordering::SeqCst) && next_departure.is_none() {
            return;
        }
        // Sleep until the next due shipment or a short poll.
        let nap = next_departure
            .map(|d| Duration::from_micros(d.saturating_sub(now_us()).as_micros().min(5_000)))
            .unwrap_or(Duration::from_millis(2));
        if let Ok(s) = state.data_rx.recv_timeout(nap) {
            state.heap.push(s);
        }
    }
}

fn ticker_loop(shared: &Shared, state: &mut TickerState) {
    while shared.running.load(Ordering::SeqCst) {
        shared.beat(NodeThread::Ticker);
        shared.maybe_injected_panic(NodeThread::Ticker);
        shared.service_ticker(state);
        let nap = state
            .next_deadline()
            .saturating_duration_since(std::time::Instant::now())
            .min(shared.config.hello_interval)
            .max(Duration::from_millis(1));
        std::thread::sleep(nap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_cache_evicts_in_order() {
        let f = Flow::new(NodeId::new(0), NodeId::new(1));
        let mut cache = DedupCache::new(2);
        assert!(cache.insert((f, 1)));
        assert!(!cache.insert((f, 1)));
        assert!(cache.insert((f, 2)));
        assert!(cache.insert((f, 3))); // evicts seq 1
        assert!(cache.insert((f, 1)), "evicted key is fresh again");
    }

    #[test]
    fn ticker_state_fires_hellos_first() {
        let config = NodeConfig::builder(NodeId::new(0), "127.0.0.1:0".parse().unwrap())
            .build()
            .expect("default config validates");
        let state = TickerState::new(&config);
        assert_eq!(state.next_deadline(), state.next_hello, "hello duty is due immediately");
        assert!(state.next_ls > state.next_hello);
        assert!(state.next_digest > state.next_hello);
    }
}
