//! The node runtime: how overlay nodes get their CPU time.
//!
//! Historically every [`crate::OverlayNode`] burned three dedicated OS
//! threads (receive, shipper, ticker), so an N-node in-process cluster
//! was `3·N` threads thrashing the scheduler. A [`Runtime`] makes the
//! execution strategy explicit and shared:
//!
//! - [`SpawnMode::Threaded`] — the compatibility mode: three dedicated,
//!   individually supervised threads per node, exactly as before.
//! - [`SpawnMode::Reactor`] — an event-driven readiness loop: all
//!   registered nodes multiplex onto a fixed pool of `workers` threads.
//!   Each worker polls its nodes' non-blocking sockets (reusing the
//!   batched drain), pumps their shipper departure heaps, and fires
//!   their timer-wheel deadlines (hello/link-state/digest/retransmit
//!   cadences), sleeping only until the earliest pending deadline.
//!
//! Both modes drive the *same* per-duty service methods on the node's
//! shared state, so protocol behaviour, metrics, and journal semantics
//! are identical and can be diffed between modes (`tests/runtime.rs`
//! holds the equivalence test). Supervision is also equivalent: each
//! duty of each service pass runs under `catch_unwind`, and a panic is
//! counted, journaled as a `ThreadCrash`, and opens the same degraded
//! window as a crashed dedicated thread.
//!
//! See `docs/RUNTIME.md` for the design discussion and worker sizing
//! guidance.

use crate::metrics::NodeThread;
use crate::node::{Shared, Shipment, ShipperState, TickerState};
use crate::OverlayError;
use crossbeam::channel::{self, Receiver, Sender};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a runtime schedules the nodes spawned onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpawnMode {
    /// Three dedicated, supervised OS threads per node — the historical
    /// behaviour, kept as a compatibility fallback and as the reference
    /// semantics the reactor is diffed against.
    Threaded,
    /// All nodes multiplex onto a shared pool of reactor workers: one
    /// readiness loop per worker over its nodes' sockets, shipment
    /// heaps, and timer deadlines.
    Reactor,
}

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// The scheduling mode.
    pub mode: SpawnMode,
    /// Reactor worker threads (ignored in threaded mode). Zero means
    /// one worker per available CPU core.
    pub workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig { mode: SpawnMode::Threaded, workers: 0 }
    }
}

impl RuntimeConfig {
    /// The compatibility configuration: dedicated threads per node.
    pub fn threaded() -> Self {
        RuntimeConfig { mode: SpawnMode::Threaded, workers: 0 }
    }

    /// A reactor pool of `workers` threads (zero = one per CPU core).
    pub fn reactor(workers: usize) -> Self {
        RuntimeConfig { mode: SpawnMode::Reactor, workers }
    }

    fn effective_workers(&self) -> usize {
        match self.workers {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }
}

/// How long an idle reactor worker naps between socket polls. UDP
/// sockets have no cross-platform readiness notification without
/// `epoll`-style machinery (which this workspace forgoes — no unsafe,
/// no new dependencies), so readiness is discovered by polling; this
/// bounds the added first-datagram latency per pass.
const POLL_NAP: Duration = Duration::from_millis(1);

/// How many consecutive all-idle passes a worker tolerates before it
/// stops spinning at the socket-poll cadence and sleeps toward the
/// earliest real deadline instead.
const IDLE_STREAK_BEFORE_TRIM: u32 = 3;

/// The ceiling on a trimmed idle nap. Socket readiness is still
/// discovered only by polling, so a worker never sleeps longer than
/// this even when the next protocol deadline is further out — this
/// bounds the first-datagram latency after a quiet spell.
const IDLE_NAP_CAP: Duration = Duration::from_millis(20);

/// How long a worker with no nodes blocks waiting for a registration
/// before re-checking for shutdown.
const INTAKE_NAP: Duration = Duration::from_millis(20);

/// A handle to a shared node runtime; cheap to clone.
///
/// Spawn nodes onto it with [`crate::OverlayNode::spawn_on`] (or let
/// [`crate::cluster::Cluster::launch`] build one from the `DG_RUNTIME`
/// environment variable). A threaded runtime owns no threads of its
/// own; a reactor runtime owns its worker pool, which runs until
/// [`Runtime::shutdown`].
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

struct RuntimeInner {
    mode: SpawnMode,
    /// Round-robin registration cursor over the workers.
    next_worker: AtomicUsize,
    /// One intake lane per worker; a node registers with exactly one
    /// worker and is serviced by it alone for its whole life, so
    /// per-node protocol state needs no new locking.
    intakes: Vec<Sender<NodeSlot>>,
    /// Set by [`Runtime::shutdown`]: registrations are refused and
    /// workers retire their remaining slots and exit.
    shutting_down: AtomicBool,
    workers: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("mode", &self.inner.mode)
            .field("workers", &self.inner.intakes.len())
            .finish()
    }
}

impl Runtime {
    /// Builds a runtime; a reactor runtime starts its worker pool
    /// immediately.
    pub fn new(config: RuntimeConfig) -> Runtime {
        let workers = match config.mode {
            SpawnMode::Threaded => 0,
            SpawnMode::Reactor => config.effective_workers(),
        };
        let mut intakes = Vec::with_capacity(workers);
        let mut receivers = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::unbounded();
            intakes.push(tx);
            receivers.push(rx);
        }
        let inner = Arc::new(RuntimeInner {
            mode: config.mode,
            next_worker: AtomicUsize::new(0),
            intakes,
            shutting_down: AtomicBool::new(false),
            workers: parking_lot::Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for (i, intake) in receivers.into_iter().enumerate() {
            let worker_inner = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("dg-worker-{i}"))
                .spawn(move || worker_loop(&worker_inner, &intake))
                .expect("reactor worker thread spawns");
            handles.push(handle);
        }
        *inner.workers.lock() = handles;
        Runtime { inner }
    }

    /// The compatibility runtime: nodes get dedicated threads.
    pub fn threaded() -> Runtime {
        Runtime::new(RuntimeConfig::threaded())
    }

    /// A reactor runtime with `workers` pool threads (zero = one per
    /// CPU core).
    pub fn reactor(workers: usize) -> Runtime {
        Runtime::new(RuntimeConfig::reactor(workers))
    }

    /// Builds a runtime from a `DG_RUNTIME`-style descriptor:
    /// `threaded` (the default for anything unrecognised), `reactor`
    /// (one worker per core), or `reactor:N` (an explicit pool size).
    pub fn from_descriptor(descriptor: &str) -> Runtime {
        let d = descriptor.trim();
        match d.strip_prefix("reactor") {
            Some("") => Runtime::reactor(0),
            Some(rest) => {
                let workers = rest.strip_prefix(':').and_then(|n| n.parse().ok()).unwrap_or(0usize);
                Runtime::reactor(workers)
            }
            None => Runtime::threaded(),
        }
    }

    /// This runtime's scheduling mode.
    pub fn mode(&self) -> SpawnMode {
        self.inner.mode
    }

    /// Reactor worker threads in the pool (zero for a threaded
    /// runtime).
    pub fn workers(&self) -> usize {
        self.inner.intakes.len()
    }

    /// Registers a node with the next worker (round-robin). Returns the
    /// retirement flag the worker sets once the node has shut down and
    /// its slot was flushed and dropped.
    pub(crate) fn register(
        &self,
        shared: Arc<Shared>,
        data_rx: Receiver<Shipment>,
        control_rx: Receiver<Shipment>,
    ) -> Result<Arc<AtomicBool>, OverlayError> {
        debug_assert_eq!(self.inner.mode, SpawnMode::Reactor, "registering on a threaded runtime");
        if self.inner.shutting_down.load(Ordering::Acquire) {
            return Err(OverlayError::RuntimeShutDown);
        }
        let retired = Arc::new(AtomicBool::new(false));
        let ticker = TickerState::new(&shared.config);
        let slot = NodeSlot {
            shared,
            shipper: ShipperState::new(data_rx, control_rx),
            ticker,
            buf: vec![0u8; 65_536],
            retired: Arc::clone(&retired),
        };
        let i = self.inner.next_worker.fetch_add(1, Ordering::Relaxed) % self.inner.intakes.len();
        if self.inner.intakes[i].send(slot).is_err() {
            return Err(OverlayError::RuntimeShutDown);
        }
        Ok(retired)
    }

    /// Stops the worker pool and joins it. Nodes still registered are
    /// force-retired: their sockets stop being serviced and any parked
    /// shipments are forfeited — shut nodes down first for a flush.
    /// Idempotent; a threaded runtime has nothing to stop.
    pub fn shutdown(&self) {
        self.inner.shutting_down.store(true, Ordering::Release);
        let handles: Vec<JoinHandle<()>> = self.inner.workers.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

/// One registered node as its worker sees it: the node's shared state
/// plus the per-node driver state the dedicated threads used to keep on
/// their stacks.
struct NodeSlot {
    shared: Arc<Shared>,
    shipper: ShipperState,
    ticker: TickerState,
    buf: Vec<u8>,
    retired: Arc<AtomicBool>,
}

/// The outcome of one service pass over one node.
enum Verdict {
    /// Work was done; the worker should loop again immediately.
    Active,
    /// Nothing to do until (at most) this far in the future.
    Idle(Duration),
    /// The node has shut down and flushed; drop the slot.
    Retire,
}

impl NodeSlot {
    /// One service pass: drain the socket, pump the shipper, fire due
    /// timers. Each duty runs under its own `catch_unwind` so a panic
    /// is attributed to the same [`NodeThread`] a dedicated thread
    /// would have crashed on, with identical accounting.
    fn service(&mut self) -> Verdict {
        let shared = &self.shared;
        if !shared.is_running() {
            // Shutdown: stop receiving and ticking, flush the departure
            // heap exactly as the threaded shipper drains before exit.
            let (sent, next_departure) = shared.service_shipper(&mut self.shipper);
            return match next_departure {
                None => Verdict::Retire,
                Some(at) => {
                    if sent > 0 {
                        Verdict::Active
                    } else {
                        Verdict::Idle(duration_until(at))
                    }
                }
            };
        }
        let mut active = false;

        shared.beat(NodeThread::Receive);
        let buf = &mut self.buf;
        match catch_unwind(AssertUnwindSafe(|| {
            shared.maybe_injected_panic(NodeThread::Receive);
            shared.service_receive(buf)
        })) {
            Ok(received) => active |= received > 0,
            Err(_) => shared.note_thread_crash(NodeThread::Receive),
        }

        shared.beat(NodeThread::Shipper);
        let shipper = &mut self.shipper;
        let mut next_departure = None;
        match catch_unwind(AssertUnwindSafe(|| {
            shared.maybe_injected_panic(NodeThread::Shipper);
            shared.service_shipper(shipper)
        })) {
            Ok((sent, next)) => {
                active |= sent > 0;
                next_departure = next;
            }
            Err(_) => shared.note_thread_crash(NodeThread::Shipper),
        }

        shared.beat(NodeThread::Ticker);
        let ticker = &mut self.ticker;
        match catch_unwind(AssertUnwindSafe(|| {
            shared.maybe_injected_panic(NodeThread::Ticker);
            shared.service_ticker(ticker)
        })) {
            Ok(fired) => active |= fired,
            Err(_) => shared.note_thread_crash(NodeThread::Ticker),
        }

        if active {
            return Verdict::Active;
        }
        let mut wake = self.ticker.next_deadline().saturating_duration_since(Instant::now());
        if let Some(at) = next_departure {
            wake = wake.min(duration_until(at));
        }
        Verdict::Idle(wake)
    }
}

/// Time from now until a shipment departure on the overlay clock.
fn duration_until(depart_at: dg_topology::Micros) -> Duration {
    Duration::from_micros(depart_at.saturating_sub(crate::clock::now_us()).as_micros())
}

/// One reactor worker: adopt newly registered nodes, service every
/// slot, and sleep until the earliest pending deadline (bounded by the
/// socket poll interval).
fn worker_loop(inner: &RuntimeInner, intake: &Receiver<NodeSlot>) {
    let mut slots: Vec<NodeSlot> = Vec::new();
    let mut idle_streak: u32 = 0;
    loop {
        while let Ok(slot) = intake.try_recv() {
            slots.push(slot);
        }
        if inner.shutting_down.load(Ordering::Acquire) {
            // Force-retire whatever is left so pending shutdowns (and
            // late registrations that raced the flag) can't hang.
            for slot in slots.drain(..) {
                slot.retired.store(true, Ordering::Release);
            }
            while let Ok(slot) = intake.try_recv() {
                slot.retired.store(true, Ordering::Release);
            }
            return;
        }
        if slots.is_empty() {
            let _ = intake.recv_timeout(INTAKE_NAP).map(|slot| slots.push(slot));
            continue;
        }
        let mut any_active = false;
        // The earliest deadline any slot reported (shipment departure
        // or ticker timer); `None` means every idle slot is unbounded.
        let mut min_wake: Option<Duration> = None;
        slots.retain_mut(|slot| match slot.service() {
            Verdict::Active => {
                any_active = true;
                true
            }
            Verdict::Idle(wake) => {
                min_wake = Some(min_wake.map_or(wake, |w| w.min(wake)));
                true
            }
            Verdict::Retire => {
                slot.retired.store(true, Ordering::Release);
                false
            }
        });
        if any_active {
            idle_streak = 0;
            continue;
        }
        idle_streak = idle_streak.saturating_add(1);
        // Idle-wakeup trim: a worker whose nodes have been idle for a
        // few passes in a row stops burning the 1 ms poll cadence and
        // sleeps until the earliest shipment/ticker deadline instead
        // (still capped, since datagram arrival is only discovered by
        // polling). A single quiet pass keeps the tight cadence so a
        // briefly-idle node under traffic never waits extra.
        let wake = min_wake.unwrap_or(POLL_NAP);
        let nap = if idle_streak >= IDLE_STREAK_BEFORE_TRIM && wake > POLL_NAP {
            wake.min(IDLE_NAP_CAP)
        } else {
            wake.min(POLL_NAP)
        };
        if !nap.is_zero() {
            std::thread::sleep(nap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_parsing() {
        assert_eq!(Runtime::from_descriptor("threaded").mode(), SpawnMode::Threaded);
        assert_eq!(Runtime::from_descriptor("anything-else").mode(), SpawnMode::Threaded);
        let r = Runtime::from_descriptor("reactor:3");
        assert_eq!(r.mode(), SpawnMode::Reactor);
        assert_eq!(r.workers(), 3);
        r.shutdown();
        let r = Runtime::from_descriptor("reactor");
        assert_eq!(r.mode(), SpawnMode::Reactor);
        assert!(r.workers() >= 1);
        r.shutdown();
    }

    #[test]
    fn threaded_runtime_owns_no_workers() {
        let r = Runtime::threaded();
        assert_eq!(r.workers(), 0);
        r.shutdown(); // no-op, idempotent
        r.shutdown();
    }

    #[test]
    fn shutdown_refuses_new_registrations() {
        let r = Runtime::reactor(1);
        r.shutdown();
        assert!(r.inner.shutting_down.load(Ordering::Acquire));
        assert!(r.inner.workers.lock().is_empty(), "workers joined");
    }
}
