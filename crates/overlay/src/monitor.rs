//! Hello-based link monitoring.
//!
//! Each node probes its out-links with periodic hellos; neighbours echo
//! them back. Loss is estimated from hello sequence gaps over a sliding
//! window, and RTT from the echo round trip. These estimates feed the
//! node's link-state reports — the information dynamic schemes and the
//! targeted-redundancy detector act on.
//!
//! Estimates are *staleness-aware*: a link that stops delivering hellos
//! entirely would otherwise freeze at its last (possibly clean)
//! estimate, so silence is charged as loss based on how many hellos
//! should have arrived since the last one did.

use dg_topology::{Micros, NodeId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Per-neighbour monitoring state.
#[derive(Debug, Default)]
struct NeighborStats {
    /// Hello seqs received from this neighbour (pruned to the window).
    received: BTreeSet<u64>,
    /// Highest hello seq seen.
    highest: Option<u64>,
    /// When the most recent hello arrived.
    last_heard: Option<Micros>,
    /// Smoothed round-trip time to this neighbour.
    rtt: Option<Micros>,
    /// Smoothed one-way delay from this neighbour (from hello
    /// timestamps; nodes of a localhost cluster share a clock).
    one_way: Option<Micros>,
}

/// Tracks hello reception and RTT per neighbour.
#[derive(Debug)]
pub struct LinkMonitor {
    window: u64,
    hello_interval: Micros,
    /// Hello silence longer than this many intervals declares the
    /// incoming link down.
    down_after: u64,
    neighbors: HashMap<NodeId, NeighborStats>,
    /// Neighbours whose incoming link is currently flagged lossy.
    triggered: HashSet<NodeId>,
    /// Neighbours whose incoming link is currently declared down.
    down: HashSet<NodeId>,
}

impl LinkMonitor {
    /// Creates a monitor estimating loss over the last `window` hellos,
    /// charging silence as loss at one hello per `hello_interval` and
    /// declaring a link down after `down_after` silent intervals.
    ///
    /// # Panics
    ///
    /// Panics if `window`, `hello_interval`, or `down_after` is zero.
    pub fn new(window: usize, hello_interval: Micros, down_after: u64) -> Self {
        assert!(window > 0, "monitor window must be positive");
        assert!(hello_interval > Micros::ZERO, "hello interval must be positive");
        assert!(down_after > 0, "down-after must be positive");
        LinkMonitor {
            window: window as u64,
            hello_interval,
            down_after,
            neighbors: HashMap::new(),
            triggered: HashSet::new(),
            down: HashSet::new(),
        }
    }

    /// Whether the link from `neighbor` has been silent past the
    /// down-declaration timeout. A neighbour never heard from is not
    /// "down" — startup silence is not evidence of failure (the loss
    /// estimate already reads 1.0 for it).
    pub fn is_down(&self, neighbor: NodeId, now: Micros) -> bool {
        let Some(last_heard) = self.neighbors.get(&neighbor).and_then(|s| s.last_heard) else {
            return false;
        };
        now.saturating_sub(last_heard) > self.hello_interval.saturating_mul(self.down_after)
    }

    /// Re-evaluates the down declaration for `neighbor`. Returns
    /// `Some(true)` when the link is newly declared down, `Some(false)`
    /// when a down link has come back (hellos resumed), and `None` when
    /// nothing changed.
    pub fn down_transition(&mut self, neighbor: NodeId, now: Micros) -> Option<bool> {
        let down_now = self.is_down(neighbor, now);
        if down_now && self.down.insert(neighbor) {
            Some(true)
        } else if !down_now && self.down.remove(&neighbor) {
            Some(false)
        } else {
            None
        }
    }

    /// Whether any hello has ever arrived from `neighbor` (used to keep
    /// the problem detector quiet before a link's first evidence).
    pub fn heard_from(&self, neighbor: NodeId) -> bool {
        self.neighbors.get(&neighbor).is_some_and(|s| s.last_heard.is_some())
    }

    /// Whether the problem detector currently flags the link from
    /// `neighbor` as lossy.
    pub fn is_triggered(&self, neighbor: NodeId) -> bool {
        self.triggered.contains(&neighbor)
    }

    /// Feeds a fresh loss estimate for the link from `neighbor` into the
    /// problem detector. Returns `Some(true)` on a new trigger
    /// (`loss >= threshold`), `Some(false)` when a triggered link clears
    /// (`loss <= threshold / 2` — hysteresis so a link hovering at the
    /// threshold does not flap), and `None` when nothing changed.
    pub fn detect(&mut self, neighbor: NodeId, loss: f64, threshold: f64) -> Option<bool> {
        if self.triggered.contains(&neighbor) {
            if loss <= threshold / 2.0 {
                self.triggered.remove(&neighbor);
                return Some(false);
            }
        } else if loss >= threshold {
            self.triggered.insert(neighbor);
            return Some(true);
        }
        None
    }

    /// Records a hello received *from* `neighbor` — i.e. evidence about
    /// the link `neighbor -> self` — along with its measured one-way
    /// delay (EWMA-smoothed) and the local arrival time.
    pub fn record_hello(&mut self, neighbor: NodeId, seq: u64, one_way: Micros, now: Micros) {
        let stats = self.neighbors.entry(neighbor).or_default();
        stats.received.insert(seq);
        stats.highest = Some(stats.highest.map_or(seq, |h| h.max(seq)));
        stats.last_heard = Some(stats.last_heard.map_or(now, |t| t.max(now)));
        let floor = stats.highest.expect("just set").saturating_sub(self.window);
        stats.received.retain(|&s| s > floor);
        stats.one_way = Some(match stats.one_way {
            Some(old) => Micros::from_micros((old.as_micros() * 7 + one_way.as_micros()) / 8),
            None => one_way,
        });
    }

    /// Smoothed one-way delay from `neighbor`, if any hello arrived.
    pub fn one_way_from(&self, neighbor: NodeId) -> Option<Micros> {
        self.neighbors.get(&neighbor).and_then(|s| s.one_way)
    }

    /// Records a measured round trip to `neighbor` (EWMA-smoothed).
    pub fn record_rtt(&mut self, neighbor: NodeId, rtt: Micros) {
        let stats = self.neighbors.entry(neighbor).or_default();
        stats.rtt = Some(match stats.rtt {
            // Standard 7/8 smoothing.
            Some(old) => Micros::from_micros((old.as_micros() * 7 + rtt.as_micros()) / 8),
            None => rtt,
        });
    }

    /// Estimated loss rate on the link *from* `neighbor` to this node
    /// as of `now`, over the window. Unknown neighbours report full
    /// loss (a link that has never delivered a hello is as good as
    /// down), and hellos overdue since `last_heard` count as lost.
    pub fn loss_from(&self, neighbor: NodeId, now: Micros) -> f64 {
        let Some(stats) = self.neighbors.get(&neighbor) else {
            return 1.0;
        };
        let (Some(highest), Some(last_heard)) = (stats.highest, stats.last_heard) else {
            return 1.0;
        };
        // Hellos that should have arrived during the silence. One
        // interval of quiet is normal scheduling jitter, so it is free.
        let silence = now.saturating_sub(last_heard).as_micros();
        let overdue =
            (silence / self.hello_interval.as_micros()).saturating_sub(1).min(self.window);
        let expected = (highest + 1).min(self.window) + overdue;
        let floor = highest.saturating_sub(self.window);
        let got = stats.received.iter().filter(|&&s| s > floor).count() as u64;
        (1.0 - got as f64 / expected.max(1) as f64).clamp(0.0, 1.0)
    }

    /// Smoothed RTT to `neighbor`, if any echo has returned.
    pub fn rtt_to(&self, neighbor: NodeId) -> Option<Micros> {
        self.neighbors.get(&neighbor).and_then(|s| s.rtt)
    }
}

/// Per-neighbour route-flap damping state.
#[derive(Debug, Default)]
struct FlapState {
    /// Accumulated instability penalty (decays exponentially).
    penalty: f64,
    /// When the penalty was last decayed.
    touched: Micros,
    /// When a transition for this neighbour was last admitted.
    last_admitted: Option<Micros>,
}

/// Route-flap damper: rate-limits how often a link's advertised state
/// (detector trigger/clear, link down/up) may change.
///
/// Two mechanisms, both per neighbour, in the style of BGP route-flap
/// damping:
///
/// - **Hold-down** — after an admitted transition, further transitions
///   are suppressed until `hold_down` elapses, so one detector blip
///   costs at most one dissemination-graph recomputation per window.
/// - **Penalty** — every *admitted* transition adds one unit of
///   penalty, which decays exponentially with `half_life`. When the
///   penalty exceeds `suppress_threshold`, the link is considered
///   flapping and transitions stay suppressed (even outside the
///   hold-down) until the penalty decays back under the threshold.
///
/// Suppression delays advertisement but never loses it: the caller
/// re-attempts on every origination while its advertised state differs
/// from the measured one, so the last stable state is always admitted
/// eventually.
#[derive(Debug)]
pub struct FlapDamper {
    hold_down: Micros,
    half_life: Micros,
    suppress_threshold: f64,
    states: HashMap<NodeId, FlapState>,
}

impl FlapDamper {
    /// Creates a damper.
    ///
    /// # Panics
    ///
    /// Panics if `half_life` is zero or `suppress_threshold` is not
    /// greater than one (the first transition must always be
    /// admissible).
    pub fn new(hold_down: Micros, half_life: Micros, suppress_threshold: f64) -> Self {
        assert!(half_life > Micros::ZERO, "penalty half-life must be positive");
        assert!(suppress_threshold > 1.0, "suppress threshold must exceed one");
        FlapDamper { hold_down, half_life, suppress_threshold, states: HashMap::new() }
    }

    fn decay(&self, state: &mut FlapState, now: Micros) {
        let elapsed = now.saturating_sub(state.touched).as_micros() as f64;
        state.penalty *= 0.5f64.powf(elapsed / self.half_life.as_micros() as f64);
        state.touched = now;
    }

    /// Asks to admit a state transition for the link from `neighbor` at
    /// time `now`. Returns `true` when the transition may be advertised
    /// (charging one penalty unit and starting a hold-down window), or
    /// `false` when it must be suppressed for now.
    pub fn admit(&mut self, neighbor: NodeId, now: Micros) -> bool {
        let mut state = self.states.remove(&neighbor).unwrap_or_default();
        self.decay(&mut state, now);
        let held = state.last_admitted.is_some_and(|t| now.saturating_sub(t) < self.hold_down);
        let admitted = !held && state.penalty <= self.suppress_threshold;
        if admitted {
            state.penalty += 1.0;
            state.last_admitted = Some(now);
        }
        self.states.insert(neighbor, state);
        admitted
    }

    /// Records a transition as admitted regardless of hold-down or
    /// penalty — the fail-fast path for down declarations, which must
    /// never wait on damping. The transition still charges a penalty
    /// unit and starts a hold-down window, so the *recovery* (link-up)
    /// side of a flapping link stays damped.
    pub fn record_forced(&mut self, neighbor: NodeId, now: Micros) {
        let mut state = self.states.remove(&neighbor).unwrap_or_default();
        self.decay(&mut state, now);
        state.penalty += 1.0;
        state.last_admitted = Some(now);
        self.states.insert(neighbor, state);
    }

    /// The neighbour's current penalty (decayed to `now`); zero for a
    /// neighbour with no damping history.
    pub fn penalty(&self, neighbor: NodeId, now: Micros) -> f64 {
        self.states.get(&neighbor).map_or(0.0, |s| {
            let elapsed = now.saturating_sub(s.touched).as_micros() as f64;
            s.penalty * 0.5f64.powf(elapsed / self.half_life.as_micros() as f64)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Micros = Micros::from_millis(50);

    fn monitor() -> LinkMonitor {
        LinkMonitor::new(10, TICK, 5)
    }

    fn at(i: u64) -> Micros {
        Micros::from_micros(i * TICK.as_micros())
    }

    #[test]
    fn unknown_neighbor_is_fully_lossy() {
        let m = monitor();
        assert_eq!(m.loss_from(NodeId::new(0), at(100)), 1.0);
        assert_eq!(m.rtt_to(NodeId::new(0)), None);
    }

    #[test]
    fn perfect_reception_is_zero_loss() {
        let mut m = monitor();
        let n = NodeId::new(1);
        for seq in 0..30 {
            m.record_hello(n, seq, Micros::from_millis(10), at(seq));
        }
        assert_eq!(m.loss_from(n, at(30)), 0.0);
        assert_eq!(m.one_way_from(n), Some(Micros::from_millis(10)));
    }

    #[test]
    fn gaps_raise_the_estimate() {
        let mut m = monitor();
        let n = NodeId::new(1);
        // Seqs 20..30 with every other one missing.
        for seq in (20..30).step_by(2) {
            m.record_hello(n, seq, Micros::from_millis(5), at(seq));
        }
        let loss = m.loss_from(n, at(29));
        assert!(loss > 0.4 && loss < 0.6, "loss {loss}");
    }

    #[test]
    fn window_forgets_old_losses() {
        let mut m = monitor();
        let n = NodeId::new(1);
        // A terrible early patch...
        m.record_hello(n, 0, Micros::ZERO, at(0));
        m.record_hello(n, 9, Micros::ZERO, at(9));
        assert!(m.loss_from(n, at(9)) > 0.5);
        // ...followed by a clean window.
        for seq in 10..21 {
            m.record_hello(n, seq, Micros::ZERO, at(seq));
        }
        assert_eq!(m.loss_from(n, at(21)), 0.0);
    }

    #[test]
    fn silence_decays_toward_full_loss() {
        let mut m = monitor();
        let n = NodeId::new(3);
        for seq in 0..20 {
            m.record_hello(n, seq, Micros::ZERO, at(seq));
        }
        assert_eq!(m.loss_from(n, at(20)), 0.0);
        // The neighbour dies: after a few missed intervals the estimate
        // climbs, and eventually saturates near 1.
        let after_5 = m.loss_from(n, at(25));
        assert!(after_5 > 0.2, "after 5 quiet intervals: {after_5}");
        let after_20 = m.loss_from(n, at(40));
        assert!(after_20 >= 0.5, "after 20 quiet intervals: {after_20}");
        // A single quiet interval is free (scheduling jitter).
        let mut m2 = monitor();
        for seq in 0..20 {
            m2.record_hello(n, seq, Micros::ZERO, at(seq));
        }
        assert_eq!(m2.loss_from(n, at(20) + Micros::from_millis(40)), 0.0);
    }

    #[test]
    fn rtt_smoothing_converges() {
        let mut m = monitor();
        let n = NodeId::new(2);
        m.record_rtt(n, Micros::from_millis(10));
        assert_eq!(m.rtt_to(n), Some(Micros::from_millis(10)));
        for _ in 0..50 {
            m.record_rtt(n, Micros::from_millis(20));
        }
        let rtt = m.rtt_to(n).unwrap();
        assert!(rtt > Micros::from_millis(19), "rtt {rtt}");
    }

    #[test]
    fn detector_triggers_and_clears_with_hysteresis() {
        let mut m = monitor();
        let n = NodeId::new(4);
        assert!(!m.heard_from(n));
        m.record_hello(n, 0, Micros::ZERO, at(0));
        assert!(m.heard_from(n));
        // Below threshold: quiet.
        assert_eq!(m.detect(n, 0.01, 0.05), None);
        // Crossing the threshold triggers exactly once.
        assert_eq!(m.detect(n, 0.10, 0.05), Some(true));
        assert_eq!(m.detect(n, 0.20, 0.05), None);
        // Hovering between half-threshold and threshold does not clear.
        assert_eq!(m.detect(n, 0.04, 0.05), None);
        // Dropping to half the threshold clears exactly once.
        assert_eq!(m.detect(n, 0.02, 0.05), Some(false));
        assert_eq!(m.detect(n, 0.02, 0.05), None);
    }

    #[test]
    fn silence_declares_down_and_hellos_bring_it_back() {
        let mut m = monitor();
        let n = NodeId::new(7);
        // Never heard: not down, no transition.
        assert!(!m.is_down(n, at(100)));
        assert_eq!(m.down_transition(n, at(100)), None);
        for seq in 0..5 {
            m.record_hello(n, seq, Micros::ZERO, at(seq));
        }
        // Quiet for fewer than down_after intervals: still up.
        assert!(!m.is_down(n, at(8)));
        assert_eq!(m.down_transition(n, at(8)), None);
        // Past the timeout (down_after = 5 intervals after last hello
        // at tick 4): declared down exactly once.
        assert!(m.is_down(n, at(11)));
        assert_eq!(m.down_transition(n, at(11)), Some(true));
        assert_eq!(m.down_transition(n, at(12)), None);
        // Hellos resume: cleared exactly once.
        m.record_hello(n, 5, Micros::ZERO, at(13));
        assert!(!m.is_down(n, at(13)));
        assert_eq!(m.down_transition(n, at(13)), Some(false));
        assert_eq!(m.down_transition(n, at(13)), None);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        LinkMonitor::new(0, TICK, 5);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        LinkMonitor::new(10, Micros::ZERO, 5);
    }

    #[test]
    #[should_panic(expected = "down-after")]
    fn zero_down_after_panics() {
        LinkMonitor::new(10, TICK, 0);
    }

    #[test]
    fn triggered_accessor_tracks_detector_state() {
        let mut m = monitor();
        let n = NodeId::new(4);
        assert!(!m.is_triggered(n));
        assert_eq!(m.detect(n, 0.10, 0.05), Some(true));
        assert!(m.is_triggered(n));
        assert_eq!(m.detect(n, 0.01, 0.05), Some(false));
        assert!(!m.is_triggered(n));
    }

    #[test]
    fn damper_admits_first_transition_immediately() {
        let mut d = FlapDamper::new(Micros::from_millis(500), Micros::from_secs(2), 3.0);
        let n = NodeId::new(1);
        assert_eq!(d.penalty(n, Micros::ZERO), 0.0);
        assert!(d.admit(n, Micros::ZERO));
        assert!(d.penalty(n, Micros::ZERO) > 0.9);
    }

    #[test]
    fn hold_down_admits_at_most_one_transition_per_window() {
        let hold = Micros::from_millis(500);
        let mut d = FlapDamper::new(hold, Micros::from_secs(60), 100.0);
        let n = NodeId::new(1);
        // An oscillating signal attempts a transition every 100 ms over
        // 3 seconds; with a huge threshold only the hold-down gates.
        let mut admitted: Vec<Micros> = Vec::new();
        for i in 0..30u64 {
            let now = Micros::from_millis(i * 100);
            if d.admit(n, now) {
                admitted.push(now);
            }
        }
        assert!(!admitted.is_empty());
        for pair in admitted.windows(2) {
            assert!(
                pair[1].saturating_sub(pair[0]) >= hold,
                "two admissions {} and {} inside one hold-down window",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn sustained_flapping_builds_penalty_and_suppresses_entirely() {
        let mut d = FlapDamper::new(Micros::from_millis(100), Micros::from_secs(2), 3.0);
        let n = NodeId::new(2);
        // Flap hard: an attempt every 100 ms for 4 seconds. The penalty
        // climbs past the threshold and admissions stop.
        let mut last_admit = Micros::ZERO;
        for i in 0..40u64 {
            let now = Micros::from_millis(i * 100);
            if d.admit(n, now) {
                last_admit = now;
            }
        }
        assert!(
            last_admit < Micros::from_millis(3_900),
            "sustained flapping was never suppressed (last admit {last_admit})"
        );
        assert!(d.penalty(n, Micros::from_millis(4_000)) > 3.0);
        // Quiet period: the penalty decays and the link is forgiven.
        let later = Micros::from_secs(30);
        assert!(d.penalty(n, later) < 0.1);
        assert!(d.admit(n, later), "a calmed link must be admitted again");
    }

    #[test]
    fn damper_state_is_per_neighbor() {
        let mut d = FlapDamper::new(Micros::from_millis(500), Micros::from_secs(2), 3.0);
        assert!(d.admit(NodeId::new(1), Micros::ZERO));
        // A different neighbour is unaffected by node 1's hold-down.
        assert!(d.admit(NodeId::new(2), Micros::from_millis(1)));
        assert!(!d.admit(NodeId::new(1), Micros::from_millis(2)));
    }

    #[test]
    fn forced_admission_bypasses_hold_down_but_still_charges() {
        let n = NodeId::new(3);
        let mut d = FlapDamper::new(Micros::from_millis(500), Micros::from_secs(2), 3.0);
        assert!(d.admit(n, Micros::ZERO));
        // A down declaration inside the hold-down goes through anyway...
        d.record_forced(n, Micros::from_millis(100));
        assert!(d.penalty(n, Micros::from_millis(100)) > 1.5, "forced admission must charge");
        // ...and restarts the hold-down, so the recovery side is damped.
        assert!(!d.admit(n, Micros::from_millis(550)));
        assert!(d.admit(n, Micros::from_millis(650)));
    }

    #[test]
    #[should_panic(expected = "half-life")]
    fn zero_half_life_panics() {
        FlapDamper::new(Micros::from_millis(500), Micros::ZERO, 3.0);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn tiny_threshold_panics() {
        FlapDamper::new(Micros::from_millis(500), Micros::from_secs(2), 1.0);
    }
}
