//! The deployable overlay transport service.
//!
//! Where `dg-sim` *replays* recorded conditions, this crate runs the
//! real thing at laptop scale: each [`OverlayNode`] is a thread-driven
//! UDP daemon that
//!
//! - forwards data packets along the dissemination graph carried in
//!   each packet's header (an edge bitmask — the source alone decides
//!   routing, intermediate nodes just follow the graph),
//! - suppresses duplicates and drops expired packets,
//! - runs hop-by-hop recovery on every overlay link (gap detection,
//!   NACK, a single retransmission),
//! - monitors its links with hellos (loss and RTT estimation) and
//!   floods link-state updates so sources can react to problems,
//! - exposes a [`session::FlowSender`]/[`session::FlowReceiver`] API to
//!   applications,
//! - keeps lock-cheap counters and a bounded event journal of route
//!   changes, detector transitions, and recovery outcomes
//!   ([`metrics::MetricsSnapshot`], [`cluster::Cluster::metrics_report`]).
//!
//! Link loss and extra latency are injectable per edge
//! ([`fault::FaultPlan`]), so a whole overlay with realistic WAN
//! behaviour runs on localhost — see [`cluster::Cluster`].
//!
//! # Example
//!
//! ```no_run
//! use dg_topology::presets;
//! use dg_core::{Flow, ServiceRequirement};
//! use dg_core::scheme::SchemeKind;
//! use dg_overlay::cluster::{Cluster, ClusterConfig};
//!
//! let graph = presets::north_america_12();
//! let cluster = Cluster::launch(&graph, ClusterConfig::default())?;
//! let flow = Flow::new(
//!     graph.node_by_name("NYC").unwrap(),
//!     graph.node_by_name("SJC").unwrap(),
//! );
//! let rx = cluster.open_receiver(flow)?;
//! let tx = cluster.open_sender(flow, SchemeKind::TargetedRedundancy,
//!                              ServiceRequirement::default())?;
//! tx.send(b"scalpel, please")?;
//! let delivery = rx.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
//! assert!(delivery.on_time);
//! cluster.shutdown();
//! # Ok::<(), dg_overlay::OverlayError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
mod clock;
pub mod cluster;
mod config;
mod error;
pub mod fault;
mod linkstate;
pub mod metrics;
mod monitor;
mod node;
pub mod overload;
pub mod pool;
pub mod recovery;
pub mod runtime;
pub mod session;
pub mod shard;
pub mod sla;
pub mod wire;

pub use clock::now_us;
pub use config::{NodeConfig, NodeConfigBuilder, NodeFileConfig};
pub use error::OverlayError;
pub use metrics::{ClusterMetricsReport, MetricsSnapshot, NodeCounters, NodeThread};
pub use node::{OverlayHandle, OverlayNode};
pub use overload::{OverloadConfig, OverloadDetector, OverloadTransition, MAX_LEVEL};
pub use runtime::{Runtime, RuntimeConfig, SpawnMode};
pub use sla::{SlaFlowSpec, SlaPlan};
