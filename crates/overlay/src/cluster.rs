//! Whole-overlay deployment on localhost.
//!
//! A [`Cluster`] spins up one [`crate::OverlayNode`] per topology site,
//! wires their peer tables together over loopback UDP, and emulates
//! each link's propagation delay through the nodes' fault plans — so
//! the full transport service, including its monitoring and recovery
//! protocols, runs with realistic WAN timing on one machine.

use crate::config::NodeConfig;
use crate::fault::LinkFault;
use crate::metrics::{ClusterMetricsReport, NodeThread};
use crate::node::{OverlayHandle, OverlayNode};
use crate::runtime::Runtime;
use crate::session::{FlowGroup, FlowReceiver, FlowSender};
use crate::wire::DigestEntry;
use crate::OverlayError;
use dg_core::scheme::{SchemeKind, SchemeParams};
use dg_core::{
    build_scheme_cached, Flow, GraphCache, GraphCacheStats, MulticastKind, ServiceRequirement,
    SlaClass,
};
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use std::collections::HashMap;
use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

/// Cluster-wide settings.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Hello probe interval for every node.
    pub hello_interval: Duration,
    /// Link-state origination interval for every node.
    pub link_state_interval: Duration,
    /// Scale factor applied to emulated link latencies (1.0 = the
    /// topology's real propagation delays; tests may shrink it).
    pub latency_scale: f64,
    /// Scheme construction tunables used by [`Cluster::open_sender`].
    pub scheme_params: SchemeParams,
    /// Base seed for the nodes' deterministic fault RNGs; each node
    /// derives its own stream from this and its index.
    pub fault_seed: u64,
    /// Largest wire datagram built when coalescing sends (see
    /// [`crate::NodeConfigBuilder::max_batch_bytes`]); loopback
    /// clusters can raise it well past the WAN-safe default.
    pub max_batch_bytes: usize,
    /// Anti-entropy digest interval for every node (see
    /// [`crate::NodeConfigBuilder::digest_interval`]).
    pub digest_interval: Duration,
    /// Flap-damper hold-down for every node (see
    /// [`crate::NodeConfigBuilder::flap_hold_down`]).
    pub flap_hold_down: Duration,
    /// Watchdog staleness horizon for every node (see
    /// [`crate::NodeConfigBuilder::watchdog_stale_after`]).
    pub watchdog_stale_after: Duration,
    /// Outbound data-queue bound for every node (see
    /// [`crate::NodeConfigBuilder::shipper_queue`]) — also the depth
    /// scale of the class shed bands and the overload detector.
    pub shipper_queue: usize,
    /// Sender-session admission capacity per node (see
    /// [`crate::NodeConfigBuilder::sender_capacity`]).
    pub sender_capacity: usize,
    /// Overload-detector hold-down for every node (see
    /// [`crate::NodeConfigBuilder::overload_hold_down`]).
    pub overload_hold_down: Duration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            hello_interval: Duration::from_millis(50),
            link_state_interval: Duration::from_millis(200),
            latency_scale: 1.0,
            scheme_params: SchemeParams::default(),
            fault_seed: 0,
            max_batch_bytes: 1_400,
            digest_interval: Duration::from_secs(1),
            flap_hold_down: Duration::from_millis(500),
            watchdog_stale_after: Duration::from_secs(1),
            shipper_queue: 16_384,
            sender_capacity: 1_024,
            overload_hold_down: Duration::from_millis(500),
        }
    }
}

/// A running localhost overlay: one node per topology site.
#[derive(Debug)]
pub struct Cluster {
    graph: Arc<Graph>,
    handles: Vec<Option<OverlayHandle>>,
    config: ClusterConfig,
    /// Shared precomputed dissemination graphs for sender setup, so
    /// many flows over the same topology intern one computation.
    scheme_cache: GraphCache,
    /// Baseline emulated delay per edge, so injected faults compose.
    base_delay: Vec<Micros>,
    /// Every node's bound address, kept so a killed node can restart on
    /// the same port and its peers need no reconfiguration.
    addrs: Vec<std::net::SocketAddr>,
    /// The runtime all nodes are spawned on (restarts included).
    runtime: Runtime,
    /// Whether [`Cluster::shutdown`] should also stop the runtime's
    /// worker pool (true when the cluster built the runtime itself).
    owns_runtime: bool,
}

impl Cluster {
    /// Binds and starts one node per site of `graph` on a runtime the
    /// cluster builds and owns: the `DG_RUNTIME` environment variable
    /// selects it (`threaded` — the default — `reactor`, or
    /// `reactor:N` for an explicit worker count), so whole test suites
    /// can be re-run under the reactor without code changes.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when sockets cannot be bound.
    pub fn launch(graph: &Graph, config: ClusterConfig) -> Result<Cluster, OverlayError> {
        let descriptor = std::env::var("DG_RUNTIME").unwrap_or_default();
        let runtime = Runtime::from_descriptor(&descriptor);
        Cluster::launch_inner(graph, config, runtime, true)
    }

    /// Binds and starts one node per site of `graph` on a caller-owned
    /// runtime. The cluster will not stop the runtime's workers on
    /// [`Cluster::shutdown`] — several clusters may share one pool.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when sockets cannot be bound, or
    /// [`OverlayError::RuntimeShutDown`] for a stopped runtime.
    pub fn launch_on(
        graph: &Graph,
        config: ClusterConfig,
        runtime: Runtime,
    ) -> Result<Cluster, OverlayError> {
        Cluster::launch_inner(graph, config, runtime, false)
    }

    fn launch_inner(
        graph: &Graph,
        config: ClusterConfig,
        runtime: Runtime,
        owns_runtime: bool,
    ) -> Result<Cluster, OverlayError> {
        let graph = Arc::new(graph.clone());
        // Bind every socket first so all peer addresses are known.
        let sockets: Vec<UdpSocket> = (0..graph.node_count())
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<Result<_, _>>()?;
        let addrs: Vec<std::net::SocketAddr> =
            sockets.iter().map(|s| s.local_addr()).collect::<Result<_, _>>()?;

        let base_delay: Vec<Micros> = graph
            .edges()
            .map(|e| {
                Micros::from_micros(
                    (graph.edge(e).latency.as_micros() as f64 * config.latency_scale) as u64,
                )
            })
            .collect();

        let mut handles = Vec::with_capacity(graph.node_count());
        for (socket, node) in sockets.into_iter().zip(graph.nodes()) {
            let node_config = make_node_config(&graph, &addrs, &config, node);
            let handle = OverlayNode::spawn_with_socket_on(
                &runtime,
                node_config,
                Arc::clone(&graph),
                socket,
            )?;
            apply_base_delays(&handle, &graph, &base_delay, node);
            handles.push(Some(handle));
        }
        let scheme_cache = GraphCache::new(Arc::clone(&graph), config.scheme_params);
        Ok(Cluster {
            graph,
            handles,
            config,
            scheme_cache,
            base_delay,
            addrs,
            runtime,
            owns_runtime,
        })
    }

    /// The runtime this cluster's nodes run on.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// The topology this cluster runs.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The node handle for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or has been killed.
    pub fn node(&self, node: NodeId) -> &OverlayHandle {
        self.handles[node.index()].as_ref().expect("node is alive")
    }

    /// Stops one node's daemon, simulating a site failure. The rest of
    /// the overlay discovers the death through hello silence.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or already killed.
    pub fn kill_node(&mut self, node: NodeId) {
        self.handles[node.index()].take().expect("node is alive").shutdown();
    }

    /// True when `node` has not been killed.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.handles[node.index()].is_some()
    }

    /// Makes one protocol thread of `node` panic at its next checkpoint
    /// — the supervisor catches it, journals the crash, and restarts
    /// the thread. A no-op if the node has been killed.
    pub fn panic_thread(&self, node: NodeId, thread: NodeThread) {
        if let Some(handle) = &self.handles[node.index()] {
            handle.inject_thread_panic(thread);
        }
    }

    /// The per-origin `(epoch, seq)` link-state digest of one node, or
    /// an empty digest for a killed node. Two nodes with identical
    /// digests hold identical link-state databases — the convergence
    /// check partition tests poll.
    pub fn link_state_digest(&self, node: NodeId) -> Vec<DigestEntry> {
        self.handles[node.index()].as_ref().map_or_else(Vec::new, OverlayHandle::link_state_digest)
    }

    /// Restarts a previously killed node on its original port. The
    /// replacement process mints a fresh link-state epoch, so its reset
    /// sequence numbers are accepted by peers that remember the old
    /// incarnation; its emulated link delays are re-applied.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when the original port cannot be
    /// re-bound.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or still alive.
    pub fn restart_node(&mut self, node: NodeId) -> Result<(), OverlayError> {
        assert!(self.handles[node.index()].is_none(), "restarting a live node");
        let socket = UdpSocket::bind(self.addrs[node.index()])?;
        let node_config = make_node_config(&self.graph, &self.addrs, &self.config, node);
        let handle = OverlayNode::spawn_with_socket_on(
            &self.runtime,
            node_config,
            Arc::clone(&self.graph),
            socket,
        )?;
        apply_base_delays(&handle, &self.graph, &self.base_delay, node);
        self.handles[node.index()] = Some(handle);
        Ok(())
    }

    /// Opens a sender at the flow's source using a freshly built scheme.
    ///
    /// # Errors
    ///
    /// Propagates scheme-construction and session errors.
    pub fn open_sender(
        &self,
        flow: Flow,
        kind: SchemeKind,
        requirement: ServiceRequirement,
    ) -> Result<FlowSender, OverlayError> {
        let scheme = build_scheme_cached(kind, &self.scheme_cache, flow, requirement)?;
        self.node(flow.source).open_sender(scheme, requirement)
    }

    /// Opens a sender in an explicit SLA service class with a caller's
    /// scheme choice and deadline.
    ///
    /// # Errors
    ///
    /// Propagates scheme-construction, admission, and session errors.
    pub fn open_sender_with_class(
        &self,
        flow: Flow,
        kind: SchemeKind,
        requirement: ServiceRequirement,
        class: SlaClass,
    ) -> Result<FlowSender, OverlayError> {
        let scheme = build_scheme_cached(kind, &self.scheme_cache, flow, requirement)?;
        self.node(flow.source).open_sender_with_class(scheme, requirement, class)
    }

    /// Opens a sender using the class's own scheme preference and
    /// deadline budget: bulk rides one dynamic path at 250 ms, timely
    /// two disjoint paths at 100 ms, surgical a targeted-redundancy
    /// graph at the default deadline.
    ///
    /// # Errors
    ///
    /// Propagates scheme-construction, admission, and session errors.
    pub fn open_sla_sender(&self, flow: Flow, class: SlaClass) -> Result<FlowSender, OverlayError> {
        let requirement = class.requirement();
        self.open_sender_with_class(flow, class.preferred_scheme(), requirement, class)
    }

    /// Opens a multicast group sender at `source` covering `receivers`,
    /// plus a receiving session at every receiver — the many-flow fast
    /// path: one send covers the whole set over an interned
    /// single-source dissemination graph. Receivers come back in the
    /// graph's canonical order (sorted, deduplicated, source dropped).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction, admission, and session errors.
    pub fn open_group_sender(
        &self,
        source: NodeId,
        receivers: &[NodeId],
        group_id: u32,
        kind: MulticastKind,
        requirement: ServiceRequirement,
        class: SlaClass,
    ) -> Result<(FlowGroup, Vec<(NodeId, FlowReceiver)>), OverlayError> {
        let group =
            self.node(source).open_group_sender(receivers, group_id, kind, requirement, class)?;
        let mut sessions = Vec::with_capacity(group.receivers().len());
        for r in group.receivers() {
            sessions.push((r, self.node(r).open_group_receiver(source, group_id)?));
        }
        Ok((group, sessions))
    }

    /// Floods `node`'s outbound data queue with synthetic bulk-class
    /// pressure (see [`OverlayHandle::inject_overload`]). A no-op on a
    /// killed node.
    pub fn inject_overload(&self, node: NodeId, shipments: usize, dwell: Duration) {
        if let Some(handle) = self.handles[node.index()].as_ref() {
            handle.inject_overload(shipments, dwell);
        }
    }

    /// Counters of the cluster's shared scheme-construction cache.
    pub fn scheme_cache_stats(&self) -> GraphCacheStats {
        self.scheme_cache.stats()
    }

    /// Opens a receiver at the flow's destination.
    ///
    /// # Errors
    ///
    /// Propagates session errors.
    pub fn open_receiver(&self, flow: Flow) -> Result<FlowReceiver, OverlayError> {
        self.node(flow.destination).open_receiver(flow)
    }

    /// Injects loss (and optional extra delay) on a directed edge,
    /// composing with the emulated propagation delay.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_link_fault(&self, edge: EdgeId, loss: f64, extra_delay: Micros) {
        self.set_link_impairment(edge, LinkFault::lossy(loss, extra_delay));
    }

    /// Injects an arbitrary impairment on a directed edge — bursty
    /// loss, jitter, reordering, duplication, corruption, blackhole —
    /// with the impairment's `delay` composing on top of the emulated
    /// propagation delay. Killed source nodes are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn set_link_impairment(&self, edge: EdgeId, fault: LinkFault) {
        let info = self.graph.edge(edge);
        let Some(handle) = self.handles[info.src.index()].as_ref() else {
            return;
        };
        let composed =
            LinkFault { delay: self.base_delay[edge.index()].saturating_add(fault.delay), ..fault };
        handle.faults().set(info.dst, composed);
    }

    /// Restores a directed edge to its emulated baseline. Killed source
    /// nodes are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `edge` is out of range.
    pub fn clear_link_fault(&self, edge: EdgeId) {
        let info = self.graph.edge(edge);
        if let Some(handle) = self.handles[info.src.index()].as_ref() {
            handle.faults().set(info.dst, LinkFault::delayed(self.base_delay[edge.index()]));
        }
    }

    /// Impairs every link incident to `node` (both directions) — the
    /// paper's "problem around a node".
    pub fn impair_node(&self, node: NodeId, loss: f64, extra_delay: Micros) {
        for &e in self.graph.out_edges(node).iter().chain(self.graph.in_edges(node)) {
            self.set_link_fault(e, loss, extra_delay);
        }
    }

    /// Clears impairments on every link incident to `node`.
    pub fn heal_node(&self, node: NodeId) {
        for &e in self.graph.out_edges(node).iter().chain(self.graph.in_edges(node)) {
            self.clear_link_fault(e);
        }
    }

    /// Blocks until every live node has heard link state from every
    /// origin, or the timeout passes; returns whether convergence was
    /// reached.
    pub fn wait_for_link_state(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let converged = self
                .handles
                .iter()
                .flatten()
                .all(|h| h.link_state_origins() == self.graph.node_count());
            if converged {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Gathers every live node's metrics snapshot into one
    /// serializable, cluster-wide report: per-node counters and
    /// journals, summed totals, and per-flow end-to-end summaries whose
    /// field names match the simulator's `FlowRunStats`.
    pub fn metrics_report(&self) -> ClusterMetricsReport {
        ClusterMetricsReport::aggregate(
            self.handles.iter().flatten().map(OverlayHandle::metrics_snapshot).collect(),
        )
    }

    /// Stops every node, then — if the cluster built its own runtime in
    /// [`Cluster::launch`] — the runtime's worker pool.
    pub fn shutdown(self) {
        for h in self.handles.into_iter().flatten() {
            h.shutdown();
        }
        if self.owns_runtime {
            self.runtime.shutdown();
        }
    }
}

/// One node's configuration under cluster-wide settings. Restart uses
/// the same derivation as launch, so a node's fault-RNG seed and peer
/// table survive its death.
fn make_node_config(
    graph: &Graph,
    addrs: &[std::net::SocketAddr],
    config: &ClusterConfig,
    node: NodeId,
) -> NodeConfig {
    NodeConfig::builder(node, addrs[node.index()])
        .hello_interval(config.hello_interval)
        .link_state_interval(config.link_state_interval)
        .fault_seed(config.fault_seed ^ (node.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .max_batch_bytes(config.max_batch_bytes)
        .digest_interval(config.digest_interval)
        .flap_hold_down(config.flap_hold_down)
        .watchdog_stale_after(config.watchdog_stale_after)
        .shipper_queue(config.shipper_queue)
        .sender_capacity(config.sender_capacity)
        .overload_hold_down(config.overload_hold_down)
        .peers(graph.neighbors(node).map(|n| (n, addrs[n.index()])).collect::<HashMap<_, _>>())
        .build()
        .expect("cluster node configuration validates")
}

/// Emulates propagation delay on each of `node`'s out-links.
fn apply_base_delays(handle: &OverlayHandle, graph: &Graph, base_delay: &[Micros], node: NodeId) {
    for &e in graph.out_edges(node) {
        handle.faults().set(graph.edge(e).dst, LinkFault::delayed(base_delay[e.index()]));
    }
}
