//! Wire format of overlay packets.
//!
//! Every datagram is an [`Envelope`]: a fixed prelude (magic, version,
//! message type, sending node, integrity checksum) followed by one
//! [`Message`]. Data packets carry the flow's dissemination graph as an
//! edge bitmask, so intermediate nodes forward without any per-flow
//! routing state — the source alone decides the routing, per the
//! paper's architecture.
//!
//! The prelude checksum (a word-at-a-time 64-bit FNV-1a over every
//! byte except the checksum field itself, folded to 32 bits) turns
//! in-flight corruption into a clean decode error: a corrupted
//! datagram only ever increments the `malformed` counter, it can never
//! deliver a flipped payload or poison protocol state.
//!
//! Two encode/decode surfaces exist: the classic allocating pair
//! ([`Envelope::encode`]/[`Envelope::decode`]) and the pooled-buffer
//! pair ([`Envelope::encode_into`]/[`Envelope::decode_shared`]). The
//! latter appends into a caller-supplied buffer and parses data packets
//! as zero-copy slices of the received frame, so the forwarding hot
//! path performs no per-packet copies of mask or payload bytes.

use crate::OverlayError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dg_core::{Flow, SlaClass};
use dg_topology::{EdgeId, Micros, NodeId};

/// First byte of every overlay datagram.
pub const MAGIC: u8 = 0xDC;
/// Wire protocol version. Version 2 added the prelude checksum, the
/// link-state origin epoch, and per-entry link-down flags; version 3
/// added batched data frames and the word-folded checksum; version 4
/// turned the data-body retransmission byte into a flags byte carrying
/// the SLA service class (bits 1–2).
pub const VERSION: u8 = 4;
/// Maximum application payload per packet, chosen to keep the whole
/// datagram under a typical 1500-byte MTU.
pub const MAX_PAYLOAD: usize = 1200;

/// A decoded overlay datagram: who sent it, and what it is.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The overlay node that transmitted this datagram (one hop away).
    pub from: NodeId,
    /// The message.
    pub message: Message,
}

/// The overlay message types.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// An application packet being disseminated.
    Data(DataPacket),
    /// Several application packets coalesced into one datagram (one
    /// syscall, one checksum). Each item keeps its own per-link
    /// sequence number, so hop-by-hop recovery still works per packet.
    DataBatch(Vec<DataPacket>),
    /// A hop-by-hop recovery request for lost link sequence numbers.
    Nack {
        /// The link sequence numbers the receiver never saw.
        missing: Vec<u64>,
    },
    /// A link-monitoring probe.
    Hello {
        /// Monotonic hello counter on this link.
        seq: u64,
        /// Sender timestamp, echoed back for RTT measurement.
        sent_at: Micros,
    },
    /// Echo of a received hello.
    HelloAck {
        /// The echoed hello counter.
        echo_seq: u64,
        /// The echoed send timestamp.
        echo_sent_at: Micros,
    },
    /// A flooded link-state report.
    LinkState(LinkStateUpdate),
    /// Per-neighbour acknowledgement of a received link-state report.
    ///
    /// Flooding is hop-by-hop reliable: every [`Message::LinkState`]
    /// transmission is acked by the receiving neighbour, and the sender
    /// retransmits unacked reports with exponential backoff. The ack
    /// names the report's origin stamp, so a newer report for the same
    /// origin implicitly supersedes the pending older one.
    LsaAck {
        /// The acknowledged report's originating node.
        origin: NodeId,
        /// The acknowledged report's origin epoch.
        epoch: u64,
        /// The acknowledged report's origin sequence.
        seq: u64,
    },
    /// An anti-entropy summary of the sender's link-state database:
    /// the latest `(epoch, seq)` stamp it holds per origin. A receiver
    /// holding strictly newer state for any origin (or state for an
    /// origin absent from the digest) pushes those reports back, so two
    /// sides of a healed partition reconcile deterministically instead
    /// of waiting for the next periodic refresh to happen to survive.
    Digest {
        /// The sender's per-origin database summary.
        entries: Vec<DigestEntry>,
    },
}

/// One origin's latest `(epoch, seq)` stamp inside a [`Message::Digest`].
///
/// Serde-serializable so metrics snapshots can embed the database
/// digest, letting out-of-process collectors compare convergence across
/// daemons without a live API connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DigestEntry {
    /// The origin summarized.
    pub origin: NodeId,
    /// The latest epoch held for this origin.
    pub epoch: u64,
    /// The latest sequence held within that epoch.
    pub seq: u64,
}

/// An application packet in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// The flow this packet belongs to.
    pub flow: Flow,
    /// End-to-end sequence number assigned by the source.
    pub flow_seq: u64,
    /// Source send timestamp.
    pub sent_at: Micros,
    /// One-way delivery deadline (duration, not an instant).
    pub deadline: Micros,
    /// Per-link sequence number assigned by the transmitting node.
    pub link_seq: u64,
    /// True for hop-by-hop retransmissions (they are not recovered again).
    pub retransmission: bool,
    /// The flow's SLA service class, stamped by the source and carried
    /// end to end so every hop sheds in the same priority order.
    pub class: SlaClass,
    /// Dissemination-graph edge bitmask (LSB-first over dense edge ids).
    pub mask: Bytes,
    /// Application payload.
    pub payload: Bytes,
}

impl DataPacket {
    /// True when the dissemination graph includes `edge`.
    pub fn mask_contains(&self, edge: EdgeId) -> bool {
        let i = edge.index();
        self.mask.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0)
    }

    /// True when, at time `now`, this packet can no longer be delivered
    /// within its deadline.
    pub fn expired(&self, now: Micros) -> bool {
        now > self.sent_at.saturating_add(self.deadline)
    }
}

/// One edge's condition inside a link-state update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStateEntry {
    /// The reported edge (an out-edge of the originating node).
    pub edge: EdgeId,
    /// Estimated loss rate.
    pub loss: f32,
    /// Estimated latency above baseline, in microseconds.
    pub extra_latency_us: u32,
    /// The origin has declared this link down (hello timeout): treat it
    /// as fully lossy regardless of the `loss` estimate.
    pub down: bool,
}

/// A link-state report flooded through the overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStateUpdate {
    /// The node reporting its out-links.
    pub origin: NodeId,
    /// The origin's incarnation, minted at process start. A restarted
    /// node's sequence numbers reset, but its fresh (higher) epoch
    /// makes its reports newer than anything from the previous life.
    pub epoch: u64,
    /// Monotonic per-origin sequence number within one epoch.
    pub seq: u64,
    /// Conditions of the origin's out-edges.
    pub entries: Vec<LinkStateEntry>,
}

const T_DATA: u8 = 0;
const T_NACK: u8 = 1;
const T_HELLO: u8 = 2;
const T_HELLO_ACK: u8 = 3;
const T_LINK_STATE: u8 = 4;
const T_DATA_BATCH: u8 = 5;
const T_LSA_ACK: u8 = 6;
const T_DIGEST: u8 = 7;

/// Fixed part of a data body: flow (8), flow_seq (8), sent_at (8),
/// deadline (8), link_seq (8), flags (1), mask length (2), payload
/// length (2).
const DATA_FIXED_LEN: usize = 45;

/// Bit 0 of a data body's flags byte: hop-by-hop retransmission.
const FLAG_RETRANSMISSION: u8 = 0x01;
/// Bits 1–2 of a data body's flags byte: the SLA class.
const CLASS_SHIFT: u8 = 1;
const CLASS_MASK: u8 = 0b0000_0110;

/// Byte offset of the prelude checksum field.
const CHECKSUM_OFFSET: usize = 7;
/// Total prelude size: magic, version, type, sender, checksum.
const PRELUDE_LEN: usize = 11;
/// Bit 0 of a link-state entry's flags byte: link declared down.
const FLAG_LINK_DOWN: u8 = 0x01;

/// Integrity checksum over every datagram byte except the checksum
/// field itself: 64-bit FNV-1a consumed eight bytes per step (short
/// tails are zero-padded and length-tagged), folded to 32 bits. The
/// word-wise walk breaks FNV's one-multiply-per-byte dependency chain,
/// which matters now that batching produces multi-kilobyte datagrams
/// that are checksummed twice per hop (seal + verify).
fn checksum(datagram: &[u8]) -> u32 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            hash ^= u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
            hash = hash.wrapping_mul(PRIME);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Tag the pad with the tail length so trailing zero bytes
            // and an absent tail cannot alias.
            tail[7] = rem.len() as u8;
            hash ^= u64::from_le_bytes(tail);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(&datagram[..CHECKSUM_OFFSET.min(datagram.len())]);
    if datagram.len() > PRELUDE_LEN {
        eat(&datagram[PRELUDE_LEN..]);
    }
    (hash ^ (hash >> 32)) as u32
}

/// Whether a raw datagram is a data or data-batch frame (peeks the
/// type byte). The receive path copies only these into shared frames
/// for zero-copy decoding; control traffic decodes straight off the
/// scratch buffer without an allocation.
pub(crate) fn is_data_frame(datagram: &[u8]) -> bool {
    matches!(datagram.get(2), Some(&T_DATA) | Some(&T_DATA_BATCH))
}

/// Appends the prelude with a zeroed checksum; returns the offset the
/// envelope starts at (so the checksum can be patched after the body).
fn put_prelude<B: BufMut + std::ops::DerefMut<Target = [u8]>>(
    buf: &mut B,
    msg_type: u8,
    from: NodeId,
) -> usize {
    let base = buf.len();
    buf.put_u8(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(msg_type);
    buf.put_u32(from.index() as u32);
    buf.put_u32(0); // checksum placeholder, patched by seal()
    base
}

/// Computes and patches the checksum of the envelope starting at `base`.
fn seal(buf: &mut [u8], base: usize) {
    let sum = checksum(&buf[base..]);
    buf[base + CHECKSUM_OFFSET..base + PRELUDE_LEN].copy_from_slice(&sum.to_be_bytes());
}

/// Serialized size of one data body (without the prelude).
pub(crate) fn data_body_len(d: &DataPacket) -> usize {
    DATA_FIXED_LEN + d.mask.len() + d.payload.len()
}

fn put_data_body<B: BufMut>(buf: &mut B, d: &DataPacket, link_seq: u64) {
    buf.put_u32(d.flow.source.index() as u32);
    buf.put_u32(d.flow.destination.index() as u32);
    buf.put_u64(d.flow_seq);
    buf.put_u64(d.sent_at.as_micros());
    buf.put_u64(d.deadline.as_micros());
    buf.put_u64(link_seq);
    buf.put_u8((d.class.to_bits() << CLASS_SHIFT) | u8::from(d.retransmission));
    buf.put_u16(d.mask.len() as u16);
    buf.put_slice(&d.mask);
    buf.put_u16(d.payload.len() as u16);
    buf.put_slice(&d.payload);
}

/// Appends one `T_DATA` frame for `packet` with its per-link sequence
/// overridden to `link_seq`, without cloning the packet. The node's
/// transmit path pairs this with a pooled buffer.
pub(crate) fn encode_data(from: NodeId, packet: &DataPacket, link_seq: u64, buf: &mut Vec<u8>) {
    buf.reserve(PRELUDE_LEN + data_body_len(packet));
    let base = put_prelude(buf, T_DATA, from);
    put_data_body(buf, packet, link_seq);
    seal(buf, base);
}

/// Appends one `T_DATA_BATCH` frame carrying `packets[start..end]`,
/// whose per-link sequences are `link_seqs[start..end]`.
pub(crate) fn encode_data_batch(
    from: NodeId,
    packets: &[DataPacket],
    link_seqs: &[u64],
    buf: &mut Vec<u8>,
) {
    debug_assert_eq!(packets.len(), link_seqs.len());
    let body: usize = packets.iter().map(data_body_len).sum();
    buf.reserve(PRELUDE_LEN + 2 + body);
    let base = put_prelude(buf, T_DATA_BATCH, from);
    buf.put_u16(packets.len() as u16);
    for (d, &seq) in packets.iter().zip(link_seqs) {
        put_data_body(buf, d, seq);
    }
    seal(buf, base);
}

/// How `decode` materializes mask/payload bytes: by copying out of the
/// datagram, or by slicing a shared receive frame (zero-copy).
enum Materialize<'a> {
    Copy,
    Share(&'a Bytes),
}

impl Materialize<'_> {
    fn take(&self, datagram: &[u8], offset: usize, len: usize) -> Bytes {
        match self {
            Materialize::Copy => Bytes::copy_from_slice(&datagram[offset..offset + len]),
            Materialize::Share(frame) => frame.slice(offset..offset + len),
        }
    }
}

fn decode_data_body(
    datagram: &[u8],
    buf: &mut &[u8],
    materialize: &Materialize<'_>,
) -> Result<DataPacket, OverlayError> {
    if buf.remaining() < DATA_FIXED_LEN {
        return Err(OverlayError::Malformed("short data header"));
    }
    let flow = Flow::new(NodeId::new(buf.get_u32()), NodeId::new(buf.get_u32()));
    let flow_seq = buf.get_u64();
    let sent_at = Micros::from_micros(buf.get_u64());
    let deadline = Micros::from_micros(buf.get_u64());
    let link_seq = buf.get_u64();
    let flags = buf.get_u8();
    if flags & !(FLAG_RETRANSMISSION | CLASS_MASK) != 0 {
        return Err(OverlayError::Malformed("unknown data flags"));
    }
    let retransmission = flags & FLAG_RETRANSMISSION != 0;
    let class = SlaClass::from_bits((flags & CLASS_MASK) >> CLASS_SHIFT)
        .ok_or(OverlayError::Malformed("reserved sla class bits"))?;
    let mask_len = buf.get_u16() as usize;
    if buf.remaining() < mask_len + 2 {
        return Err(OverlayError::Malformed("short mask"));
    }
    let mask = materialize.take(datagram, datagram.len() - buf.remaining(), mask_len);
    buf.advance(mask_len);
    let payload_len = buf.get_u16() as usize;
    if buf.remaining() < payload_len {
        return Err(OverlayError::Malformed("short payload"));
    }
    let payload = materialize.take(datagram, datagram.len() - buf.remaining(), payload_len);
    buf.advance(payload_len);
    Ok(DataPacket {
        flow,
        flow_seq,
        sent_at,
        deadline,
        link_seq,
        retransmission,
        class,
        mask,
        payload,
    })
}

fn decode_with(datagram: &[u8], materialize: Materialize<'_>) -> Result<Envelope, OverlayError> {
    let mut buf = datagram;
    if buf.remaining() < PRELUDE_LEN {
        return Err(OverlayError::Malformed("short prelude"));
    }
    if buf.get_u8() != MAGIC {
        return Err(OverlayError::Malformed("bad magic"));
    }
    if buf.get_u8() != VERSION {
        return Err(OverlayError::Malformed("unsupported version"));
    }
    let msg_type = buf.get_u8();
    let from = NodeId::new(buf.get_u32());
    let claimed = buf.get_u32();
    if claimed != checksum(datagram) {
        return Err(OverlayError::Malformed("bad checksum"));
    }
    let message = match msg_type {
        T_DATA => Message::Data(decode_data_body(datagram, &mut buf, &materialize)?),
        T_DATA_BATCH => {
            if buf.remaining() < 2 {
                return Err(OverlayError::Malformed("short batch"));
            }
            let count = buf.get_u16() as usize;
            if count == 0 {
                return Err(OverlayError::Malformed("empty batch"));
            }
            if buf.remaining() < count * DATA_FIXED_LEN {
                return Err(OverlayError::Malformed("short batch body"));
            }
            let mut packets = Vec::with_capacity(count);
            for _ in 0..count {
                packets.push(decode_data_body(datagram, &mut buf, &materialize)?);
            }
            Message::DataBatch(packets)
        }
        T_NACK => {
            if buf.remaining() < 2 {
                return Err(OverlayError::Malformed("short nack"));
            }
            let count = buf.get_u16() as usize;
            if buf.remaining() < count * 8 {
                return Err(OverlayError::Malformed("short nack list"));
            }
            let missing = (0..count).map(|_| buf.get_u64()).collect();
            Message::Nack { missing }
        }
        T_HELLO => {
            if buf.remaining() < 16 {
                return Err(OverlayError::Malformed("short hello"));
            }
            Message::Hello { seq: buf.get_u64(), sent_at: Micros::from_micros(buf.get_u64()) }
        }
        T_HELLO_ACK => {
            if buf.remaining() < 16 {
                return Err(OverlayError::Malformed("short hello ack"));
            }
            Message::HelloAck {
                echo_seq: buf.get_u64(),
                echo_sent_at: Micros::from_micros(buf.get_u64()),
            }
        }
        T_LINK_STATE => {
            if buf.remaining() < 22 {
                return Err(OverlayError::Malformed("short link state"));
            }
            let origin = NodeId::new(buf.get_u32());
            let epoch = buf.get_u64();
            let seq = buf.get_u64();
            let count = buf.get_u16() as usize;
            if buf.remaining() < count * 13 {
                return Err(OverlayError::Malformed("short link state entries"));
            }
            let entries = (0..count)
                .map(|_| LinkStateEntry {
                    edge: EdgeId::new(buf.get_u32()),
                    loss: buf.get_f32(),
                    extra_latency_us: buf.get_u32(),
                    down: buf.get_u8() & FLAG_LINK_DOWN != 0,
                })
                .collect();
            Message::LinkState(LinkStateUpdate { origin, epoch, seq, entries })
        }
        T_LSA_ACK => {
            if buf.remaining() < 20 {
                return Err(OverlayError::Malformed("short lsa ack"));
            }
            Message::LsaAck {
                origin: NodeId::new(buf.get_u32()),
                epoch: buf.get_u64(),
                seq: buf.get_u64(),
            }
        }
        T_DIGEST => {
            if buf.remaining() < 2 {
                return Err(OverlayError::Malformed("short digest"));
            }
            let count = buf.get_u16() as usize;
            if buf.remaining() < count * 20 {
                return Err(OverlayError::Malformed("short digest entries"));
            }
            let entries = (0..count)
                .map(|_| DigestEntry {
                    origin: NodeId::new(buf.get_u32()),
                    epoch: buf.get_u64(),
                    seq: buf.get_u64(),
                })
                .collect();
            Message::Digest { entries }
        }
        _ => return Err(OverlayError::Malformed("unknown message type")),
    };
    Ok(Envelope { from, message })
}

impl Envelope {
    /// Exact serialized size of this envelope, so callers can reserve
    /// buffer space once instead of growing incrementally.
    pub fn encoded_len(&self) -> usize {
        PRELUDE_LEN
            + match &self.message {
                Message::Data(d) => data_body_len(d),
                Message::DataBatch(ps) => 2 + ps.iter().map(data_body_len).sum::<usize>(),
                Message::Nack { missing } => 2 + 8 * missing.len(),
                Message::Hello { .. } | Message::HelloAck { .. } => 16,
                Message::LinkState(u) => 22 + 13 * u.entries.len(),
                Message::LsaAck { .. } => 20,
                Message::Digest { entries } => 2 + 20 * entries.len(),
            }
    }

    /// Serializes the envelope to bytes ready for a datagram.
    pub fn encode(&self) -> Bytes {
        let mut buf = Vec::with_capacity(self.encoded_len());
        self.encode_into_vec(&mut buf);
        Bytes::from(buf)
    }

    /// Appends the serialized envelope to a caller-supplied buffer
    /// (e.g. one drawn from a [`crate::pool::BufferPool`]), avoiding a
    /// fresh allocation per datagram.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.encoded_len());
        self.encode_append(buf);
    }

    /// Like [`Envelope::encode_into`] for a plain `Vec<u8>` buffer.
    pub fn encode_into_vec(&self, buf: &mut Vec<u8>) {
        buf.reserve(self.encoded_len());
        self.encode_append(buf);
    }

    fn encode_append<B: BufMut + std::ops::DerefMut<Target = [u8]>>(&self, buf: &mut B) {
        let msg_type = match &self.message {
            Message::Data(_) => T_DATA,
            Message::DataBatch(_) => T_DATA_BATCH,
            Message::Nack { .. } => T_NACK,
            Message::Hello { .. } => T_HELLO,
            Message::HelloAck { .. } => T_HELLO_ACK,
            Message::LinkState(_) => T_LINK_STATE,
            Message::LsaAck { .. } => T_LSA_ACK,
            Message::Digest { .. } => T_DIGEST,
        };
        let base = put_prelude(buf, msg_type, self.from);
        match &self.message {
            Message::Data(d) => put_data_body(buf, d, d.link_seq),
            Message::DataBatch(ps) => {
                buf.put_u16(ps.len() as u16);
                for d in ps {
                    put_data_body(buf, d, d.link_seq);
                }
            }
            Message::Nack { missing } => {
                buf.put_u16(missing.len() as u16);
                for &s in missing {
                    buf.put_u64(s);
                }
            }
            Message::Hello { seq, sent_at } => {
                buf.put_u64(*seq);
                buf.put_u64(sent_at.as_micros());
            }
            Message::HelloAck { echo_seq, echo_sent_at } => {
                buf.put_u64(*echo_seq);
                buf.put_u64(echo_sent_at.as_micros());
            }
            Message::LinkState(u) => {
                buf.put_u32(u.origin.index() as u32);
                buf.put_u64(u.epoch);
                buf.put_u64(u.seq);
                buf.put_u16(u.entries.len() as u16);
                for e in &u.entries {
                    buf.put_u32(e.edge.index() as u32);
                    buf.put_f32(e.loss);
                    buf.put_u32(e.extra_latency_us);
                    buf.put_u8(if e.down { FLAG_LINK_DOWN } else { 0 });
                }
            }
            Message::LsaAck { origin, epoch, seq } => {
                buf.put_u32(origin.index() as u32);
                buf.put_u64(*epoch);
                buf.put_u64(*seq);
            }
            Message::Digest { entries } => {
                buf.put_u16(entries.len() as u16);
                for e in entries {
                    buf.put_u32(e.origin.index() as u32);
                    buf.put_u64(e.epoch);
                    buf.put_u64(e.seq);
                }
            }
        }
        seal(buf, base);
    }

    /// Parses an envelope from a received datagram, copying mask and
    /// payload bytes out of it.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Malformed`] on truncation, bad magic, or
    /// an unknown message type.
    pub fn decode(datagram: &[u8]) -> Result<Envelope, OverlayError> {
        decode_with(datagram, Materialize::Copy)
    }

    /// Parses an envelope from a shared receive frame. Data packets'
    /// mask and payload become zero-copy slices of `frame`, so one
    /// batched receive buffer backs every packet it carried.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Malformed`] exactly as [`Envelope::decode`].
    pub fn decode_shared(frame: &Bytes) -> Result<Envelope, OverlayError> {
        decode_with(frame, Materialize::Share(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Envelope {
        Envelope {
            from: NodeId::new(3),
            message: Message::Data(DataPacket {
                flow: Flow::new(NodeId::new(0), NodeId::new(7)),
                flow_seq: 42,
                sent_at: Micros::from_micros(1_000_000),
                deadline: Micros::from_millis(65),
                link_seq: 99,
                retransmission: false,
                class: SlaClass::Surgical,
                mask: Bytes::from_static(&[0b1010_0001, 0x00, 0xff]),
                payload: Bytes::from_static(b"hello world"),
            }),
        }
    }

    #[test]
    fn data_round_trip() {
        let env = sample_data();
        let bytes = env.encode();
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn all_types_round_trip() {
        let envs = vec![
            Envelope { from: NodeId::new(1), message: Message::Nack { missing: vec![5, 6, 9] } },
            Envelope {
                from: NodeId::new(2),
                message: Message::Hello { seq: 17, sent_at: Micros::from_micros(12345) },
            },
            Envelope {
                from: NodeId::new(2),
                message: Message::HelloAck {
                    echo_seq: 17,
                    echo_sent_at: Micros::from_micros(12345),
                },
            },
            Envelope {
                from: NodeId::new(4),
                message: Message::LinkState(LinkStateUpdate {
                    origin: NodeId::new(4),
                    epoch: 1_722_000_000_000_000,
                    seq: 8,
                    entries: vec![
                        LinkStateEntry {
                            edge: EdgeId::new(12),
                            loss: 0.25,
                            extra_latency_us: 1500,
                            down: false,
                        },
                        LinkStateEntry {
                            edge: EdgeId::new(13),
                            loss: 1.0,
                            extra_latency_us: 0,
                            down: true,
                        },
                    ],
                }),
            },
            Envelope {
                from: NodeId::new(5),
                message: Message::LsaAck {
                    origin: NodeId::new(4),
                    epoch: 1_722_000_000_000_000,
                    seq: 8,
                },
            },
            Envelope { from: NodeId::new(6), message: Message::Digest { entries: vec![] } },
            Envelope {
                from: NodeId::new(6),
                message: Message::Digest {
                    entries: vec![
                        DigestEntry { origin: NodeId::new(0), epoch: 7, seq: 3 },
                        DigestEntry { origin: NodeId::new(9), epoch: u64::MAX, seq: u64::MAX },
                    ],
                },
            },
        ];
        for env in envs {
            let bytes = env.encode();
            assert_eq!(bytes.len(), env.encoded_len(), "{env:?}");
            assert_eq!(Envelope::decode(&bytes).unwrap(), env, "{env:?}");
        }
    }

    #[test]
    fn control_frame_corruption_and_truncation_are_detected() {
        let envs = [
            Envelope {
                from: NodeId::new(5),
                message: Message::LsaAck { origin: NodeId::new(4), epoch: 12, seq: 8 },
            },
            Envelope {
                from: NodeId::new(6),
                message: Message::Digest {
                    entries: vec![DigestEntry { origin: NodeId::new(1), epoch: 2, seq: 3 }],
                },
            },
        ];
        for env in envs {
            let good = env.encode();
            for cut in 0..good.len() {
                assert!(Envelope::decode(&good[..cut]).is_err(), "cut at {cut}");
            }
            for pos in 0..good.len() {
                let mut bytes = good.to_vec();
                bytes[pos] ^= 0x20;
                assert!(Envelope::decode(&bytes).is_err(), "flip at byte {pos} went undetected");
            }
        }
    }

    #[test]
    fn mask_lookup() {
        let Envelope { message: Message::Data(d), .. } = sample_data() else { unreachable!() };
        assert!(d.mask_contains(EdgeId::new(0)));
        assert!(!d.mask_contains(EdgeId::new(1)));
        assert!(d.mask_contains(EdgeId::new(5)));
        assert!(d.mask_contains(EdgeId::new(7)));
        assert!(!d.mask_contains(EdgeId::new(8)));
        assert!(d.mask_contains(EdgeId::new(16)));
        // Out of mask range.
        assert!(!d.mask_contains(EdgeId::new(100)));
    }

    #[test]
    fn expiry_uses_sent_at_plus_deadline() {
        let Envelope { message: Message::Data(d), .. } = sample_data() else { unreachable!() };
        assert!(!d.expired(Micros::from_micros(1_000_000)));
        assert!(!d.expired(Micros::from_micros(1_065_000)));
        assert!(d.expired(Micros::from_micros(1_065_001)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[0x00; 16]).is_err());
        let mut bytes = sample_data().encode().to_vec();
        bytes[2] = 99; // unknown type
        assert!(Envelope::decode(&bytes).is_err());
        // Truncations never panic and never succeed (the checksum no
        // longer matches a shortened body).
        let good = sample_data().encode();
        for cut in 0..good.len() {
            assert!(Envelope::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn single_byte_corruption_is_always_detected() {
        let good = sample_data().encode();
        for pos in 0..good.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut bytes = good.to_vec();
                bytes[pos] ^= xor;
                assert!(
                    Envelope::decode(&bytes).is_err(),
                    "flip {xor:#04x} at byte {pos} went undetected"
                );
            }
        }
    }

    fn sample_batch(n: usize) -> Envelope {
        let packets = (0..n)
            .map(|i| DataPacket {
                flow: Flow::new(NodeId::new(0), NodeId::new(7)),
                flow_seq: 100 + i as u64,
                sent_at: Micros::from_micros(2_000_000 + i as u64),
                deadline: Micros::from_millis(65),
                link_seq: 500 + i as u64,
                retransmission: i % 2 == 1,
                class: SlaClass::ALL[i % SlaClass::ALL.len()],
                mask: Bytes::from_static(&[0b0000_0011]),
                payload: Bytes::copy_from_slice(format!("payload-{i}").as_bytes()),
            })
            .collect();
        Envelope { from: NodeId::new(3), message: Message::DataBatch(packets) }
    }

    #[test]
    fn batch_round_trips_through_both_decode_paths() {
        for n in [1, 2, 7] {
            let env = sample_batch(n);
            let bytes = env.encode();
            assert_eq!(Envelope::decode(&bytes).unwrap(), env, "copying decode, n={n}");
            assert_eq!(Envelope::decode_shared(&bytes).unwrap(), env, "shared decode, n={n}");
        }
    }

    #[test]
    fn batch_matches_sequential_singles() {
        // A batch frame must carry exactly the packets that n single
        // frames would, with per-item link sequences preserved.
        let env = sample_batch(3);
        let Message::DataBatch(packets) = &env.message else { unreachable!() };
        let bytes = env.encode();
        let Envelope { message: Message::DataBatch(back), .. } = Envelope::decode(&bytes).unwrap()
        else {
            panic!("batch decodes as a batch")
        };
        assert_eq!(&back, packets);
        assert_eq!(back[0].link_seq, 500);
        assert_eq!(back[2].link_seq, 502);
    }

    #[test]
    fn batch_corruption_and_truncation_are_detected() {
        let good = sample_batch(4).encode();
        for pos in 0..good.len() {
            let mut bytes = good.to_vec();
            bytes[pos] ^= 0x40;
            assert!(Envelope::decode(&bytes).is_err(), "flip at byte {pos} went undetected");
        }
        for cut in 0..good.len() {
            assert!(Envelope::decode(&good[..cut]).is_err(), "cut at {cut}");
            assert!(Envelope::decode_shared(&good.slice(0..cut)).is_err(), "shared cut at {cut}");
        }
    }

    #[test]
    fn shared_decode_matches_copying_decode_for_all_types() {
        let mut envs = vec![sample_data(), sample_batch(2)];
        envs.push(Envelope {
            from: NodeId::new(1),
            message: Message::Nack { missing: vec![5, 6, 9] },
        });
        for env in envs {
            let bytes = env.encode();
            assert_eq!(
                Envelope::decode(&bytes).unwrap(),
                Envelope::decode_shared(&bytes).unwrap(),
                "{env:?}"
            );
        }
    }

    #[test]
    fn sla_class_round_trips_in_flags_byte() {
        for class in SlaClass::ALL {
            for retransmission in [false, true] {
                let mut env = sample_data();
                let Message::Data(d) = &mut env.message else { unreachable!() };
                d.class = class;
                d.retransmission = retransmission;
                let bytes = env.encode();
                let Envelope { message: Message::Data(back), .. } =
                    Envelope::decode(&bytes).unwrap()
                else {
                    panic!("data decodes as data")
                };
                assert_eq!(back.class, class);
                assert_eq!(back.retransmission, retransmission);
            }
        }
    }

    #[test]
    fn reserved_class_bits_are_rejected() {
        // The flags byte sits after the prelude and the five fixed u64/
        // u32 fields of the data body.
        const FLAGS_OFFSET: usize = PRELUDE_LEN + 4 + 4 + 8 + 8 + 8 + 8;
        let mut bytes = sample_data().encode().to_vec();
        bytes[FLAGS_OFFSET] = 0b0000_0110; // class bits = 3 (reserved)
        seal(&mut bytes, 0);
        assert!(Envelope::decode(&bytes).is_err(), "reserved class bits must not decode");
        bytes[FLAGS_OFFSET] = 0b0000_1000; // unknown high flag bit
        seal(&mut bytes, 0);
        assert!(Envelope::decode(&bytes).is_err(), "unknown flag bits must not decode");
    }

    #[test]
    fn encode_into_matches_encode() {
        for env in [sample_data(), sample_batch(3)] {
            let freestanding = env.encode();
            let mut buf = BytesMut::with_capacity(env.encoded_len());
            env.encode_into(&mut buf);
            assert_eq!(&freestanding[..], &buf[..]);
            let mut vec = Vec::new();
            env.encode_into_vec(&mut vec);
            assert_eq!(&freestanding[..], &vec[..]);
            assert_eq!(freestanding.len(), env.encoded_len());
        }
    }
}
