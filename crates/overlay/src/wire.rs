//! Wire format of overlay packets.
//!
//! Every datagram is an [`Envelope`]: a fixed prelude (magic, version,
//! message type, sending node, integrity checksum) followed by one
//! [`Message`]. Data packets carry the flow's dissemination graph as an
//! edge bitmask, so intermediate nodes forward without any per-flow
//! routing state — the source alone decides the routing, per the
//! paper's architecture.
//!
//! The prelude checksum (FNV-1a over every byte except the checksum
//! field itself) turns in-flight corruption into a clean decode error:
//! a corrupted datagram only ever increments the `malformed` counter,
//! it can never deliver a flipped payload or poison protocol state.

use crate::OverlayError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dg_core::Flow;
use dg_topology::{EdgeId, Micros, NodeId};

/// First byte of every overlay datagram.
pub const MAGIC: u8 = 0xDC;
/// Wire protocol version. Version 2 added the prelude checksum, the
/// link-state origin epoch, and per-entry link-down flags.
pub const VERSION: u8 = 2;
/// Maximum application payload per packet, chosen to keep the whole
/// datagram under a typical 1500-byte MTU.
pub const MAX_PAYLOAD: usize = 1200;

/// A decoded overlay datagram: who sent it, and what it is.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// The overlay node that transmitted this datagram (one hop away).
    pub from: NodeId,
    /// The message.
    pub message: Message,
}

/// The overlay message types.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// An application packet being disseminated.
    Data(DataPacket),
    /// A hop-by-hop recovery request for lost link sequence numbers.
    Nack {
        /// The link sequence numbers the receiver never saw.
        missing: Vec<u64>,
    },
    /// A link-monitoring probe.
    Hello {
        /// Monotonic hello counter on this link.
        seq: u64,
        /// Sender timestamp, echoed back for RTT measurement.
        sent_at: Micros,
    },
    /// Echo of a received hello.
    HelloAck {
        /// The echoed hello counter.
        echo_seq: u64,
        /// The echoed send timestamp.
        echo_sent_at: Micros,
    },
    /// A flooded link-state report.
    LinkState(LinkStateUpdate),
}

/// An application packet in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPacket {
    /// The flow this packet belongs to.
    pub flow: Flow,
    /// End-to-end sequence number assigned by the source.
    pub flow_seq: u64,
    /// Source send timestamp.
    pub sent_at: Micros,
    /// One-way delivery deadline (duration, not an instant).
    pub deadline: Micros,
    /// Per-link sequence number assigned by the transmitting node.
    pub link_seq: u64,
    /// True for hop-by-hop retransmissions (they are not recovered again).
    pub retransmission: bool,
    /// Dissemination-graph edge bitmask (LSB-first over dense edge ids).
    pub mask: Bytes,
    /// Application payload.
    pub payload: Bytes,
}

impl DataPacket {
    /// True when the dissemination graph includes `edge`.
    pub fn mask_contains(&self, edge: EdgeId) -> bool {
        let i = edge.index();
        self.mask.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0)
    }

    /// True when, at time `now`, this packet can no longer be delivered
    /// within its deadline.
    pub fn expired(&self, now: Micros) -> bool {
        now > self.sent_at.saturating_add(self.deadline)
    }
}

/// One edge's condition inside a link-state update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkStateEntry {
    /// The reported edge (an out-edge of the originating node).
    pub edge: EdgeId,
    /// Estimated loss rate.
    pub loss: f32,
    /// Estimated latency above baseline, in microseconds.
    pub extra_latency_us: u32,
    /// The origin has declared this link down (hello timeout): treat it
    /// as fully lossy regardless of the `loss` estimate.
    pub down: bool,
}

/// A link-state report flooded through the overlay.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStateUpdate {
    /// The node reporting its out-links.
    pub origin: NodeId,
    /// The origin's incarnation, minted at process start. A restarted
    /// node's sequence numbers reset, but its fresh (higher) epoch
    /// makes its reports newer than anything from the previous life.
    pub epoch: u64,
    /// Monotonic per-origin sequence number within one epoch.
    pub seq: u64,
    /// Conditions of the origin's out-edges.
    pub entries: Vec<LinkStateEntry>,
}

const T_DATA: u8 = 0;
const T_NACK: u8 = 1;
const T_HELLO: u8 = 2;
const T_HELLO_ACK: u8 = 3;
const T_LINK_STATE: u8 = 4;

/// Byte offset of the prelude checksum field.
const CHECKSUM_OFFSET: usize = 7;
/// Total prelude size: magic, version, type, sender, checksum.
const PRELUDE_LEN: usize = 11;
/// Bit 0 of a link-state entry's flags byte: link declared down.
const FLAG_LINK_DOWN: u8 = 0x01;

/// FNV-1a over every datagram byte except the checksum field itself.
fn checksum(datagram: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    let mut step = |byte: u8| {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    };
    for &b in &datagram[..CHECKSUM_OFFSET.min(datagram.len())] {
        step(b);
    }
    if datagram.len() > PRELUDE_LEN {
        for &b in &datagram[PRELUDE_LEN..] {
            step(b);
        }
    }
    hash
}

impl Envelope {
    /// Serializes the envelope to bytes ready for a datagram.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(MAGIC);
        buf.put_u8(VERSION);
        match &self.message {
            Message::Data(_) => buf.put_u8(T_DATA),
            Message::Nack { .. } => buf.put_u8(T_NACK),
            Message::Hello { .. } => buf.put_u8(T_HELLO),
            Message::HelloAck { .. } => buf.put_u8(T_HELLO_ACK),
            Message::LinkState(_) => buf.put_u8(T_LINK_STATE),
        }
        buf.put_u32(self.from.index() as u32);
        buf.put_u32(0); // checksum placeholder, filled below
        match &self.message {
            Message::Data(d) => {
                buf.put_u32(d.flow.source.index() as u32);
                buf.put_u32(d.flow.destination.index() as u32);
                buf.put_u64(d.flow_seq);
                buf.put_u64(d.sent_at.as_micros());
                buf.put_u64(d.deadline.as_micros());
                buf.put_u64(d.link_seq);
                buf.put_u8(u8::from(d.retransmission));
                buf.put_u16(d.mask.len() as u16);
                buf.put_slice(&d.mask);
                buf.put_u16(d.payload.len() as u16);
                buf.put_slice(&d.payload);
            }
            Message::Nack { missing } => {
                buf.put_u16(missing.len() as u16);
                for &s in missing {
                    buf.put_u64(s);
                }
            }
            Message::Hello { seq, sent_at } => {
                buf.put_u64(*seq);
                buf.put_u64(sent_at.as_micros());
            }
            Message::HelloAck { echo_seq, echo_sent_at } => {
                buf.put_u64(*echo_seq);
                buf.put_u64(echo_sent_at.as_micros());
            }
            Message::LinkState(u) => {
                buf.put_u32(u.origin.index() as u32);
                buf.put_u64(u.epoch);
                buf.put_u64(u.seq);
                buf.put_u16(u.entries.len() as u16);
                for e in &u.entries {
                    buf.put_u32(e.edge.index() as u32);
                    buf.put_f32(e.loss);
                    buf.put_u32(e.extra_latency_us);
                    buf.put_u8(if e.down { FLAG_LINK_DOWN } else { 0 });
                }
            }
        }
        let sum = checksum(&buf);
        buf[CHECKSUM_OFFSET..PRELUDE_LEN].copy_from_slice(&sum.to_be_bytes());
        buf.freeze()
    }

    /// Parses an envelope from a received datagram.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Malformed`] on truncation, bad magic, or
    /// an unknown message type.
    pub fn decode(datagram: &[u8]) -> Result<Envelope, OverlayError> {
        let mut buf = datagram;
        if buf.remaining() < PRELUDE_LEN {
            return Err(OverlayError::Malformed("short prelude"));
        }
        if buf.get_u8() != MAGIC {
            return Err(OverlayError::Malformed("bad magic"));
        }
        if buf.get_u8() != VERSION {
            return Err(OverlayError::Malformed("unsupported version"));
        }
        let msg_type = buf.get_u8();
        let from = NodeId::new(buf.get_u32());
        let claimed = buf.get_u32();
        if claimed != checksum(datagram) {
            return Err(OverlayError::Malformed("bad checksum"));
        }
        let message = match msg_type {
            T_DATA => {
                if buf.remaining() < 4 + 4 + 8 + 8 + 8 + 8 + 1 + 2 {
                    return Err(OverlayError::Malformed("short data header"));
                }
                let flow = Flow::new(NodeId::new(buf.get_u32()), NodeId::new(buf.get_u32()));
                let flow_seq = buf.get_u64();
                let sent_at = Micros::from_micros(buf.get_u64());
                let deadline = Micros::from_micros(buf.get_u64());
                let link_seq = buf.get_u64();
                let retransmission = buf.get_u8() != 0;
                let mask_len = buf.get_u16() as usize;
                if buf.remaining() < mask_len + 2 {
                    return Err(OverlayError::Malformed("short mask"));
                }
                let mask = Bytes::copy_from_slice(&buf[..mask_len]);
                buf.advance(mask_len);
                let payload_len = buf.get_u16() as usize;
                if buf.remaining() < payload_len {
                    return Err(OverlayError::Malformed("short payload"));
                }
                let payload = Bytes::copy_from_slice(&buf[..payload_len]);
                Message::Data(DataPacket {
                    flow,
                    flow_seq,
                    sent_at,
                    deadline,
                    link_seq,
                    retransmission,
                    mask,
                    payload,
                })
            }
            T_NACK => {
                if buf.remaining() < 2 {
                    return Err(OverlayError::Malformed("short nack"));
                }
                let count = buf.get_u16() as usize;
                if buf.remaining() < count * 8 {
                    return Err(OverlayError::Malformed("short nack list"));
                }
                let missing = (0..count).map(|_| buf.get_u64()).collect();
                Message::Nack { missing }
            }
            T_HELLO => {
                if buf.remaining() < 16 {
                    return Err(OverlayError::Malformed("short hello"));
                }
                Message::Hello { seq: buf.get_u64(), sent_at: Micros::from_micros(buf.get_u64()) }
            }
            T_HELLO_ACK => {
                if buf.remaining() < 16 {
                    return Err(OverlayError::Malformed("short hello ack"));
                }
                Message::HelloAck {
                    echo_seq: buf.get_u64(),
                    echo_sent_at: Micros::from_micros(buf.get_u64()),
                }
            }
            T_LINK_STATE => {
                if buf.remaining() < 22 {
                    return Err(OverlayError::Malformed("short link state"));
                }
                let origin = NodeId::new(buf.get_u32());
                let epoch = buf.get_u64();
                let seq = buf.get_u64();
                let count = buf.get_u16() as usize;
                if buf.remaining() < count * 13 {
                    return Err(OverlayError::Malformed("short link state entries"));
                }
                let entries = (0..count)
                    .map(|_| LinkStateEntry {
                        edge: EdgeId::new(buf.get_u32()),
                        loss: buf.get_f32(),
                        extra_latency_us: buf.get_u32(),
                        down: buf.get_u8() & FLAG_LINK_DOWN != 0,
                    })
                    .collect();
                Message::LinkState(LinkStateUpdate { origin, epoch, seq, entries })
            }
            _ => return Err(OverlayError::Malformed("unknown message type")),
        };
        Ok(Envelope { from, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> Envelope {
        Envelope {
            from: NodeId::new(3),
            message: Message::Data(DataPacket {
                flow: Flow::new(NodeId::new(0), NodeId::new(7)),
                flow_seq: 42,
                sent_at: Micros::from_micros(1_000_000),
                deadline: Micros::from_millis(65),
                link_seq: 99,
                retransmission: false,
                mask: Bytes::from_static(&[0b1010_0001, 0x00, 0xff]),
                payload: Bytes::from_static(b"hello world"),
            }),
        }
    }

    #[test]
    fn data_round_trip() {
        let env = sample_data();
        let bytes = env.encode();
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(env, back);
    }

    #[test]
    fn all_types_round_trip() {
        let envs = vec![
            Envelope { from: NodeId::new(1), message: Message::Nack { missing: vec![5, 6, 9] } },
            Envelope {
                from: NodeId::new(2),
                message: Message::Hello { seq: 17, sent_at: Micros::from_micros(12345) },
            },
            Envelope {
                from: NodeId::new(2),
                message: Message::HelloAck {
                    echo_seq: 17,
                    echo_sent_at: Micros::from_micros(12345),
                },
            },
            Envelope {
                from: NodeId::new(4),
                message: Message::LinkState(LinkStateUpdate {
                    origin: NodeId::new(4),
                    epoch: 1_722_000_000_000_000,
                    seq: 8,
                    entries: vec![
                        LinkStateEntry {
                            edge: EdgeId::new(12),
                            loss: 0.25,
                            extra_latency_us: 1500,
                            down: false,
                        },
                        LinkStateEntry {
                            edge: EdgeId::new(13),
                            loss: 1.0,
                            extra_latency_us: 0,
                            down: true,
                        },
                    ],
                }),
            },
        ];
        for env in envs {
            let bytes = env.encode();
            assert_eq!(Envelope::decode(&bytes).unwrap(), env, "{env:?}");
        }
    }

    #[test]
    fn mask_lookup() {
        let Envelope { message: Message::Data(d), .. } = sample_data() else { unreachable!() };
        assert!(d.mask_contains(EdgeId::new(0)));
        assert!(!d.mask_contains(EdgeId::new(1)));
        assert!(d.mask_contains(EdgeId::new(5)));
        assert!(d.mask_contains(EdgeId::new(7)));
        assert!(!d.mask_contains(EdgeId::new(8)));
        assert!(d.mask_contains(EdgeId::new(16)));
        // Out of mask range.
        assert!(!d.mask_contains(EdgeId::new(100)));
    }

    #[test]
    fn expiry_uses_sent_at_plus_deadline() {
        let Envelope { message: Message::Data(d), .. } = sample_data() else { unreachable!() };
        assert!(!d.expired(Micros::from_micros(1_000_000)));
        assert!(!d.expired(Micros::from_micros(1_065_000)));
        assert!(d.expired(Micros::from_micros(1_065_001)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[0x00; 16]).is_err());
        let mut bytes = sample_data().encode().to_vec();
        bytes[2] = 99; // unknown type
        assert!(Envelope::decode(&bytes).is_err());
        // Truncations never panic and never succeed (the checksum no
        // longer matches a shortened body).
        let good = sample_data().encode();
        for cut in 0..good.len() {
            assert!(Envelope::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn single_byte_corruption_is_always_detected() {
        let good = sample_data().encode();
        for pos in 0..good.len() {
            for xor in [0x01u8, 0x80, 0xFF] {
                let mut bytes = good.to_vec();
                bytes[pos] ^= xor;
                assert!(
                    Envelope::decode(&bytes).is_err(),
                    "flip {xor:#04x} at byte {pos} went undetected"
                );
            }
        }
    }
}
