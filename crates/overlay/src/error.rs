//! Errors of the overlay transport service.

use dg_core::CoreError;
use dg_topology::{NodeId, TopologyError};
use std::error::Error;
use std::fmt;

/// Errors produced by overlay nodes and sessions.
#[derive(Debug)]
#[non_exhaustive]
pub enum OverlayError {
    /// Socket or thread I/O failed.
    Io(std::io::Error),
    /// An underlying routing computation failed.
    Core(CoreError),
    /// A topology query failed.
    Topology(TopologyError),
    /// A packet failed to decode.
    Malformed(&'static str),
    /// The referenced node does not exist in this cluster.
    UnknownNode(NodeId),
    /// The node is shutting down.
    Shutdown,
    /// A payload exceeded the maximum datagram body.
    PayloadTooLarge {
        /// Bytes offered.
        got: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A configuration builder was given internally inconsistent knobs.
    InvalidConfig(&'static str),
    /// A node was offered to a runtime whose worker pool has been shut
    /// down (see `Runtime::shutdown`).
    RuntimeShutDown,
    /// The node refused a new sender session: it is already at its
    /// configured capacity (see `NodeConfig::sender_capacity`).
    AdmissionDenied {
        /// Sender sessions currently open on the node.
        active: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::Io(e) => write!(f, "overlay i/o failed: {e}"),
            OverlayError::Core(e) => write!(f, "{e}"),
            OverlayError::Topology(e) => write!(f, "{e}"),
            OverlayError::Malformed(what) => write!(f, "malformed packet: {what}"),
            OverlayError::UnknownNode(n) => write!(f, "unknown overlay node {n}"),
            OverlayError::Shutdown => write!(f, "overlay node is shut down"),
            OverlayError::PayloadTooLarge { got, max } => {
                write!(f, "payload too large: {got} bytes exceeds {max}")
            }
            OverlayError::InvalidConfig(rule) => write!(f, "invalid configuration: {rule}"),
            OverlayError::RuntimeShutDown => {
                write!(f, "runtime has been shut down; no new nodes accepted")
            }
            OverlayError::AdmissionDenied { active, capacity } => {
                write!(f, "admission denied: {active} senders open, capacity {capacity}")
            }
        }
    }
}

impl Error for OverlayError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OverlayError::Io(e) => Some(e),
            OverlayError::Core(e) => Some(e),
            OverlayError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OverlayError {
    fn from(e: std::io::Error) -> Self {
        OverlayError::Io(e)
    }
}

impl From<CoreError> for OverlayError {
    fn from(e: CoreError) -> Self {
        OverlayError::Core(e)
    }
}

impl From<TopologyError> for OverlayError {
    fn from(e: TopologyError) -> Self {
        OverlayError::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let io: OverlayError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
        assert!(io.source().is_some());
        assert!(OverlayError::Malformed("short header").to_string().contains("short"));
        assert!(OverlayError::PayloadTooLarge { got: 9000, max: 1200 }
            .to_string()
            .contains("9000"));
        assert!(OverlayError::Shutdown.source().is_none());
    }
}
