//! A sharded hash map for hot-path shared state.
//!
//! The overlay's delivery path touches per-flow and per-link tables on
//! every packet. A single `Mutex<HashMap>` serializes all of that
//! traffic; [`ShardedMap`] spreads keys across a fixed set of
//! independently locked shards so unrelated flows stop contending.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Number of independently locked shards. A small power of two keeps
/// the modulo cheap while comfortably exceeding the thread counts the
/// overlay runs with (rx + ship + tick + application senders).
const SHARDS: usize = 16;

/// A concurrent map split into independently locked shards.
#[derive(Debug)]
pub struct ShardedMap<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        ShardedMap { shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect() }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Inserts a value, returning the previous one if present.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard(&key).lock().insert(key, value)
    }

    /// Clones the value for `key`, if any. Locks only one shard.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Applies `f` to the value for `key` under the shard lock, or
    /// returns `None` when the key is absent. Unlike [`ShardedMap::get`]
    /// this never clones the value — the per-packet delivery path uses
    /// it to reach a receiver's channel without refcount traffic.
    pub fn with<R>(&self, key: &K, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.shard(key).lock().get(key).map(f)
    }

    /// Returns the value for `key`, inserting `make()` first if absent.
    pub fn get_or_insert_with(&self, key: &K, make: impl FnOnce() -> V) -> V {
        let mut shard = self.shard(key).lock();
        shard.entry(key.clone()).or_insert_with(make).clone()
    }

    /// Removes and returns the value for `key`, if any.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard(key).lock().remove(key)
    }

    /// Snapshots every entry. Locks shards one at a time, so the result
    /// is not a point-in-time atomic view across shards.
    pub fn entries(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock();
            out.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Default for ShardedMap<K, V> {
    fn default() -> Self {
        ShardedMap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let map: ShardedMap<u64, String> = ShardedMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert(7, "seven".into()), None);
        assert_eq!(map.insert(7, "VII".into()), Some("seven".into()));
        assert_eq!(map.get(&7), Some("VII".into()));
        assert_eq!(map.remove(&7), Some("VII".into()));
        assert_eq!(map.get(&7), None);
    }

    #[test]
    fn entries_cover_all_shards() {
        let map: ShardedMap<u64, u64> = ShardedMap::new();
        for k in 0..100 {
            map.insert(k, k * 2);
        }
        assert_eq!(map.len(), 100);
        let mut entries = map.entries();
        entries.sort_unstable();
        assert_eq!(entries.len(), 100);
        for (k, v) in entries {
            assert_eq!(v, k * 2);
        }
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let map: ShardedMap<&'static str, u32> = ShardedMap::new();
        assert_eq!(map.get_or_insert_with(&"a", || 1), 1);
        assert_eq!(map.get_or_insert_with(&"a", || 99), 1);
    }

    #[test]
    fn contended_threads_see_consistent_state() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // 8 writer threads hammer disjoint key ranges while 2 readers
        // continuously snapshot; no entry may be lost, duplicated, or
        // torn, and get_or_insert_with must initialize each key exactly
        // once even when several threads race on the same key.
        const WRITERS: u64 = 8;
        const KEYS_PER_WRITER: u64 = 500;
        let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new());
        let initializations = Arc::new(AtomicU64::new(0));

        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let map = Arc::clone(&map);
                let initializations = Arc::clone(&initializations);
                scope.spawn(move || {
                    for i in 0..KEYS_PER_WRITER {
                        let key = w * KEYS_PER_WRITER + i;
                        map.insert(key, key * 3);
                        assert_eq!(map.get(&key), Some(key * 3));
                    }
                    // All writers race on one shared key; only the
                    // first may run the initializer.
                    map.get_or_insert_with(&u64::MAX, || {
                        initializations.fetch_add(1, Ordering::SeqCst);
                        42
                    });
                });
            }
            for _ in 0..2 {
                let map = Arc::clone(&map);
                scope.spawn(move || {
                    for _ in 0..50 {
                        for (k, v) in map.entries() {
                            // Values are a pure function of the key, so
                            // a torn or corrupted entry is detectable.
                            assert!((k == u64::MAX && v == 42) || v == k.wrapping_mul(3));
                        }
                    }
                });
            }
        });

        assert_eq!(map.len() as u64, WRITERS * KEYS_PER_WRITER + 1);
        assert_eq!(initializations.load(Ordering::SeqCst), 1, "initializer ran more than once");
        assert_eq!(map.get(&u64::MAX), Some(42));
    }
}
