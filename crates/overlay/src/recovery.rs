//! Hop-by-hop recovery: per-link sequencing, gap detection, and a
//! bounded retransmission buffer.
//!
//! Every data transmission on an overlay link carries a per-link
//! sequence number. The receiving side detects gaps when a later
//! sequence arrives and NACKs the missing ones; the sending side keeps
//! recent datagrams in a ring buffer and retransmits each **once** —
//! the paper's single-retransmission discipline, which bounds the
//! latency a recovered packet can accumulate.

use std::collections::{HashSet, VecDeque};

/// Cap on how many sequences one gap can NACK; a bigger gap means the
/// link was effectively down and recovery would be useless anyway.
const MAX_NACK: u64 = 64;

/// Sender side: recent transmissions kept for possible retransmission.
///
/// Generic over the stored representation: the node keeps decoded
/// packets (cheap reference-counted clones, re-encoded only on the rare
/// NACK path) while tests may store raw frames.
#[derive(Debug)]
pub struct SendBuffer<T> {
    capacity: usize,
    entries: VecDeque<(u64, T)>,
}

impl<T> SendBuffer<T> {
    /// A buffer holding up to `capacity` recent datagrams.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "send buffer capacity must be positive");
        SendBuffer { capacity, entries: VecDeque::with_capacity(capacity) }
    }

    /// Stores a transmitted datagram under its link sequence number.
    pub fn push(&mut self, link_seq: u64, datagram: T) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((link_seq, datagram));
    }

    /// Takes the datagram for `link_seq`, removing it so a second NACK
    /// for the same sequence cannot trigger a second retransmission.
    pub fn take(&mut self, link_seq: u64) -> Option<T> {
        let idx = self.entries.iter().position(|(s, _)| *s == link_seq)?;
        self.entries.remove(idx).map(|(_, d)| d)
    }

    /// Number of buffered datagrams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Receiver side: detects sequence gaps on one incoming link.
#[derive(Debug, Default)]
pub struct GapTracker {
    next_expected: Option<u64>,
    /// Sequences already NACKed, so reordering cannot double-request.
    requested: HashSet<u64>,
}

impl GapTracker {
    /// A tracker that synchronizes on the first observed sequence
    /// (equivalent to `GapTracker::default()`).
    #[cfg(test)]
    pub fn new() -> Self {
        GapTracker::default()
    }

    /// Observes an arriving link sequence number and returns the gap of
    /// missing sequences to NACK (empty for in-order, duplicate, or
    /// retransmitted arrivals).
    pub fn observe(&mut self, link_seq: u64) -> Vec<u64> {
        let Some(expected) = self.next_expected else {
            // First packet on this link: synchronize, nothing to recover
            // (anything earlier predates our knowledge of the link).
            self.next_expected = Some(link_seq + 1);
            return Vec::new();
        };
        if link_seq < expected {
            // A retransmission or reordering; no new information.
            self.requested.remove(&link_seq);
            return Vec::new();
        }
        let gap_start = expected.max(link_seq.saturating_sub(MAX_NACK));
        let missing: Vec<u64> =
            (gap_start..link_seq).filter(|s| !self.requested.contains(s)).collect();
        self.requested.extend(missing.iter().copied());
        // Bound the memory of the requested set.
        if self.requested.len() > 4 * MAX_NACK as usize {
            let floor = link_seq.saturating_sub(2 * MAX_NACK);
            self.requested.retain(|&s| s >= floor);
        }
        self.next_expected = Some(link_seq + 1);
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn buffer_stores_and_takes_once() {
        let mut b = SendBuffer::new(4);
        assert!(b.is_empty());
        b.push(1, Bytes::from_static(b"one"));
        b.push(2, Bytes::from_static(b"two"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.take(1), Some(Bytes::from_static(b"one")));
        assert_eq!(b.take(1), None, "single retransmission only");
        assert_eq!(b.take(99), None);
    }

    #[test]
    fn buffer_evicts_oldest() {
        let mut b = SendBuffer::new(2);
        b.push(1, Bytes::from_static(b"a"));
        b.push(2, Bytes::from_static(b"b"));
        b.push(3, Bytes::from_static(b"c"));
        assert_eq!(b.take(1), None, "evicted");
        assert!(b.take(2).is_some());
        assert!(b.take(3).is_some());
    }

    #[test]
    fn tracker_synchronizes_then_detects_gaps() {
        let mut t = GapTracker::new();
        assert!(t.observe(10).is_empty(), "first packet synchronizes");
        assert!(t.observe(11).is_empty(), "in order");
        assert_eq!(t.observe(14), vec![12, 13]);
        assert!(t.observe(15).is_empty());
    }

    #[test]
    fn duplicates_and_retransmissions_do_not_renack() {
        let mut t = GapTracker::new();
        t.observe(0);
        assert_eq!(t.observe(3), vec![1, 2]);
        // The retransmission of 1 arrives late.
        assert!(t.observe(1).is_empty());
        // A later gap does not re-request 2 (already asked).
        assert_eq!(t.observe(5), vec![4]);
    }

    #[test]
    fn huge_gaps_are_capped() {
        let mut t = GapTracker::new();
        t.observe(0);
        let missing = t.observe(10_000);
        assert_eq!(missing.len() as u64, MAX_NACK);
        assert_eq!(*missing.first().unwrap(), 10_000 - MAX_NACK);
        assert_eq!(*missing.last().unwrap(), 9_999);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        SendBuffer::<Bytes>::new(0);
    }
}
