//! Hop-by-hop recovery: per-link sequencing, gap detection, and a
//! bounded retransmission buffer.
//!
//! Every data transmission on an overlay link carries a per-link
//! sequence number. The receiving side detects gaps when a later
//! sequence arrives and NACKs the missing ones; the sending side keeps
//! recent datagrams in a ring buffer and retransmits each **once** —
//! the paper's single-retransmission discipline, which bounds the
//! latency a recovered packet can accumulate.
//!
//! Two deadline-awareness refinements on top of the basic discipline:
//!
//! - The serving side consults [`retransmit_worthwhile`] before
//!   answering a NACK — a retransmission that cannot arrive inside the
//!   packet's deadline is pure cost (CASPR's observation) and is
//!   skipped (counted `retransmits_suppressed`).
//! - A NACK itself rides an unreliable datagram. If the requested
//!   sequences stay silent past a timeout, [`GapTracker::due_rerequests`]
//!   re-issues the request exactly once, so a lost NACK does not
//!   silently forfeit the recovery.

use dg_topology::Micros;
use std::collections::{HashMap, HashSet, VecDeque};

/// Cap on how many sequences one gap can NACK; a bigger gap means the
/// link was effectively down and recovery would be useless anyway.
const MAX_NACK: u64 = 64;

/// Sender side: recent transmissions kept for possible retransmission.
///
/// Generic over the stored representation: the node keeps decoded
/// packets (cheap reference-counted clones, re-encoded only on the rare
/// NACK path) while tests may store raw frames.
#[derive(Debug)]
pub struct SendBuffer<T> {
    capacity: usize,
    entries: VecDeque<(u64, T)>,
}

impl<T> SendBuffer<T> {
    /// A buffer holding up to `capacity` recent datagrams.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "send buffer capacity must be positive");
        SendBuffer { capacity, entries: VecDeque::with_capacity(capacity) }
    }

    /// Stores a transmitted datagram under its link sequence number.
    /// Sequences must be pushed in increasing order (the per-link
    /// counter guarantees it), which is what lets [`SendBuffer::take`]
    /// binary-search instead of scanning.
    pub fn push(&mut self, link_seq: u64, datagram: T) {
        debug_assert!(
            self.entries.back().is_none_or(|(s, _)| *s < link_seq),
            "link sequences must be pushed in increasing order"
        );
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((link_seq, datagram));
    }

    /// Takes the datagram for `link_seq`, removing it so a second NACK
    /// for the same sequence cannot trigger a second retransmission.
    /// Binary search over the sequence-sorted ring: O(log n) against a
    /// 2048-deep default buffer, where the old linear scan made a burst
    /// NACK O(n) per requested sequence.
    pub fn take(&mut self, link_seq: u64) -> Option<T> {
        let idx = self.entries.binary_search_by_key(&link_seq, |(s, _)| *s).ok()?;
        self.entries.remove(idx).map(|(_, d)| d)
    }

    /// Number of buffered datagrams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Receiver side: detects sequence gaps on one incoming link.
#[derive(Debug, Default)]
pub struct GapTracker {
    next_expected: Option<u64>,
    /// Sequences already NACKed, so reordering cannot double-request.
    requested: HashSet<u64>,
    /// Outstanding NACKed sequences, by request time, awaiting either
    /// the retransmission or a timed re-request.
    pending: HashMap<u64, Micros>,
    /// Sequences already re-requested once; a still-silent sequence is
    /// then abandoned (the deadline could not survive a third round
    /// trip anyway).
    rerequested: HashSet<u64>,
}

impl GapTracker {
    /// A tracker that synchronizes on the first observed sequence
    /// (equivalent to `GapTracker::default()`).
    pub fn new() -> Self {
        GapTracker::default()
    }

    /// Observes an arriving link sequence number at local time `now`
    /// and returns the gap of missing sequences to NACK (empty for
    /// in-order, duplicate, or retransmitted arrivals).
    pub fn observe(&mut self, link_seq: u64, now: Micros) -> Vec<u64> {
        let Some(expected) = self.next_expected else {
            // First packet on this link: synchronize, nothing to recover
            // (anything earlier predates our knowledge of the link).
            self.next_expected = Some(link_seq + 1);
            return Vec::new();
        };
        if link_seq < expected {
            // A retransmission or reordering; no new information, and
            // the sequence is no longer outstanding.
            self.requested.remove(&link_seq);
            self.pending.remove(&link_seq);
            self.rerequested.remove(&link_seq);
            return Vec::new();
        }
        let gap_start = expected.max(link_seq.saturating_sub(MAX_NACK));
        let missing: Vec<u64> =
            (gap_start..link_seq).filter(|s| !self.requested.contains(s)).collect();
        self.requested.extend(missing.iter().copied());
        for &s in &missing {
            self.pending.insert(s, now);
        }
        // Bound the memory of the bookkeeping sets.
        if self.requested.len() > 4 * MAX_NACK as usize {
            let floor = link_seq.saturating_sub(2 * MAX_NACK);
            self.requested.retain(|&s| s >= floor);
            self.pending.retain(|&s, _| s >= floor);
            self.rerequested.retain(|&s| s >= floor);
        }
        self.next_expected = Some(link_seq + 1);
        missing
    }

    /// Sequences NACKed at least `silence` ago that have still not
    /// arrived, each eligible for exactly one re-request (a NACK rides
    /// an unreliable datagram too). Returned sequences move to the
    /// re-requested set and are never offered again.
    pub fn due_rerequests(&mut self, now: Micros, silence: Micros) -> Vec<u64> {
        let mut due: Vec<u64> = self
            .pending
            .iter()
            .filter(|&(_, &asked_at)| now.saturating_sub(asked_at) >= silence)
            .map(|(&s, _)| s)
            .collect();
        due.sort_unstable();
        for &s in &due {
            self.pending.remove(&s);
            self.rerequested.insert(s);
        }
        due
    }

    /// Outstanding NACKed sequences awaiting retransmission or
    /// re-request (bookkeeping-bound diagnostics).
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// Whether retransmitting a packet can still beat its deadline.
///
/// The packet was stamped `sent_at` at its source with a one-way
/// `deadline` budget; the retransmission costs (at least) half the
/// link's smoothed RTT to reach the NACKing neighbour, plus whatever
/// downstream hops remain. If even the optimistic bound
/// `now + rtt/2 > sent_at + deadline` fails, the copy would arrive
/// expired and be dropped on arrival — sending it is pure cost, so the
/// serving side skips it (counted `retransmits_suppressed`). With no
/// RTT estimate yet the check degrades to plain expiry.
pub fn retransmit_worthwhile(
    sent_at: Micros,
    deadline: Micros,
    now: Micros,
    rtt: Option<Micros>,
) -> bool {
    let hop = rtt.map_or(Micros::ZERO, |r| Micros::from_micros(r.as_micros() / 2));
    now.saturating_add(hop) <= sent_at.saturating_add(deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn buffer_stores_and_takes_once() {
        let mut b = SendBuffer::new(4);
        assert!(b.is_empty());
        b.push(1, Bytes::from_static(b"one"));
        b.push(2, Bytes::from_static(b"two"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.take(1), Some(Bytes::from_static(b"one")));
        assert_eq!(b.take(1), None, "single retransmission only");
        assert_eq!(b.take(99), None);
    }

    #[test]
    fn buffer_evicts_oldest() {
        let mut b = SendBuffer::new(2);
        b.push(1, Bytes::from_static(b"a"));
        b.push(2, Bytes::from_static(b"b"));
        b.push(3, Bytes::from_static(b"c"));
        assert_eq!(b.take(1), None, "evicted");
        assert!(b.take(2).is_some());
        assert!(b.take(3).is_some());
    }

    #[test]
    fn tracker_synchronizes_then_detects_gaps() {
        let mut t = GapTracker::new();
        assert!(t.observe(10, Micros::ZERO).is_empty(), "first packet synchronizes");
        assert!(t.observe(11, Micros::ZERO).is_empty(), "in order");
        assert_eq!(t.observe(14, Micros::ZERO), vec![12, 13]);
        assert!(t.observe(15, Micros::ZERO).is_empty());
    }

    #[test]
    fn duplicates_and_retransmissions_do_not_renack() {
        let mut t = GapTracker::new();
        t.observe(0, Micros::ZERO);
        assert_eq!(t.observe(3, Micros::ZERO), vec![1, 2]);
        // The retransmission of 1 arrives late.
        assert!(t.observe(1, Micros::ZERO).is_empty());
        // A later gap does not re-request 2 (already asked).
        assert_eq!(t.observe(5, Micros::ZERO), vec![4]);
    }

    #[test]
    fn huge_gaps_are_capped() {
        let mut t = GapTracker::new();
        t.observe(0, Micros::ZERO);
        let missing = t.observe(10_000, Micros::ZERO);
        assert_eq!(missing.len() as u64, MAX_NACK);
        assert_eq!(*missing.first().unwrap(), 10_000 - MAX_NACK);
        assert_eq!(*missing.last().unwrap(), 9_999);
    }

    #[test]
    fn silent_nacks_are_rerequested_exactly_once() {
        let mut t = GapTracker::new();
        let silence = Micros::from_millis(250);
        t.observe(0, Micros::ZERO);
        assert_eq!(t.observe(3, Micros::from_millis(10)), vec![1, 2]);
        assert_eq!(t.outstanding(), 2);
        // Too early: nothing is due yet.
        assert!(t.due_rerequests(Micros::from_millis(100), silence).is_empty());
        // Sequence 1's retransmission lands; it is no longer pending.
        assert!(t.observe(1, Micros::from_millis(150)).is_empty());
        assert_eq!(t.outstanding(), 1);
        // Past the silence horizon, 2 is re-requested — once.
        assert_eq!(t.due_rerequests(Micros::from_millis(300), silence), vec![2]);
        assert!(t.due_rerequests(Micros::from_millis(600), silence).is_empty());
        assert_eq!(t.outstanding(), 0);
        // A late arrival of 2 is still passed through harmlessly.
        assert!(t.observe(2, Micros::from_millis(700)).is_empty());
    }

    #[test]
    fn rerequest_bookkeeping_is_bounded() {
        let mut t = GapTracker::new();
        t.observe(0, Micros::ZERO);
        // Many separated gaps, never recovered, never re-requested.
        for i in 1..500u64 {
            t.observe(i * 2, Micros::from_micros(i));
        }
        assert!(
            t.outstanding() <= 4 * MAX_NACK as usize,
            "pending set grew to {}",
            t.outstanding()
        );
    }

    #[test]
    fn worthwhile_weighs_remaining_budget_against_link_rtt() {
        let sent = Micros::from_secs(1);
        let deadline = Micros::from_millis(65);
        // Plenty of slack.
        assert!(retransmit_worthwhile(sent, deadline, Micros::from_millis(1_020), None));
        assert!(retransmit_worthwhile(
            sent,
            deadline,
            Micros::from_millis(1_020),
            Some(Micros::from_millis(20))
        ));
        // The budget expires in 5 ms but the hop alone costs 10 ms.
        assert!(!retransmit_worthwhile(
            sent,
            deadline,
            Micros::from_millis(1_060),
            Some(Micros::from_millis(20))
        ));
        // Without an RTT estimate the check degrades to plain expiry.
        assert!(retransmit_worthwhile(sent, deadline, Micros::from_millis(1_065), None));
        assert!(!retransmit_worthwhile(sent, deadline, Micros::from_millis(1_066), None));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        SendBuffer::<Bytes>::new(0);
    }

    #[test]
    fn take_binary_search_finds_wrapped_entries() {
        // Exercise take() after the ring has wrapped (pop_front +
        // push_back), where the deque's internal layout is split.
        let mut b = SendBuffer::new(8);
        for seq in 0..20u64 {
            b.push(seq, Bytes::from(seq.to_be_bytes().to_vec()));
        }
        assert_eq!(b.len(), 8);
        assert_eq!(b.take(11), None, "evicted");
        for seq in (12..20).rev() {
            assert!(b.take(seq).is_some(), "seq {seq} present");
            assert!(b.take(seq).is_none(), "seq {seq} single-shot");
        }
        assert!(b.is_empty());
    }
}
