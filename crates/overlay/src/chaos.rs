//! Seeded chaos schedules: scripted fault storms against a [`Cluster`].
//!
//! A [`ChaosSchedule`] is a time-ordered list of fault events — link
//! impairments and heals, node-wide impairments, node crashes and
//! restarts — replayed against a running cluster by a [`ChaosRunner`].
//! Schedules are plain serde data (loadable from JSON for the `dg-node`
//! CLI) and can be generated deterministically from a seed, so a chaos
//! soak is reproducible: the same seed yields the same storm.

use crate::cluster::Cluster;
use crate::fault::{splitmix64, unit, BurstLoss, LinkFault};
use crate::metrics::NodeThread;
use crate::OverlayError;
use dg_topology::{EdgeId, Graph, Micros, NodeId};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One fault-injection action against the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChaosAction {
    /// Impair one directed edge (loss, burst, jitter, reorder,
    /// duplication, corruption, or blackhole); the fault's delay
    /// composes on top of the emulated propagation delay.
    InjectEdge {
        /// The directed edge to impair.
        edge: EdgeId,
        /// The impairment to apply.
        fault: LinkFault,
    },
    /// Restore one directed edge to its emulated baseline.
    HealEdge {
        /// The edge to heal.
        edge: EdgeId,
    },
    /// Impair every link incident to a node (both directions) — the
    /// paper's "problem around a node".
    ImpairNode {
        /// The node whose incident links are impaired.
        node: NodeId,
        /// The impairment applied to each incident link.
        fault: LinkFault,
    },
    /// Restore every link incident to a node to its baseline.
    HealNode {
        /// The node to heal.
        node: NodeId,
    },
    /// Stop a node's daemon entirely; peers discover the death through
    /// hello silence. A no-op if the node is already down.
    CrashNode {
        /// The node to crash.
        node: NodeId,
    },
    /// Restart a previously crashed node on its original port. A no-op
    /// if the node is alive.
    RestartNode {
        /// The node to restart.
        node: NodeId,
    },
    /// Make one of a node's protocol threads panic; its supervisor
    /// catches the panic, journals it, and restarts the thread. A
    /// no-op if the node is crashed.
    PanicThread {
        /// The node whose thread panics.
        node: NodeId,
        /// Which protocol thread to crash.
        thread: NodeThread,
    },
    /// Flood a node's outbound data queue with synthetic shipments
    /// that evaporate after `dwell_ms` — deterministic overload
    /// pressure that exercises the class shed bands and the
    /// redundancy-downgrade state machine without touching the wire.
    /// A no-op if the node is crashed.
    Overload {
        /// The node to pressure.
        node: NodeId,
        /// Synthetic shipments injected into the outbound queue.
        shipments: usize,
        /// How long the pressure dwells before evaporating.
        dwell_ms: u64,
    },
}

/// A [`ChaosAction`] scheduled at an offset from the start of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// When the action fires, in milliseconds after the run starts.
    pub at_ms: u64,
    /// What happens.
    pub action: ChaosAction,
}

/// Shape parameters for [`ChaosSchedule::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosProfile {
    /// Total schedule span; every heal and restart lands inside it.
    pub duration_ms: u64,
    /// Number of link-impairment episodes (each paired with a heal).
    pub link_events: usize,
    /// Number of crash/restart cycles.
    pub crashes: usize,
    /// Longest an impairment dwells before its heal.
    pub max_dwell_ms: u64,
    /// Quiet tail with no active fault, so delivery can recover before
    /// the run ends.
    pub settle_ms: u64,
    /// Number of overload episodes (synthetic queue-pressure floods
    /// against random nodes). Defaults to zero so existing profiles —
    /// and their serialized JSON — keep their exact storms.
    #[serde(default)]
    pub overload_events: usize,
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile {
            duration_ms: 4_000,
            link_events: 6,
            crashes: 1,
            max_dwell_ms: 800,
            settle_ms: 1_500,
            overload_events: 0,
        }
    }
}

/// A reproducible storm of fault events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosSchedule {
    /// The seed the schedule was generated from (zero for hand-written
    /// schedules); informational.
    pub seed: u64,
    /// The events, not necessarily sorted; [`ChaosRunner`] sorts by
    /// `at_ms` (ties keep list order).
    pub events: Vec<ChaosEvent>,
}

impl ChaosSchedule {
    /// Generates a deterministic schedule for a topology with
    /// `edge_count` directed edges and `node_count` nodes: every
    /// impairment is healed and every crash restarted within the
    /// profile's active window, leaving `settle_ms` of quiet tail.
    /// Nodes in `protected` (flow endpoints, say) are never crashed.
    ///
    /// The same `(seed, counts, profile)` always yields the same
    /// schedule.
    pub fn generate(
        seed: u64,
        edge_count: usize,
        node_count: usize,
        protected: &[NodeId],
        profile: &ChaosProfile,
    ) -> ChaosSchedule {
        let mut rng = seed ^ 0xC4A0_5CA7_E150_11ED;
        let active_ms = profile.duration_ms.saturating_sub(profile.settle_ms).max(1);
        let mut events = Vec::new();
        for _ in 0..profile.link_events {
            let edge = EdgeId::new((splitmix64(&mut rng) % edge_count.max(1) as u64) as u32);
            let fault = random_fault(&mut rng);
            let start = splitmix64(&mut rng) % active_ms;
            let dwell = 1 + splitmix64(&mut rng) % profile.max_dwell_ms.max(1);
            let heal_at = (start + dwell).min(active_ms);
            events
                .push(ChaosEvent { at_ms: start, action: ChaosAction::InjectEdge { edge, fault } });
            events.push(ChaosEvent { at_ms: heal_at, action: ChaosAction::HealEdge { edge } });
        }
        let crashable: Vec<NodeId> =
            (0..node_count as u32).map(NodeId::new).filter(|n| !protected.contains(n)).collect();
        if !crashable.is_empty() {
            for _ in 0..profile.crashes {
                let node = crashable[(splitmix64(&mut rng) % crashable.len() as u64) as usize];
                let start = splitmix64(&mut rng) % active_ms;
                let dwell = 1 + splitmix64(&mut rng) % profile.max_dwell_ms.max(1);
                let back_at = (start + dwell).min(active_ms);
                events.push(ChaosEvent { at_ms: start, action: ChaosAction::CrashNode { node } });
                events
                    .push(ChaosEvent { at_ms: back_at, action: ChaosAction::RestartNode { node } });
            }
        }
        for _ in 0..profile.overload_events {
            let node = NodeId::new((splitmix64(&mut rng) % node_count.max(1) as u64) as u32);
            let start = splitmix64(&mut rng) % active_ms;
            let dwell_ms = 1 + splitmix64(&mut rng) % profile.max_dwell_ms.max(1);
            // Enough pressure to blow well past any reasonable queue
            // bound, scaled by the seed for variety.
            let shipments = 256 + (splitmix64(&mut rng) % 768) as usize;
            events.push(ChaosEvent {
                at_ms: start,
                action: ChaosAction::Overload { node, shipments, dwell_ms },
            });
        }
        ChaosSchedule { seed, events }
    }

    /// Parses a schedule from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<ChaosSchedule, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the schedule to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schedule serializes")
    }

    /// The fire time of the last event, in milliseconds (zero for an
    /// empty schedule). Deployment harnesses size their run windows
    /// off this.
    pub fn end_ms(&self) -> u64 {
        self.events.iter().map(|e| e.at_ms).max().unwrap_or(0)
    }

    /// The same schedule with every event delayed by `offset_ms` —
    /// how a harness aligns a schedule authored relative to "chaos
    /// starts" onto a run that needs a convergence warm-up first.
    pub fn shifted(&self, offset_ms: u64) -> ChaosSchedule {
        let events = self
            .events
            .iter()
            .map(|e| ChaosEvent {
                at_ms: e.at_ms.saturating_add(offset_ms),
                action: e.action.clone(),
            })
            .collect();
        ChaosSchedule { seed: self.seed, events }
    }

    /// The schedule as seen by a process that joins `elapsed_ms` into
    /// the run (a restarted daemon): events already in the past are
    /// dropped, the rest keep their absolute position by firing
    /// `elapsed_ms` earlier on the newcomer's own clock.
    pub fn rebased(&self, elapsed_ms: u64) -> ChaosSchedule {
        let events = self
            .events
            .iter()
            .filter(|e| e.at_ms >= elapsed_ms)
            .map(|e| ChaosEvent { at_ms: e.at_ms - elapsed_ms, action: e.action.clone() })
            .collect();
        ChaosSchedule { seed: self.seed, events }
    }

    /// Just the process-level events — crashes and restarts, sorted by
    /// fire time. A multi-process harness executes these itself (kill
    /// and respawn the daemon); they are exactly the events
    /// [`ChaosSchedule::shard_for_node`] excludes.
    pub fn process_events(&self) -> Vec<ChaosEvent> {
        let mut events: Vec<ChaosEvent> = self
            .events
            .iter()
            .filter(|e| {
                matches!(e.action, ChaosAction::CrashNode { .. } | ChaosAction::RestartNode { .. })
            })
            .cloned()
            .collect();
        events.sort_by_key(|e| e.at_ms);
        events
    }

    /// The slice of this schedule one daemon can enact on itself — the
    /// per-node `--chaos-json` file a multi-process harness distributes.
    ///
    /// A standalone daemon controls only its own *out*-links, so
    /// cluster-wide actions lower to that vantage point:
    ///
    /// - edge events survive where the edge's source is `me` (edges
    ///   out of range for the topology are dropped rather than trusted);
    /// - `ImpairNode`/`HealNode` against `me` survive as-is (the daemon
    ///   impairs all of its out-links), and against a *neighbour* they
    ///   lower to edge events on the `me → node` edge — so the union of
    ///   every daemon's shard reproduces the cluster semantics of
    ///   impairing both directions of every incident link;
    /// - thread panics and overloads survive where they name `me`;
    /// - crashes and restarts are excluded entirely: killing a process
    ///   is the harness's job (see [`ChaosSchedule::process_events`]),
    ///   not the victim's.
    pub fn shard_for_node(&self, graph: &Graph, me: NodeId) -> ChaosSchedule {
        let edge_to =
            |node: NodeId| graph.out_edges(me).iter().copied().find(|&e| graph.edge(e).dst == node);
        let mut events = Vec::new();
        for event in &self.events {
            let lowered = match event.action {
                ChaosAction::InjectEdge { edge, fault } => (edge.index() < graph.edge_count()
                    && graph.edge(edge).src == me)
                    .then_some(ChaosAction::InjectEdge { edge, fault }),
                ChaosAction::HealEdge { edge } => (edge.index() < graph.edge_count()
                    && graph.edge(edge).src == me)
                    .then_some(ChaosAction::HealEdge { edge }),
                ChaosAction::ImpairNode { node, fault } => {
                    if node == me {
                        Some(ChaosAction::ImpairNode { node, fault })
                    } else {
                        edge_to(node).map(|edge| ChaosAction::InjectEdge { edge, fault })
                    }
                }
                ChaosAction::HealNode { node } => {
                    if node == me {
                        Some(ChaosAction::HealNode { node })
                    } else {
                        edge_to(node).map(|edge| ChaosAction::HealEdge { edge })
                    }
                }
                ChaosAction::CrashNode { .. } | ChaosAction::RestartNode { .. } => None,
                ChaosAction::PanicThread { node, thread } => {
                    (node == me).then_some(ChaosAction::PanicThread { node, thread })
                }
                ChaosAction::Overload { node, shipments, dwell_ms } => {
                    (node == me).then_some(ChaosAction::Overload { node, shipments, dwell_ms })
                }
            };
            if let Some(action) = lowered {
                events.push(ChaosEvent { at_ms: event.at_ms, action });
            }
        }
        events.sort_by_key(|e| e.at_ms);
        ChaosSchedule { seed: self.seed, events }
    }
}

/// Draws one impairment, cycling through the model's failure modes so a
/// generated storm exercises all of them.
fn random_fault(rng: &mut u64) -> LinkFault {
    let delay = Micros::from_millis(splitmix64(rng) % 8);
    match splitmix64(rng) % 6 {
        0 => LinkFault { loss: 0.05 + 0.35 * unit(rng), delay, ..LinkFault::default() },
        1 => LinkFault {
            burst: Some(BurstLoss {
                p_enter: 0.05 + 0.1 * unit(rng),
                p_exit: 0.2 + 0.3 * unit(rng),
                good_loss: 0.01,
                bad_loss: 0.6 + 0.4 * unit(rng),
            }),
            delay,
            ..LinkFault::default()
        },
        2 => LinkFault {
            jitter: Micros::from_millis(1 + splitmix64(rng) % 5),
            reorder: 0.1 + 0.3 * unit(rng),
            delay,
            ..LinkFault::default()
        },
        3 => LinkFault { duplicate: 0.05 + 0.2 * unit(rng), delay, ..LinkFault::default() },
        4 => LinkFault { corrupt: 0.05 + 0.2 * unit(rng), delay, ..LinkFault::default() },
        _ => LinkFault { blackhole: true, ..LinkFault::default() },
    }
}

/// Replays a [`ChaosSchedule`] against a cluster.
///
/// Poll-driven: the caller owns the clock and calls
/// [`ChaosRunner::poll`] with the elapsed run time; every event whose
/// `at_ms` has passed is applied, in order. This keeps the runner free
/// of threads and lets tests drive it from their own pacing loop.
#[derive(Debug)]
pub struct ChaosRunner {
    events: Vec<ChaosEvent>,
    next: usize,
}

impl ChaosRunner {
    /// A runner over `schedule`, sorted by fire time.
    pub fn new(schedule: &ChaosSchedule) -> ChaosRunner {
        let mut events = schedule.events.clone();
        events.sort_by_key(|e| e.at_ms);
        ChaosRunner { events, next: 0 }
    }

    /// Applies every event due at `elapsed`; returns how many fired.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::Io`] when a node restart cannot re-bind
    /// its port; earlier events in the batch stay applied.
    pub fn poll(
        &mut self,
        cluster: &mut Cluster,
        elapsed: Duration,
    ) -> Result<usize, OverlayError> {
        let now_ms = elapsed.as_millis() as u64;
        let mut fired = 0;
        while self.next < self.events.len() && self.events[self.next].at_ms <= now_ms {
            let event = self.events[self.next].clone();
            self.next += 1;
            fired += 1;
            apply(cluster, &event.action)?;
        }
        Ok(fired)
    }

    /// Milliseconds until the next unfired event, if any.
    pub fn next_due_ms(&self) -> Option<u64> {
        self.events.get(self.next).map(|e| e.at_ms)
    }

    /// True when every event has fired.
    pub fn finished(&self) -> bool {
        self.next >= self.events.len()
    }
}

/// Applies one action to the cluster. Crash/restart of an
/// already-dead/alive node is a no-op, so schedules compose safely.
fn apply(cluster: &mut Cluster, action: &ChaosAction) -> Result<(), OverlayError> {
    match *action {
        ChaosAction::InjectEdge { edge, fault } => cluster.set_link_impairment(edge, fault),
        ChaosAction::HealEdge { edge } => cluster.clear_link_fault(edge),
        ChaosAction::ImpairNode { node, fault } => {
            for edge in incident_edges(cluster, node) {
                cluster.set_link_impairment(edge, fault);
            }
        }
        ChaosAction::HealNode { node } => {
            for edge in incident_edges(cluster, node) {
                cluster.clear_link_fault(edge);
            }
        }
        ChaosAction::CrashNode { node } => {
            if cluster.is_alive(node) {
                cluster.kill_node(node);
            }
        }
        ChaosAction::RestartNode { node } => {
            if !cluster.is_alive(node) {
                cluster.restart_node(node)?;
            }
        }
        ChaosAction::PanicThread { node, thread } => cluster.panic_thread(node, thread),
        ChaosAction::Overload { node, shipments, dwell_ms } => {
            cluster.inject_overload(node, shipments, Duration::from_millis(dwell_ms));
        }
    }
    Ok(())
}

fn incident_edges(cluster: &Cluster, node: NodeId) -> Vec<EdgeId> {
    let graph = cluster.graph();
    graph.out_edges(node).iter().chain(graph.in_edges(node)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let profile = ChaosProfile::default();
        let a = ChaosSchedule::generate(42, 38, 12, &[NodeId::new(0)], &profile);
        let b = ChaosSchedule::generate(42, 38, 12, &[NodeId::new(0)], &profile);
        assert_eq!(a, b);
        let c = ChaosSchedule::generate(43, 38, 12, &[NodeId::new(0)], &profile);
        assert_ne!(a, c, "different seeds give different storms");
    }

    #[test]
    fn every_injection_is_healed_inside_the_active_window() {
        let profile = ChaosProfile::default();
        let schedule = ChaosSchedule::generate(7, 38, 12, &[], &profile);
        let active = profile.duration_ms - profile.settle_ms;
        let mut open_edges = std::collections::HashSet::new();
        let mut down_nodes = std::collections::HashSet::new();
        let mut events = schedule.events.clone();
        events.sort_by_key(|e| e.at_ms);
        for event in &events {
            assert!(event.at_ms <= active, "event past the active window");
            match &event.action {
                ChaosAction::InjectEdge { edge, .. } => {
                    open_edges.insert(*edge);
                }
                ChaosAction::HealEdge { edge } => {
                    open_edges.remove(edge);
                }
                ChaosAction::CrashNode { node } => {
                    down_nodes.insert(*node);
                }
                ChaosAction::RestartNode { node } => {
                    down_nodes.remove(node);
                }
                _ => {}
            }
        }
        assert!(open_edges.is_empty(), "unhealed edges: {open_edges:?}");
        assert!(down_nodes.is_empty(), "unrestarted nodes: {down_nodes:?}");
    }

    #[test]
    fn protected_nodes_are_never_crashed() {
        let profile = ChaosProfile { crashes: 8, ..ChaosProfile::default() };
        let protected: Vec<NodeId> = (0..10).map(NodeId::new).collect();
        let schedule = ChaosSchedule::generate(99, 38, 12, &protected, &profile);
        for event in &schedule.events {
            if let ChaosAction::CrashNode { node } = event.action {
                assert!(!protected.contains(&node), "crashed a protected node");
            }
        }
    }

    #[test]
    fn schedules_round_trip_through_json() {
        let schedule = ChaosSchedule {
            seed: 5,
            events: vec![
                ChaosEvent {
                    at_ms: 100,
                    action: ChaosAction::InjectEdge {
                        edge: EdgeId::new(3),
                        fault: LinkFault { loss: 0.5, blackhole: true, ..LinkFault::default() },
                    },
                },
                ChaosEvent {
                    at_ms: 900,
                    action: ChaosAction::RestartNode { node: NodeId::new(4) },
                },
            ],
        };
        let parsed = ChaosSchedule::from_json(&schedule.to_json()).unwrap();
        assert_eq!(parsed, schedule);
    }

    #[test]
    fn shards_cover_the_cluster_semantics_and_drop_process_events() {
        let graph = dg_topology::presets::north_america_12();
        let nyc = graph.node_by_name("NYC").unwrap();
        let den = graph.node_by_name("DEN").unwrap();
        let nyc_out = graph.out_edges(nyc)[0];
        let fault = LinkFault { loss: 0.5, ..LinkFault::default() };
        let schedule = ChaosSchedule {
            seed: 1,
            events: vec![
                ChaosEvent { at_ms: 10, action: ChaosAction::InjectEdge { edge: nyc_out, fault } },
                ChaosEvent { at_ms: 20, action: ChaosAction::ImpairNode { node: den, fault } },
                ChaosEvent { at_ms: 30, action: ChaosAction::HealNode { node: den } },
                ChaosEvent { at_ms: 40, action: ChaosAction::CrashNode { node: den } },
                ChaosEvent { at_ms: 50, action: ChaosAction::RestartNode { node: den } },
                ChaosEvent { at_ms: 60, action: ChaosAction::HealEdge { edge: nyc_out } },
            ],
        };

        // Process-level events are the harness's, never a daemon's.
        let process: Vec<_> = schedule.process_events();
        assert_eq!(process.len(), 2);
        for me in graph.nodes() {
            for event in &schedule.shard_for_node(&graph, me).events {
                assert!(
                    !matches!(
                        event.action,
                        ChaosAction::CrashNode { .. } | ChaosAction::RestartNode { .. }
                    ),
                    "process event leaked into a shard"
                );
            }
        }

        // NYC's own out-edge events stay; nobody else sees them.
        let nyc_shard = schedule.shard_for_node(&graph, nyc);
        assert!(nyc_shard
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::InjectEdge { edge, .. } if edge == nyc_out)));
        let sjc = graph.node_by_name("SJC").unwrap();
        assert!(!schedule
            .shard_for_node(&graph, sjc)
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::InjectEdge { edge, .. } if edge == nyc_out)));

        // ImpairNode{DEN} lowers to: DEN impairing its own out-links,
        // plus each neighbour impairing its edge toward DEN — together
        // exactly the cluster's incident_edges (both directions).
        let den_shard = schedule.shard_for_node(&graph, den);
        assert!(den_shard
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::ImpairNode { node, .. } if node == den)));
        let mut lowered_in_edges = Vec::new();
        for me in graph.nodes() {
            if me == den {
                continue;
            }
            for event in &schedule.shard_for_node(&graph, me).events {
                if let ChaosAction::InjectEdge { edge, .. } = event.action {
                    let info = graph.edge(edge);
                    if info.dst == den {
                        assert_eq!(info.src, me, "a daemon can only impair its own out-links");
                        lowered_in_edges.push(edge);
                    }
                }
            }
        }
        lowered_in_edges.sort_by_key(|e| e.index());
        let mut expected: Vec<EdgeId> = graph.in_edges(den).to_vec();
        expected.sort_by_key(|e| e.index());
        assert_eq!(lowered_in_edges, expected, "every in-edge of DEN is covered by a neighbour");
    }

    #[test]
    fn shift_and_rebase_preserve_absolute_fire_times() {
        let schedule = ChaosSchedule {
            seed: 0,
            events: vec![
                ChaosEvent { at_ms: 100, action: ChaosAction::HealEdge { edge: EdgeId::new(0) } },
                ChaosEvent { at_ms: 400, action: ChaosAction::HealEdge { edge: EdgeId::new(1) } },
            ],
        };
        let shifted = schedule.shifted(2_000);
        assert_eq!(shifted.events[0].at_ms, 2_100);
        assert_eq!(shifted.events[1].at_ms, 2_400);

        // A daemon respawned 2.2 s into the run sees only the future
        // event, 200 ms away on its own clock — the same wall-clock
        // instant the original schedule intended.
        let rebased = shifted.rebased(2_200);
        assert_eq!(rebased.events.len(), 1);
        assert_eq!(rebased.events[0].at_ms, 200);

        assert_eq!(schedule.end_ms(), 400);
        assert_eq!(ChaosSchedule { seed: 0, events: vec![] }.end_ms(), 0);
    }

    #[test]
    fn runner_fires_events_in_time_order() {
        // Pure sequencing test: no due events before their time, all
        // fired once past the end.
        let schedule = ChaosSchedule {
            seed: 0,
            events: vec![
                ChaosEvent { at_ms: 50, action: ChaosAction::HealEdge { edge: EdgeId::new(1) } },
                ChaosEvent { at_ms: 10, action: ChaosAction::HealEdge { edge: EdgeId::new(0) } },
            ],
        };
        let runner = ChaosRunner::new(&schedule);
        assert_eq!(runner.next_due_ms(), Some(10), "events are sorted");
        assert!(!runner.finished());
    }
}
