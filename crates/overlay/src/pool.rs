//! Buffer pooling for the datagram hot path.
//!
//! Encoding a frame needs a scratch buffer; without pooling every
//! packet costs a fresh allocation (and a free once the datagram is on
//! the wire). [`BufferPool`] keeps a bounded freelist of `Vec<u8>`
//! buffers: the transmit path draws one with [`BufferPool::get`],
//! encodes into it, sends, and returns it with [`BufferPool::put`] (or
//! [`BufferPool::recycle`] when the buffer went through [`Bytes`] and
//! may be shared). Buffers keep their grown capacity, so steady-state
//! traffic allocates nothing.

use bytes::Bytes;

/// Default number of buffers a pool retains.
pub const DEFAULT_POOL_CAPACITY: usize = 64;

/// Buffers larger than this are dropped rather than pooled, so one
/// jumbo frame cannot pin memory forever.
const MAX_POOLED_CAPACITY: usize = 1 << 16;

/// A bounded freelist of reusable byte buffers.
#[derive(Debug)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool that retains at most `capacity` idle buffers.
    pub fn new(capacity: usize) -> Self {
        BufferPool { free: Vec::new(), capacity }
    }

    /// Takes a cleared buffer from the pool, or allocates a fresh one.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::new(),
        }
    }

    /// Returns a buffer to the pool. Dropped if the pool is full or the
    /// buffer grew past the pooling cap.
    pub fn put(&mut self, buf: Vec<u8>) {
        if self.free.len() < self.capacity && buf.capacity() <= MAX_POOLED_CAPACITY {
            self.free.push(buf);
        }
    }

    /// Attempts to reclaim the allocation behind `frame` back into the
    /// pool. Succeeds only when the frame is uniquely owned and
    /// untrimmed (the common case after a direct send); shared or
    /// sliced frames are simply dropped.
    pub fn recycle(&mut self, frame: Bytes) {
        if let Ok(buf) = frame.try_reclaim() {
            self.put(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        BufferPool::new(DEFAULT_POOL_CAPACITY)
    }
}

/// How many scratch vectors a [`ScratchVecPool`] retains.
const SCRATCH_POOL_CAPACITY: usize = 16;

/// Elements beyond this are truncated away before pooling so one giant
/// batch cannot pin its capacity forever.
const MAX_POOLED_ELEMENTS: usize = 4096;

/// A bounded freelist of reusable typed scratch vectors for the batch
/// send path, which otherwise allocates a fresh `Vec<DataPacket>` (and
/// a `Vec<u64>` of link sequences) per call. Elements are dropped on
/// return; only the allocation is retained.
#[derive(Debug)]
pub struct ScratchVecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> ScratchVecPool<T> {
    /// Takes an empty vector from the pool, or allocates a fresh one.
    pub fn get(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a vector to the pool, dropping its elements. Oversized
    /// vectors and overflow beyond the pool bound are simply dropped.
    pub fn put(&mut self, mut v: Vec<T>) {
        v.clear();
        if self.free.len() < SCRATCH_POOL_CAPACITY && v.capacity() <= MAX_POOLED_ELEMENTS {
            self.free.push(v);
        }
    }

    /// Number of idle vectors currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

impl<T> Default for ScratchVecPool<T> {
    fn default() -> Self {
        ScratchVecPool { free: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuses_returned_buffers() {
        let mut pool = BufferPool::new(4);
        let mut a = pool.get();
        a.extend_from_slice(&[1, 2, 3]);
        let cap = a.capacity();
        pool.put(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.get();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn bounded_and_capacity_capped() {
        let mut pool = BufferPool::new(1);
        pool.put(Vec::with_capacity(8));
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.idle(), 1, "pool keeps at most `capacity` buffers");
        let mut pool = BufferPool::new(4);
        pool.put(Vec::with_capacity(MAX_POOLED_CAPACITY * 2));
        assert_eq!(pool.idle(), 0, "oversized buffers are not pooled");
    }

    #[test]
    fn scratch_pool_reuses_allocations() {
        let mut pool: ScratchVecPool<u64> = ScratchVecPool::default();
        let mut v = pool.get();
        v.extend_from_slice(&[1, 2, 3]);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        let v = pool.get();
        assert!(v.is_empty(), "returned scratch is cleared");
        assert_eq!(v.capacity(), cap);
        let huge: Vec<u64> = Vec::with_capacity(MAX_POOLED_ELEMENTS + 1);
        pool.put(huge);
        assert_eq!(pool.idle(), 0, "oversized scratch is not pooled");
    }

    #[test]
    fn recycles_unique_frames_only() {
        let mut pool = BufferPool::new(4);
        pool.recycle(Bytes::from(vec![1u8, 2, 3]));
        assert_eq!(pool.idle(), 1);
        let shared = Bytes::from(vec![4u8, 5]);
        let _clone = shared.clone();
        pool.recycle(shared);
        assert_eq!(pool.idle(), 1, "shared frames cannot be reclaimed");
    }
}
