//! Per-flow SLA service-class plans.
//!
//! An [`SlaPlan`] is plain serde data — the `--sla-json` counterpart of
//! the chaos schedule: it names the flows a daemon or tool should open
//! sending sessions for, the [`SlaClass`] each rides in, and an
//! optional per-flow deadline override. Sites are referenced by
//! topology name, so a plan file is portable across deployments of the
//! same topology.
//!
//! ```json
//! {
//!   "flows": [
//!     { "source": "NYC", "destination": "SJC", "class": "surgical" },
//!     { "source": "NYC", "destination": "LAX", "class": "bulk",
//!       "deadline_ms": 300 }
//!   ]
//! }
//! ```

use dg_core::{Flow, ServiceRequirement, SlaClass};
use dg_topology::{Graph, Micros};
use serde::{Deserialize, Serialize};

/// One flow's service-class assignment in an [`SlaPlan`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaFlowSpec {
    /// Source site, by topology name.
    pub source: String,
    /// Destination site, by topology name.
    pub destination: String,
    /// The service class the flow rides in.
    pub class: SlaClass,
    /// Deadline override in milliseconds; omitted, the class's own
    /// budget applies (see [`SlaClass::requirement`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
}

impl SlaFlowSpec {
    /// Resolves the spec against a topology into the session
    /// parameters: the flow, its class, and its effective requirement.
    ///
    /// # Errors
    ///
    /// Returns the unknown site name when either endpoint is not in
    /// the topology.
    pub fn resolve(&self, graph: &Graph) -> Result<(Flow, SlaClass, ServiceRequirement), &str> {
        let source = graph.node_by_name(&self.source).ok_or(self.source.as_str())?;
        let destination = graph.node_by_name(&self.destination).ok_or(self.destination.as_str())?;
        let requirement = match self.deadline_ms {
            Some(ms) => ServiceRequirement::new(Micros::from_millis(ms)),
            None => self.class.requirement(),
        };
        Ok((Flow::new(source, destination), self.class, requirement))
    }
}

/// A set of per-flow class assignments (the `--sla-json` file format).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlaPlan {
    /// The flows to open, in file order.
    pub flows: Vec<SlaFlowSpec>,
}

impl SlaPlan {
    /// Parses a plan from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error on malformed input.
    pub fn from_json(json: &str) -> Result<SlaPlan, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes the plan to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serializes")
    }

    /// The specs whose flow originates at `source` (the slice a
    /// single daemon acts on).
    pub fn sourced_at<'a>(
        &'a self,
        graph: &'a Graph,
        source: dg_topology::NodeId,
    ) -> impl Iterator<Item = &'a SlaFlowSpec> {
        self.flows.iter().filter(move |s| graph.node_by_name(&s.source) == Some(source))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dg_topology::presets;

    #[test]
    fn plans_round_trip_through_json() {
        let plan = SlaPlan {
            flows: vec![
                SlaFlowSpec {
                    source: "NYC".into(),
                    destination: "SJC".into(),
                    class: SlaClass::Surgical,
                    deadline_ms: None,
                },
                SlaFlowSpec {
                    source: "NYC".into(),
                    destination: "LAX".into(),
                    class: SlaClass::Bulk,
                    deadline_ms: Some(300),
                },
            ],
        };
        let parsed = SlaPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn specs_resolve_against_the_topology() {
        let g = presets::north_america_12();
        let spec = SlaFlowSpec {
            source: "NYC".into(),
            destination: "SJC".into(),
            class: SlaClass::Timely,
            deadline_ms: None,
        };
        let (flow, class, req) = spec.resolve(&g).unwrap();
        assert_eq!(flow.source, g.node_by_name("NYC").unwrap());
        assert_eq!(class, SlaClass::Timely);
        assert_eq!(req.deadline, SlaClass::Timely.requirement().deadline);

        let override_spec = SlaFlowSpec { deadline_ms: Some(42), ..spec.clone() };
        let (_, _, req) = override_spec.resolve(&g).unwrap();
        assert_eq!(req.deadline, Micros::from_millis(42));

        let bad = SlaFlowSpec { source: "ATLANTIS".into(), ..spec };
        assert_eq!(bad.resolve(&g).unwrap_err(), "ATLANTIS");
    }

    #[test]
    fn sourced_at_filters_by_origin() {
        let g = presets::north_america_12();
        let nyc = g.node_by_name("NYC").unwrap();
        let plan = SlaPlan {
            flows: vec![
                SlaFlowSpec {
                    source: "NYC".into(),
                    destination: "SJC".into(),
                    class: SlaClass::Surgical,
                    deadline_ms: None,
                },
                SlaFlowSpec {
                    source: "CHI".into(),
                    destination: "SJC".into(),
                    class: SlaClass::Bulk,
                    deadline_ms: None,
                },
            ],
        };
        let mine: Vec<_> = plan.sourced_at(&g, nyc).collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].destination, "SJC");
    }
}
