//! Shared command-line parsing for every dissemination-graph binary.
//!
//! All of the repo's binaries take the same `--flag value` / `--switch`
//! shape, so they share one tiny builder instead of each hand-rolling a
//! parser: declare the flags with [`Cli::flag`] / [`Cli::switch`], then
//! [`Cli::parse_env`] yields typed [`Matches`]. Unknown flags, missing
//! values, and unparsable values are uniform [`CliError`]s (rendered
//! with the usage text and exit code 2), and every binary answers
//! `--help` consistently — no panics on bad input.
//!
//! ```
//! let cli = dg_cli::Cli::new("dg-demo", "demonstrates the parser")
//!     .flag_default("rate", "PPS", "packets per second", "100")
//!     .flag("trace", "PATH", "trace file to replay")
//!     .switch("quick", "run the abbreviated variant");
//! let m = cli.parse(["--rate", "250", "--quick"].iter().map(|s| s.to_string())).unwrap();
//! assert_eq!(m.get_or::<u32>("rate", 0).unwrap(), 250);
//! assert!(m.value("trace").is_none());
//! assert!(m.is_set("quick"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

/// One declared flag.
#[derive(Debug, Clone)]
struct FlagSpec {
    name: &'static str,
    /// Placeholder for the value in usage text; `None` marks a switch.
    value_name: Option<&'static str>,
    help: &'static str,
    default: Option<&'static str>,
}

/// A declarative command-line parser shared by all binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    name: &'static str,
    about: &'static str,
    flags: Vec<FlagSpec>,
}

/// Parsing failures, each mapped to a uniform message and exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// A flag that was never declared.
    UnknownFlag(String),
    /// A valued flag appeared without a value.
    MissingValue(&'static str),
    /// A value failed to parse into the requested type.
    BadValue {
        /// The flag whose value was rejected.
        flag: String,
        /// The offending input.
        value: String,
        /// The type it should have parsed into.
        expected: &'static str,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownFlag(flag) => write!(f, "unknown flag: {flag}"),
            CliError::MissingValue(flag) => write!(f, "--{flag} requires a value"),
            CliError::BadValue { flag, value, expected } => {
                write!(f, "--{flag}: cannot parse {value:?} as {expected}")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl Cli {
    /// A parser for the binary `name`, described by `about` in `--help`.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Cli { name, about, flags: Vec::new() }
    }

    /// Declares an optional valued flag (`--name VALUE`).
    pub fn flag(
        mut self,
        name: &'static str,
        value_name: &'static str,
        help: &'static str,
    ) -> Self {
        self.flags.push(FlagSpec { name, value_name: Some(value_name), help, default: None });
        self
    }

    /// Declares a valued flag with a default shown in `--help` and used
    /// when the flag is absent.
    pub fn flag_default(
        mut self,
        name: &'static str,
        value_name: &'static str,
        help: &'static str,
        default: &'static str,
    ) -> Self {
        self.flags.push(FlagSpec {
            name,
            value_name: Some(value_name),
            help,
            default: Some(default),
        });
        self
    }

    /// Declares a boolean switch (`--name`, no value).
    pub fn switch(mut self, name: &'static str, help: &'static str) -> Self {
        self.flags.push(FlagSpec { name, value_name: None, help, default: None });
        self
    }

    /// The usage text printed by `--help` and appended to errors.
    pub fn usage(&self) -> String {
        let mut out = format!(
            "{} — {}\n\nUsage: {} [options]\n\nOptions:\n",
            self.name, self.about, self.name
        );
        let mut lefts: Vec<String> = Vec::with_capacity(self.flags.len() + 1);
        for spec in &self.flags {
            lefts.push(match spec.value_name {
                Some(v) => format!("--{} <{}>", spec.name, v),
                None => format!("--{}", spec.name),
            });
        }
        lefts.push("--help".to_string());
        let width = lefts.iter().map(String::len).max().unwrap_or(0);
        for (spec, left) in self.flags.iter().zip(&lefts) {
            out.push_str(&format!("  {left:width$}  {}", spec.help));
            if let Some(d) = spec.default {
                out.push_str(&format!(" [default: {d}]"));
            }
            out.push('\n');
        }
        out.push_str(&format!("  {:width$}  print this help\n", "--help"));
        out
    }

    fn spec(&self, name: &str) -> Option<&FlagSpec> {
        self.flags.iter().find(|s| s.name == name)
    }

    /// Parses an argument stream (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] on unknown flags or missing values; typed
    /// value errors surface later from [`Matches::get`].
    pub fn parse<I: IntoIterator<Item = String>>(&self, args: I) -> Result<Matches, CliError> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(CliError::UnknownFlag(arg));
            };
            if name == "help" {
                switches.push("help".to_string());
                continue;
            }
            let Some(spec) = self.spec(name) else {
                return Err(CliError::UnknownFlag(arg));
            };
            if spec.value_name.is_some() {
                // A following token that looks like a declared flag is
                // not a value; report the missing value instead.
                let next_is_value = args.peek().is_some_and(|n| {
                    self.spec(n.strip_prefix("--").unwrap_or("")).is_none() && n != "--help"
                });
                if !next_is_value {
                    return Err(CliError::MissingValue(spec.name));
                }
                values.insert(spec.name.to_string(), args.next().expect("peeked"));
            } else {
                switches.push(spec.name.to_string());
            }
        }
        for spec in &self.flags {
            if let Some(default) = spec.default {
                values.entry(spec.name.to_string()).or_insert_with(|| default.to_string());
            }
        }
        Ok(Matches { values, switches })
    }

    /// Parses the process arguments; prints help or a uniform error (and
    /// the usage text) and exits when parsing cannot proceed.
    pub fn parse_env(&self) -> Matches {
        match self.parse(std::env::args().skip(1)) {
            Ok(m) if m.is_set("help") => {
                print!("{}", self.usage());
                std::process::exit(0);
            }
            Ok(m) => m,
            Err(e) => {
                eprintln!("{}: {e}\n\n{}", self.name, self.usage());
                std::process::exit(2);
            }
        }
    }

    /// Exits with the uniform error rendering for a post-parse error
    /// (e.g. a typed [`Matches::get`] failure).
    pub fn exit_with(&self, error: &CliError) -> ! {
        eprintln!("{}: {error}\n\n{}", self.name, self.usage());
        std::process::exit(2);
    }
}

/// Parsed flag values; typed access via [`Matches::get`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Matches {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Matches {
    /// Whether a switch (or `--help`) was given.
    pub fn is_set(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The raw value for a flag, if present (or defaulted).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses the value for `name` into `T`, `None` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] when the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.values.get(name) {
            None => Ok(None),
            Some(raw) => raw.parse().map(Some).map_err(|_| CliError::BadValue {
                flag: name.to_string(),
                value: raw.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Parses the value for `name` into `T`, falling back to `default`
    /// when the flag is absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] when a present value does not
    /// parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        Ok(self.get(name)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Cli {
        Cli::new("demo", "test binary")
            .flag_default("rate", "PPS", "packets per second", "100")
            .flag("trace", "PATH", "trace file")
            .switch("quick", "abbreviated run")
    }

    fn parse(cli: &Cli, args: &[&str]) -> Result<Matches, CliError> {
        cli.parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_values_and_switches() {
        let m = parse(&demo(), &["--rate", "250", "--quick"]).unwrap();
        assert_eq!(m.get_or::<u32>("rate", 0).unwrap(), 250);
        assert!(m.is_set("quick"));
        assert!(!m.is_set("help"));
        assert_eq!(m.value("trace"), None);

        let m = parse(&demo(), &[]).unwrap();
        assert_eq!(m.get_or::<u32>("rate", 0).unwrap(), 100, "default applies");
        assert!(!m.is_set("quick"));
    }

    #[test]
    fn errors_are_uniform_not_panics() {
        assert_eq!(parse(&demo(), &["--bogus", "1"]), Err(CliError::UnknownFlag("--bogus".into())));
        assert_eq!(parse(&demo(), &["--rate"]), Err(CliError::MissingValue("rate")));
        assert_eq!(parse(&demo(), &["--rate", "--quick"]), Err(CliError::MissingValue("rate")));
        assert_eq!(parse(&demo(), &["oops"]), Err(CliError::UnknownFlag("oops".into())));
        let m = parse(&demo(), &["--rate", "fast"]).unwrap();
        let err = m.get::<u32>("rate").unwrap_err();
        assert!(matches!(err, CliError::BadValue { .. }));
        assert!(err.to_string().contains("fast"));
    }

    #[test]
    fn help_is_a_switch_and_usage_lists_flags() {
        let m = parse(&demo(), &["--help"]).unwrap();
        assert!(m.is_set("help"));
        let usage = demo().usage();
        assert!(usage.contains("--rate <PPS>"));
        assert!(usage.contains("[default: 100]"));
        assert!(usage.contains("--quick"));
        assert!(usage.contains("--help"));
    }

    #[test]
    fn negative_and_path_values_parse() {
        let cli = Cli::new("t", "t").flag("offset", "N", "signed").flag("path", "P", "file");
        let m = cli
            .parse(["--offset", "-3", "--path", "/tmp/x.json"].iter().map(|s| s.to_string()))
            .unwrap();
        assert_eq!(m.get::<i64>("offset").unwrap(), Some(-3));
        assert_eq!(m.value("path"), Some("/tmp/x.json"));
    }
}
