//! Property tests of the routing schemes under arbitrary link states.

use dg_core::scheme::{
    build_scheme, RoutingScheme, SchemeKind, SchemeParams, TargetedMode, TargetedRedundancy,
};
use dg_core::{Flow, ProblemDetector, ProblemStatus, ServiceRequirement};
use dg_topology::{presets, EdgeId, Micros, NodeId};
use dg_trace::{LinkCondition, NetworkState};
use proptest::prelude::*;

fn arb_state(edge_count: usize) -> impl Strategy<Value = NetworkState> {
    proptest::collection::vec((0.0f64..1.0, 0u64..10_000), edge_count).prop_map(move |conds| {
        NetworkState::from_conditions(
            Micros::ZERO,
            conds
                .into_iter()
                .map(|(loss, extra)| LinkCondition::new(loss, Micros::from_micros(extra)))
                .collect(),
        )
    })
}

fn arb_flow() -> impl Strategy<Value = Flow> {
    (0u32..12, 0u32..12)
        .prop_filter("distinct endpoints", |(s, t)| s != t)
        .prop_map(|(s, t)| Flow::new(NodeId::new(s), NodeId::new(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the link state does, every scheme's current graph keeps
    /// connecting its flow and stays inside the flooding region.
    #[test]
    fn schemes_stay_valid_under_arbitrary_states(
        flow in arb_flow(),
        states in proptest::collection::vec(arb_state(60), 1..6),
    ) {
        let g = presets::north_america_12();
        let req = ServiceRequirement::default();
        let params = SchemeParams::default();
        let flood = build_scheme(SchemeKind::TimeConstrainedFlooding, &g, flow, req, &params)
            .expect("all NA flows are feasible");
        for kind in SchemeKind::ALL {
            let mut scheme = build_scheme(kind, &g, flow, req, &params)
                .expect("all NA flows support every scheme");
            for st in &states {
                scheme.update(&g, st);
                let dg = scheme.current();
                prop_assert_eq!(dg.source(), flow.source);
                prop_assert_eq!(dg.destination(), flow.destination);
                // Still connects: best baseline latency is finite and
                // within the deadline (schemes only pick deadline-feasible
                // graphs at baseline conditions).
                prop_assert!(dg.best_latency(&g) <= req.deadline,
                    "{kind} graph misses the deadline after update");
                prop_assert!(flood.current().is_superset_of(dg),
                    "{kind} routed outside the flooding region");
            }
        }
    }

    /// The targeted scheme's active mode is always consistent with the
    /// detector's classification of the *last* state (after enough
    /// repeats of the same state to pass the hold-down).
    #[test]
    fn targeted_mode_tracks_detector(flow in arb_flow(), state in arb_state(60)) {
        let g = presets::north_america_12();
        let req = ServiceRequirement::default();
        let params = SchemeParams::default();
        let mut scheme = TargetedRedundancy::new(&g, flow, req, &params).unwrap();
        let detector = ProblemDetector::new(params.problem_loss_threshold);
        let reference = scheme.graph_for_mode(TargetedMode::Normal).clone();
        // Apply the same state enough times to exhaust any hold-down.
        for _ in 0..=params.clear_after_updates {
            scheme.update(&g, &state);
        }
        let expected = match detector.classify(&g, flow, &reference, &state) {
            ProblemStatus::Clear => TargetedMode::Normal,
            ProblemStatus::SourceProblem => TargetedMode::SourceProblem,
            ProblemStatus::DestinationProblem => TargetedMode::DestinationProblem,
            ProblemStatus::BothProblems => TargetedMode::Robust,
        };
        prop_assert_eq!(scheme.mode(), expected);
    }

    /// Cost ordering across the targeted modes holds for every flow:
    /// normal <= source/destination <= robust, and the escalated graphs
    /// are supersets of the pair.
    #[test]
    fn targeted_mode_costs_are_ordered(flow in arb_flow()) {
        let g = presets::north_america_12();
        let scheme = TargetedRedundancy::new(
            &g, flow, ServiceRequirement::default(), &SchemeParams::default(),
        ).unwrap();
        let normal = scheme.graph_for_mode(TargetedMode::Normal);
        let robust = scheme.graph_for_mode(TargetedMode::Robust);
        for mode in [TargetedMode::SourceProblem, TargetedMode::DestinationProblem] {
            let dg = scheme.graph_for_mode(mode);
            prop_assert!(dg.is_superset_of(normal));
            prop_assert!(robust.is_superset_of(dg));
            prop_assert!(normal.cost(&g) <= dg.cost(&g));
            prop_assert!(dg.cost(&g) <= robust.cost(&g));
        }
    }

    /// Dynamic schemes are flap-damped: feeding the *same* state twice
    /// never changes the graph on the second update.
    #[test]
    fn dynamic_updates_are_idempotent(flow in arb_flow(), state in arb_state(60)) {
        let g = presets::north_america_12();
        for kind in [SchemeKind::DynamicSinglePath, SchemeKind::DynamicTwoDisjoint] {
            let mut scheme = build_scheme(
                kind, &g, flow, ServiceRequirement::default(), &SchemeParams::default(),
            ).unwrap();
            scheme.update(&g, &state);
            let after_first = scheme.current().clone();
            let changed = scheme.update(&g, &state);
            prop_assert!(!changed, "{kind} flapped on an identical state");
            prop_assert_eq!(&after_first, scheme.current());
        }
    }

    /// The problem detector ignores loss below threshold and unused
    /// edges, for arbitrary per-edge conditions.
    #[test]
    fn detector_only_fires_on_used_edges(
        flow in arb_flow(),
        lossy in proptest::collection::vec((0u32..60, 0.06f64..1.0), 1..10),
    ) {
        let g = presets::north_america_12();
        let scheme = TargetedRedundancy::new(
            &g, flow, ServiceRequirement::default(), &SchemeParams::default(),
        ).unwrap();
        let normal = scheme.graph_for_mode(TargetedMode::Normal);
        let mut state = NetworkState::clean(g.edge_count(), Micros::ZERO);
        for &(e, loss) in &lossy {
            state.set_condition(EdgeId::new(e), LinkCondition::new(loss, Micros::ZERO));
        }
        let detector = ProblemDetector::default();
        let status = detector.classify(&g, flow, normal, &state);
        let used_src_hit = normal
            .forwarding_edges(&g, flow.source)
            .any(|e| state.condition(e).is_problematic(0.05));
        let used_dst_hit = normal
            .edges()
            .iter()
            .any(|&e| g.edge(e).dst == flow.destination
                && state.condition(e).is_problematic(0.05));
        prop_assert_eq!(status.source_affected(), used_src_hit);
        prop_assert_eq!(status.destination_affected(), used_dst_hit);
    }
}
