//! Property battery for the multicast tier of [`dg_core::GraphCache`]:
//! single-source dissemination graphs over arbitrary generated
//! overlays must (a) span every receiver, (b) graft redundancy
//! branches only where the problem classification fires, (c) intern —
//! one construction per canonical `(source, receiver set, kind,
//! deadline)` key regardless of receiver ordering — and (d) stay equal
//! to the from-scratch oracle under any interleaving of link flaps,
//! lookups, and epoch flushes, exactly like the unicast live tier.

use dg_core::scheme::SchemeParams;
use dg_core::{GraphCache, MulticastGraph, MulticastKind, ServiceRequirement};
use dg_topology::generate::{feasible_deadline, representative_flows, GeneratorConfig};
use dg_topology::{EdgeId, Graph, NodeId};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;

/// One step of a flap/lookup interleaving.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Set a link's loss (index modulo edge count); values straddle
    /// the 0.5 usability threshold so flips happen both ways.
    SetLoss(usize, f64),
    /// Serve a (receiver set, kind) from the cache and check it
    /// against the oracle (indices modulo the respective counts).
    Lookup(usize, usize),
    /// Flush everything (routing-epoch advance).
    AdvanceEpoch,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..10_000, 0.0f64..1.0).prop_map(|(e, l)| Op::SetLoss(e, l)),
        (0usize..10_000, 0usize..10_000).prop_map(|(s, k)| Op::Lookup(s, k)),
        (0usize..50).prop_map(|_| Op::AdvanceEpoch),
    ]
}

/// A generated overlay, a source, nested receiver sets of growing
/// size, and a deadline feasible for every (source, receiver) pair.
fn scenario() -> impl Strategy<Value = (Arc<Graph>, NodeId, Vec<Vec<NodeId>>, ServiceRequirement)> {
    (0usize..2, 20usize..=40, 0u64..1_000_000).prop_map(|(family, nodes, seed)| {
        let config = if family == 0 {
            GeneratorConfig::waxman(nodes, seed)
        } else {
            GeneratorConfig::ring_of_cliques(nodes, seed)
        };
        let graph = config.generate();
        let endpoints = representative_flows(&graph, 4, seed);
        assert!(!endpoints.is_empty(), "generated overlays have disjoint-routable flows");
        let source = endpoints[0].0;
        let mut candidates: Vec<NodeId> =
            endpoints.iter().flat_map(|&(s, t)| [s, t]).filter(|&n| n != source).collect();
        candidates.sort();
        candidates.dedup();
        let receiver_sets: Vec<Vec<NodeId>> =
            (1..=candidates.len()).map(|k| candidates[..k].to_vec()).collect();
        let pairs: Vec<_> = candidates.iter().map(|&r| (source, r)).collect();
        let deadline = feasible_deadline(&graph, &pairs, 2.0);
        (Arc::new(graph), source, receiver_sets, ServiceRequirement::new(deadline))
    })
}

/// Serves `(source, receivers, kind)` from the cache and cross-checks
/// the from-scratch oracle. Both sides must agree on feasibility, and
/// on success the graphs must be identical.
fn check_lookup(
    cache: &GraphCache,
    source: NodeId,
    receivers: &[NodeId],
    kind: MulticastKind,
    req: ServiceRequirement,
) -> Result<(), TestCaseError> {
    let cached = cache.multicast(source, receivers, kind, req);
    let oracle = cache.compute_multicast_uncached(source, receivers, kind, req);
    match (cached, oracle) {
        (Ok(c), Ok(o)) => {
            prop_assert_eq!(c.as_ref(), &o, "{:?} -> {:?} {:?} diverged", source, receivers, kind);
        }
        (Err(_), Err(_)) => {}
        (c, o) => {
            return Err(TestCaseError::fail(format!(
                "cache/oracle disagree on feasibility for {source:?} -> {receivers:?} {kind:?}: \
                 cached={c:?} oracle={o:?}"
            )))
        }
    }
    Ok(())
}

/// Nodes reachable from the graph's source over its own edge set —
/// an independent re-proof of the spanning invariant.
fn reachable(graph: &Graph, mg: &MulticastGraph) -> HashSet<NodeId> {
    let mut seen: HashSet<NodeId> = [mg.source()].into();
    let mut frontier = vec![mg.source()];
    while let Some(node) = frontier.pop() {
        for &e in mg.edges() {
            let info = graph.edge(e);
            if info.src == node && seen.insert(info.dst) {
                frontier.push(info.dst);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// THE multicast soundness property: under an arbitrary
    /// interleaving of loss updates, lookups, and epoch flushes, every
    /// served multicast graph equals the from-scratch oracle for the
    /// instantaneous usable set.
    #[test]
    fn cached_multicast_graphs_always_match_the_oracle(
        (graph, source, sets, req) in scenario(),
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        for op in ops {
            match op {
                Op::SetLoss(e, loss) => {
                    cache.note_loss(EdgeId::new((e % edge_count) as u32), loss);
                }
                Op::Lookup(s, k) => {
                    let set = &sets[s % sets.len()];
                    let kind = MulticastKind::ALL[k % MulticastKind::ALL.len()];
                    check_lookup(&cache, source, set, kind, req)?;
                }
                Op::AdvanceEpoch => cache.advance_epoch(),
            }
        }
        // Final sweep: every (set, kind) agrees with the oracle in the
        // end state, hitting entries the random walk never read.
        for set in &sets {
            for kind in MulticastKind::ALL {
                check_lookup(&cache, source, set, kind, req)?;
            }
        }
    }

    /// Every constructed graph spans its full receiver set: re-proved
    /// by an independent traversal over the selected edges, for every
    /// kind, on the clean graph and after a batch of flaps.
    #[test]
    fn every_kind_spans_every_receiver(
        (graph, source, sets, req) in scenario(),
        flaps in proptest::collection::vec((0usize..10_000, 0.0f64..1.0), 0..10)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        for (e, loss) in flaps {
            cache.note_loss(EdgeId::new((e % edge_count) as u32), loss);
        }
        for set in &sets {
            for kind in MulticastKind::ALL {
                let Ok(mg) = cache.multicast(source, set, kind, req) else { continue };
                prop_assert_eq!(mg.source(), source);
                let seen = reachable(&graph, &mg);
                for &r in set {
                    prop_assert!(
                        seen.contains(&r),
                        "{:?} graph does not span receiver {:?}", kind, r
                    );
                    prop_assert!(mg.contains_receiver(r));
                }
            }
        }
    }

    /// Targeted redundancy grafts branches only where the problem
    /// classification fires: on a fully healthy graph — and after
    /// flapping edges that touch neither the tree nor any receiver —
    /// the targeted graph IS the plain tree.
    #[test]
    fn targeted_branches_require_a_problem_receiver(
        (graph, source, sets, req) in scenario(),
        picks in proptest::collection::vec(0usize..10_000, 1..6)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let set = sets.last().expect("scenario yields at least one set");
        let tree = cache.multicast(source, set, MulticastKind::Tree, req)
            .expect("clean graph routes the tree");
        let targeted = cache.multicast(source, set, MulticastKind::Targeted, req)
            .expect("clean graph routes targeted");
        prop_assert_eq!(
            tree.edges(), targeted.edges(),
            "healthy graph must not carry redundancy branches"
        );
        // Flap only edges that are off-tree and not incident to any
        // receiver: no receiver becomes problem-classified and no
        // selected edge dies, so the targeted result must not change.
        let on_tree: HashSet<EdgeId> = tree.edges().iter().copied().collect();
        let touches_receiver = |e: EdgeId| {
            let info = graph.edge(e);
            set.contains(&info.src) || set.contains(&info.dst)
        };
        let mut flapped = false;
        for pick in picks {
            let e = EdgeId::new((pick % graph.edge_count()) as u32);
            if !on_tree.contains(&e) && !touches_receiver(e) {
                cache.note_loss(e, 0.9);
                flapped = true;
            }
        }
        if flapped {
            let after = cache.multicast(source, set, MulticastKind::Targeted, req)
                .expect("targeted remains routable");
            prop_assert_eq!(
                after.edges(), tree.edges(),
                "flaps away from the tree and receivers must not graft branches"
            );
        }
    }

    /// Interning is canonical: any ordering of the receiver set — with
    /// duplicates, and with the source mixed in — resolves to the same
    /// `Arc`, and that interned graph is identical to a from-scratch
    /// per-call construction.
    #[test]
    fn interning_is_order_independent_and_matches_fresh_construction(
        (graph, source, sets, req) in scenario(),
        rotate in 0usize..10_000,
        kind_idx in 0usize..10_000
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let set = sets.last().expect("scenario yields at least one set");
        let kind = MulticastKind::ALL[kind_idx % MulticastKind::ALL.len()];
        let first = cache.multicast(source, set, kind, req)
            .expect("clean graph routes the set");
        let mut shuffled = set.clone();
        let pivot = rotate % shuffled.len();
        shuffled.rotate_left(pivot);
        shuffled.push(shuffled[0]);
        shuffled.push(source);
        let again = cache.multicast(source, &shuffled, kind, req)
            .expect("canonicalization ignores ordering");
        prop_assert!(Arc::ptr_eq(&first, &again), "reordered receivers broke interning");
        let fresh = cache.compute_multicast_uncached(source, &shuffled, kind, req)
            .expect("oracle routes the set");
        prop_assert_eq!(first.as_ref(), &fresh, "interned graph diverged from fresh construction");
        let stats = cache.stats();
        prop_assert_eq!(stats.multicast.misses, 1, "exactly one construction");
        prop_assert_eq!(stats.multicast.hits, 1, "the reordered lookup must intern");
    }

    /// Healing: flap a set of links unusable, then restore them all;
    /// the multicast tier must converge back to exactly the
    /// clean-graph result for every (set, kind).
    #[test]
    fn healing_restores_the_clean_graph_result(
        (graph, source, sets, req) in scenario(),
        edges in proptest::collection::vec(0usize..10_000, 1..8)
    ) {
        let cache = GraphCache::new(Arc::clone(&graph), SchemeParams::default());
        let edge_count = graph.edge_count();
        let mut clean: Vec<_> = Vec::new();
        for set in &sets {
            for kind in MulticastKind::ALL {
                clean.push(cache.multicast(source, set, kind, req).ok()
                    .map(|g| g.as_ref().clone()));
            }
        }
        for &e in &edges {
            cache.note_loss(EdgeId::new((e % edge_count) as u32), 0.9);
        }
        // Touch the degraded state so healing has stale entries to kill.
        for set in &sets {
            let _ = cache.multicast(source, set, MulticastKind::Targeted, req);
        }
        for &e in &edges {
            cache.note_loss(EdgeId::new((e % edge_count) as u32), 0.0);
        }
        let mut healed = clean.iter();
        for set in &sets {
            for kind in MulticastKind::ALL {
                let now = cache.multicast(source, set, kind, req).ok()
                    .map(|g| g.as_ref().clone());
                prop_assert_eq!(&now, healed.next().unwrap(), "{:?} {:?}", set, kind);
            }
        }
    }
}
